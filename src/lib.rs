#![warn(missing_docs)]

//! **itask-repro** — a reproduction of *"Interruptible Tasks: Treating
//! Memory Pressure As Interrupts for Highly Scalable Data-Parallel
//! Programs"* (SOSP '15) on a simulated managed runtime, in Rust.
//!
//! This umbrella crate re-exports the workspace so examples and
//! integration tests can reach everything through one dependency:
//!
//! * [`itask`] — the paper's contribution: the ITask programming model
//!   and the IRS runtime;
//! * [`sim`] (core/mem/store/net/cluster) — the simulated substrate
//!   standing in for the JVM, SSDs, network and EC2 nodes;
//! * [`hyracks`] / [`hadoop`] — the two frameworks the paper
//!   instantiates ITasks in;
//! * [`workloads`] / [`apps`] — the synthetic datasets and the ten
//!   benchmark programs (regular + ITask versions).
//!
//! Start with `examples/quickstart.rs`, then DESIGN.md for the system
//! inventory and EXPERIMENTS.md for the reproduced tables and figures.

pub use apps;
pub use hadoop;
pub use hyracks;
pub use itask_core as itask;
pub use planner;
pub use workloads;

/// The simulation substrate, re-exported under one roof.
pub mod sim {
    pub use simcluster as cluster;
    pub use simcore as core;
    pub use simmem as mem;
    pub use simnet as net;
    pub use simstore as store;
}
