//! Quickstart: define an interruptible task, feed it partitions, watch
//! the IRS interrupt and resume it under memory pressure.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The task counts word occurrences. The node's heap is deliberately too
//! small to hold the input *and* the count table at once; the ITask
//! runtime survives by interrupting the task at safe points, pushing the
//! partial counts out, and resuming on the unprocessed remainder —
//! exactly the mechanism of the SOSP '15 paper.

use std::collections::BTreeMap;

use itask_core::{
    offer_serialized, Irs, IrsConfig, Scale, Tag, TaskCx, TaskGraph, Tuple, TupleTask,
};
use simcluster::{NodeSim, NodeState};
use simcore::{ByteSize, DetRng, NodeId, SimResult, SCALE};

/// One word occurrence (~48 simulated bytes as a Java string).
#[derive(Clone, Copy)]
struct Word(u32);

impl Tuple for Word {
    fn heap_bytes(&self) -> u64 {
        48
    }
}

/// The interruptible counting task: the paper's four-method interface.
#[derive(Default)]
struct CountWords {
    counts: BTreeMap<u32, u64>,
}

impl CountWords {
    /// Pushes the partial counts out of the runtime and clears them.
    fn flush(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        if self.counts.is_empty() {
            return Ok(());
        }
        let drained = std::mem::take(&mut self.counts);
        let ser = ByteSize(drained.len() as u64 * 12);
        cx.emit_final(Box::new(drained), ser)
    }
}

impl TupleTask for CountWords {
    type In = Word;

    fn initialize(&mut self, _cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        Ok(())
    }

    /// Per-tuple processing — side-effect-free outside the output space.
    fn process(&mut self, cx: &mut TaskCx<'_, '_>, w: &Word) -> SimResult<()> {
        if let std::collections::btree_map::Entry::Vacant(v) = self.counts.entry(w.0) {
            cx.alloc_out(ByteSize(64))?; // one hash-map entry
            v.insert(0);
        }
        *self.counts.get_mut(&w.0).expect("present") += 1;
        Ok(())
    }

    /// Interrupt logic: push partial results out so their memory frees.
    fn interrupt(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        self.flush(cx)
    }

    /// Finalization when the input is exhausted.
    fn cleanup(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        self.flush(cx)
    }
}

fn main() {
    // A single node with a 640KiB heap (≙ 640MB at the paper's scale).
    let mut sim = NodeSim::new(NodeState::new(
        NodeId(0),
        8,
        ByteSize::kib(640),
        ByteSize::mib(64),
    ));

    // Register the task graph: one interruptible task.
    let mut graph = TaskGraph::new();
    let count = graph.add_task("count", || Box::new(Scale(CountWords::default())));
    let mut irs = Irs::new(graph, IrsConfig::default());

    // Offer ~2.7MiB of input (4x the heap) as serialized partitions.
    let mut rng = DetRng::new(7);
    let words: Vec<u32> = (0..60_000).map(|_| rng.below(5_000) as u32).collect();
    let handle = irs.handle();
    for chunk in words.chunks(2_000) {
        let items: Vec<Word> = chunk.iter().map(|&w| Word(w)).collect();
        offer_serialized(&handle, sim.node_mut(), count, Tag(0), items).expect("offering input");
    }

    // Run to completion under IRS control.
    irs.run_to_idle(&mut sim)
        .expect("the ITask run survives the pressure");

    // Merge the (possibly many) partial outputs.
    let mut totals: BTreeMap<u32, u64> = BTreeMap::new();
    let outputs = irs.take_final_outputs();
    let n_outputs = outputs.len();
    for out in outputs {
        let m = out
            .data
            .downcast::<BTreeMap<u32, u64>>()
            .expect("count map");
        for (w, c) in m.into_iter() {
            *totals.entry(w).or_insert(0) += c;
        }
    }
    let total: u64 = totals.values().sum();
    assert_eq!(total, 60_000, "every word counted exactly once");

    let st = irs.stats();
    let node = sim.node();
    println!("quickstart: interruptible word count under memory pressure");
    println!("  input:        60000 words (~2.7MiB object form) vs a 640KiB heap");
    println!(
        "  result:       {} distinct words, {} occurrences",
        totals.len(),
        total
    );
    println!("  outputs:      {n_outputs} partial result batches pushed out");
    println!(
        "  interrupts:   {} cooperative + {} emergency",
        st.interrupts, st.emergency_interrupts
    );
    println!(
        "  reclaimed:    {} final results, {} processed input, {} serialized",
        st.reclaim.final_results, st.reclaim.processed_input, st.reclaim.lazy_serialized
    );
    println!(
        "  virtual time: {} ({}x scale => {:.1}s paper-equivalent)",
        node.now,
        SCALE,
        node.now.as_secs_f64() * SCALE as f64
    );
    println!(
        "  GC:           {} pause time, {} minor / {} full collections",
        node.gc_time,
        node.heap.stats().minor_count,
        node.heap.stats().full_count
    );
}
