//! The §4.3 future-work direction, implemented: a declarative query is
//! *compiled* into an interruptible ITask pipeline — interrupt handling
//! (flush partial results, tag partial aggregates, re-queue partial
//! merges) is generated, not hand-written.
//!
//! ```sh
//! cargo run --release --example declarative_query
//! ```

use itask_repro::apps::hyracks_apps::HyracksParams;
use planner::{Query, RunnableQuery};
use workloads::tpch::{LineItem, TpchConfig, TpchScale};

fn main() {
    let params = HyracksParams::default(); // 10 nodes x 12GB heaps
    let cfg = TpchConfig::preset(TpchScale::X100, params.seed);
    println!(
        "declarative query: TPC-H lineitem, {} rows (≙ 99.8GB)",
        cfg.lineitems
    );

    // The whole program: a logical plan. No interrupt code anywhere.
    // `collect` materializes each group before reducing it — the
    // memory-hungry collect-then-aggregate shape that kills the regular
    // GR at this scale (Figure 9e).
    let mut q = Query::<LineItem>::named("revenue_by_order")
        .flat_map(|li, out| out.push((li.orderkey, li.extendedprice as u64 * li.quantity as u64)))
        .collect(|vals| vals.iter().sum());
    // Model each collected value as a full Java row object (as GR does).
    q.item_bytes = 150;

    // Load the table as per-node frames.
    let mut blocks = Vec::new();
    let mut k = 0;
    while k < cfg.lineitems {
        blocks.push(cfg.lineitem_block(k, 1_200));
        k += 1_200;
    }
    let inputs = hyracks::distribute_blocks(params.nodes, blocks, params.granularity);

    let mut run = q.run_itask(&params, inputs);
    let outs = std::mem::replace(&mut run.result, Ok(Vec::new()))
        .expect("the generated pipeline survives");
    let groups = outs.len();
    let revenue: u64 = outs.iter().map(|o| o.value).sum();
    println!("  groups:      {groups} orders");
    println!("  revenue:     {revenue} (total)");
    println!(
        "  time:        {:.1}s paper-equivalent, gc {:.0}%",
        run.paper_seconds(),
        run.gc_fraction() * 100.0
    );
    println!(
        "  pressure:    {} interrupts, {} partitions serialized, peak heap {}",
        run.report.counter("itask.interrupts") + run.report.counter("itask.emergency_interrupts"),
        run.report.counter("itask.serializations"),
        run.peak_heap(),
    );
    println!("  all of it handled by generated code: the query never mentions memory");
}
