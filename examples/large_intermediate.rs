//! Large intermediate results (§2's second root cause): the inverted
//! index (II) must cache postings lists in memory until each term's list
//! is complete — the worst-scaling program of the paper's five (it never
//! gets past the 3GB dataset on 12GB heaps, Figure 9c).
//!
//! This example sweeps the webmap datasets and shows the regular
//! version's scalability wall next to the ITask version walking through
//! it by tagging, queueing and lazily serializing partial postings.
//!
//! ```sh
//! cargo run --release --example large_intermediate
//! ```

use apps::hyracks_apps::{ii, HyracksParams};
use simcore::SCALE;
use workloads::webmap::WebmapSize;

fn main() {
    println!("large intermediate results: inverted index (II) over the webmap");
    println!("  cluster: 10 nodes x 12GB heaps (scaled 1/1024), 8 threads\n");
    println!(
        "  {:<8} {:>22} {:>22}",
        "dataset", "regular (8 threads)", "ITask"
    );

    let params = HyracksParams::default();
    for size in [
        WebmapSize::G3,
        WebmapSize::G10,
        WebmapSize::G14,
        WebmapSize::G27,
    ] {
        let reg = ii::run_regular(size, &params);
        let it = ii::run_itask(size, &params);
        let show = |ok: bool, secs: f64| {
            if ok {
                format!("{secs:.0}s")
            } else {
                format!("OME@{secs:.0}s")
            }
        };
        if it.ok() {
            assert!(
                ii::verify(it.result.as_ref().unwrap(), size, params.seed),
                "every edge must appear in the index"
            );
        }
        println!(
            "  {:<8} {:>22} {:>22}",
            size.label(),
            show(reg.ok(), reg.elapsed().as_secs_f64() * SCALE as f64),
            show(it.ok(), it.elapsed().as_secs_f64() * SCALE as f64),
        );
    }

    println!("\n  The regular version hits the paper's wall above 3GB; the ITask");
    println!("  version keeps going by interrupting index builders, tagging their");
    println!("  partial postings for the merge MITask, and letting the partition");
    println!("  manager push parked partials to disk.");
}
