//! A guided tour of the simulated managed runtime itself: watch garbage
//! accumulate, minor collections evacuate the young generation, a full
//! collection reclaim the old generation, LUGCs appear as the live set
//! approaches capacity, and the OME land — the raw machinery everything
//! else in this repository is built on.
//!
//! ```sh
//! cargo run --release --example heap_pressure_tour
//! ```

use simcore::{ByteSize, SimTime};
use simmem::{GcKind, Heap, HeapConfig};

fn show(heap: &Heap, label: &str) {
    println!(
        "  [{label:<28}] used {:>9} | live {:>9} | garbage {:>9} | eff.free {:>9}",
        heap.used().to_string(),
        heap.live().to_string(),
        heap.garbage().to_string(),
        heap.effective_free().to_string(),
    );
}

fn main() {
    // A "12GB" node heap at 1/1024 scale.
    let mut heap = Heap::new(HeapConfig::with_capacity(ByteSize::mib(12)));
    let now = SimTime::ZERO;
    println!("heap pressure tour: a 12MiB (≙ 12GB) generational heap\n");

    // 1. Plain allocation: everything lands in the young generation.
    let frames = heap.create_space("input-frames");
    let state = heap.create_space("aggregation-state");
    heap.alloc(frames, ByteSize::mib(1), now).unwrap();
    heap.alloc(state, ByteSize::mib(1), now).unwrap();
    show(&heap, "2MiB allocated");

    // 2. Freeing creates garbage, not free memory — the JVM behaviour
    //    the whole paper is built around.
    heap.free(frames, ByteSize::mib(1));
    show(&heap, "1MiB freed -> garbage");

    // 3. Young-generation churn: short-lived frames die young across
    //    minor collections, never inflating full-GC cost.
    let mut minors = 0;
    for _ in 0..200 {
        let out = heap.alloc(frames, ByteSize::kib(64), now).unwrap();
        minors += out
            .pauses
            .iter()
            .filter(|p| p.kind == GcKind::Minor)
            .count();
        heap.free(frames, ByteSize::kib(64));
    }
    show(&heap, &format!("12.5MiB churned, {minors} minor GCs"));

    // 4. A full collection sweeps the old generation clean.
    let rec = heap.force_full_gc(now);
    println!(
        "  full GC: reclaimed {} in {} (useless: {})",
        rec.reclaimed(),
        rec.pause,
        rec.useless
    );
    show(&heap, "after full GC");

    // 5. Fill the heap with long-lived state: collections become long
    //    and useless (LUGC) — the ITask monitor's interrupt signal.
    while heap.alloc(state, ByteSize::kib(256), now).is_ok() {
        if heap.effective_free() < ByteSize::mib(1) {
            break;
        }
    }
    let rec = heap.force_full_gc(now);
    println!(
        "\n  near-capacity full GC: reclaimed {} in {} (useless: {})",
        rec.reclaimed(),
        rec.pause,
        rec.useless
    );
    assert!(
        rec.useless,
        "a full GC that frees <10% of the heap is a LUGC"
    );
    show(&heap, "live set ~= capacity");

    // 6. And finally the OME.
    let err = heap
        .alloc(state, ByteSize::mib(2), now)
        .expect_err("2MiB cannot fit");
    println!("\n  allocation of 2MiB -> {err}");
    println!(
        "\n  stats: {} minor / {} full collections, {} of them useless, {} total pause",
        heap.stats().minor_count,
        heap.stats().full_count,
        heap.stats().useless_count,
        heap.stats().total_pause,
    );
    println!("\n  This OME is exactly what ITask's monitor/scheduler/partition");
    println!("  manager pipeline exists to prevent — see the other examples.");
}
