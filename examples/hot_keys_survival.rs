//! Hot keys (§2 of the paper): a handful of wildly popular StackOverflow
//! posts whose assembled objects dwarf ordinary records. The regular
//! MapReduce job burns its whole YARN retry budget and dies; the ITask
//! version under the *same* framework configuration survives.
//!
//! ```sh
//! cargo run --release --example hot_keys_survival
//! ```

use apps::hadoop_apps::{msa, stackoverflow_splits};
use simcore::SCALE;
use workloads::stackoverflow::StackOverflowConfig;

fn main() {
    let seed = 42;
    let cfg = StackOverflowConfig::full_dump(seed);
    let splits = stackoverflow_splits(seed);
    let hot: usize = splits.iter().flatten().filter(|p| p.is_hot()).count();
    let longest = splits
        .iter()
        .flatten()
        .map(|p| p.body_chars)
        .max()
        .unwrap_or(0);

    println!("hot keys: map-side aggregation (MSA) over the StackOverflow dump");
    println!(
        "  dataset: {} posts ({} ≙ 29GB), {} hot posts, longest thread {} chars (≙ {}KB x1024)",
        cfg.posts,
        cfg.total_bytes,
        hot,
        longest,
        longest / 1024
    );
    println!("  config:  Table 1 row — MH=RH=1GB, 6 mappers / 6 reducers per node\n");

    // The regular job under the reported configuration: retry storm, crash.
    let (ctime, attempts) = msa::run_ctime(seed);
    assert!(!ctime.ok(), "the reported configuration must crash");
    println!(
        "  regular  : CRASHED after {:.0}s (paper-equivalent) and {} task attempts",
        ctime.elapsed().as_secs_f64() * SCALE as f64,
        attempts
    );

    // The recommended manual fix: one mapper per node, fine splits.
    let (ptime, _) = msa::run_tuned(seed);
    assert!(ptime.ok(), "the tuned configuration completes");
    println!(
        "  tuned    : completed in {:.0}s after manual parameter surgery",
        ptime.elapsed().as_secs_f64() * SCALE as f64
    );

    // ITask under the ORIGINAL configuration: no tuning, survives.
    let itime = msa::run_itask(seed);
    assert!(
        itime.ok(),
        "the ITask version survives the original configuration"
    );
    assert!(
        msa::verify(itime.result.as_ref().unwrap(), seed),
        "output is complete"
    );
    println!(
        "  ITask    : completed in {:.0}s under the ORIGINAL configuration",
        itime.elapsed().as_secs_f64() * SCALE as f64
    );
    println!(
        "             {} interrupts, {} partitions serialized, {} LUGCs observed",
        itime.report.counter("itask.interrupts")
            + itime.report.counter("itask.emergency_interrupts"),
        itime.report.counter("itask.serializations"),
        itime.report.counter("monitor.lugcs"),
    );
    let speedup = ptime.elapsed().as_secs_f64() / itime.elapsed().as_secs_f64();
    println!("\n  ITask vs manual tuning: {speedup:.1}x faster, zero configuration changes");
}
