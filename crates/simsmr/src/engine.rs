//! The quorum driver: proposes, replicates, collects acks, commits in
//! log order, and runs heartbeat-timeout elections — all between
//! lockstep rounds of the shard executor, so the whole protocol is
//! byte-identical at any `--shards` count.
//!
//! # Timing model
//!
//! Each driver iteration is one scheduling round (~one quantum) of
//! every live node. The leader proposes into its window at the global
//! clock frontier; append-entries RPCs are priced per link by
//! [`simnet::Fabric::transfer_at`] and arrive as [`Cmd::Apply`]
//! commands gated on `ready_at`. After the round the driver drains
//! acks (pricing the ack RPC back to the leader), commits entries in
//! log order once `majority` replicas — leader included — have
//! applied, and clamps commit times monotonic. A GC pause on a node
//! advances that node's clock stop-the-world, so a paused leader's
//! proposals, acks and heartbeats all slide — the pause lands in every
//! inflight commit latency, which is the phenomenon under study.
//!
//! # Elections
//!
//! The leader heartbeats every `heartbeat_every`; a follower that sees
//! no heartbeat for `election_timeout` starts a deterministic view
//! change: the leadership rotates to the next live replica, a
//! view-change RPC fans out, and every uncommitted entry is
//! re-replicated by the new leader (replicas that already applied one
//! re-ack without re-execution). Re-proposed entries keep their
//! *original* propose time, so election delay lands in the commit
//! tail. Both a scheduled leader crash and a full-GC pause longer than
//! the timeout take this same path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use itask_core::{live_budget_for_pause, predicted_full_pause, StateGuard};
use simcluster::{Cluster, ClusterConfig, ShardExecutor};
use simcore::tracer::{self, EventId, TraceData};
use simcore::{metrics, ByteSize, NodeId, SimDuration, SimError, SimResult, SimTime};
use simnet::rpc;
use simserve::QuantileSketch;

use crate::config::{RuntimeMode, SmrConfig};
use crate::replica::{Ack, Cmd, Inbox, ReplicaWork};

/// What one SMR run produced.
#[derive(Clone, Debug)]
pub struct SmrOutcome {
    /// Runtime policy that drove the run.
    pub mode: RuntimeMode,
    /// Quorum size.
    pub nodes: usize,
    /// Entries committed (equals the configured log length on success).
    pub commits: u64,
    /// Propose → commit latency samples, in nanoseconds of virtual time.
    pub latency: QuantileSketch,
    /// View changes performed.
    pub view_changes: u64,
    /// Final view number.
    pub final_view: u64,
    /// Total stop-the-world GC pause accumulated across the quorum
    /// (attributed per window via [`simmem::Heap::pause_mark`]).
    pub gc_stall: SimDuration,
    /// Virtual makespan of the run.
    pub elapsed: SimDuration,
    /// Full collections across the quorum.
    pub full_gcs: u64,
    /// Minor collections across the quorum.
    pub minor_gcs: u64,
    /// Long-and-useless collections across the quorum.
    pub lugcs: u64,
    /// Deflation rounds across the quorum (ITask modes).
    pub deflations: u64,
    /// Live bytes released by deflation.
    pub deflated: ByteSize,
    /// Peak heap occupancy as a percentage of capacity (worst node).
    pub peak_heap_pct: u64,
    /// Running digest of the committed log, per index.
    pub committed_digests: Vec<u64>,
    /// Running digest of each node's *applied* sequence, per index.
    pub node_digests: Vec<Vec<u64>>,
    /// `Ok` on a clean run; the first substrate error otherwise.
    pub result: SimResult<()>,
}

impl SmrOutcome {
    /// Commit-latency quantile in virtual nanoseconds.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        self.latency.quantile(q)
    }

    /// Digest of the whole committed log (`0` when nothing committed).
    pub fn committed_digest(&self) -> u64 {
        self.committed_digests.last().copied().unwrap_or(0)
    }

    /// Quorum safety: every node's applied sequence must agree with the
    /// committed log on their common prefix (and hence with every other
    /// node's). Violations would mean divergent state machines.
    pub fn check_safety(&self) -> Result<(), String> {
        for (n, digests) in self.node_digests.iter().enumerate() {
            for (i, (d, c)) in digests.iter().zip(&self.committed_digests).enumerate() {
                if d != c {
                    return Err(format!(
                        "node {n} diverges from the committed log at index {}",
                        i + 1
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Consensus bookkeeping for one uncommitted entry.
struct Entry {
    /// Original propose time — survives view changes so election delay
    /// is charged to the commit latency.
    propose_at: SimTime,
    propose_ev: EventId,
    leader_done: Option<SimTime>,
    /// Follower → ack arrival time at the current leader.
    acks: BTreeMap<u32, SimTime>,
    /// Follower → replicate event (causal parent of its ack).
    replicate_ev: BTreeMap<u32, EventId>,
}

fn push_cmd(inbox: &Inbox, cmd: Cmd) {
    inbox.lock().unwrap().push_back(cmd);
}

fn global_now(cluster: &mut Cluster, live: &[NodeId]) -> SimTime {
    let mut t = SimTime::ZERO;
    for &n in live {
        t = t.max(cluster.sim(n).node().now);
    }
    t
}

/// Runs one SMR configuration to completion and reports the outcome.
///
/// # Panics
///
/// Panics if the quorum size is even or below 3.
pub fn run(cfg: &SmrConfig) -> SmrOutcome {
    assert!(
        cfg.nodes >= 3 && cfg.nodes % 2 == 1,
        "quorum must be odd and at least 3"
    );
    let mut cluster = Cluster::new(ClusterConfig {
        nodes: cfg.nodes,
        cores: 2,
        heap_per_node: cfg.heap_per_node,
        ..ClusterConfig::default()
    });
    if let Some(plan) = &cfg.faults {
        cluster.install_faults(plan.clone());
    }
    let mut exec = if cfg.shards == 0 {
        ShardExecutor::new()
    } else {
        ShardExecutor::with_shards(cfg.shards)
    };

    let stop = Arc::new(AtomicBool::new(false));
    let mut inboxes = Vec::with_capacity(cfg.nodes);
    let mut outboxes = Vec::with_capacity(cfg.nodes);
    let mut replica_stats = Vec::with_capacity(cfg.nodes);
    for n in 0..cfg.nodes {
        let id = NodeId(n as u32);
        let space = cluster
            .sim(id)
            .node_mut()
            .heap
            .create_space(format!("smr.state{n}"));
        let (work, inbox, outbox, stats) = ReplicaWork::new(id, space, cfg, stop.clone());
        cluster.sim(id).spawn(Box::new(work));
        inboxes.push(inbox);
        outboxes.push(outbox);
        replica_stats.push(stats);
    }

    let majority = cfg.majority();
    let mut guards: Vec<StateGuard> = (0..cfg.nodes)
        .map(|_| StateGuard::new(cfg.monitor))
        .collect();
    let mut view = 0u64;
    let mut leader = NodeId(0);
    let mut next_propose = 1u64;
    let mut committed = 0u64;
    let mut last_commit_at = SimTime::ZERO;
    let mut inflight: BTreeMap<u64, Entry> = BTreeMap::new();
    let mut last_hb = vec![SimTime::ZERO; cfg.nodes];
    let mut next_hb_due = SimTime::ZERO;
    let mut pause_marks = vec![SimDuration::ZERO; cfg.nodes];
    let mut gc_stall = SimDuration::ZERO;
    let mut latency = QuantileSketch::new(QuantileSketch::DEFAULT_K);
    let mut view_changes = 0u64;
    let mut committed_digests: Vec<u64> = Vec::new();
    let mut node_digests: Vec<Vec<u64>> = vec![Vec::new(); cfg.nodes];
    let mut result: SimResult<()> = Ok(());
    // Metrics cadence gate for the lease-margin gauge (one point per
    // cell, not per round).
    let mut lease_cell: Option<u64> = None;
    // Generous livelock backstop: a healthy run takes a handful of
    // rounds per committed entry plus election detours.
    let round_budget = 200_000 + cfg.entries.saturating_mul(5_000);
    let mut rounds = 0u64;

    'main: while committed < cfg.entries {
        rounds += 1;
        if rounds > round_budget {
            result = Err(SimError::Internal(
                "smr livelock: round budget exhausted".into(),
            ));
            break;
        }
        let live = cluster.live_nodes();
        if live.len() < majority {
            result = Err(SimError::Internal(format!(
                "quorum lost: {} of {} nodes live",
                live.len(),
                cfg.nodes
            )));
            break;
        }
        let now = global_now(&mut cluster, &live);

        // 1. Leader fills its proposal window.
        if !cluster.sim(leader).is_crashed() {
            while inflight.len() < cfg.window && next_propose <= cfg.entries {
                let index = next_propose;
                next_propose += 1;
                let ev = tracer::emit(
                    Some(leader),
                    None,
                    now,
                    SimDuration::ZERO,
                    TraceData::Propose { index, view },
                );
                let mut entry = Entry {
                    propose_at: now,
                    propose_ev: ev,
                    leader_done: None,
                    acks: BTreeMap::new(),
                    replicate_ev: BTreeMap::new(),
                };
                push_cmd(
                    &inboxes[leader.as_usize()],
                    Cmd::Apply {
                        index,
                        ready_at: now,
                    },
                );
                for &f in &live {
                    if f == leader {
                        continue;
                    }
                    let wire = match cluster.fabric().transfer_at(
                        leader,
                        f,
                        rpc::append_entries(cfg.payload),
                        now,
                    ) {
                        Ok(w) => w,
                        Err(e) => {
                            result = Err(e);
                            break 'main;
                        }
                    };
                    let rev = tracer::emit(
                        Some(leader),
                        None,
                        now,
                        wire,
                        TraceData::Replicate {
                            index,
                            to: f.0,
                            cause: ev,
                        },
                    );
                    entry.replicate_ev.insert(f.0, rev);
                    push_cmd(
                        &inboxes[f.as_usize()],
                        Cmd::Apply {
                            index,
                            ready_at: now + wire,
                        },
                    );
                }
                inflight.insert(index, entry);
            }
        }

        // 2. One lockstep round over the live replicas.
        let round = exec.run_round(&mut cluster, &live, true);
        if let Some((node, report)) = round.first_failure() {
            result = Err(report
                .failed
                .first()
                .map(|(_, e)| e.clone())
                .unwrap_or(SimError::NodeLost { node }));
            break;
        }

        // 3. GC attribution and deflation policy, in node order.
        for &n in &live {
            let records = cluster.sim(n).node_mut().drain_gc_records();
            let ni = n.as_usize();
            {
                let heap = &cluster.sim(n).node().heap;
                gc_stall += heap.pause_since(pause_marks[ni]);
                pause_marks[ni] = heap.pause_mark();
            }
            if cfg.mode == RuntimeMode::Regular {
                continue;
            }
            let ask = {
                let heap = &cluster.sim(n).node().heap;
                guards[ni].poll(&records, heap)
            };
            if let Some(ask) = ask {
                if ask >= cfg.deflate_chunk {
                    push_cmd(&inboxes[ni], Cmd::Deflate { target: ask });
                }
            }
            if cfg.mode == RuntimeMode::ItaskElect && n == leader {
                // Election awareness: never let the next full collection
                // outlast half the election timeout.
                let budget = cfg.election_timeout / 2;
                let node = cluster.sim(n).node();
                if predicted_full_pause(&node.heap, &node.cost) > budget {
                    let target = live_budget_for_pause(&node.heap, &node.cost, budget * 3 / 4);
                    let ask = node.heap.live().saturating_sub(target);
                    if !ask.is_zero() {
                        push_cmd(&inboxes[ni], Cmd::Deflate { target: ask });
                    }
                }
            }
        }

        // 4. Scheduled crashes fire on the nodes' own clocks. Crashed
        //    replicas stay down: SMR availability comes from the quorum,
        //    not from node recovery.
        for &n in &live {
            let _orphans = cluster.poll_crash(n);
        }

        // 5. Drain acks in node order, pricing the ack RPC to the leader.
        for &n in &live {
            if cluster.sim(n).is_crashed() {
                outboxes[n.as_usize()].lock().unwrap().clear();
                continue;
            }
            let drained: Vec<Ack> = outboxes[n.as_usize()].lock().unwrap().drain(..).collect();
            for ack in drained {
                let ni = n.as_usize();
                if ack.index as usize == node_digests[ni].len() + 1 {
                    node_digests[ni].push(ack.digest);
                }
                let Some(entry) = inflight.get_mut(&ack.index) else {
                    continue; // already committed (re-replication dupe)
                };
                if n == leader {
                    entry.leader_done.get_or_insert(ack.done_at);
                } else {
                    let wire =
                        match cluster
                            .fabric()
                            .transfer_at(n, leader, rpc::ack(), ack.done_at)
                        {
                            Ok(w) => w,
                            Err(e) => {
                                result = Err(e);
                                break 'main;
                            }
                        };
                    let cause = entry
                        .replicate_ev
                        .get(&n.0)
                        .copied()
                        .unwrap_or(EventId::NONE);
                    tracer::emit(
                        Some(n),
                        None,
                        ack.done_at,
                        wire,
                        TraceData::SmrAck {
                            index: ack.index,
                            cause,
                        },
                    );
                    entry.acks.entry(n.0).or_insert(ack.done_at + wire);
                }
            }
        }

        // 6. Commit in log order once the quorum is in.
        while committed < cfg.entries {
            let index = committed + 1;
            let Some(entry) = inflight.get(&index) else {
                break;
            };
            let Some(leader_done) = entry.leader_done else {
                break;
            };
            if entry.acks.len() + 1 < majority {
                break;
            }
            let mut arrivals: Vec<SimTime> = entry.acks.values().copied().collect();
            arrivals.sort_unstable();
            let quorum_at = arrivals[majority - 2];
            let commit_at = leader_done.max(quorum_at).max(last_commit_at);
            last_commit_at = commit_at;
            let lat = commit_at.since(entry.propose_at);
            latency.insert(lat.as_nanos());
            metrics::counter_add(Some(leader), metrics::Metric::SmrCommits, commit_at, 1);
            metrics::observe(
                Some(leader),
                metrics::Metric::SmrCommitLatencyNs,
                commit_at,
                lat.as_nanos(),
            );
            tracer::emit(
                Some(leader),
                None,
                commit_at,
                SimDuration::ZERO,
                TraceData::Commit {
                    index,
                    latency_ns: lat.as_nanos(),
                    cause: entry.propose_ev,
                },
            );
            committed_digests.push(
                node_digests[leader.as_usize()]
                    .get(index as usize - 1)
                    .copied()
                    .unwrap_or(0),
            );
            inflight.remove(&index);
            committed = index;
        }

        // 7. Advance every live clock to the common frontier (a paused
        //    node drags the frontier with it — stop-the-world shows up
        //    as group time).
        let frontier = global_now(&mut cluster, &live);
        cluster.advance_clocks_to(frontier);
        let now = frontier;

        // 8. Election check *before* this round's heartbeats: a
        //    follower times out when the gap since the last heartbeat
        //    arrival exceeds the election timeout — whether the leader
        //    crashed or just stalled through a long collection.
        let leader_crashed = cluster.sim(leader).is_crashed();
        let mut timed_out = false;
        let mut min_margin = i64::MAX;
        for &f in &live {
            if f == leader || cluster.sim(f).is_crashed() {
                continue;
            }
            let gap = now.since(last_hb[f.as_usize()]);
            min_margin =
                min_margin.min(cfg.election_timeout.as_nanos() as i64 - gap.as_nanos() as i64);
            if gap > cfg.election_timeout {
                timed_out = true;
            }
        }
        // Lease margin: how much election-timeout headroom the tightest
        // follower has left (negative = a timeout already due). Sampled
        // once per metrics cell so quiet stretches stay cheap.
        if metrics::is_enabled() && min_margin != i64::MAX {
            let cell = metrics::cell_of(now);
            if Some(cell) != lease_cell {
                lease_cell = Some(cell);
                metrics::gauge_set(
                    Some(leader),
                    metrics::Metric::SmrLeaseMarginNs,
                    now,
                    min_margin,
                );
            }
        }
        if timed_out {
            view_changes += 1;
            loop {
                view += 1;
                let cand = NodeId((view % cfg.nodes as u64) as u32);
                if !cluster.sim(cand).is_crashed() {
                    leader = cand;
                    break;
                }
            }
            metrics::counter_add(Some(leader), metrics::Metric::SmrViewChanges, now, 1);
            let uncommitted = inflight.len() as u64;
            let vc_ev = tracer::emit(
                Some(leader),
                None,
                now,
                cfg.election_overhead,
                TraceData::ViewChange {
                    view,
                    leader: leader.0,
                    cause: EventId::NONE,
                },
            );
            let mut done_at = now + cfg.election_overhead;
            for &f in &live {
                if f == leader || cluster.sim(f).is_crashed() {
                    continue;
                }
                match cluster
                    .fabric()
                    .transfer_at(leader, f, rpc::view_change(uncommitted), now)
                {
                    Ok(w) => done_at = done_at.max(now + w),
                    Err(e) => {
                        result = Err(e);
                        break 'main;
                    }
                }
            }
            // The new leader re-replicates every uncommitted entry;
            // replicas that already applied one re-ack without
            // re-executing. Original propose times are kept.
            for (&index, entry) in inflight.iter_mut() {
                entry.leader_done = None;
                entry.acks.clear();
                entry.replicate_ev.clear();
                push_cmd(
                    &inboxes[leader.as_usize()],
                    Cmd::Apply {
                        index,
                        ready_at: done_at,
                    },
                );
                for &f in &live {
                    if f == leader || cluster.sim(f).is_crashed() {
                        continue;
                    }
                    let wire = match cluster.fabric().transfer_at(
                        leader,
                        f,
                        rpc::append_entries(cfg.payload),
                        done_at,
                    ) {
                        Ok(w) => w,
                        Err(e) => {
                            result = Err(e);
                            break 'main;
                        }
                    };
                    let rev = tracer::emit(
                        Some(leader),
                        None,
                        done_at,
                        wire,
                        TraceData::Replicate {
                            index,
                            to: f.0,
                            cause: vc_ev,
                        },
                    );
                    entry.replicate_ev.insert(f.0, rev);
                    push_cmd(
                        &inboxes[f.as_usize()],
                        Cmd::Apply {
                            index,
                            ready_at: done_at + wire,
                        },
                    );
                }
            }
            cluster.advance_clocks_to(done_at);
            for &f in &live {
                last_hb[f.as_usize()] = done_at;
            }
            next_hb_due = done_at + cfg.heartbeat_every;
        } else if !leader_crashed && now >= next_hb_due {
            // 9. Heartbeats.
            for &f in &live {
                if f == leader || cluster.sim(f).is_crashed() {
                    continue;
                }
                match cluster
                    .fabric()
                    .transfer_at(leader, f, rpc::heartbeat(), now)
                {
                    Ok(w) => last_hb[f.as_usize()] = now + w,
                    Err(e) => {
                        result = Err(e);
                        break 'main;
                    }
                }
            }
            next_hb_due = now + cfg.heartbeat_every;
        }
    }

    // Wind down: replicas retire at their next step; late acks only
    // feed the per-node digest chains.
    stop.store(true, Ordering::Relaxed);
    for _ in 0..16 {
        let live = cluster.live_nodes();
        let busy = live.iter().any(|&n| cluster.sim(n).live_count() > 0);
        if !busy {
            break;
        }
        exec.run_round(&mut cluster, &live, false);
    }
    for (n, outbox) in outboxes.iter().enumerate() {
        let drained: Vec<Ack> = outbox.lock().unwrap().drain(..).collect();
        for ack in drained {
            if ack.index as usize == node_digests[n].len() + 1 {
                node_digests[n].push(ack.digest);
            }
        }
    }

    let mut full_gcs = 0u64;
    let mut minor_gcs = 0u64;
    let mut lugcs = 0u64;
    let mut peak_heap_pct = 0u64;
    for (n, &mark) in pause_marks.iter().enumerate() {
        let node = cluster.sim(NodeId(n as u32)).node();
        gc_stall += node.heap.pause_since(mark);
        let stats = node.heap.stats();
        full_gcs += stats.full_count;
        minor_gcs += stats.minor_count;
        lugcs += stats.useless_count;
        peak_heap_pct = peak_heap_pct
            .max(node.heap.peak_used().as_u64() * 100 / node.heap.capacity().as_u64().max(1));
    }
    let mut deflations = 0u64;
    let mut deflated = ByteSize::ZERO;
    for stats in &replica_stats {
        let s = *stats.lock().unwrap();
        deflations += s.deflations;
        deflated += s.deflated;
    }

    SmrOutcome {
        mode: cfg.mode,
        nodes: cfg.nodes,
        commits: committed,
        latency,
        view_changes,
        final_view: view,
        gc_stall,
        elapsed: cluster.elapsed(),
        full_gcs,
        minor_gcs,
        lugcs,
        deflations,
        deflated,
        peak_heap_pct,
        committed_digests,
        node_digests,
        result,
    }
}
