//! Quorum, workload and runtime-policy knobs for one SMR run.

use itask_core::MonitorConfig;
use simcore::{ByteSize, FaultPlan, SimDuration};

/// Which runtime drives the replicas' memory behaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RuntimeMode {
    /// No pressure mitigation: the applied state inflates until the
    /// collector hits the full-GC cliff at peak occupancy.
    Regular,
    /// IRS deflation: a per-node [`itask_core::StateGuard`] converts GC
    /// records and hover-target deficits into REDUCE-style deflation of
    /// the applied state, keeping the live set — and with it the worst
    /// full-collection pause — low on every replica.
    Itask,
    /// [`RuntimeMode::Itask`] plus election awareness: the driver prices
    /// the leader's *next* full collection every round and deflates
    /// pre-emptively whenever it could outlast half the election
    /// timeout, so a GC pause can never depose a healthy leader.
    ItaskElect,
}

impl RuntimeMode {
    /// Short table label.
    pub fn label(self) -> &'static str {
        match self {
            RuntimeMode::Regular => "regular",
            RuntimeMode::Itask => "itask",
            RuntimeMode::ItaskElect => "itask+elect",
        }
    }
}

/// Configuration of one SMR run.
#[derive(Clone, Debug)]
pub struct SmrConfig {
    /// Quorum size (odd; 3 or 5 in the benches).
    pub nodes: usize,
    /// Log entries to commit.
    pub entries: u64,
    /// Serialized (wire) bytes of one log entry.
    pub payload: ByteSize,
    /// In-heap expansion factor of an applied entry: each commit grows
    /// the aggregation state by `payload * expansion` live bytes (the
    /// paper's "memory-hungry aggregation" — pointer-rich deserialized
    /// form, §2).
    pub expansion: u64,
    /// Transient-garbage factor: applying an entry also allocates and
    /// immediately drops `payload * churn` young bytes (parse buffers,
    /// temporaries), which sets the minor-GC cadence.
    pub churn: u64,
    /// Managed-heap capacity per node.
    pub heap_per_node: ByteSize,
    /// Max proposals in flight (leader window).
    pub window: usize,
    /// Leader heartbeat period.
    pub heartbeat_every: SimDuration,
    /// Follower election timeout: a follower that has not seen a
    /// heartbeat for this long starts a view change.
    pub election_timeout: SimDuration,
    /// Fixed cost of a view change on top of the announcement RPCs.
    pub election_overhead: SimDuration,
    /// Runtime policy.
    pub mode: RuntimeMode,
    /// IRS thresholds for the deflation guard (ITask modes). The
    /// `serialize_free_pct` hover target doubles as the live-set
    /// ceiling: latency-SLO machines hover much higher than batch jobs
    /// (free ≥ 80% vs the paper's 40%) because commit tails scale with
    /// the live set, not with throughput.
    pub monitor: MonitorConfig,
    /// Minimum deflation request; smaller hover deficits are deferred so
    /// serialization happens in batched, accountable chunks.
    pub deflate_chunk: ByteSize,
    /// Scheduled faults (node crashes) to install, if any.
    pub faults: Option<FaultPlan>,
    /// Seed for the deterministic per-index payload digests.
    pub seed: u64,
    /// Shard count for the lockstep executor; `0` uses the global
    /// `--shards` setting (the benches), a positive value pins it
    /// (tests exercising byte-identity without touching global state).
    pub shards: usize,
}

impl SmrConfig {
    /// A quorum of `nodes` replicas under `mode`, with workload defaults
    /// sized so the full log inflates to ~12.5 MiB of live state.
    pub fn new(nodes: usize, mode: RuntimeMode) -> Self {
        SmrConfig {
            nodes,
            entries: 400,
            payload: ByteSize::kib(8),
            expansion: 4,
            churn: 24,
            heap_per_node: ByteSize::mib(32),
            window: 8,
            heartbeat_every: SimDuration::from_millis(1),
            election_timeout: SimDuration::from_millis(6),
            election_overhead: SimDuration::from_millis(1),
            mode,
            monitor: MonitorConfig {
                grow_free_pct: 20,
                reduce_target_pct: 10,
                serialize_free_pct: 80,
            },
            deflate_chunk: ByteSize::kib(256),
            faults: None,
            seed: 0x5acb_909d,
            shards: 0,
        }
    }

    /// Live bytes the aggregation state reaches once the whole log is
    /// applied: `entries * payload * expansion`.
    pub fn live_total(&self) -> ByteSize {
        self.payload * self.expansion * self.entries
    }

    /// Sizes the per-node heap so the fully-applied state occupies
    /// `pct`% of capacity — the bench's heap-pressure tiers.
    pub fn with_pressure(mut self, pct: u64) -> Self {
        self.heap_per_node = self.live_total().mul_ratio(100, pct.clamp(1, 100));
        self
    }

    /// Shrinks the log for smoke runs (`--quick`).
    pub fn quick(mut self) -> Self {
        self.entries = 160;
        self
    }

    /// Installs a fault plan (scheduled node crashes).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Majority size of the quorum.
    pub fn majority(&self) -> usize {
        self.nodes / 2 + 1
    }
}
