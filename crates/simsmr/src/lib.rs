#![warn(missing_docs)]

//! **simsmr**: a GC-sensitive replicated state machine on the cluster
//! simulator, with a latency-SLO lens.
//!
//! Every other scenario in this reproduction judges the runtime by
//! throughput or survival. This crate judges it by *tail latency*: a
//! deterministic leader/follower quorum (3 or 5 nodes) commits a
//! replicated log over the simnet fabric, and every node applies a
//! memory-hungry aggregation state to its managed heap — so the
//! stop-the-world pauses modelled by `simmem` land directly on the
//! append → replicate → quorum-ack → commit path. "The Cost of Garbage
//! Collection for State Machine Replication" (arXiv:2405.11182) shows
//! GC pause timelines dominating SMR tail latency; MURS
//! (arXiv:1703.08981) grounds pre-emptive pressure mitigation as the
//! fix. Here the fix is the paper's IRS: REDUCE-style deflation of the
//! applied state *before* the full-GC cliff.
//!
//! Three runtimes face off (see [`RuntimeMode`]):
//!
//! * **Regular** — the leader stalls through every full-GC cliff; at
//!   high heap pressure a pause outlasts the heartbeat timeout and
//!   triggers a view change on top of the pause.
//! * **ITask** — an IRS [`itask_core::StateGuard`] watches each node's
//!   GC records and deflates the applied state (serialize + free) to
//!   hover the live set low, so full collections stay cheap.
//! * **ITask + election-aware** — additionally prices the *next* full
//!   collection on the leader ([`itask_core::predicted_full_pause`])
//!   and deflates pre-emptively whenever that pause could outlast the
//!   election timeout, keeping the quorum stable by construction.
//!
//! Everything runs in virtual time on the lockstep
//! [`simcluster::ShardExecutor`], so stdout and trace output are
//! byte-identical at any `--shards` count; leader election and view
//! changes run off heartbeat timeouts in the same virtual time, so a
//! scheduled leader crash ([`simcore::FaultPlan`]) or a long leader GC
//! pause produces a *deterministic* view change. Per-commit causal
//! chains (propose → replicate → ack → commit) emit through the
//! `simcore` tracer, and commit latencies accumulate in the existing
//! [`simserve::QuantileSketch`] for p50/p99/p99.9 reporting.

pub mod config;
pub mod engine;
pub mod replica;

pub use config::{RuntimeMode, SmrConfig};
pub use engine::{run, SmrOutcome};
pub use replica::{payload_digest, Ack, Cmd, ReplicaWork};
