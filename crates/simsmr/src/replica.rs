//! The per-node replica: one long-lived [`Work`] per cluster node that
//! applies replicated log entries into a heap-backed aggregation state
//! and acknowledges them back to the driver.
//!
//! The replica is deliberately *dumb*: consensus bookkeeping (views,
//! quorums, commits) lives in the driver ([`crate::engine`]); the work
//! only models where the memory goes. Applying an entry charges
//! deserialize/apply CPU, allocates transient parse garbage (dropped
//! immediately — it dies young and sets the minor-GC cadence) and grows
//! the live aggregation state by the entry's in-heap expansion. GC
//! pauses triggered by those allocations advance the node clock
//! stop-the-world, which is exactly how a collection stalls the
//! append → ack → commit path.
//!
//! Under the ITask runtimes the driver also enqueues
//! [`Cmd::Deflate`] commands; the replica then serializes a slice of
//! its state ([`itask_core::Deflatable`]), writes it behind
//! (async disk, like the paper's background serialization threads) and
//! frees the heap bytes.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use itask_core::Deflatable;
use simcluster::{StepOutcome, Work, WorkCx};
use simcore::rng::stable_hash64;
use simcore::{metrics, ByteSize, NodeId, SimResult, SimTime, SpaceId};
use simmem::Heap;

use crate::config::SmrConfig;

/// Deterministic digest of the payload proposed at `index` (the log's
/// contents are synthetic; only identity matters for safety checks).
pub fn payload_digest(seed: u64, index: u64) -> u64 {
    stable_hash64(seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// A driver → replica command.
#[derive(Clone, Copy, Debug)]
pub enum Cmd {
    /// Apply the entry at `index` once the node clock reaches
    /// `ready_at` (the append-entries RPC's arrival time).
    Apply {
        /// 1-based log index.
        index: u64,
        /// Virtual arrival time of the RPC.
        ready_at: SimTime,
    },
    /// Deflate up to `target` live bytes of aggregation state.
    Deflate {
        /// Bytes the IRS asked to release.
        target: ByteSize,
    },
}

/// A replica → driver acknowledgement: entry `index` is applied.
#[derive(Clone, Copy, Debug)]
pub struct Ack {
    /// 1-based log index.
    pub index: u64,
    /// Node-clock time the apply finished (the ack's send time).
    pub done_at: SimTime,
    /// Running digest of the node's applied sequence through `index`.
    pub digest: u64,
}

/// Driver-side handle to a replica's command queue.
pub type Inbox = Arc<Mutex<VecDeque<Cmd>>>;
/// Driver-side handle to a replica's outgoing acks.
pub type Outbox = Arc<Mutex<Vec<Ack>>>;

/// Engine-readable replica counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplicaStats {
    /// Entries applied (first time).
    pub applied: u64,
    /// Re-replicated duplicates acknowledged without re-execution.
    pub dupes: u64,
    /// Deflation rounds performed.
    pub deflations: u64,
    /// Live bytes released by deflation.
    pub deflated: ByteSize,
}

/// The heap-backed aggregation state one replica accumulates.
struct AppliedState {
    space: SpaceId,
    live: ByteSize,
    last_applied: u64,
    /// `digests[i]` is the running digest through index `i + 1`.
    digests: Vec<u64>,
}

impl Deflatable for AppliedState {
    fn live_bytes(&self) -> ByteSize {
        self.live
    }

    fn deflate(&mut self, heap: &mut Heap, target: ByteSize) -> ByteSize {
        let freed = heap.free(self.space, target.min(self.live));
        self.live = self.live.saturating_sub(freed);
        freed
    }
}

/// One replica's simulated thread body.
pub struct ReplicaWork {
    node: NodeId,
    inbox: Inbox,
    outbox: Outbox,
    stop: Arc<AtomicBool>,
    stats: Arc<Mutex<ReplicaStats>>,
    state: AppliedState,
    payload: ByteSize,
    expansion: u64,
    churn: u64,
    seed: u64,
}

impl ReplicaWork {
    /// Builds a replica for `node` applying into `space`, returning the
    /// work plus the driver-side handles to its queues and counters.
    pub fn new(
        node: NodeId,
        space: SpaceId,
        cfg: &SmrConfig,
        stop: Arc<AtomicBool>,
    ) -> (Self, Inbox, Outbox, Arc<Mutex<ReplicaStats>>) {
        let inbox: Inbox = Arc::new(Mutex::new(VecDeque::new()));
        let outbox: Outbox = Arc::new(Mutex::new(Vec::new()));
        let stats = Arc::new(Mutex::new(ReplicaStats::default()));
        let work = ReplicaWork {
            node,
            inbox: inbox.clone(),
            outbox: outbox.clone(),
            stop,
            stats: stats.clone(),
            state: AppliedState {
                space,
                live: ByteSize::ZERO,
                last_applied: 0,
                digests: Vec::new(),
            },
            payload: cfg.payload,
            expansion: cfg.expansion,
            churn: cfg.churn,
            seed: cfg.seed,
        };
        (work, inbox, outbox, stats)
    }

    fn ack(&mut self, index: u64, done_at: SimTime) {
        let digest = self.state.digests[index as usize - 1];
        self.outbox.lock().unwrap().push(Ack {
            index,
            done_at,
            digest,
        });
    }

    fn apply(&mut self, cx: &mut WorkCx<'_>, index: u64) -> SimResult<()> {
        let cost = cx.cost();
        if index <= self.state.last_applied {
            // Re-replication after a view change: the entry is already
            // in the state; acknowledge without re-executing.
            cx.charge(cost.tuple_cost(ByteSize::ZERO));
            self.stats.lock().unwrap().dupes += 1;
            self.ack(index, cx.now());
            return Ok(());
        }
        debug_assert_eq!(
            index,
            self.state.last_applied + 1,
            "log entries arrive in order"
        );
        cx.charge(cost.tuple_cost(self.payload));
        let churn = self.payload * self.churn;
        if !churn.is_zero() {
            cx.alloc(self.state.space, churn)?;
            cx.free(self.state.space, churn);
        }
        let grow = self.payload * self.expansion;
        cx.alloc(self.state.space, grow)?;
        self.state.live += grow;
        self.state.last_applied = index;
        let prev = self.state.digests.last().copied().unwrap_or(self.seed);
        self.state
            .digests
            .push(stable_hash64(prev ^ payload_digest(self.seed, index)));
        self.stats.lock().unwrap().applied += 1;
        self.ack(index, cx.now());
        Ok(())
    }

    fn run_deflate(&mut self, cx: &mut WorkCx<'_>, target: ByteSize) {
        let freed = self.state.deflate(&mut cx.node().heap, target);
        if freed.is_zero() {
            return;
        }
        let cost = cx.cost();
        cx.charge(cost.serialize_cpu(freed));
        // The serialized form sheds the in-heap expansion; write it
        // behind like the paper's background serialization threads.
        let serialized = freed.mul_ratio(1, self.expansion.max(1));
        let label = format!("smr.deflate.n{}", self.node.as_usize());
        let _ = cx.node().disk_write_async(label, serialized);
        let mut stats = self.stats.lock().unwrap();
        stats.deflations += 1;
        stats.deflated += freed;
        drop(stats);
        if metrics::is_enabled() {
            let node = Some(self.node);
            metrics::counter_add(node, metrics::Metric::IrsDeflations, cx.now(), 1);
            metrics::counter_add(
                node,
                metrics::Metric::IrsDeflatedBytes,
                cx.now(),
                freed.as_u64(),
            );
        }
    }
}

impl Work for ReplicaWork {
    fn step(&mut self, cx: &mut WorkCx<'_>) -> StepOutcome {
        if self.stop.load(Ordering::Relaxed) {
            return StepOutcome::Finished;
        }
        let mut did = false;
        loop {
            if cx.out_of_quantum() {
                return StepOutcome::Ran;
            }
            let next = self.inbox.lock().unwrap().front().copied();
            let Some(cmd) = next else {
                return if did {
                    StepOutcome::Ran
                } else {
                    StepOutcome::Waiting
                };
            };
            match cmd {
                Cmd::Apply { index, ready_at } => {
                    if cx.now() < ready_at {
                        // The RPC is still on the wire.
                        return if did {
                            StepOutcome::Ran
                        } else {
                            StepOutcome::Waiting
                        };
                    }
                    self.inbox.lock().unwrap().pop_front();
                    if let Err(e) = self.apply(cx, index) {
                        return StepOutcome::Failed(e);
                    }
                }
                Cmd::Deflate { target } => {
                    self.inbox.lock().unwrap().pop_front();
                    self.run_deflate(cx, target);
                }
            }
            did = true;
        }
    }

    fn label(&self) -> String {
        format!("smr[n{}]", self.node.as_usize())
    }
}
