//! Determinism, view-change, and quorum-safety tests for the SMR
//! engine. Shard counts are pinned via `SmrConfig::shards` so the
//! tests never touch the global `--shards` state.

use proptest::prelude::*;
use simcore::{FaultPlan, NodeId, SimDuration, SimTime};
use simsmr::{run, RuntimeMode, SmrConfig, SmrOutcome};

fn crash_leader_plan() -> FaultPlan {
    FaultPlan::new(7).with_crash(NodeId(0), SimTime::ZERO + SimDuration::from_millis(2))
}

fn fingerprint(o: &SmrOutcome) -> (u64, u64, u64, u64, u64, u64, u64) {
    (
        o.commits,
        o.view_changes,
        o.final_view,
        o.committed_digest(),
        o.elapsed.as_nanos(),
        o.quantile_ns(0.99),
        o.quantile_ns(0.5),
    )
}

fn assert_clean(o: &SmrOutcome, cfg: &SmrConfig) {
    assert!(o.result.is_ok(), "run failed: {:?}", o.result);
    assert_eq!(o.commits, cfg.entries, "every entry commits");
    assert_eq!(o.committed_digests.len() as u64, cfg.entries);
    o.check_safety().expect("quorum safety");
}

#[test]
fn quick_run_commits_everything() {
    for mode in [
        RuntimeMode::Regular,
        RuntimeMode::Itask,
        RuntimeMode::ItaskElect,
    ] {
        let mut cfg = SmrConfig::new(3, mode).quick().with_pressure(75);
        cfg.shards = 1;
        let o = run(&cfg);
        assert_clean(&o, &cfg);
        assert!(o.latency.count() == cfg.entries, "one sample per commit");
        assert!(o.quantile_ns(0.5) > 0, "commits take virtual time");
    }
}

#[test]
fn same_config_is_bit_identical() {
    let mut cfg = SmrConfig::new(3, RuntimeMode::Itask)
        .quick()
        .with_pressure(75);
    cfg.shards = 1;
    let a = run(&cfg);
    let b = run(&cfg);
    assert_clean(&a, &cfg);
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_eq!(a.committed_digests, b.committed_digests);
    assert_eq!(a.node_digests, b.node_digests);
}

#[test]
fn leader_crash_forces_deterministic_view_change() {
    let mut cfg = SmrConfig::new(3, RuntimeMode::Itask)
        .quick()
        .with_pressure(45)
        .with_faults(crash_leader_plan());
    cfg.shards = 1;
    let a = run(&cfg);
    assert_clean(&a, &cfg);
    assert!(
        a.view_changes >= 1,
        "crashing the leader must depose it (saw {} view changes)",
        a.view_changes
    );
    assert_ne!(a.final_view, 0, "leadership rotated off node 0");
    // Deterministic: the same crash schedule replays bit-identically.
    let b = run(&cfg);
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_eq!(a.node_digests, b.node_digests);
}

#[test]
fn regular_mode_high_pressure_gc_deposes_leader() {
    let mut cfg = SmrConfig::new(3, RuntimeMode::Regular).with_pressure(92);
    cfg.shards = 1;
    let o = run(&cfg);
    assert_clean(&o, &cfg);
    assert!(
        o.view_changes >= 1,
        "a full-GC pause above the election timeout must look like a dead leader"
    );
}

#[test]
fn election_aware_mode_keeps_leader_seated() {
    let mut cfg = SmrConfig::new(3, RuntimeMode::ItaskElect).with_pressure(92);
    cfg.shards = 1;
    let o = run(&cfg);
    assert_clean(&o, &cfg);
    assert_eq!(
        o.view_changes, 0,
        "pre-emptive deflation must keep GC pauses under the election timeout"
    );
    assert!(
        o.deflations > 0,
        "the win must come from deflation, not luck"
    );
}

#[test]
fn shard_count_does_not_change_the_run() {
    let mut cfg = SmrConfig::new(5, RuntimeMode::Itask)
        .quick()
        .with_pressure(75);
    cfg.shards = 1;
    let a = run(&cfg);
    assert_clean(&a, &cfg);
    cfg.shards = 2;
    let b = run(&cfg);
    cfg.shards = 4;
    let c = run(&cfg);
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_eq!(fingerprint(&a), fingerprint(&c));
    assert_eq!(a.node_digests, b.node_digests);
    assert_eq!(a.node_digests, c.node_digests);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Quorum safety: across quorum sizes, pressure tiers, runtime
    /// modes, crash schedules and shard counts, no two nodes' applied
    /// sequences may diverge from the committed log on a common prefix.
    #[test]
    fn committed_logs_never_diverge(
        five in any::<bool>(),
        mode_ix in 0usize..3,
        pressure in prop_oneof![Just(45u64), Just(75u64), Just(92u64)],
        crash_leader in any::<bool>(),
        shards in 1usize..=2,
    ) {
        let nodes = if five { 5 } else { 3 };
        let mode = [RuntimeMode::Regular, RuntimeMode::Itask, RuntimeMode::ItaskElect][mode_ix];
        let mut cfg = SmrConfig::new(nodes, mode).quick().with_pressure(pressure);
        cfg.entries = 64;
        cfg.shards = shards;
        if crash_leader {
            cfg = cfg.with_faults(crash_leader_plan());
        }
        let o = run(&cfg);
        prop_assert!(o.result.is_ok(), "run failed: {:?}", o.result);
        prop_assert_eq!(o.commits, cfg.entries);
        prop_assert!(o.check_safety().is_ok(), "{:?}", o.check_safety());
    }
}
