//! Deterministic fault injection: a seeded schedule of substrate
//! failures (disk, network, whole nodes) for chaos-testing the runtime.
//!
//! The paper treats memory pressure as the interrupt source; a
//! production runtime must also degrade gracefully when the *substrate*
//! misbehaves. A [`FaultPlan`] describes what goes wrong and when — all
//! in virtual time, all derived from an explicit seed — and a
//! [`FaultInjector`] turns the plan into per-operation decisions that
//! the storage ([`crate::error::SimError::IoTransient`],
//! [`crate::error::SimError::CorruptPartition`]), network
//! ([`crate::error::SimError::NetPartition`]) and cluster
//! ([`crate::error::SimError::NodeLost`]) layers consult.
//!
//! Decisions are *counter-hashed*, not drawn from a shared stream: the
//! verdict for the `k`-th disk operation on node `n` is a pure function
//! of `(seed, n, op-kind, k)`. Runs are therefore bit-identical even if
//! unrelated code is later reordered, which keeps the determinism test
//! (`same seed + same plan → same report`) robust across refactors.

use std::collections::BTreeMap;

use crate::ids::NodeId;
use crate::rng::stable_hash64;
use crate::time::SimTime;

/// What goes wrong on a network link, and when.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NetFaultKind {
    /// Transfers take `factor`× their healthy time (e.g. `4.0`).
    Slowdown(f64),
    /// No traffic passes during the window; senders stall until it
    /// closes (or fail with `NetPartition` if it never does).
    Partition,
}

/// One scheduled network disturbance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetFault {
    /// Window start (inclusive, virtual time).
    pub from: SimTime,
    /// Window end (exclusive). `SimTime::MAX` means "never heals".
    pub until: SimTime,
    /// Affected link (order-insensitive), or `None` for every link.
    pub link: Option<(NodeId, NodeId)>,
    /// The disturbance.
    pub kind: NetFaultKind,
}

impl NetFault {
    fn covers(&self, src: NodeId, dst: NodeId, now: SimTime) -> bool {
        let window = self.from <= now && now < self.until;
        let on_link = match self.link {
            None => true,
            Some((a, b)) => (a, b) == (src, dst) || (b, a) == (src, dst),
        };
        window && on_link
    }
}

/// A whole-node failure at a given virtual time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeCrash {
    /// The node that dies.
    pub node: NodeId,
    /// When its clock reaches this instant, it is gone: threads killed,
    /// heap and disk contents lost.
    pub at: SimTime,
}

/// A complete, seeded description of everything that will go wrong.
///
/// The default plan is fault-free; builder methods opt into each fault
/// class. Rates are per-mille per operation so integer plans hash
/// deterministically (no floats in the schedule itself).
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for every injection decision.
    pub seed: u64,
    /// Per-mille chance a disk read fails transiently.
    pub read_transient_permille: u16,
    /// Per-mille chance a disk write fails transiently.
    pub write_transient_permille: u16,
    /// Per-mille chance a disk write silently corrupts the file.
    pub corrupt_permille: u16,
    /// Upper bound on *consecutive* transient failures of one kind on
    /// one node. Retry loops with a budget above this bound always
    /// converge, so bounded-retry recovery is guaranteed to terminate.
    pub max_transient_burst: u16,
    /// Scheduled network disturbances.
    pub net: Vec<NetFault>,
    /// Scheduled node crashes.
    pub crashes: Vec<NodeCrash>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            read_transient_permille: 0,
            write_transient_permille: 0,
            corrupt_permille: 0,
            max_transient_burst: 3,
            net: Vec::new(),
            crashes: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// A fault-free plan with the given decision seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Sets both disk transient rates (per-mille).
    pub fn with_disk_transients(mut self, permille: u16) -> Self {
        self.read_transient_permille = permille;
        self.write_transient_permille = permille;
        self
    }

    /// Sets the silent-corruption rate for disk writes (per-mille).
    pub fn with_corruption(mut self, permille: u16) -> Self {
        self.corrupt_permille = permille;
        self
    }

    /// Caps consecutive transient failures (see
    /// [`FaultPlan::max_transient_burst`]).
    pub fn with_max_burst(mut self, burst: u16) -> Self {
        self.max_transient_burst = burst;
        self
    }

    /// Schedules a node crash.
    pub fn with_crash(mut self, node: NodeId, at: SimTime) -> Self {
        self.crashes.push(NodeCrash { node, at });
        self
    }

    /// Schedules a network disturbance.
    pub fn with_net_fault(mut self, fault: NetFault) -> Self {
        self.net.push(fault);
        self
    }

    /// Slows every link by `factor` during `[from, until)`.
    pub fn with_slowdown(self, from: SimTime, until: SimTime, factor: f64) -> Self {
        self.with_net_fault(NetFault {
            from,
            until,
            link: None,
            kind: NetFaultKind::Slowdown(factor),
        })
    }

    /// Partitions one link during `[from, until)`.
    pub fn with_link_partition(self, a: NodeId, b: NodeId, from: SimTime, until: SimTime) -> Self {
        self.with_net_fault(NetFault {
            from,
            until,
            link: Some((a, b)),
            kind: NetFaultKind::Partition,
        })
    }

    /// Whether this plan injects nothing at all.
    pub fn is_fault_free(&self) -> bool {
        self.read_transient_permille == 0
            && self.write_transient_permille == 0
            && self.corrupt_permille == 0
            && self.net.is_empty()
            && self.crashes.is_empty()
    }
}

/// The verdict for one disk write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteFault {
    /// The write succeeds and the data is intact.
    Ok,
    /// The write fails transiently; retrying may succeed.
    Transient,
    /// The write "succeeds" but the stored bytes are corrupt — only a
    /// later checksum verification will notice.
    SilentCorruption,
}

/// The verdict for one disk read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadFault {
    /// The read succeeds.
    Ok,
    /// The read fails transiently; retrying may succeed.
    Transient,
}

/// The state of a link at some instant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LinkState {
    /// Traffic flows, dilated by `factor` (1.0 = healthy).
    Up {
        /// Transfer-time multiplier (≥ 1.0).
        factor: f64,
    },
    /// Partitioned until the given instant; senders wait it out.
    BlockedUntil(SimTime),
    /// Partitioned forever; transfers fail with `NetPartition`.
    Severed,
}

/// Counts of injected faults, for reports and the survival table.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transient disk-read failures injected.
    pub transient_reads: u64,
    /// Transient disk-write failures injected.
    pub transient_writes: u64,
    /// Silently corrupted disk writes injected.
    pub corrupted_writes: u64,
    /// Transfers delayed by a partition window.
    pub delayed_transfers: u64,
    /// Transfers refused by a permanent partition.
    pub severed_transfers: u64,
    /// Node crashes fired.
    pub crashes: u64,
}

impl FaultStats {
    /// Total injected disk faults.
    pub fn disk_faults(&self) -> u64 {
        self.transient_reads + self.transient_writes + self.corrupted_writes
    }
}

const OP_READ: u64 = 1;
const OP_WRITE: u64 = 2;
const OP_CORRUPT: u64 = 3;

/// Turns a [`FaultPlan`] into per-operation verdicts.
///
/// Verdicts are a pure function of `(seed, node, op-kind, per-node op
/// count)` — the injector keeps *no* cross-node state on the I/O paths.
/// That means separate instances built from the same plan and consulted
/// only for their own node draw exactly the verdicts one globally
/// shared instance would, regardless of how node operations interleave.
/// The cluster exploits this to give every disk its own injector (so
/// node simulators are `Send` and can execute on shard threads) while
/// keeping the failure schedule identical to the old shared-`Rc` wiring.
/// Crash scheduling (`crash_due`/`is_down`) *is* cross-node state and
/// stays on a single driver-side instance.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Per-(node, op-kind) operation counters.
    ops: BTreeMap<(u32, u64), u64>,
    /// Per-(node, op-kind) consecutive-failure runs (burst cap).
    bursts: BTreeMap<(u32, u64), u16>,
    /// Crash schedule entries already fired.
    fired: Vec<bool>,
    /// Nodes currently down.
    down: Vec<NodeId>,
    stats: FaultStats,
}

impl FaultInjector {
    /// Builds the injector for a plan.
    pub fn new(plan: FaultPlan) -> Self {
        let fired = vec![false; plan.crashes.len()];
        FaultInjector {
            plan,
            ops: BTreeMap::new(),
            bursts: BTreeMap::new(),
            fired,
            down: Vec::new(),
            stats: FaultStats::default(),
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Injection counts so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Pure per-operation verdict: true = the fault fires.
    fn decide(&mut self, node: NodeId, op: u64, permille: u16) -> bool {
        if permille == 0 {
            return false;
        }
        let key = (node.as_u32(), op);
        let k = self.ops.entry(key).or_insert(0);
        let count = *k;
        *k += 1;
        let h = stable_hash64(
            self.plan
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(stable_hash64((node.as_u32() as u64) << 8 | op))
                .wrapping_add(count.wrapping_mul(0x6C62_272E_07BB_0142)),
        );
        let fires = (h % 1000) < permille as u64;
        // Burst cap: force success once `max_transient_burst` faults of
        // this kind have fired back-to-back on this node, so bounded
        // retry loops always converge.
        let run = self.bursts.entry(key).or_insert(0);
        if fires && *run < self.plan.max_transient_burst {
            *run += 1;
            true
        } else {
            *run = 0;
            false
        }
    }

    /// Verdict for the next disk read on `node`.
    pub fn on_disk_read(&mut self, node: NodeId) -> ReadFault {
        if self.decide(node, OP_READ, self.plan.read_transient_permille) {
            self.stats.transient_reads += 1;
            ReadFault::Transient
        } else {
            ReadFault::Ok
        }
    }

    /// Verdict for the next disk write on `node`.
    pub fn on_disk_write(&mut self, node: NodeId) -> WriteFault {
        if self.decide(node, OP_WRITE, self.plan.write_transient_permille) {
            self.stats.transient_writes += 1;
            return WriteFault::Transient;
        }
        if self.decide(node, OP_CORRUPT, self.plan.corrupt_permille) {
            self.stats.corrupted_writes += 1;
            return WriteFault::SilentCorruption;
        }
        WriteFault::Ok
    }

    /// The state of the `src → dst` link at `now`. Fault windows
    /// compose: slowdown factors multiply, and any partition window
    /// dominates slowdowns.
    pub fn link_state(&self, src: NodeId, dst: NodeId, now: SimTime) -> LinkState {
        let mut factor = 1.0f64;
        let mut blocked: Option<SimTime> = None;
        for f in &self.plan.net {
            if !f.covers(src, dst, now) {
                continue;
            }
            match f.kind {
                NetFaultKind::Slowdown(x) => factor *= x.max(1.0),
                NetFaultKind::Partition => {
                    if f.until == SimTime::MAX {
                        return LinkState::Severed;
                    }
                    blocked = Some(blocked.map_or(f.until, |b| b.max(f.until)));
                }
            }
        }
        match blocked {
            Some(until) => LinkState::BlockedUntil(until),
            None => LinkState::Up { factor },
        }
    }

    /// Records the outcome of a degraded transfer (for [`FaultStats`]).
    pub fn note_transfer(&mut self, delayed: bool, severed: bool) {
        if delayed {
            self.stats.delayed_transfers += 1;
        }
        if severed {
            self.stats.severed_transfers += 1;
        }
    }

    /// If `node`'s clock has reached a scheduled crash that has not
    /// fired yet, fires it: marks the node down and returns `true`.
    pub fn crash_due(&mut self, node: NodeId, now: SimTime) -> bool {
        let mut fire = false;
        for (i, c) in self.plan.crashes.iter().enumerate() {
            if !self.fired[i] && c.node == node && c.at <= now {
                self.fired[i] = true;
                fire = true;
            }
        }
        if fire {
            self.stats.crashes += 1;
            if !self.down.contains(&node) {
                self.down.push(node);
            }
        }
        fire
    }

    /// Whether `node` still has a scheduled crash that has not fired.
    ///
    /// Engines use this to classify crash-free *windows*: only a node
    /// with a pending crash needs the serial round-then-poll
    /// interleaving; every other node (and this node again, once its
    /// crashes have all fired) can run on the lockstep shard executor.
    pub fn crash_pending(&self, node: NodeId) -> bool {
        self.plan
            .crashes
            .iter()
            .enumerate()
            .any(|(i, c)| !self.fired[i] && c.node == node)
    }

    /// Whether `node` has crashed.
    pub fn is_down(&self, node: NodeId) -> bool {
        self.down.contains(&node)
    }

    /// Nodes currently down.
    pub fn down_nodes(&self) -> &[NodeId] {
        &self.down
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_fault_free() {
        let mut inj = FaultInjector::new(FaultPlan::default());
        assert!(inj.plan().is_fault_free());
        for _ in 0..1000 {
            assert_eq!(inj.on_disk_read(NodeId(0)), ReadFault::Ok);
            assert_eq!(inj.on_disk_write(NodeId(1)), WriteFault::Ok);
        }
        assert_eq!(inj.stats(), FaultStats::default());
    }

    #[test]
    fn decisions_replay_bit_identically() {
        let plan = FaultPlan::new(7)
            .with_disk_transients(200)
            .with_corruption(100);
        let mut a = FaultInjector::new(plan.clone());
        let mut b = FaultInjector::new(plan);
        let va: Vec<_> = (0..500)
            .map(|i| {
                (
                    a.on_disk_read(NodeId(i % 3)),
                    a.on_disk_write(NodeId(i % 3)),
                )
            })
            .collect();
        let vb: Vec<_> = (0..500)
            .map(|i| {
                (
                    b.on_disk_read(NodeId(i % 3)),
                    b.on_disk_write(NodeId(i % 3)),
                )
            })
            .collect();
        assert_eq!(va, vb);
        assert_eq!(a.stats(), b.stats());
        assert!(
            a.stats().disk_faults() > 0,
            "a 20% rate must fire in 500 ops"
        );
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = FaultInjector::new(FaultPlan::new(1).with_disk_transients(300));
        let mut b = FaultInjector::new(FaultPlan::new(2).with_disk_transients(300));
        let va: Vec<_> = (0..200).map(|_| a.on_disk_read(NodeId(0))).collect();
        let vb: Vec<_> = (0..200).map(|_| b.on_disk_read(NodeId(0))).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn burst_cap_bounds_consecutive_failures() {
        let plan = FaultPlan::new(3)
            .with_disk_transients(1000)
            .with_max_burst(3);
        let mut inj = FaultInjector::new(plan);
        let mut run = 0u16;
        for _ in 0..200 {
            match inj.on_disk_read(NodeId(0)) {
                ReadFault::Transient => {
                    run += 1;
                    assert!(run <= 3, "burst cap violated");
                }
                ReadFault::Ok => run = 0,
            }
        }
    }

    #[test]
    fn link_states_follow_windows() {
        let plan = FaultPlan::new(0)
            .with_slowdown(SimTime::from_nanos(100), SimTime::from_nanos(200), 4.0)
            .with_link_partition(
                NodeId(1),
                NodeId(2),
                SimTime::from_nanos(150),
                SimTime::from_nanos(300),
            );
        let inj = FaultInjector::new(plan);
        assert_eq!(
            inj.link_state(NodeId(0), NodeId(1), SimTime::from_nanos(50)),
            LinkState::Up { factor: 1.0 }
        );
        assert_eq!(
            inj.link_state(NodeId(0), NodeId(1), SimTime::from_nanos(150)),
            LinkState::Up { factor: 4.0 }
        );
        // Partition dominates the slowdown on the affected link (both
        // directions), and ends when the window closes.
        assert_eq!(
            inj.link_state(NodeId(2), NodeId(1), SimTime::from_nanos(160)),
            LinkState::BlockedUntil(SimTime::from_nanos(300))
        );
        assert_eq!(
            inj.link_state(NodeId(1), NodeId(2), SimTime::from_nanos(350)),
            LinkState::Up { factor: 1.0 }
        );
    }

    #[test]
    fn permanent_partition_severs() {
        let plan = FaultPlan::new(0).with_link_partition(
            NodeId(0),
            NodeId(1),
            SimTime::ZERO,
            SimTime::MAX,
        );
        let inj = FaultInjector::new(plan);
        assert_eq!(
            inj.link_state(NodeId(0), NodeId(1), SimTime::from_nanos(5)),
            LinkState::Severed
        );
        assert_eq!(
            inj.link_state(NodeId(0), NodeId(2), SimTime::from_nanos(5)),
            LinkState::Up { factor: 1.0 }
        );
    }

    #[test]
    fn crashes_fire_once_at_their_instant() {
        let plan = FaultPlan::new(0).with_crash(NodeId(2), SimTime::from_nanos(100));
        let mut inj = FaultInjector::new(plan);
        assert!(!inj.crash_due(NodeId(2), SimTime::from_nanos(99)));
        assert!(!inj.is_down(NodeId(2)));
        assert!(inj.crash_due(NodeId(2), SimTime::from_nanos(100)));
        assert!(inj.is_down(NodeId(2)));
        // Fires exactly once.
        assert!(!inj.crash_due(NodeId(2), SimTime::from_nanos(200)));
        assert_eq!(inj.stats().crashes, 1);
        assert!(!inj.crash_due(NodeId(1), SimTime::from_nanos(200)));
    }

    /// The contract the sharded executor rests on: per-node injector
    /// instances of one plan draw exactly the verdict schedule a single
    /// cluster-shared instance draws, no matter how node operations
    /// interleave, and their stats sum to the shared instance's.
    #[test]
    fn per_node_split_replays_the_shared_schedule() {
        let plan = FaultPlan::new(42)
            .with_disk_transients(250)
            .with_corruption(125)
            .with_max_burst(3);
        const NODES: u32 = 4;
        const OPS: usize = 200;

        // Shared instance, driven with nodes interleaved (the old
        // Rc<RefCell> wiring: every disk consults the same injector).
        let mut shared = FaultInjector::new(plan.clone());
        let mut shared_verdicts = vec![Vec::new(); NODES as usize];
        for i in 0..OPS {
            for n in 0..NODES {
                let v = if i % 3 == 0 {
                    (shared.on_disk_read(NodeId(n)), WriteFault::Ok)
                } else {
                    (ReadFault::Ok, shared.on_disk_write(NodeId(n)))
                };
                shared_verdicts[n as usize].push(v);
            }
        }

        // Split instances, each driven only with its own node's ops —
        // in a *different* global order (node-major, and node ids
        // reversed) to prove interleaving is irrelevant.
        let mut split_stats = FaultStats::default();
        for n in (0..NODES).rev() {
            let mut own = FaultInjector::new(plan.clone());
            let mut verdicts = Vec::new();
            for i in 0..OPS {
                let v = if i % 3 == 0 {
                    (own.on_disk_read(NodeId(n)), WriteFault::Ok)
                } else {
                    (ReadFault::Ok, own.on_disk_write(NodeId(n)))
                };
                verdicts.push(v);
            }
            assert_eq!(
                verdicts, shared_verdicts[n as usize],
                "node {n}: split schedule diverged from shared"
            );
            let s = own.stats();
            split_stats.transient_reads += s.transient_reads;
            split_stats.transient_writes += s.transient_writes;
            split_stats.corrupted_writes += s.corrupted_writes;
        }
        assert_eq!(split_stats, shared.stats());
        // The plan actually fired faults (the test is not vacuous).
        assert!(split_stats.disk_faults() > 0);
    }
}
