//! A lightweight in-simulator profiler: cheap named counters keyed by
//! pipeline stage, aggregated per run.
//!
//! The deterministic part of every counter — event counts, work units
//! (tuples or bytes) and *virtual-time* nanoseconds — is a commutative
//! sum over relaxed atomics, so totals are byte-identical no matter how
//! a sweep's simulations are spread across worker threads (`--jobs 1`
//! and `--jobs 8` produce the same snapshot). Host wall-clock is
//! inherently nondeterministic, so it lives in an *opt-in sidecar*:
//! [`wall_timer`] guards measure nothing unless [`enable`] was called
//! with `wall = true`, and wall columns are rendered only by
//! [`render_sidecar`], never by the deterministic [`render`].
//!
//! The profiler is process-global and disabled by default; every
//! recording entry point is a single relaxed load when disabled, cheap
//! enough to leave in simulator hot paths unconditionally.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use crate::time::SimDuration;

/// The instrumented pipeline stages, in breakdown-table order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Stage {
    /// Workload generation (webmap/tpch/words block synthesis).
    Generate = 0,
    /// Operator/task tuple processing (map + reduce inner loops).
    Map = 1,
    /// Handing emitted tuples to the connector, grouped by bucket.
    EmitFlush = 2,
    /// Splitting record batches into granularity-bounded frames.
    FrameChunk = 3,
    /// Routing bucketed outputs across the fabric.
    Shuffle = 4,
    /// Draining aggregation state in key order.
    AggDrain = 5,
    /// Stop-the-world collections on the simulated heaps.
    Gc = 6,
}

/// Every stage, in rendering order.
pub const STAGES: [Stage; 7] = [
    Stage::Generate,
    Stage::Map,
    Stage::EmitFlush,
    Stage::FrameChunk,
    Stage::Shuffle,
    Stage::AggDrain,
    Stage::Gc,
];

impl Stage {
    /// Stable lower-case name used in breakdowns and JSON sidecars.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Generate => "generate",
            Stage::Map => "map",
            Stage::EmitFlush => "emit-flush",
            Stage::FrameChunk => "frame-chunk",
            Stage::Shuffle => "shuffle",
            Stage::AggDrain => "agg-drain",
            Stage::Gc => "gc",
        }
    }

    /// What one "unit" means for this stage (breakdown header).
    pub fn unit(self) -> &'static str {
        match self {
            Stage::Generate => "tuples",
            Stage::Map => "tuples",
            Stage::EmitFlush => "tuples",
            Stage::FrameChunk => "tuples",
            Stage::Shuffle => "bytes",
            Stage::AggDrain => "tuples",
            Stage::Gc => "bytes-reclaimed",
        }
    }
}

const N: usize = STAGES.len();

#[derive(Default)]
struct Cell {
    events: AtomicU64,
    units: AtomicU64,
    vtime_ns: AtomicU64,
    wall_ns: AtomicU64,
}

struct Registry {
    enabled: AtomicBool,
    wall: AtomicBool,
    cells: [Cell; N],
}

static REGISTRY: Registry = Registry {
    enabled: AtomicBool::new(false),
    wall: AtomicBool::new(false),
    cells: [
        Cell::new(),
        Cell::new(),
        Cell::new(),
        Cell::new(),
        Cell::new(),
        Cell::new(),
        Cell::new(),
    ],
};

impl Cell {
    const fn new() -> Self {
        Cell {
            events: AtomicU64::new(0),
            units: AtomicU64::new(0),
            vtime_ns: AtomicU64::new(0),
            wall_ns: AtomicU64::new(0),
        }
    }
}

/// Turns recording on. With `wall = true` the wall-clock sidecar is
/// armed too; without it, [`wall_timer`] guards are inert.
pub fn enable(wall: bool) {
    REGISTRY.wall.store(wall, Ordering::Relaxed);
    REGISTRY.enabled.store(true, Ordering::Relaxed);
}

/// Turns recording off (counters keep their values until [`reset`]).
pub fn disable() {
    REGISTRY.enabled.store(false, Ordering::Relaxed);
    REGISTRY.wall.store(false, Ordering::Relaxed);
}

/// Whether recording is on.
#[inline]
pub fn is_enabled() -> bool {
    REGISTRY.enabled.load(Ordering::Relaxed)
}

/// Zeroes every counter.
pub fn reset() {
    for c in &REGISTRY.cells {
        c.events.store(0, Ordering::Relaxed);
        c.units.store(0, Ordering::Relaxed);
        c.vtime_ns.store(0, Ordering::Relaxed);
        c.wall_ns.store(0, Ordering::Relaxed);
    }
}

thread_local! {
    /// When set, deterministic counts on this thread accumulate into a
    /// detachable segment instead of the global atomics. The shard
    /// executor wraps speculative node rounds in a segment so an
    /// overshot round (a round serial execution would not have run) can
    /// be discarded instead of polluting the run's totals.
    static SEGMENT: RefCell<Option<ProfSegment>> = const { RefCell::new(None) };
}

/// A detachable bundle of deterministic counter deltas, indexed like
/// [`STAGES`]: `(events, units, vtime_ns)` per stage.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProfSegment {
    deltas: [(u64, u64, u64); N],
}

impl ProfSegment {
    /// Whether the segment recorded nothing.
    pub fn is_empty(&self) -> bool {
        self.deltas
            .iter()
            .all(|&(e, u, v)| e == 0 && u == 0 && v == 0)
    }
}

/// Starts capturing this thread's deterministic counts into a segment
/// (no-op while disabled). Wall-clock sidecar guards keep writing to
/// the globals — the sidecar is nondeterministic anyway.
pub fn segment_begin() {
    if is_enabled() {
        SEGMENT.with(|s| *s.borrow_mut() = Some(ProfSegment::default()));
    }
}

/// Stops capturing and returns the segment (empty when none was
/// active). The caller decides whether to [`segment_apply`] it into the
/// global totals or discard it.
pub fn segment_take() -> ProfSegment {
    SEGMENT.with(|s| s.borrow_mut().take()).unwrap_or_default()
}

/// Folds a harvested segment into the global totals. Sums are
/// commutative, so apply order never affects the snapshot.
pub fn segment_apply(seg: &ProfSegment) {
    for (i, &(events, units, vtime_ns)) in seg.deltas.iter().enumerate() {
        let c = &REGISTRY.cells[i];
        if events > 0 {
            c.events.fetch_add(events, Ordering::Relaxed);
        }
        if units > 0 {
            c.units.fetch_add(units, Ordering::Relaxed);
        }
        if vtime_ns > 0 {
            c.vtime_ns.fetch_add(vtime_ns, Ordering::Relaxed);
        }
    }
}

/// Records `events` occurrences covering `units` work units.
#[inline]
pub fn count(stage: Stage, events: u64, units: u64) {
    if !is_enabled() {
        return;
    }
    let segmented = SEGMENT.with(|s| {
        let mut s = s.borrow_mut();
        match s.as_mut() {
            Some(seg) => {
                let d = &mut seg.deltas[stage as usize];
                d.0 += events;
                d.1 += units;
                true
            }
            None => false,
        }
    });
    if segmented {
        return;
    }
    let c = &REGISTRY.cells[stage as usize];
    c.events.fetch_add(events, Ordering::Relaxed);
    c.units.fetch_add(units, Ordering::Relaxed);
}

/// Attributes virtual time to a stage (deterministic: simulated cost,
/// not host time).
#[inline]
pub fn vtime(stage: Stage, d: SimDuration) {
    if !is_enabled() {
        return;
    }
    let segmented = SEGMENT.with(|s| {
        let mut s = s.borrow_mut();
        match s.as_mut() {
            Some(seg) => {
                seg.deltas[stage as usize].2 += d.as_nanos();
                true
            }
            None => false,
        }
    });
    if segmented {
        return;
    }
    REGISTRY.cells[stage as usize]
        .vtime_ns
        .fetch_add(d.as_nanos(), Ordering::Relaxed);
}

/// A drop guard adding host wall-clock to a stage's sidecar column.
/// Inert (no clock read at all) unless `enable(true)` armed the sidecar.
pub struct WallTimer {
    stage: Stage,
    start: Option<Instant>,
}

/// Starts a wall-clock guard for `stage`.
#[inline]
pub fn wall_timer(stage: Stage) -> WallTimer {
    let armed = is_enabled() && REGISTRY.wall.load(Ordering::Relaxed);
    WallTimer {
        stage,
        start: if armed { Some(Instant::now()) } else { None },
    }
}

impl Drop for WallTimer {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            REGISTRY.cells[self.stage as usize]
                .wall_ns
                .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }
}

/// One stage's aggregated counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageSnapshot {
    /// The stage.
    pub stage: Stage,
    /// Occurrences recorded.
    pub events: u64,
    /// Work units recorded (see [`Stage::unit`]).
    pub units: u64,
    /// Virtual-time nanoseconds attributed (deterministic).
    pub vtime_ns: u64,
    /// Host wall-clock nanoseconds (sidecar; zero unless opted in).
    pub wall_ns: u64,
}

/// Snapshots every stage, in [`STAGES`] order.
pub fn snapshot() -> Vec<StageSnapshot> {
    STAGES
        .iter()
        .map(|&stage| {
            let c = &REGISTRY.cells[stage as usize];
            StageSnapshot {
                stage,
                events: c.events.load(Ordering::Relaxed),
                units: c.units.load(Ordering::Relaxed),
                vtime_ns: c.vtime_ns.load(Ordering::Relaxed),
                wall_ns: c.wall_ns.load(Ordering::Relaxed),
            }
        })
        .collect()
}

/// Renders the deterministic columns only (events, units, virtual ms) —
/// byte-identical across reruns and worker counts.
pub fn render(snap: &[StageSnapshot]) -> String {
    let mut out = String::new();
    out.push_str("stage        events       units            vtime_ms\n");
    for s in snap {
        out.push_str(&format!(
            "{:<12} {:<12} {:<16} {:.3}\n",
            s.stage.name(),
            s.events,
            format!("{} {}", s.units, s.stage.unit()),
            s.vtime_ns as f64 / 1e6,
        ));
    }
    out
}

/// Renders the full sidecar including the nondeterministic wall-clock
/// column (host CPU-seconds summed across sweep workers).
pub fn render_sidecar(snap: &[StageSnapshot]) -> String {
    let total_wall: u64 = snap.iter().map(|s| s.wall_ns).sum();
    let mut out = String::new();
    out.push_str("stage        events       units            vtime_ms     wall_ms   wall%\n");
    for s in snap {
        let pct = if total_wall > 0 {
            s.wall_ns as f64 * 100.0 / total_wall as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:<12} {:<12} {:<16} {:<12.3} {:<9.1} {:.1}\n",
            s.stage.name(),
            s.events,
            format!("{} {}", s.units, s.stage.unit()),
            s.vtime_ns as f64 / 1e6,
            s.wall_ns as f64 / 1e6,
            pct,
        ));
    }
    out
}

/// Serializes a snapshot as a JSON object keyed by stage name, with
/// deterministic fields first and the wall sidecar last.
pub fn to_json(snap: &[StageSnapshot]) -> String {
    let mut out = String::from("{\n");
    for (i, s) in snap.iter().enumerate() {
        let sep = if i + 1 == snap.len() { "" } else { "," };
        out.push_str(&format!(
            "      \"{}\": {{\"events\": {}, \"units\": {}, \"vtime_ns\": {}, \"wall_ns\": {}}}{sep}\n",
            s.stage.name(),
            s.events,
            s.units,
            s.vtime_ns,
            s.wall_ns,
        ));
    }
    out.push_str("    }");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Prof state is process-global; every test serializes on this lock
    // and resets before measuring.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn disabled_recording_is_a_noop() {
        let _g = LOCK.lock().unwrap();
        disable();
        reset();
        count(Stage::Map, 5, 100);
        vtime(Stage::Gc, SimDuration::from_millis(3));
        let snap = snapshot();
        assert!(snap.iter().all(|s| s.events == 0 && s.vtime_ns == 0));
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let _g = LOCK.lock().unwrap();
        reset();
        enable(false);
        count(Stage::EmitFlush, 1, 300);
        count(Stage::EmitFlush, 2, 700);
        vtime(Stage::Shuffle, SimDuration::from_micros(5));
        disable();
        let snap = snapshot();
        let flush = &snap[Stage::EmitFlush as usize];
        assert_eq!((flush.events, flush.units), (3, 1000));
        assert_eq!(snap[Stage::Shuffle as usize].vtime_ns, 5_000);
        reset();
        assert!(snapshot().iter().all(|s| s.events == 0));
    }

    #[test]
    fn wall_timer_only_measures_when_opted_in() {
        let _g = LOCK.lock().unwrap();
        reset();
        enable(false); // deterministic only
        {
            let _t = wall_timer(Stage::Map);
            std::hint::black_box(0u64);
        }
        assert_eq!(snapshot()[Stage::Map as usize].wall_ns, 0);
        enable(true);
        {
            let _t = wall_timer(Stage::Map);
            let mut acc = 1u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_mul(31).wrapping_add(i);
            }
            std::hint::black_box(acc);
        }
        disable();
        assert!(snapshot()[Stage::Map as usize].wall_ns > 0);
        reset();
    }

    #[test]
    fn render_is_deterministic_and_wall_free() {
        let _g = LOCK.lock().unwrap();
        reset();
        enable(true);
        count(Stage::Generate, 2, 50);
        {
            let _t = wall_timer(Stage::Generate);
        }
        disable();
        let snap = snapshot();
        let det = render(&snap);
        assert!(det.contains("generate"));
        assert!(!det.contains("wall"));
        let side = render_sidecar(&snap);
        assert!(side.contains("wall_ms"));
        let json = to_json(&snap);
        assert!(json.contains("\"generate\": {\"events\": 2"));
        reset();
    }
}
