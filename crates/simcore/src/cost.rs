//! The cost model: how many virtual nanoseconds each simulated action
//! costs.
//!
//! All terms are linear in bytes or tuples (plus small fixed latencies), so
//! the 1/1024 data scaling of the reproduction (see [`crate::SCALE`])
//! preserves every ratio the paper reports. The default constants are
//! loosely calibrated to the paper's testbed: c3.2xlarge nodes (8 cores),
//! HotSpot's parallel generational collector, SSD RAID-0 storage and
//! enhanced (10 GbE-class) networking.

use crate::bytes::ByteSize;
use crate::time::SimDuration;

/// Virtual-time costs for CPU work, garbage collection, disk and network.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Fixed CPU cost to process one tuple (dispatch, iterator overhead).
    pub tuple_fixed_ns: u64,
    /// CPU cost per payload byte processed (~1 GB/s parse rate).
    pub cpu_ns_per_byte: f64,

    /// Fixed pause of a minor (young-generation) collection.
    pub gc_minor_fixed: SimDuration,
    /// Copy cost per surviving young byte (~2 GB/s evacuation).
    pub gc_minor_ns_per_survivor_byte: f64,
    /// Fixed pause of a full collection.
    pub gc_full_fixed: SimDuration,
    /// Mark cost per live heap byte (~1 GB/s tracing).
    pub gc_full_ns_per_live_byte: f64,
    /// Sweep cost per used heap byte.
    pub gc_full_ns_per_used_byte: f64,

    /// Sequential disk write bandwidth (bytes/second).
    pub disk_write_bps: u64,
    /// Sequential disk read bandwidth (bytes/second).
    pub disk_read_bps: u64,
    /// Fixed latency per disk operation.
    pub disk_op_latency: SimDuration,
    /// CPU cost per byte to serialize an object graph.
    pub serialize_ns_per_byte: f64,
    /// CPU cost per byte to deserialize (object construction is pricier).
    pub deserialize_ns_per_byte: f64,

    /// Network bandwidth between any two nodes (bytes/second).
    pub net_bps: u64,
    /// Fixed network latency per transfer.
    pub net_latency: SimDuration,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            tuple_fixed_ns: 120,
            cpu_ns_per_byte: 1.0,
            gc_minor_fixed: SimDuration::from_micros(30),
            gc_minor_ns_per_survivor_byte: 0.5,
            gc_full_fixed: SimDuration::from_micros(150),
            gc_full_ns_per_live_byte: 1.0,
            gc_full_ns_per_used_byte: 0.12,
            disk_write_bps: 400 * crate::MIB,
            disk_read_bps: 500 * crate::MIB,
            disk_op_latency: SimDuration::from_micros(100),
            serialize_ns_per_byte: 0.8,
            deserialize_ns_per_byte: 1.4,
            net_bps: 1_250 * crate::MIB,
            net_latency: SimDuration::from_micros(50),
        }
    }
}

fn ns_per_bytes(rate_ns_per_byte: f64, bytes: u64) -> SimDuration {
    SimDuration::from_nanos((rate_ns_per_byte * bytes as f64).round() as u64)
}

fn bandwidth_time(bps: u64, bytes: u64) -> SimDuration {
    SimDuration::from_secs_f64(bytes as f64 / bps.max(1) as f64)
}

impl CostModel {
    /// CPU cost to process one tuple carrying `payload` bytes.
    pub fn tuple_cost(&self, payload: ByteSize) -> SimDuration {
        SimDuration::from_nanos(self.tuple_fixed_ns)
            + ns_per_bytes(self.cpu_ns_per_byte, payload.as_u64())
    }

    /// Pause of a minor collection with `survivors` bytes evacuated.
    pub fn minor_gc_pause(&self, survivors: ByteSize) -> SimDuration {
        self.gc_minor_fixed + ns_per_bytes(self.gc_minor_ns_per_survivor_byte, survivors.as_u64())
    }

    /// Pause of a full collection over `live` live bytes in a heap with
    /// `used` bytes occupied.
    pub fn full_gc_pause(&self, live: ByteSize, used: ByteSize) -> SimDuration {
        self.gc_full_fixed
            + ns_per_bytes(self.gc_full_ns_per_live_byte, live.as_u64())
            + ns_per_bytes(self.gc_full_ns_per_used_byte, used.as_u64())
    }

    /// Time to write `bytes` sequentially to disk.
    pub fn disk_write(&self, bytes: ByteSize) -> SimDuration {
        self.disk_op_latency + bandwidth_time(self.disk_write_bps, bytes.as_u64())
    }

    /// Time to read `bytes` sequentially from disk.
    pub fn disk_read(&self, bytes: ByteSize) -> SimDuration {
        self.disk_op_latency + bandwidth_time(self.disk_read_bps, bytes.as_u64())
    }

    /// CPU time to serialize `bytes` of object graph.
    pub fn serialize_cpu(&self, bytes: ByteSize) -> SimDuration {
        ns_per_bytes(self.serialize_ns_per_byte, bytes.as_u64())
    }

    /// CPU time to deserialize `bytes` back into an object graph.
    pub fn deserialize_cpu(&self, bytes: ByteSize) -> SimDuration {
        ns_per_bytes(self.deserialize_ns_per_byte, bytes.as_u64())
    }

    /// Time to move `bytes` across the network between two nodes.
    pub fn net_transfer(&self, bytes: ByteSize) -> SimDuration {
        self.net_latency + bandwidth_time(self.net_bps, bytes.as_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_cost_scales_with_payload() {
        let c = CostModel::default();
        let small = c.tuple_cost(ByteSize(10));
        let big = c.tuple_cost(ByteSize(10_000));
        assert!(big > small);
        assert!(big.as_nanos() >= 10_000);
    }

    #[test]
    fn full_gc_dominated_by_live_set() {
        let c = CostModel::default();
        let lean = c.full_gc_pause(ByteSize::mib(1), ByteSize::mib(10));
        let fat = c.full_gc_pause(ByteSize::mib(9), ByteSize::mib(10));
        assert!(fat > lean * 3);
    }

    #[test]
    fn disk_faster_to_read_than_write() {
        let c = CostModel::default();
        let w = c.disk_write(ByteSize::mib(64));
        let r = c.disk_read(ByteSize::mib(64));
        assert!(r < w);
    }

    #[test]
    fn zero_byte_ops_cost_only_latency() {
        let c = CostModel::default();
        assert_eq!(c.disk_write(ByteSize::ZERO), c.disk_op_latency);
        assert_eq!(c.net_transfer(ByteSize::ZERO), c.net_latency);
        assert_eq!(c.serialize_cpu(ByteSize::ZERO), SimDuration::ZERO);
    }

    #[test]
    fn bandwidth_time_handles_zero_rate() {
        // A zero-bandwidth disk clamps to 1 B/s rather than dividing by zero.
        let c = CostModel {
            disk_write_bps: 0,
            ..CostModel::default()
        };
        let t = c.disk_write(ByteSize(5));
        assert!(t > SimDuration::from_secs(4));
    }
}
