//! Sampled time series used to regenerate the paper's timeline figures
//! (Figure 3's memory footprint, Figure 11(c)'s active-thread counts).

use crate::time::SimTime;

/// One sample of a time series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Sample {
    /// When the sample was taken.
    pub at: SimTime,
    /// The sampled value (bytes, thread counts, ... depending on series).
    pub value: f64,
}

/// A named, append-only time series.
#[derive(Clone, Debug, Default)]
pub struct Series {
    /// Series name (e.g. `"heap_used"`, `"active_map_threads"`).
    pub name: String,
    /// Samples in non-decreasing time order.
    pub samples: Vec<Sample>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            samples: Vec::new(),
        }
    }

    /// Appends a sample; out-of-order appends are clamped to the last
    /// sample's timestamp so the series stays monotonic.
    pub fn push(&mut self, at: SimTime, value: f64) {
        let at = match self.samples.last() {
            Some(last) if at < last.at => last.at,
            _ => at,
        };
        self.samples.push(Sample { at, value });
    }

    /// The maximum value seen, or 0.0 for an empty series.
    pub fn max_value(&self) -> f64 {
        self.samples.iter().map(|s| s.value).fold(0.0, f64::max)
    }

    /// The time-weighted average value (each sample holds until the next).
    pub fn time_weighted_mean(&self) -> f64 {
        if self.samples.len() < 2 {
            return self.samples.first().map_or(0.0, |s| s.value);
        }
        let mut area = 0.0;
        let mut span = 0.0;
        for w in self.samples.windows(2) {
            let dt = w[1].at.since(w[0].at).as_secs_f64();
            area += w[0].value * dt;
            span += dt;
        }
        if span == 0.0 {
            self.samples.last().map_or(0.0, |s| s.value)
        } else {
            area / span
        }
    }

    /// Downsamples to at most `buckets` points by keeping each bucket's
    /// maximum (peaks matter for memory plots).
    pub fn downsample_max(&self, buckets: usize) -> Vec<Sample> {
        if buckets == 0 || self.samples.len() <= buckets {
            return self.samples.clone();
        }
        let per = self.samples.len().div_ceil(buckets);
        self.samples
            .chunks(per)
            .map(|c| {
                let peak = c
                    .iter()
                    .max_by(|a, b| a.value.total_cmp(&b.value))
                    .expect("non-empty chunk");
                Sample {
                    at: c[c.len() - 1].at,
                    value: peak.value,
                }
            })
            .collect()
    }
}

/// A collection of named series recorded during a run.
///
/// Series stay in first-use order in a vector; a name → index map backs
/// [`EventLog::record`], which monitors call on every observation (the
/// previous per-record linear name scan was measurable in profiles).
#[derive(Clone, Debug, Default)]
pub struct EventLog {
    series: Vec<Series>,
    index: std::collections::BTreeMap<String, usize>,
}

/// A snapshot of an [`EventLog`]'s append frontier (see
/// [`EventLog::mark`]).
#[derive(Clone, Debug)]
pub struct LogMark {
    lens: Vec<usize>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    fn series_index(&mut self, name: &str) -> usize {
        match self.index.get(name) {
            Some(&i) => i,
            None => {
                let i = self.series.len();
                self.series.push(Series::new(name));
                self.index.insert(name.to_string(), i);
                i
            }
        }
    }

    /// Appends a sample to `name`, creating the series on first use.
    pub fn record(&mut self, name: &str, at: SimTime, value: f64) {
        let i = self.series_index(name);
        self.series[i].push(at, value);
    }

    /// Looks up a series by name.
    pub fn series(&self, name: &str) -> Option<&Series> {
        self.index.get(name).map(|&i| &self.series[i])
    }

    /// All recorded series.
    pub fn all(&self) -> &[Series] {
        &self.series
    }

    /// Snapshots the log's append frontier (per-series sample counts).
    /// Cheap: one `usize` per series. The shard executor marks every
    /// node log before a speculative round so an overshot round can be
    /// [`EventLog::rewind`]-ed away.
    pub fn mark(&self) -> LogMark {
        LogMark {
            lens: self.series.iter().map(|s| s.samples.len()).collect(),
        }
    }

    /// Truncates the log back to a [`EventLog::mark`]: samples appended
    /// since are dropped, and series created since are removed entirely
    /// (index included).
    pub fn rewind(&mut self, mark: &LogMark) {
        for (i, s) in self.series.iter_mut().enumerate() {
            s.samples.truncate(mark.lens.get(i).copied().unwrap_or(0));
        }
        if self.series.len() > mark.lens.len() {
            for s in self.series.drain(mark.lens.len()..) {
                self.index.remove(&s.name);
            }
        }
    }

    /// Merges another log's series into this one (used to combine
    /// per-node logs into a cluster view). One index lookup per series,
    /// not per sample.
    pub fn merge(&mut self, other: &EventLog) {
        for s in &other.series {
            let i = self.series_index(&s.name);
            for sample in &s.samples {
                self.series[i].push(sample.at, sample.value);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn push_keeps_monotonic_time() {
        let mut s = Series::new("x");
        s.push(t(5), 1.0);
        s.push(t(3), 2.0); // out of order: clamped to t(5)
        assert_eq!(s.samples[1].at, t(5));
    }

    #[test]
    fn max_and_mean() {
        let mut s = Series::new("mem");
        s.push(t(0), 10.0);
        s.push(t(10), 30.0);
        s.push(t(20), 10.0);
        assert_eq!(s.max_value(), 30.0);
        // 10 for 10s then 30 for 10s => mean 20.
        assert!((s.time_weighted_mean() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn downsample_preserves_peak() {
        let mut s = Series::new("mem");
        for i in 0..100 {
            let v = if i == 57 { 999.0 } else { 1.0 };
            s.push(t(i), v);
        }
        let ds = s.downsample_max(10);
        assert!(ds.len() <= 10);
        assert!(ds.iter().any(|x| x.value == 999.0));
    }

    #[test]
    fn log_creates_and_merges_series() {
        let mut a = EventLog::new();
        a.record("heap", t(0), 1.0);
        let mut b = EventLog::new();
        b.record("heap", t(1), 2.0);
        b.record("threads", t(1), 4.0);
        a.merge(&b);
        assert_eq!(a.series("heap").unwrap().samples.len(), 2);
        assert_eq!(a.series("threads").unwrap().samples.len(), 1);
        assert!(a.series("missing").is_none());
    }

    #[test]
    fn empty_series_statistics() {
        let s = Series::new("empty");
        assert_eq!(s.max_value(), 0.0);
        assert_eq!(s.time_weighted_mean(), 0.0);
        assert!(s.downsample_max(4).is_empty());
    }
}
