//! Byte-size constants and human-readable formatting.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// One kibibyte.
pub const KIB: u64 = 1024;
/// One mebibyte.
pub const MIB: u64 = 1024 * KIB;
/// One gibibyte.
pub const GIB: u64 = 1024 * MIB;

/// A byte count with saturating arithmetic and human-readable display.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(pub u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Creates a size from kibibytes.
    pub const fn kib(n: u64) -> Self {
        ByteSize(n * KIB)
    }

    /// Creates a size from mebibytes.
    pub const fn mib(n: u64) -> Self {
        ByteSize(n * MIB)
    }

    /// Creates a size from gibibytes.
    pub const fn gib(n: u64) -> Self {
        ByteSize(n * GIB)
    }

    /// The raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Whether this is zero bytes.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The size in fractional mebibytes.
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / MIB as f64
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }

    /// `self * num / den`, computed without overflow for realistic sizes.
    pub fn mul_ratio(self, num: u64, den: u64) -> ByteSize {
        ByteSize((self.0 as u128 * num as u128 / den.max(1) as u128) as u64)
    }
}

impl From<u64> for ByteSize {
    fn from(n: u64) -> Self {
        ByteSize(n)
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        *self = *self + rhs;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for ByteSize {
    fn sub_assign(&mut self, rhs: ByteSize) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0.saturating_mul(rhs))
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        iter.fold(ByteSize::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= GIB {
            write!(f, "{:.2}GiB", b as f64 / GIB as f64)
        } else if b >= MIB {
            write!(f, "{:.2}MiB", b as f64 / MIB as f64)
        } else if b >= KIB {
            write!(f, "{:.2}KiB", b as f64 / KIB as f64)
        } else {
            write!(f, "{b}B")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale() {
        assert_eq!(ByteSize::kib(2).as_u64(), 2048);
        assert_eq!(ByteSize::mib(1).as_u64(), 1024 * 1024);
        assert_eq!(ByteSize::gib(1).as_u64(), 1024 * 1024 * 1024);
    }

    #[test]
    fn saturating_arithmetic() {
        assert_eq!(ByteSize(5) - ByteSize(10), ByteSize::ZERO);
        assert_eq!(ByteSize(u64::MAX) + ByteSize(1), ByteSize(u64::MAX));
    }

    #[test]
    fn ratio_is_exact_for_large_values() {
        let huge = ByteSize::gib(100);
        assert_eq!(huge.mul_ratio(1, 2), ByteSize::gib(50));
        assert_eq!(huge.mul_ratio(3, 4), ByteSize::gib(75));
        // Zero denominator clamps rather than panics.
        assert_eq!(huge.mul_ratio(1, 0), huge);
    }

    #[test]
    fn display_units() {
        assert_eq!(ByteSize(512).to_string(), "512B");
        assert_eq!(ByteSize::kib(1).to_string(), "1.00KiB");
        assert_eq!(ByteSize::mib(3).to_string(), "3.00MiB");
        assert_eq!(ByteSize::gib(2).to_string(), "2.00GiB");
    }
}
