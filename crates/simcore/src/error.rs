//! The shared error type of the simulator.

use std::fmt;

use crate::bytes::ByteSize;
use crate::ids::{NodeId, TaskId};

/// Result alias used throughout the workspace.
pub type SimResult<T> = Result<T, SimError>;

/// Errors surfaced by the simulated runtime.
///
/// `OutOfMemory` is the simulation's equivalent of Java's
/// `OutOfMemoryError`: it is raised when an allocation still cannot be
/// satisfied after a full collection. Frameworks decide what it means — a
/// Hyracks job dies, a Hadoop task attempt is retried, an ITask execution
/// should never see one at all.
#[derive(Clone, PartialEq, Eq)]
pub enum SimError {
    /// An allocation failed even after a full GC.
    OutOfMemory {
        /// The node whose heap was exhausted.
        node: NodeId,
        /// The allocation that could not be satisfied.
        requested: ByteSize,
        /// Free heap bytes after the failed collection.
        free: ByteSize,
    },
    /// A job failed (wraps the root cause and identifies the task).
    TaskFailed {
        /// The failing logical task.
        task: TaskId,
        /// Human-readable cause.
        cause: String,
    },
    /// A task exceeded its retry budget (YARN-style).
    RetriesExhausted {
        /// The failing logical task.
        task: TaskId,
        /// Number of attempts made.
        attempts: u32,
    },
    /// The simulated disk filled up.
    DiskFull {
        /// The node whose disk is full.
        node: NodeId,
        /// The write that could not be satisfied.
        requested: ByteSize,
    },
    /// A transient I/O error (injected by a fault plan); retrying the
    /// operation may succeed.
    IoTransient {
        /// The node whose disk hiccupped.
        node: NodeId,
    },
    /// A stored partition failed its checksum on read: the on-disk
    /// bytes are corrupt and must be re-created from lineage.
    CorruptPartition {
        /// The node holding the corrupt file.
        node: NodeId,
        /// The corrupt file's raw id on that node's disk.
        file: u64,
    },
    /// The network between two nodes is partitioned with no scheduled
    /// heal; the transfer can never complete.
    NetPartition {
        /// Sending node.
        src: NodeId,
        /// Receiving node.
        dst: NodeId,
    },
    /// A node crashed: its threads, heap and disk are gone.
    NodeLost {
        /// The crashed node.
        node: NodeId,
    },
    /// A configuration/usage error in the simulation setup.
    Config(String),
    /// An internal invariant was violated (a bug in the simulator).
    Internal(String),
}

impl SimError {
    /// Whether this error is (or is caused by) an out-of-memory error.
    pub fn is_oom(&self) -> bool {
        match self {
            SimError::OutOfMemory { .. } => true,
            SimError::TaskFailed { cause, .. } => cause.contains("OutOfMemory"),
            _ => false,
        }
    }

    /// Whether retrying the same operation may succeed (transient
    /// faults only; corruption and crashes need real recovery).
    pub fn is_transient(&self) -> bool {
        matches!(self, SimError::IoTransient { .. })
    }

    /// Whether this error was injected by the substrate fault plane
    /// (as opposed to memory pressure or a framework bug).
    pub fn is_substrate(&self) -> bool {
        matches!(
            self,
            SimError::IoTransient { .. }
                | SimError::CorruptPartition { .. }
                | SimError::NetPartition { .. }
                | SimError::NodeLost { .. }
        )
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfMemory {
                node,
                requested,
                free,
            } => write!(
                f,
                "OutOfMemoryError on {node}: requested {requested}, only {free} free after full GC"
            ),
            SimError::TaskFailed { task, cause } => {
                write!(f, "task {task} failed: {cause}")
            }
            SimError::RetriesExhausted { task, attempts } => {
                write!(f, "task {task} failed after {attempts} attempts")
            }
            SimError::DiskFull { node, requested } => {
                write!(f, "disk full on {node}: could not write {requested}")
            }
            SimError::IoTransient { node } => {
                write!(f, "transient I/O error on {node}")
            }
            SimError::CorruptPartition { node, file } => {
                write!(f, "checksum mismatch reading file{file} on {node}")
            }
            SimError::NetPartition { src, dst } => {
                write!(f, "network partition: {src} cannot reach {dst}")
            }
            SimError::NodeLost { node } => write!(f, "{node} crashed"),
            SimError::Config(msg) => write!(f, "configuration error: {msg}"),
            SimError::Internal(msg) => write!(f, "internal simulator error: {msg}"),
        }
    }
}

// `Debug` delegates to `Display` so `unwrap` panics stay readable.
impl fmt::Debug for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oom_detection() {
        let e = SimError::OutOfMemory {
            node: NodeId(0),
            requested: ByteSize::mib(1),
            free: ByteSize::kib(10),
        };
        assert!(e.is_oom());
        let wrapped = SimError::TaskFailed {
            task: TaskId(2),
            cause: e.to_string(),
        };
        assert!(wrapped.is_oom());
        assert!(!SimError::Config("x".into()).is_oom());
    }

    #[test]
    fn display_is_informative() {
        let e = SimError::DiskFull {
            node: NodeId(1),
            requested: ByteSize::mib(2),
        };
        let s = e.to_string();
        assert!(s.contains("node1"));
        assert!(s.contains("2.00MiB"));
    }

    #[test]
    fn substrate_classification() {
        let transient = SimError::IoTransient { node: NodeId(3) };
        assert!(transient.is_transient());
        assert!(transient.is_substrate());
        assert!(!transient.is_oom());

        let corrupt = SimError::CorruptPartition {
            node: NodeId(1),
            file: 9,
        };
        assert!(!corrupt.is_transient());
        assert!(corrupt.is_substrate());
        assert!(corrupt.to_string().contains("file9"));

        let lost = SimError::NodeLost { node: NodeId(2) };
        assert!(lost.is_substrate());
        assert!(lost.to_string().contains("node2"));

        let part = SimError::NetPartition {
            src: NodeId(0),
            dst: NodeId(5),
        };
        assert!(part.is_substrate());

        let oom = SimError::OutOfMemory {
            node: NodeId(0),
            requested: ByteSize(1),
            free: ByteSize(0),
        };
        assert!(!oom.is_substrate());
        assert!(!SimError::Config("x".into()).is_substrate());
    }
}
