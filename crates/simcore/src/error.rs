//! The shared error type of the simulator.

use std::fmt;

use crate::bytes::ByteSize;
use crate::ids::{NodeId, TaskId};

/// Result alias used throughout the workspace.
pub type SimResult<T> = Result<T, SimError>;

/// Errors surfaced by the simulated runtime.
///
/// `OutOfMemory` is the simulation's equivalent of Java's
/// `OutOfMemoryError`: it is raised when an allocation still cannot be
/// satisfied after a full collection. Frameworks decide what it means — a
/// Hyracks job dies, a Hadoop task attempt is retried, an ITask execution
/// should never see one at all.
#[derive(Clone, PartialEq, Eq)]
pub enum SimError {
    /// An allocation failed even after a full GC.
    OutOfMemory {
        /// The node whose heap was exhausted.
        node: NodeId,
        /// The allocation that could not be satisfied.
        requested: ByteSize,
        /// Free heap bytes after the failed collection.
        free: ByteSize,
    },
    /// A job failed (wraps the root cause and identifies the task).
    TaskFailed {
        /// The failing logical task.
        task: TaskId,
        /// Human-readable cause.
        cause: String,
    },
    /// A task exceeded its retry budget (YARN-style).
    RetriesExhausted {
        /// The failing logical task.
        task: TaskId,
        /// Number of attempts made.
        attempts: u32,
    },
    /// The simulated disk filled up.
    DiskFull {
        /// The node whose disk is full.
        node: NodeId,
        /// The write that could not be satisfied.
        requested: ByteSize,
    },
    /// A configuration/usage error in the simulation setup.
    Config(String),
    /// An internal invariant was violated (a bug in the simulator).
    Internal(String),
}

impl SimError {
    /// Whether this error is (or is caused by) an out-of-memory error.
    pub fn is_oom(&self) -> bool {
        match self {
            SimError::OutOfMemory { .. } => true,
            SimError::TaskFailed { cause, .. } => cause.contains("OutOfMemory"),
            _ => false,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfMemory { node, requested, free } => write!(
                f,
                "OutOfMemoryError on {node}: requested {requested}, only {free} free after full GC"
            ),
            SimError::TaskFailed { task, cause } => {
                write!(f, "task {task} failed: {cause}")
            }
            SimError::RetriesExhausted { task, attempts } => {
                write!(f, "task {task} failed after {attempts} attempts")
            }
            SimError::DiskFull { node, requested } => {
                write!(f, "disk full on {node}: could not write {requested}")
            }
            SimError::Config(msg) => write!(f, "configuration error: {msg}"),
            SimError::Internal(msg) => write!(f, "internal simulator error: {msg}"),
        }
    }
}

// `Debug` delegates to `Display` so `unwrap` panics stay readable.
impl fmt::Debug for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oom_detection() {
        let e = SimError::OutOfMemory {
            node: NodeId(0),
            requested: ByteSize::mib(1),
            free: ByteSize::kib(10),
        };
        assert!(e.is_oom());
        let wrapped = SimError::TaskFailed {
            task: TaskId(2),
            cause: e.to_string(),
        };
        assert!(wrapped.is_oom());
        assert!(!SimError::Config("x".into()).is_oom());
    }

    #[test]
    fn display_is_informative() {
        let e = SimError::DiskFull {
            node: NodeId(1),
            requested: ByteSize::mib(2),
        };
        let s = e.to_string();
        assert!(s.contains("node1"));
        assert!(s.contains("2.00MiB"));
    }
}
