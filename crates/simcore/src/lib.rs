#![warn(missing_docs)]

//! Shared primitives for the ITask (SOSP '15) reproduction.
//!
//! Everything in the reproduction runs on *virtual time*: the cluster,
//! heap, disk and network are deterministic cost models advanced by the
//! simulation, never by wall-clock measurement. This crate provides the
//! time axis ([`SimTime`], [`SimDuration`]), the cost-model constants
//! ([`CostModel`]), deterministic randomness ([`rng`]), byte-size helpers,
//! identifier types, the shared error type and a sampled event log used to
//! regenerate the paper's timeline figures.

pub mod bytes;
pub mod cost;
pub mod error;
pub mod fault;
pub mod ids;
pub mod jbloat;
pub mod log;
pub mod metrics;
pub mod prof;
pub mod rng;
pub mod sketch;
pub mod time;
pub mod tracer;

pub use bytes::{ByteSize, GIB, KIB, MIB};
pub use cost::CostModel;
pub use error::{SimError, SimResult};
pub use fault::{
    FaultInjector, FaultPlan, FaultStats, LinkState, NetFault, NetFaultKind, NodeCrash, ReadFault,
    WriteFault,
};
pub use ids::{JobId, NodeId, PartitionId, SpaceId, TaskId, ThreadId};
pub use jbloat::HeapSized;
pub use log::{EventLog, LogMark, Sample, Series};
pub use rng::DetRng;
pub use sketch::{QuantileSketch, SketchSnapshot};
pub use time::{SimDuration, SimTime};

/// The global data/heap scale of the reproduction relative to the paper.
///
/// A "72GB" dataset in the paper is `72GB / SCALE = 72MiB` of simulated
/// payload here, and a "12GB" node heap is 12MiB. All cost-model terms are
/// linear in bytes/tuples, so every *ratio* the paper reports (speedups, GC
/// fractions, scalability factors) is invariant under this scaling; harness
/// output multiplies virtual time by `SCALE` when printing
/// "paper-equivalent" seconds.
pub const SCALE: u64 = 1024;
