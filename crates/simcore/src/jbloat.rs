//! Java object-layout cost model ("bloat").
//!
//! The paper's memory problems are inflated by managed-runtime object
//! overhead: headers, references, boxed primitives, collection entries
//! (Mitchell & Sevitsky, "The causes of bloat"; cited as \[45\] in the paper). These
//! helpers price a tuple's *simulated* heap footprint the way a 64-bit
//! HotSpot JVM with compressed oops would.

/// Object header (mark word + compressed class pointer).
pub const OBJECT_HEADER: u64 = 16;
/// A reference field (compressed oop).
pub const REFERENCE: u64 = 4;
/// Array header (object header + length).
pub const ARRAY_HEADER: u64 = 20;

/// Rounds up to the 8-byte object alignment.
pub const fn align(bytes: u64) -> u64 {
    (bytes + 7) & !7
}

/// A `java.lang.String` of `chars` characters: the `String` object plus
/// its backing `char[]` (UTF-16).
pub const fn string(chars: u64) -> u64 {
    // String: header + hash + ref to value array.
    let obj = align(OBJECT_HEADER + 4 + REFERENCE);
    let arr = align(ARRAY_HEADER + 2 * chars);
    obj + arr
}

/// A boxed primitive (`Integer`, `Long`, `Double`).
pub const fn boxed(prim_bytes: u64) -> u64 {
    align(OBJECT_HEADER + prim_bytes)
}

/// One `java.util.HashMap` entry: the `Node`, its table-slot share, and
/// the boxed key/value referenced by it (pass their own sizes).
pub const fn hashmap_entry(key_bytes: u64, value_bytes: u64) -> u64 {
    // Node: header + hash + key ref + value ref + next ref.
    let node = align(OBJECT_HEADER + 4 + 3 * REFERENCE);
    // Table slot amortized at default load factor 0.75.
    let slot = 8;
    node + slot + key_bytes + value_bytes
}

/// An `ArrayList` of `n` elements of `elem_bytes` each (element payload
/// included).
pub const fn array_list(n: u64, elem_bytes: u64) -> u64 {
    let list = align(OBJECT_HEADER + 4 + REFERENCE);
    // Backing array with typical 1.5x growth slack.
    let backing = align(ARRAY_HEADER + REFERENCE * n + REFERENCE * n / 2);
    list + backing + n * elem_bytes
}

/// A plain object with `n_refs` reference fields and `prim_bytes` of
/// primitive fields.
pub const fn object(n_refs: u64, prim_bytes: u64) -> u64 {
    align(OBJECT_HEADER + REFERENCE * n_refs + prim_bytes)
}

/// Types that know their simulated managed-heap footprint.
///
/// Workload records implement this; the ITask layer blanket-implements
/// its `Tuple` trait over it.
pub trait HeapSized {
    /// Bytes as a Java-style object graph.
    fn heap_bytes(&self) -> u64;

    /// Bytes when compactly serialized (Kryo-style); defaults to a third
    /// of the object form.
    fn ser_bytes(&self) -> u64 {
        (self.heap_bytes() / 3).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_rounds_up_to_eight() {
        assert_eq!(align(0), 0);
        assert_eq!(align(1), 8);
        assert_eq!(align(8), 8);
        assert_eq!(align(17), 24);
    }

    #[test]
    fn string_bloat_far_exceeds_payload() {
        // A 10-char string is ~3.6x its UTF-8 payload.
        let s = string(10);
        assert!(s >= 24 + 40);
        assert!(s > 3 * 10);
    }

    #[test]
    fn hashmap_entry_dominates_small_payloads() {
        // (String(6) -> Integer) costs ~100+ bytes for ~10 payload bytes.
        let e = hashmap_entry(string(6), boxed(4));
        assert!(e > 100, "entry = {e}");
    }

    #[test]
    fn array_list_scales_linearly() {
        let small = array_list(10, 16);
        let big = array_list(1000, 16);
        assert!(big > 50 * small / 10);
    }

    #[test]
    fn object_includes_header() {
        assert_eq!(object(0, 0), 16);
        assert!(object(2, 8) >= 16 + 8 + 8);
    }

    #[test]
    fn heap_sized_default_ser() {
        struct X;
        impl HeapSized for X {
            fn heap_bytes(&self) -> u64 {
                90
            }
        }
        assert_eq!(X.ser_bytes(), 30);
    }
}
