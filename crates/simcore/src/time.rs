//! Virtual time axis.
//!
//! The simulator measures everything in integer nanoseconds of *virtual*
//! time. Both [`SimTime`] (a point on the axis) and [`SimDuration`] (a
//! span) are thin wrappers over `u64` with saturating arithmetic, so a cost
//! model can never panic on overflow and time never runs backwards.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// Negative or non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_finite() && s > 0.0 {
            SimDuration((s * 1e9).round() as u64)
        } else {
            SimDuration(0)
        }
    }

    /// The duration in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Whether this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two durations.
    pub fn max(self, rhs: SimDuration) -> SimDuration {
        if self.0 >= rhs.0 {
            self
        } else {
            rhs
        }
    }

    /// The smaller of two durations.
    pub fn min(self, rhs: SimDuration) -> SimDuration {
        if self.0 <= rhs.0 {
            self
        } else {
            rhs
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs.max(1))
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// A point on the virtual time axis (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// The end of time; used for fault windows that never close.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time point from nanoseconds since the epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`, saturating at zero.
    pub const fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration::from_nanos(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.as_nanos()))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration::from_nanos(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration::from_nanos(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_micros(4).as_nanos(), 4_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    fn from_secs_f64_clamps_bad_input() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
    }

    #[test]
    fn arithmetic_saturates() {
        let max = SimDuration::from_nanos(u64::MAX);
        assert_eq!(max + SimDuration::from_secs(1), max);
        assert_eq!(
            SimDuration::ZERO - SimDuration::from_secs(1),
            SimDuration::ZERO
        );
        assert_eq!(max * 2, max);
    }

    #[test]
    fn time_advances_and_measures() {
        let mut t = SimTime::ZERO;
        t += SimDuration::from_millis(10);
        let t2 = t + SimDuration::from_millis(5);
        assert_eq!(t2.since(t), SimDuration::from_millis(5));
        assert_eq!(t.since(t2), SimDuration::ZERO);
        assert_eq!(t2 - t, SimDuration::from_millis(5));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn division_never_panics() {
        assert_eq!(SimDuration::from_secs(10) / 0, SimDuration::from_secs(10));
        assert_eq!(SimDuration::from_secs(10) / 2, SimDuration::from_secs(5));
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }
}
