//! Small, strongly-typed identifiers used across the simulator.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index value.
            pub const fn as_u32(self) -> u32 {
                self.0
            }

            /// The raw index value widened to `usize` for indexing.
            pub const fn as_usize(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }

        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                $name(v as u32)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A cluster node.
    NodeId,
    "node"
);
id_type!(
    /// A simulated worker thread slot on a node.
    ThreadId,
    "thr"
);
id_type!(
    /// A submitted job.
    JobId,
    "job"
);
id_type!(
    /// A logical task (an operator/vertex of the task graph).
    TaskId,
    "task"
);
id_type!(
    /// A data partition managed by the partition queue.
    PartitionId,
    "part"
);
id_type!(
    /// A heap *space*: a group of allocations that live and die together
    /// (a task's local structures, a partition's in-memory form, ...).
    SpaceId,
    "space"
);

/// A monotonically increasing id allocator for any of the id types.
#[derive(Debug, Default, Clone)]
pub struct IdGen {
    next: u32,
}

impl IdGen {
    /// Creates a generator starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the next fresh id.
    // Not an Iterator: the element type is chosen per call site.
    #[allow(clippy::should_implement_trait)]
    pub fn next<T: From<u32>>(&mut self) -> T {
        let v = self.next;
        self.next += 1;
        T::from(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct_and_ordered() {
        let mut g = IdGen::new();
        let a: PartitionId = g.next();
        let b: PartitionId = g.next();
        assert_ne!(a, b);
        assert!(a < b);
        assert_eq!(a.as_usize(), 0);
        assert_eq!(b.as_u32(), 1);
    }

    #[test]
    fn display_includes_prefix() {
        assert_eq!(NodeId(3).to_string(), "node3");
        assert_eq!(SpaceId(7).to_string(), "space7");
        assert_eq!(format!("{:?}", TaskId(1)), "task1");
    }
}
