//! A deterministic, virtual-time metrics plane: typed counters, gauges
//! and sketch-backed histograms sampled on a fixed virtual-time
//! cadence.
//!
//! Where the tracer ([`crate::tracer`]) answers "what happened, and
//! what caused it", the metrics plane answers "how did state *evolve*":
//! heap occupancy, IRS signal level, queue depth, commit rate — the
//! continuous curves the paper's Figure 3 plots and a production
//! observability stack alerts on. Every layer updates named metrics
//! from the [`Metric`] registry; updates are folded into a time series
//! sampled at exact virtual-time gridpoints (one sample per
//! [`cadence_ns`] cell, emitted only when the value changed — quiescent
//! cells cost nothing) plus one final distribution snapshot per
//! histogram.
//!
//! Determinism contract — the same discipline as the tracer, by
//! construction: metric updates ride the tracer's per-run /
//! per-node-stream buffers as [`crate::tracer::TraceData::Metric`]
//! events, so they inherit stream-namespaced ids, speculation rewind,
//! and the `(time, node, id)` harvest merge. The fold
//! ([`fold`]) is a pure function of that merged order, so a metrics
//! dump is byte-identical at any `--jobs`/`--shards` count. One
//! consequence worth knowing: trace event ids share the per-stream
//! sequences with metric updates, so a trace file written with metrics
//! armed has different (still deterministic) ids than one written
//! without — each flag combination is self-consistent across
//! jobs/shards.
//!
//! Disabled cost: every update entry point is a single relaxed atomic
//! load, exactly like the tracer and profiler.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::ids::NodeId;
use crate::sketch::{QuantileSketch, SketchSnapshot};
use crate::time::{SimDuration, SimTime};
use crate::tracer::{self, Event, TraceData};

/// How a metric's updates combine over time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically accumulating count (sampled cumulative).
    Counter,
    /// Last-write-wins instantaneous level.
    Gauge,
    /// Sketch-backed distribution of observed samples.
    Histogram,
}

impl MetricKind {
    /// The OpenMetrics family type this kind renders as.
    pub fn om_type(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "summary",
        }
    }
}

macro_rules! metrics_registry {
    ($(($variant:ident, $name:literal, $kind:ident, $unit:literal),)*) => {
        /// The closed registry of every metric any layer emits.
        ///
        /// Declaration order is the canonical `(node, metric)` merge
        /// order of dumps, so new metrics append — reordering would
        /// shift every golden byte.
        #[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub enum Metric {
            $(
                #[doc = $name]
                $variant,
            )*
        }

        impl Metric {
            /// Every metric, in canonical registry order.
            pub const ALL: &'static [Metric] = &[$(Metric::$variant,)*];

            /// Stable dotted name (`layer.metric`), the JSONL key.
            pub fn name(self) -> &'static str {
                match self { $(Metric::$variant => $name,)* }
            }

            /// How updates combine.
            pub fn kind(self) -> MetricKind {
                match self { $(Metric::$variant => MetricKind::$kind,)* }
            }

            /// Unit hint for renderers (empty = dimensionless count).
            pub fn unit(self) -> &'static str {
                match self { $(Metric::$variant => $unit,)* }
            }

            /// Parses a dotted name back to the registry entry.
            pub fn from_name(name: &str) -> Option<Metric> {
                match name { $($name => Some(Metric::$variant),)* _ => None }
            }
        }
    };
}

metrics_registry! {
    (MemLiveBytes, "mem.live_bytes", Gauge, "bytes"),
    (MemFreeBytes, "mem.free_bytes", Gauge, "bytes"),
    (MemHeapBytes, "mem.heap_bytes", Gauge, "bytes"),
    (MemGcCount, "mem.gc_count", Counter, ""),
    (MemGcPauseNs, "mem.gc_pause_ns", Counter, "nanoseconds"),
    (MemUselessGc, "mem.useless_gc", Counter, ""),
    (MemOom, "mem.oom", Counter, ""),
    (IrsSignal, "irs.signal", Gauge, "level"),
    (IrsInterrupts, "irs.interrupts", Counter, ""),
    (IrsSerialized, "irs.serialized", Counter, ""),
    (IrsSerializedBytes, "irs.serialized_bytes", Counter, "bytes"),
    (IrsDeflations, "irs.deflations", Counter, ""),
    (IrsDeflatedBytes, "irs.deflated_bytes", Counter, "bytes"),
    (SchedRunnable, "sched.runnable", Gauge, "threads"),
    (SchedQuanta, "sched.quanta", Counter, ""),
    (NetInflightBytes, "net.inflight_bytes", Gauge, "bytes"),
    (NetBytes, "net.bytes", Counter, "bytes"),
    (ShuffleBytes, "shuffle.bytes", Counter, "bytes"),
    (ServeQueueDepth, "serve.queue_depth", Gauge, "jobs"),
    (ServeShedDeadline, "serve.shed_deadline", Counter, ""),
    (ServeShedQueueFull, "serve.shed_queue_full", Counter, ""),
    (ServeShedRetryBudget, "serve.shed_retry_budget", Counter, ""),
    (ServeBreakerState, "serve.breaker_state", Gauge, "state"),
    (ServeBrownout, "serve.brownout", Gauge, "state"),
    (ServeAdmitted, "serve.admitted", Counter, ""),
    (ServeCompleted, "serve.completed", Counter, ""),
    (ServeFailed, "serve.failed", Counter, ""),
    (ServeLatencyNs, "serve.latency_ns", Histogram, "nanoseconds"),
    (SmrCommits, "smr.commits", Counter, ""),
    (SmrViewChanges, "smr.view_changes", Counter, ""),
    (SmrLeaseMarginNs, "smr.lease_margin_ns", Gauge, "nanoseconds"),
    (SmrCommitLatencyNs, "smr.commit_latency_ns", Histogram, "nanoseconds"),
}

/// One metric update as recorded in the event stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricOp {
    /// Add to a counter.
    CounterAdd(u64),
    /// Set a gauge to an absolute level.
    GaugeSet(i64),
    /// Adjust a gauge by a delta (e.g. in-flight bytes up/down).
    GaugeAdd(i64),
    /// Record one histogram sample.
    Observe(u64),
}

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Default sampling cadence: one gridpoint every 10ms of virtual time.
pub const DEFAULT_CADENCE_NS: u64 = 10_000_000;

static CADENCE_NS: AtomicU64 = AtomicU64::new(DEFAULT_CADENCE_NS);

/// Turns metric recording on process-wide. Updates still require the
/// tracer's per-run buffer installed around the run closure.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns metric recording off.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether metrics are armed (single relaxed load — the entire
/// disabled-path cost of every update site).
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Sets the sampling cadence in virtual nanoseconds (min 1).
pub fn set_cadence_ns(ns: u64) {
    CADENCE_NS.store(ns.max(1), Ordering::Relaxed);
}

/// The current sampling cadence in virtual nanoseconds.
pub fn cadence_ns() -> u64 {
    CADENCE_NS.load(Ordering::Relaxed)
}

/// The cadence cell a virtual time falls in (`t / cadence`). Update
/// sites that batch per cell (scheduler quanta, lease margins) compare
/// this against their last-flushed cell.
#[inline]
pub fn cell_of(at: SimTime) -> u64 {
    at.as_nanos() / cadence_ns().max(1)
}

#[inline]
fn record(node: Option<NodeId>, metric: Metric, at: SimTime, op: MetricOp) {
    tracer::emit_raw(
        node,
        None,
        at,
        SimDuration::ZERO,
        TraceData::Metric { metric, op },
    );
}

/// Adds `n` to a counter (no-op while disabled).
#[inline]
pub fn counter_add(node: Option<NodeId>, metric: Metric, at: SimTime, n: u64) {
    if is_enabled() {
        record(node, metric, at, MetricOp::CounterAdd(n));
    }
}

/// Sets a gauge to an absolute level (no-op while disabled).
#[inline]
pub fn gauge_set(node: Option<NodeId>, metric: Metric, at: SimTime, v: i64) {
    if is_enabled() {
        record(node, metric, at, MetricOp::GaugeSet(v));
    }
}

/// Adjusts a gauge by a delta (no-op while disabled).
#[inline]
pub fn gauge_add(node: Option<NodeId>, metric: Metric, at: SimTime, d: i64) {
    if is_enabled() {
        record(node, metric, at, MetricOp::GaugeAdd(d));
    }
}

/// Records one histogram sample (no-op while disabled).
#[inline]
pub fn observe(node: Option<NodeId>, metric: Metric, at: SimTime, v: u64) {
    if is_enabled() {
        record(node, metric, at, MetricOp::Observe(v));
    }
}

/// One sampled point of a folded run: the state of `(node, metric)` at
/// gridpoint `at` (counters cumulative, gauges instantaneous).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MetricPoint {
    /// Gridpoint timestamp, virtual nanoseconds (always a multiple of
    /// the fold cadence).
    pub at: u64,
    /// Node id, `-1` for cluster-wide metrics.
    pub node: i64,
    /// Which metric.
    pub metric: Metric,
    /// Sampled value.
    pub value: i64,
}

/// Final distribution snapshot of one histogram metric on one node.
#[derive(Clone, Debug)]
pub struct HistogramSummary {
    /// Node id, `-1` for cluster-wide metrics.
    pub node: i64,
    /// Which metric.
    pub metric: Metric,
    /// Sum of all observed samples.
    pub sum: u64,
    /// Count, extrema and reporting quantiles.
    pub snap: SketchSnapshot,
}

/// A folded run: the sampled time series plus final histogram
/// summaries, both in deterministic `(time, node, metric)` /
/// `(node, metric)` order.
#[derive(Clone, Debug, Default)]
pub struct RunMetrics {
    /// The cadence the fold sampled at, virtual nanoseconds.
    pub cadence_ns: u64,
    /// Sampled points, ordered by `(at, node, metric)`.
    pub points: Vec<MetricPoint>,
    /// Histogram summaries, ordered by `(node, metric)`.
    pub hists: Vec<HistogramSummary>,
}

impl RunMetrics {
    /// Final (last-sampled) value per `(node, metric)`, in key order.
    pub fn finals(&self) -> BTreeMap<(i64, Metric), i64> {
        let mut out = BTreeMap::new();
        for p in &self.points {
            out.insert((p.node, p.metric), p.value);
        }
        out
    }
}

#[derive(Default)]
struct CellState {
    value: i64,
    emitted: Option<i64>,
}

/// Folds a merged event stream into the sampled time series.
///
/// Cell `k` covers `[k·cadence, (k+1)·cadence)`; its sample is stamped
/// at `(k+1)·cadence`, so a sample at `T` reports the state as of ops
/// strictly before `T` — every point lands on an exact gridpoint
/// regardless of event timing. A `(node, metric)` pair is sampled only
/// in cells where its value changed (change-driven emission), so long
/// quiescent stretches produce no points. Histogram observations are
/// folded in canonical merged order into one sketch per
/// `(node, metric)` — never per-shard-then-merged — keeping the
/// quantiles identical at any shard count.
///
/// The input must be in the tracer's harvest order (`take_run`'s
/// `(time, node, id)` sort); non-metric events are ignored.
pub fn fold(events: &[Event], cadence_ns: u64) -> RunMetrics {
    let cadence = cadence_ns.max(1);
    let mut states: BTreeMap<(i64, Metric), CellState> = BTreeMap::new();
    let mut hists: BTreeMap<(i64, Metric), (QuantileSketch, u64)> = BTreeMap::new();
    let mut points: Vec<MetricPoint> = Vec::new();
    let mut cell: Option<u64> = None;

    fn flush(
        cell: u64,
        cadence: u64,
        states: &mut BTreeMap<(i64, Metric), CellState>,
        points: &mut Vec<MetricPoint>,
    ) {
        let at = (cell + 1).saturating_mul(cadence);
        for ((node, metric), st) in states.iter_mut() {
            if st.emitted != Some(st.value) {
                points.push(MetricPoint {
                    at,
                    node: *node,
                    metric: *metric,
                    value: st.value,
                });
                st.emitted = Some(st.value);
            }
        }
    }

    for e in events {
        let TraceData::Metric { metric, op } = &e.data else {
            continue;
        };
        let node = e.node.map_or(-1, |n| n.0 as i64);
        let k = e.at.as_nanos() / cadence;
        if cell != Some(k) {
            if let Some(c) = cell {
                flush(c, cadence, &mut states, &mut points);
            }
            cell = Some(k);
        }
        match *op {
            MetricOp::Observe(v) => {
                let (sketch, sum) = hists
                    .entry((node, *metric))
                    .or_insert_with(|| (QuantileSketch::default(), 0));
                sketch.insert(v);
                *sum += v;
            }
            MetricOp::CounterAdd(n) => {
                states.entry((node, *metric)).or_default().value += n as i64;
            }
            MetricOp::GaugeSet(v) => {
                states.entry((node, *metric)).or_default().value = v;
            }
            MetricOp::GaugeAdd(d) => {
                states.entry((node, *metric)).or_default().value += d;
            }
        }
    }
    if let Some(c) = cell {
        flush(c, cadence, &mut states, &mut points);
    }
    RunMetrics {
        cadence_ns: cadence,
        points,
        hists: hists
            .into_iter()
            .map(|((node, metric), (sketch, sum))| HistogramSummary {
                node,
                metric,
                sum,
                snap: sketch.snapshot(),
            })
            .collect(),
    }
}

/// Renders one run's JSONL lines: a run-header line (`"kind":"run"`),
/// one line per sampled point, then one line per histogram summary.
/// Self-delimiting, so streamed writers append runs as they finish.
/// This is the format `metricsctl` consumes.
pub fn jsonl_run(run: usize, label: &str, m: &RunMetrics) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"run\":{run},\"kind\":\"run\",\"label\":\"{}\",\"cadence_ns\":{},\"points\":{},\"hists\":{}}}\n",
        tracer::json_escape(label),
        m.cadence_ns,
        m.points.len(),
        m.hists.len(),
    ));
    for p in &m.points {
        out.push_str(&format!(
            "{{\"run\":{run},\"kind\":\"point\",\"ts\":{},\"node\":{},\"metric\":\"{}\",\"value\":{}}}\n",
            p.at,
            p.node,
            p.metric.name(),
            p.value,
        ));
    }
    for h in &m.hists {
        out.push_str(&format!(
            "{{\"run\":{run},\"kind\":\"hist\",\"node\":{},\"metric\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}}}\n",
            h.node,
            h.metric.name(),
            h.snap.count,
            h.sum,
            h.snap.min,
            h.snap.max,
            h.snap.p50,
            h.snap.p90,
            h.snap.p99,
            h.snap.p999,
        ));
    }
    out
}

/// Renders the whole JSONL document for a set of folded runs.
pub fn jsonl(runs: &[(String, RunMetrics)]) -> String {
    let mut out = String::new();
    for (run, (label, m)) in runs.iter().enumerate() {
        out.push_str(&jsonl_run(run, label, m));
    }
    out
}

fn om_name(metric: Metric) -> String {
    metric.name().replace('.', "_")
}

/// Renders the final-state snapshot of a set of runs in an
/// OpenMetrics-style text format: one `# TYPE` family per metric in
/// registry order, one row per `(run, node)`, counters/gauges at their
/// final sampled value, histograms as summary quantiles. Ends with
/// `# EOF`.
pub fn openmetrics(runs: &[(String, RunMetrics)]) -> String {
    let mut out = String::new();
    for &metric in Metric::ALL {
        let name = om_name(metric);
        let mut family = String::new();
        for (run, (label, m)) in runs.iter().enumerate() {
            let label = tracer::json_escape(label);
            if metric.kind() == MetricKind::Histogram {
                for h in m.hists.iter().filter(|h| h.metric == metric) {
                    let tags = format!("run=\"{run}\",label=\"{label}\",node=\"{}\"", h.node);
                    family.push_str(&format!("{name}_count{{{tags}}} {}\n", h.snap.count));
                    family.push_str(&format!("{name}_sum{{{tags}}} {}\n", h.sum));
                    for (q, v) in [
                        ("0.5", h.snap.p50),
                        ("0.9", h.snap.p90),
                        ("0.99", h.snap.p99),
                        ("0.999", h.snap.p999),
                    ] {
                        family.push_str(&format!("{name}{{{tags},quantile=\"{q}\"}} {v}\n"));
                    }
                }
            } else {
                for ((node, m2), v) in m.finals() {
                    if m2 != metric {
                        continue;
                    }
                    family.push_str(&format!(
                        "{name}{{run=\"{run}\",label=\"{label}\",node=\"{node}\"}} {v}\n"
                    ));
                }
            }
        }
        if !family.is_empty() {
            out.push_str(&format!("# TYPE {name} {}\n", metric.kind().om_type()));
            if !metric.unit().is_empty() {
                out.push_str(&format!("# UNIT {name} {}\n", metric.unit()));
            }
            out.push_str(&family);
        }
    }
    out.push_str("# EOF\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(id: u64, node: Option<u32>, at_ns: u64, metric: Metric, op: MetricOp) -> Event {
        Event {
            id: tracer::EventId(id),
            node: node.map(NodeId),
            scope: None,
            at: SimTime::from_nanos(at_ns),
            dur: SimDuration::ZERO,
            data: TraceData::Metric { metric, op },
        }
    }

    #[test]
    fn registry_names_round_trip() {
        for &m in Metric::ALL {
            assert_eq!(Metric::from_name(m.name()), Some(m));
            assert!(m.name().contains('.'), "{} is layer-dotted", m.name());
        }
        assert_eq!(Metric::from_name("nope"), None);
        assert_eq!(Metric::MemLiveBytes.kind(), MetricKind::Gauge);
        assert_eq!(Metric::MemGcCount.kind(), MetricKind::Counter);
        assert_eq!(Metric::SmrCommitLatencyNs.kind(), MetricKind::Histogram);
    }

    #[test]
    fn fold_samples_on_exact_gridpoints() {
        // Events at awkward times; every sample must land on a multiple
        // of the cadence, stamped one cell after the ops it covers.
        let cadence = 1000;
        let events = vec![
            ev(1, Some(0), 137, Metric::MemLiveBytes, MetricOp::GaugeSet(7)),
            ev(2, Some(0), 999, Metric::MemLiveBytes, MetricOp::GaugeSet(9)),
            ev(
                3,
                Some(0),
                2500,
                Metric::MemLiveBytes,
                MetricOp::GaugeSet(3),
            ),
        ];
        let m = fold(&events, cadence);
        assert_eq!(m.points.len(), 2);
        assert_eq!((m.points[0].at, m.points[0].value), (1000, 9));
        assert_eq!((m.points[1].at, m.points[1].value), (3000, 3));
        for p in &m.points {
            assert_eq!(p.at % cadence, 0, "gridpoint violated: {}", p.at);
        }
    }

    #[test]
    fn cadence_gridpoint_property_under_scrambled_times() {
        // Pseudo-random event times across pseudo-random cadences: all
        // points land on gridpoints, in (time, node, metric) order.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..20 {
            let cadence = next() % 50_000 + 1;
            let mut events = Vec::new();
            let mut t = 0u64;
            for i in 0..200 {
                t += next() % 10_000;
                events.push(ev(
                    i + 1,
                    Some((next() % 3) as u32),
                    t,
                    Metric::SchedRunnable,
                    MetricOp::GaugeSet((next() % 100) as i64),
                ));
            }
            let m = fold(&events, cadence);
            assert!(!m.points.is_empty());
            let mut prev = (0u64, i64::MIN, Metric::MemLiveBytes);
            for p in &m.points {
                assert_eq!(p.at % cadence, 0, "cadence {cadence}: point at {}", p.at);
                let key = (p.at, p.node, p.metric);
                assert!(key >= prev, "points out of (time, node, metric) order");
                prev = key;
            }
        }
    }

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let events = vec![
            ev(1, Some(1), 10, Metric::MemGcCount, MetricOp::CounterAdd(1)),
            ev(2, Some(1), 20, Metric::MemGcCount, MetricOp::CounterAdd(2)),
            ev(3, Some(1), 30, Metric::IrsSignal, MetricOp::GaugeAdd(-1)),
            ev(
                4,
                Some(1),
                1500,
                Metric::MemGcCount,
                MetricOp::CounterAdd(5),
            ),
        ];
        let m = fold(&events, 1000);
        // Cell 0: gc_count=3, signal=-1; cell 1: gc_count=8 (signal
        // unchanged — change-driven emission skips it).
        let got: Vec<(u64, i64, &str, i64)> = m
            .points
            .iter()
            .map(|p| (p.at, p.node, p.metric.name(), p.value))
            .collect();
        assert_eq!(
            got,
            vec![
                (1000, 1, "mem.gc_count", 3),
                (1000, 1, "irs.signal", -1),
                (2000, 1, "mem.gc_count", 8),
            ]
        );
    }

    #[test]
    fn unchanged_values_emit_no_points() {
        let events = vec![
            ev(1, None, 100, Metric::ServeQueueDepth, MetricOp::GaugeSet(4)),
            ev(
                2,
                None,
                1100,
                Metric::ServeQueueDepth,
                MetricOp::GaugeSet(4),
            ),
            ev(
                3,
                None,
                2100,
                Metric::ServeQueueDepth,
                MetricOp::GaugeSet(5),
            ),
        ];
        let m = fold(&events, 1000);
        assert_eq!(m.points.len(), 2, "the re-set to 4 is not re-emitted");
        assert_eq!(m.points[1].value, 5);
    }

    #[test]
    fn histograms_fold_in_merged_order() {
        let events = vec![
            ev(
                1,
                Some(0),
                5,
                Metric::SmrCommitLatencyNs,
                MetricOp::Observe(10),
            ),
            ev(
                2,
                Some(0),
                6,
                Metric::SmrCommitLatencyNs,
                MetricOp::Observe(30),
            ),
            ev(
                3,
                Some(0),
                7,
                Metric::SmrCommitLatencyNs,
                MetricOp::Observe(20),
            ),
        ];
        let m = fold(&events, 1000);
        assert!(m.points.is_empty(), "observations are not gauge points");
        assert_eq!(m.hists.len(), 1);
        let h = &m.hists[0];
        assert_eq!(h.snap.count, 3);
        assert_eq!(h.sum, 60);
        assert_eq!(h.snap.min, 10);
        assert_eq!(h.snap.max, 30);
        assert_eq!(h.snap.p50, 20);
    }

    #[test]
    fn renderers_are_stable() {
        let events = vec![
            ev(
                1,
                Some(0),
                10,
                Metric::MemLiveBytes,
                MetricOp::GaugeSet(640),
            ),
            ev(2, Some(0), 20, Metric::MemGcCount, MetricOp::CounterAdd(1)),
            ev(3, None, 30, Metric::ServeLatencyNs, MetricOp::Observe(500)),
        ];
        let m = fold(&events, 1000);
        let runs = vec![("quick \"wc\"".to_string(), m)];
        let lines = jsonl(&runs);
        assert!(lines.starts_with(
            "{\"run\":0,\"kind\":\"run\",\"label\":\"quick \\\"wc\\\"\",\"cadence_ns\":1000,\"points\":2,\"hists\":1}\n"
        ));
        assert!(lines.contains(
            "{\"run\":0,\"kind\":\"point\",\"ts\":1000,\"node\":0,\"metric\":\"mem.live_bytes\",\"value\":640}"
        ));
        assert!(lines.contains(
            "\"kind\":\"hist\",\"node\":-1,\"metric\":\"serve.latency_ns\",\"count\":1,\"sum\":500"
        ));
        let om = openmetrics(&runs);
        assert!(om.contains("# TYPE mem_live_bytes gauge"));
        assert!(om.contains("# UNIT mem_live_bytes bytes"));
        assert!(om.contains("mem_live_bytes{run=\"0\",label=\"quick \\\"wc\\\"\",node=\"0\"} 640"));
        assert!(om.contains("# TYPE serve_latency_ns summary"));
        assert!(om.contains("serve_latency_ns{run=\"0\",label=\"quick \\\"wc\\\"\",node=\"-1\",quantile=\"0.5\"} 500"));
        assert!(om.ends_with("# EOF\n"));
        assert!(!om.contains("smr_commits"), "absent metrics emit no family");
    }

    #[test]
    fn finals_take_last_sample() {
        let events = vec![
            ev(
                1,
                Some(2),
                10,
                Metric::MemFreeBytes,
                MetricOp::GaugeSet(100),
            ),
            ev(
                2,
                Some(2),
                5000,
                Metric::MemFreeBytes,
                MetricOp::GaugeSet(40),
            ),
        ];
        let m = fold(&events, 1000);
        assert_eq!(m.finals().get(&(2, Metric::MemFreeBytes)), Some(&40));
    }
}
