//! A deterministic, virtual-time structured tracing subsystem.
//!
//! Every layer of the reproduction emits into this one stream: the heap
//! (GC pause spans, OMEs), the IRS (REDUCE/GROW signals and the
//! victim-mark → interrupt → serialize → re-activate chains), the node
//! scheduler (thread quanta, crashes), the engines (shuffle/frame
//! batches, crash re-homing) and the service layer (admission and job
//! lifecycle). Events carry `(node, scope, virtual start, duration)`
//! plus a typed payload and an optional *causal link* to the event that
//! triggered them, so a dump reconstructs the paper's Figure-3 timeline
//! — annotated interrupt/re-activation points over the memory curve —
//! rather than mere aggregate counters.
//!
//! Determinism contract: timestamps are virtual nanoseconds, event ids
//! are per-stream monotonic, and each run's buffer lives in a
//! thread-local installed by the sweep executor around the run closure.
//! Harvested buffers are merged in `(time, node, seq)` order, so a dump
//! is byte-identical no matter how `--jobs` spreads runs across OS
//! worker threads. Host wall-clock never enters the stream.
//!
//! Intra-run parallelism uses *stream overlays*: while the shard
//! executor steps a node's scheduling round (possibly on another OS
//! thread), emissions land in a per-node stream whose ids are
//! `(stream << 32) | seq` — stream 0 is the driver, stream `n + 1` is
//! node `n`. Because stream assignment follows code location (driver
//! code emits between rounds, node code emits inside its own round) and
//! each stream's `seq` advances with the node's own logical progress,
//! every event's id is a pure function of the simulation — identical at
//! any `--shards` count. The driver absorbs harvested segments at round
//! barriers and the usual `(time, node, id)` merge yields identical
//! bytes whether rounds ran inline or fanned out.
//!
//! Like [`crate::prof`], the tracer is process-global and disabled by
//! default; every emission entry point is a single relaxed atomic load
//! when disabled, cheap enough for simulator hot paths.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};

use crate::ids::NodeId;
use crate::time::{SimDuration, SimTime};

/// Per-run monotonic event identifier; `EventId::NONE` (zero) means
/// "no event" (emission while disabled, or an absent causal link).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u64);

impl EventId {
    /// The null id: no event / no causal link.
    pub const NONE: EventId = EventId(0);

    /// Whether this id refers to an actual event.
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

/// The typed payload of one trace event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceData {
    /// A stop-the-world collection (span: duration = the pause).
    Gc {
        /// Full (whole-heap) vs minor (young-generation) collection.
        full: bool,
        /// Bytes reclaimed.
        reclaimed: u64,
        /// Free bytes after the collection.
        free_after: u64,
        /// Long-and-useless GC flag (paper §5.2; full collections only).
        useless: bool,
    },
    /// An allocation failed even after a full collection (OME).
    Oom {
        /// Bytes the failed allocation requested.
        requested: u64,
        /// Free bytes at the failure.
        free: u64,
    },
    /// The IRS monitor emitted a memory signal.
    Signal {
        /// REDUCE (`true`) or GROW (`false`).
        reduce: bool,
    },
    /// A running instance was marked for cooperative interrupt.
    VictimMarked {
        /// The victim's logical task.
        task: u32,
        /// The REDUCE signal that drove the marking.
        cause: EventId,
    },
    /// An instance completed an interrupt (cooperative or emergency).
    Interrupted {
        /// The instance's logical task.
        task: u32,
        /// Emergency self-interrupt (allocation failure) vs scheduled.
        emergency: bool,
        /// The victim-mark that requested it (none for emergencies).
        cause: EventId,
    },
    /// A queued partition was serialized (lazy or write-behind).
    Serialized {
        /// The partition.
        partition: u32,
        /// Heap bytes released.
        freed: u64,
        /// The REDUCE signal that drove it (none for steady-state).
        cause: EventId,
    },
    /// A task instance was activated on a partition or tag group.
    Activated {
        /// The logical task.
        task: u32,
        /// Partitions handed to the instance.
        partitions: u32,
        /// The interrupt that requeued its input (re-activations only).
        cause: EventId,
    },
    /// A corrupt spill was rebuilt from lineage and re-read.
    CorruptionRecovered {
        /// The partition whose byte form was rebuilt.
        partition: u32,
    },
    /// An instance was salvaged off a crashed node post-mortem.
    CrashSalvaged {
        /// The salvaged instance's logical task.
        task: u32,
    },
    /// The node's runnable-thread count changed (emitted on change
    /// only, so quiescent rounds cost nothing).
    ThreadQuantum {
        /// Runnable threads after this round.
        running: u32,
    },
    /// The node crashed (fault-injection runs).
    NodeCrash,
    /// A partition was re-homed onto this node after a peer crash.
    Rehome {
        /// The re-homed partition.
        partition: u32,
        /// The crashed node it came from.
        from: u32,
    },
    /// One whole shuffle call, aggregated (span: duration = barrier).
    Shuffle {
        /// Batches routed.
        batches: u64,
        /// Payload bytes moved.
        bytes: u64,
        /// Total wire time summed over transfers.
        wire_ns: u64,
    },
    /// Record batches split into granularity-bounded frames (aggregated
    /// per node per phase).
    FrameChunk {
        /// Tuples framed.
        tuples: u64,
    },
    /// A job arrived in a tenant's admission queue.
    JobSubmitted {
        /// The owning tenant.
        tenant: u32,
    },
    /// The admission controller admitted a job.
    Admitted {
        /// The owning tenant.
        tenant: u32,
        /// Queue wait, nanoseconds (since the latest enqueue).
        wait_ns: u64,
    },
    /// A job completed successfully.
    JobCompleted {
        /// The owning tenant.
        tenant: u32,
        /// End-to-end latency since arrival, nanoseconds.
        latency_ns: u64,
    },
    /// A job failed (and was retried or charged).
    JobFailed {
        /// The owning tenant.
        tenant: u32,
        /// Whether the failure was an OutOfMemoryError.
        oom: bool,
        /// Whether the service requeued it for another attempt.
        retry: bool,
    },
    /// The admission controller shed a job instead of running it.
    Shed {
        /// The owning tenant.
        tenant: u32,
        /// Stable reason label (`deadline`, `queue_full`, `retry_budget`).
        reason: &'static str,
    },
    /// One round's OME/pause-storm contribution on a node (emitted only
    /// when non-zero; breaker trips cite the latest one as their cause).
    Storm {
        /// OutOfMemoryErrors charged to the node this round.
        omes: u64,
        /// Full collections observed this round.
        full_gcs: u64,
        /// Long-and-useless collections observed this round.
        useless_gcs: u64,
    },
    /// A node's OME-storm circuit breaker changed state.
    Breaker {
        /// New state (`open`, `half_open`, `closed`).
        state: &'static str,
        /// The storm sample that drove the transition (trips only).
        cause: EventId,
    },
    /// A cluster-wide brownout window (span: duration = how long the
    /// service held the tightened gate).
    Brownout {
        /// Scheduling rounds spent inside the window.
        rounds: u64,
        /// The storm sample that preceded activation, if any.
        cause: EventId,
    },
    /// An SMR leader proposed a log entry to its quorum: the opening
    /// event of a per-commit causal chain
    /// (propose → replicate → ack → commit).
    Propose {
        /// Log index of the proposed entry.
        index: u64,
        /// View (term) the entry was proposed in.
        view: u64,
    },
    /// The leader shipped one entry to one follower (span: duration =
    /// wire time of the append RPC).
    Replicate {
        /// Log index.
        index: u64,
        /// Destination follower.
        to: u32,
        /// The propose event this replication carries out.
        cause: EventId,
    },
    /// A follower applied an entry and acknowledged it to the leader
    /// (the event's node is the acknowledging follower).
    SmrAck {
        /// Log index.
        index: u64,
        /// The replicate event this acknowledges.
        cause: EventId,
    },
    /// The leader committed an entry: a quorum of acknowledgements
    /// arrived and the leader's own apply finished.
    Commit {
        /// Log index.
        index: u64,
        /// Propose→commit latency in nanoseconds.
        latency_ns: u64,
        /// The propose event that opened the chain.
        cause: EventId,
    },
    /// A view change elected a new leader after heartbeat silence (a
    /// leader crash, or a leader GC pause outlasting the election
    /// timeout).
    ViewChange {
        /// The new view number.
        view: u64,
        /// The new leader.
        leader: u32,
        /// The commit (or propose) that last proved the old leader
        /// alive, if any.
        cause: EventId,
    },
    /// A metrics-plane update ([`crate::metrics`]) riding the trace
    /// stream so it inherits stream-namespaced ids, speculation rewind
    /// and the deterministic harvest merge. The sweep executor routes
    /// these to the metrics fold; trace files never contain them.
    Metric {
        /// The registry entry being updated.
        metric: crate::metrics::Metric,
        /// The update operation.
        op: crate::metrics::MetricOp,
    },
}

impl TraceData {
    /// Stable event-kind name (JSONL `kind`, analyzer keys).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceData::Gc { .. } => "gc",
            TraceData::Oom { .. } => "oom",
            TraceData::Signal { .. } => "signal",
            TraceData::VictimMarked { .. } => "victim",
            TraceData::Interrupted { .. } => "interrupt",
            TraceData::Serialized { .. } => "serialize",
            TraceData::Activated { .. } => "activate",
            TraceData::CorruptionRecovered { .. } => "corruption",
            TraceData::CrashSalvaged { .. } => "salvage",
            TraceData::ThreadQuantum { .. } => "quantum",
            TraceData::NodeCrash => "crash",
            TraceData::Rehome { .. } => "rehome",
            TraceData::Shuffle { .. } => "shuffle",
            TraceData::FrameChunk { .. } => "frame",
            TraceData::JobSubmitted { .. } => "submit",
            TraceData::Admitted { .. } => "admit",
            TraceData::JobCompleted { .. } => "complete",
            TraceData::JobFailed { .. } => "fail",
            TraceData::Shed { .. } => "shed",
            TraceData::Storm { .. } => "storm",
            TraceData::Breaker { .. } => "breaker",
            TraceData::Brownout { .. } => "brownout",
            TraceData::Propose { .. } => "propose",
            TraceData::Replicate { .. } => "replicate",
            TraceData::SmrAck { .. } => "ack",
            TraceData::Commit { .. } => "commit",
            TraceData::ViewChange { .. } => "view_change",
            TraceData::Metric { .. } => "metric",
        }
    }

    /// Display name for Chrome trace viewers (kind plus the variant
    /// that matters visually).
    pub fn display_name(&self) -> String {
        match self {
            TraceData::Gc { full: true, .. } => "gc.full".into(),
            TraceData::Gc { full: false, .. } => "gc.minor".into(),
            TraceData::Signal { reduce: true } => "signal.reduce".into(),
            TraceData::Signal { reduce: false } => "signal.grow".into(),
            TraceData::Shed { reason, .. } => format!("shed.{reason}"),
            TraceData::Breaker { state, .. } => format!("breaker.{state}"),
            TraceData::Propose { .. } => "smr.propose".into(),
            TraceData::Replicate { .. } => "smr.replicate".into(),
            TraceData::SmrAck { .. } => "smr.ack".into(),
            TraceData::Commit { .. } => "smr.commit".into(),
            TraceData::ViewChange { .. } => "smr.view_change".into(),
            other => other.kind().into(),
        }
    }

    /// The causal link carried by this payload, if any.
    pub fn cause(&self) -> EventId {
        match self {
            TraceData::VictimMarked { cause, .. }
            | TraceData::Interrupted { cause, .. }
            | TraceData::Serialized { cause, .. }
            | TraceData::Activated { cause, .. }
            | TraceData::Breaker { cause, .. }
            | TraceData::Brownout { cause, .. }
            | TraceData::Replicate { cause, .. }
            | TraceData::SmrAck { cause, .. }
            | TraceData::Commit { cause, .. }
            | TraceData::ViewChange { cause, .. } => *cause,
            _ => EventId::NONE,
        }
    }

    /// Payload fields as `"key":value` JSON pairs (no braces), shared
    /// by the Chrome and JSONL writers so both stay in sync.
    pub fn args_json(&self) -> String {
        match self {
            TraceData::Gc {
                full,
                reclaimed,
                free_after,
                useless,
            } => format!(
                "\"full\":{full},\"reclaimed\":{reclaimed},\"free_after\":{free_after},\"useless\":{useless}"
            ),
            TraceData::Oom { requested, free } => {
                format!("\"requested\":{requested},\"free\":{free}")
            }
            TraceData::Signal { reduce } => format!("\"reduce\":{reduce}"),
            TraceData::VictimMarked { task, cause } => {
                format!("\"task\":{task},\"cause\":{}", cause.0)
            }
            TraceData::Interrupted {
                task,
                emergency,
                cause,
            } => format!(
                "\"task\":{task},\"emergency\":{emergency},\"cause\":{}",
                cause.0
            ),
            TraceData::Serialized {
                partition,
                freed,
                cause,
            } => format!(
                "\"partition\":{partition},\"freed\":{freed},\"cause\":{}",
                cause.0
            ),
            TraceData::Activated {
                task,
                partitions,
                cause,
            } => format!(
                "\"task\":{task},\"partitions\":{partitions},\"cause\":{}",
                cause.0
            ),
            TraceData::CorruptionRecovered { partition } => {
                format!("\"partition\":{partition}")
            }
            TraceData::CrashSalvaged { task } => format!("\"task\":{task}"),
            TraceData::ThreadQuantum { running } => format!("\"running\":{running}"),
            TraceData::NodeCrash => String::new(),
            TraceData::Rehome { partition, from } => {
                format!("\"partition\":{partition},\"from\":{from}")
            }
            TraceData::Shuffle {
                batches,
                bytes,
                wire_ns,
            } => format!("\"batches\":{batches},\"bytes\":{bytes},\"wire_ns\":{wire_ns}"),
            TraceData::FrameChunk { tuples } => format!("\"tuples\":{tuples}"),
            TraceData::JobSubmitted { tenant } => format!("\"tenant\":{tenant}"),
            TraceData::Admitted { tenant, wait_ns } => {
                format!("\"tenant\":{tenant},\"wait_ns\":{wait_ns}")
            }
            TraceData::JobCompleted { tenant, latency_ns } => {
                format!("\"tenant\":{tenant},\"latency_ns\":{latency_ns}")
            }
            TraceData::JobFailed { tenant, oom, retry } => {
                format!("\"tenant\":{tenant},\"oom\":{oom},\"retry\":{retry}")
            }
            TraceData::Shed { tenant, reason } => {
                format!("\"tenant\":{tenant},\"reason\":\"{reason}\"")
            }
            TraceData::Storm {
                omes,
                full_gcs,
                useless_gcs,
            } => format!("\"omes\":{omes},\"full_gcs\":{full_gcs},\"useless_gcs\":{useless_gcs}"),
            TraceData::Breaker { state, cause } => {
                format!("\"state\":\"{state}\",\"cause\":{}", cause.0)
            }
            TraceData::Brownout { rounds, cause } => {
                format!("\"rounds\":{rounds},\"cause\":{}", cause.0)
            }
            TraceData::Propose { index, view } => {
                format!("\"index\":{index},\"view\":{view}")
            }
            TraceData::Replicate { index, to, cause } => {
                format!("\"index\":{index},\"to\":{to},\"cause\":{}", cause.0)
            }
            TraceData::SmrAck { index, cause } => {
                format!("\"index\":{index},\"cause\":{}", cause.0)
            }
            TraceData::Commit {
                index,
                latency_ns,
                cause,
            } => format!(
                "\"index\":{index},\"latency_ns\":{latency_ns},\"cause\":{}",
                cause.0
            ),
            TraceData::ViewChange {
                view,
                leader,
                cause,
            } => format!("\"view\":{view},\"leader\":{leader},\"cause\":{}", cause.0),
            TraceData::Metric { metric, op } => {
                use crate::metrics::MetricOp;
                let (op_name, value) = match op {
                    MetricOp::CounterAdd(n) => ("add", *n as i64),
                    MetricOp::GaugeSet(v) => ("set", *v),
                    MetricOp::GaugeAdd(d) => ("adj", *d),
                    MetricOp::Observe(v) => ("observe", *v as i64),
                };
                format!(
                    "\"metric\":\"{}\",\"op\":\"{op_name}\",\"value\":{value}",
                    metric.name()
                )
            }
        }
    }
}

/// One trace event: identity, placement, virtual span and payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Per-run monotonic id (never `NONE` for an emitted event).
    pub id: EventId,
    /// The node it happened on (`None` for cluster-wide events).
    pub node: Option<NodeId>,
    /// The allocation scope / service job it belongs to, if any.
    pub scope: Option<u64>,
    /// Virtual start time.
    pub at: SimTime,
    /// Virtual duration (`ZERO` for instantaneous events).
    pub dur: SimDuration,
    /// The typed payload.
    pub data: TraceData,
}

/// A harvested run trace: the run's label plus its merged events.
pub type RunTrace = Vec<Event>;

static ENABLED: AtomicBool = AtomicBool::new(false);

thread_local! {
    static RUN: RefCell<Option<RunBuf>> = const { RefCell::new(None) };
    static STREAM: RefCell<Option<StreamBuf>> = const { RefCell::new(None) };
}

#[derive(Default)]
struct RunBuf {
    next: u64,
    events: Vec<Event>,
}

/// A per-node stream overlay: while installed, emissions on this thread
/// get ids namespaced under `stream` instead of drawing from the run
/// buffer's driver sequence.
struct StreamBuf {
    stream: u32,
    next: u64,
    events: Vec<Event>,
}

/// Turns tracing on process-wide. Emission still requires a per-run
/// buffer installed via [`begin_run`] on the emitting thread.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns tracing off.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether tracing is on (single relaxed load — the entire disabled-path
/// cost of every emission site).
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Whether the shared event buffers are armed at all: tracing *or* the
/// metrics plane. Buffer install/harvest machinery keys off this;
/// [`emit`] itself stays gated on [`is_enabled`] so trace events vanish
/// under metrics-only arming.
#[inline]
pub(crate) fn armed() -> bool {
    is_enabled() || crate::metrics::is_enabled()
}

/// Installs a fresh event buffer for the run about to execute on this
/// thread (no-op while both tracing and metrics are disabled). The
/// sweep executor calls this immediately before each run closure.
pub fn begin_run() {
    if armed() {
        RUN.with(|r| *r.borrow_mut() = Some(RunBuf::default()));
    }
}

/// Harvests the current run's events, merged in deterministic
/// `(time, node, seq)` order, and uninstalls the buffer. Returns `None`
/// when no buffer was installed (tracing disabled).
pub fn take_run() -> Option<RunTrace> {
    let buf = RUN.with(|r| r.borrow_mut().take())?;
    let mut events = buf.events;
    events.sort_by_key(|e| (e.at, e.node.map_or(u32::MAX, |n| n.0), e.id));
    Some(events)
}

/// Installs a stream overlay on this thread: until [`stream_take`],
/// emissions get ids `(stream << 32) | seq` with `seq` continuing from
/// `next`. The shard executor wraps each node round in the node's own
/// stream (stream `n + 1`; 0 is the driver), making every event id
/// independent of which OS thread — and which `--shards` count — ran
/// the round. No-op while both tracing and metrics are disabled.
pub fn stream_begin(stream: u32, next: u64) {
    if armed() {
        STREAM.with(|s| {
            *s.borrow_mut() = Some(StreamBuf {
                stream,
                next,
                events: Vec::new(),
            })
        });
    }
}

/// Uninstalls this thread's stream overlay, returning the continuation
/// sequence and the events captured since [`stream_begin`]. Returns
/// `(next, empty)` when no overlay was installed (tracing disabled) —
/// callers thread `next` back through unconditionally.
pub fn stream_take(next: u64) -> (u64, Vec<Event>) {
    match STREAM.with(|s| s.borrow_mut().take()) {
        Some(buf) => (buf.next, buf.events),
        None => (next, Vec::new()),
    }
}

/// Appends already-stamped events (a harvested stream segment) into the
/// current run's buffer. The merge order is recovered at [`take_run`];
/// segments may be absorbed in any order. Dropped while disabled or
/// outside a run.
pub fn absorb(events: Vec<Event>) {
    if !armed() || events.is_empty() {
        return;
    }
    RUN.with(|r| {
        if let Some(buf) = r.borrow_mut().as_mut() {
            buf.events.extend(events);
        }
    });
}

/// Emits one event into the current run's buffer, returning its id.
/// Returns [`EventId::NONE`] while disabled or outside a run.
pub fn emit(
    node: Option<NodeId>,
    scope: Option<u64>,
    at: SimTime,
    dur: SimDuration,
    data: TraceData,
) -> EventId {
    if !is_enabled() {
        return EventId::NONE;
    }
    emit_raw(node, scope, at, dur, data)
}

/// Appends one event regardless of the trace-enable flag — the metrics
/// plane gates on its own flag and shares these buffers so metric
/// updates get the same deterministic ids as trace events. Still a
/// no-op (returning [`EventId::NONE`]) outside an installed buffer.
pub(crate) fn emit_raw(
    node: Option<NodeId>,
    scope: Option<u64>,
    at: SimTime,
    dur: SimDuration,
    data: TraceData,
) -> EventId {
    // A stream overlay (a node round executing under the shard
    // executor) captures the event with a namespaced id; otherwise the
    // run buffer's driver sequence (stream 0) applies.
    let streamed = STREAM.with(|s| {
        let mut s = s.borrow_mut();
        s.as_mut().map(|buf| {
            buf.next += 1;
            let id = EventId(((buf.stream as u64) << 32) | buf.next);
            buf.events.push(Event {
                id,
                node,
                scope,
                at,
                dur,
                data: data.clone(),
            });
            id
        })
    });
    if let Some(id) = streamed {
        return id;
    }
    RUN.with(|r| {
        let mut r = r.borrow_mut();
        match r.as_mut() {
            Some(buf) => {
                buf.next += 1;
                let id = EventId(buf.next);
                buf.events.push(Event {
                    id,
                    node,
                    scope,
                    at,
                    dur,
                    data,
                });
                id
            }
            None => EventId::NONE,
        }
    })
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn node_i64(node: Option<NodeId>) -> i64 {
    node.map_or(-1, |n| n.0 as i64)
}

fn scope_json(scope: Option<u64>) -> String {
    scope.map_or_else(|| "null".into(), |s| s.to_string())
}

/// Opening bytes of a Chrome trace-event JSON document. Streamed
/// writers emit this once, then [`chrome_run`] fragments, then
/// [`CHROME_FOOTER`].
pub const CHROME_HEADER: &str = "{\"traceEvents\":[\n";

/// Closing bytes of a Chrome trace-event JSON document.
pub const CHROME_FOOTER: &str = "\n],\"displayTimeUnit\":\"ns\"}\n";

/// Renders one run's slice of the Chrome `traceEvents` array: process
/// and thread name metadata followed by every event row. `first` is
/// shared across runs so the comma separation stays valid when runs are
/// appended incrementally (it flips to `false` after the first row).
///
/// One process per run (`pid` = run index, named by the run label), one
/// thread per node (`tid` = node id; `-1` holds cluster-wide events).
/// Timestamps and durations are *virtual nanoseconds* written as
/// integers, so output is byte-identical across hosts and `--jobs`.
pub fn chrome_run(run: usize, label: &str, events: &RunTrace, first: &mut bool) -> String {
    let mut out = String::new();
    let push = |line: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&line);
    };
    push(
        format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{run},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
            json_escape(label)
        ),
        &mut out,
        first,
    );
    let mut nodes: Vec<i64> = events.iter().map(|e| node_i64(e.node)).collect();
    nodes.sort_unstable();
    nodes.dedup();
    for n in nodes {
        let name = if n < 0 {
            "cluster".to_string()
        } else {
            format!("node{n}")
        };
        push(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{run},\"tid\":{n},\"args\":{{\"name\":\"{name}\"}}}}"
            ),
            &mut out,
            first,
        );
    }
    for e in events {
        let args = e.data.args_json();
        let args = if args.is_empty() {
            format!("\"id\":{},\"scope\":{}", e.id.0, scope_json(e.scope))
        } else {
            format!("\"id\":{},\"scope\":{},{args}", e.id.0, scope_json(e.scope))
        };
        let line = if e.dur.is_zero() {
            format!(
                "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{run},\"tid\":{},\"ts\":{},\"args\":{{{args}}}}}",
                e.data.display_name(),
                node_i64(e.node),
                e.at.as_nanos(),
            )
        } else {
            format!(
                "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{run},\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{{args}}}}}",
                e.data.display_name(),
                node_i64(e.node),
                e.at.as_nanos(),
                e.dur.as_nanos(),
            )
        };
        push(line, &mut out, first);
    }
    out
}

/// Renders a set of harvested run traces as one complete Chrome
/// trace-event JSON document (header + every run + footer).
pub fn chrome_json(runs: &[(String, RunTrace)]) -> String {
    let mut out = String::from(CHROME_HEADER);
    let mut first = true;
    for (run, (label, events)) in runs.iter().enumerate() {
        out.push_str(&chrome_run(run, label, events, &mut first));
    }
    out.push_str(CHROME_FOOTER);
    out
}

/// Renders one run's compact JSONL lines: the run-header line
/// (`"kind":"run"`) followed by one line per event, in merged order.
/// Self-delimiting, so streamed writers append runs as they finish.
pub fn jsonl_run(run: usize, label: &str, events: &RunTrace) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"run\":{run},\"kind\":\"run\",\"label\":\"{}\",\"events\":{}}}\n",
        json_escape(label),
        events.len()
    ));
    for e in events {
        let args = e.data.args_json();
        out.push_str(&format!(
            "{{\"run\":{run},\"id\":{},\"kind\":\"{}\",\"node\":{},\"scope\":{},\"ts\":{},\"dur\":{}{}{}}}\n",
            e.id.0,
            e.data.kind(),
            node_i64(e.node),
            scope_json(e.scope),
            e.at.as_nanos(),
            e.dur.as_nanos(),
            if args.is_empty() { "" } else { "," },
            args,
        ));
    }
    out
}

/// Renders the whole JSONL twin for a set of runs. This is the format
/// `tracectl` consumes.
pub fn jsonl(runs: &[(String, RunTrace)]) -> String {
    let mut out = String::new();
    for (run, (label, events)) in runs.iter().enumerate() {
        out.push_str(&jsonl_run(run, label, events));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tracer state is process-global; tests serialize on this lock.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_emission_is_a_noop() {
        let _g = lock();
        disable();
        begin_run();
        let id = emit(
            None,
            None,
            SimTime::ZERO,
            SimDuration::ZERO,
            TraceData::NodeCrash,
        );
        assert_eq!(id, EventId::NONE);
        assert!(take_run().is_none());
    }

    #[test]
    fn metrics_arming_installs_buffers_but_hides_trace_events() {
        let _g = lock();
        disable();
        crate::metrics::enable();
        begin_run();
        // Trace emission stays a no-op under metrics-only arming, so
        // unguarded emit call sites go silent when just --metrics is on.
        let id = emit(
            None,
            None,
            SimTime::ZERO,
            SimDuration::ZERO,
            TraceData::NodeCrash,
        );
        assert_eq!(id, EventId::NONE);
        crate::metrics::counter_add(
            Some(NodeId(1)),
            crate::metrics::Metric::MemGcCount,
            SimTime::from_nanos(5),
            2,
        );
        let run = take_run().unwrap();
        crate::metrics::disable();
        assert_eq!(run.len(), 1);
        assert!(matches!(run[0].data, TraceData::Metric { .. }));
        assert_eq!(run[0].id, EventId(1), "metric ops draw from the run ids");
    }

    #[test]
    fn emission_outside_a_run_is_dropped() {
        let _g = lock();
        enable();
        // No begin_run: the buffer is absent on this thread.
        let _ = take_run();
        let id = emit(
            None,
            None,
            SimTime::ZERO,
            SimDuration::ZERO,
            TraceData::NodeCrash,
        );
        assert_eq!(id, EventId::NONE);
        disable();
    }

    #[test]
    fn ids_are_monotonic_and_merge_order_is_time_node_seq() {
        let _g = lock();
        enable();
        begin_run();
        let a = emit(
            Some(NodeId(1)),
            None,
            SimTime::from_nanos(10),
            SimDuration::ZERO,
            TraceData::Signal { reduce: true },
        );
        let b = emit(
            Some(NodeId(0)),
            Some(7),
            SimTime::from_nanos(10),
            SimDuration::from_nanos(5),
            TraceData::Gc {
                full: true,
                reclaimed: 100,
                free_after: 50,
                useless: false,
            },
        );
        let c = emit(
            None,
            None,
            SimTime::from_nanos(5),
            SimDuration::ZERO,
            TraceData::Shuffle {
                batches: 1,
                bytes: 2,
                wire_ns: 3,
            },
        );
        assert!(a.is_some() && b.is_some() && c.is_some());
        assert!(a < b && b < c);
        let run = take_run().unwrap();
        // c first (earlier time), then b (node 0 before node 1), then a.
        assert_eq!(run.iter().map(|e| e.id).collect::<Vec<_>>(), vec![c, b, a]);
        disable();
    }

    #[test]
    fn begin_run_resets_ids_and_buffer() {
        let _g = lock();
        enable();
        begin_run();
        emit(
            None,
            None,
            SimTime::ZERO,
            SimDuration::ZERO,
            TraceData::NodeCrash,
        );
        begin_run();
        let id = emit(
            None,
            None,
            SimTime::ZERO,
            SimDuration::ZERO,
            TraceData::NodeCrash,
        );
        assert_eq!(id, EventId(1));
        let run = take_run().unwrap();
        assert_eq!(run.len(), 1);
        assert!(take_run().is_none(), "buffer uninstalls on harvest");
        disable();
    }

    #[test]
    fn writers_render_stable_json() {
        let _g = lock();
        enable();
        begin_run();
        emit(
            Some(NodeId(0)),
            Some(3),
            SimTime::from_nanos(100),
            SimDuration::from_nanos(40),
            TraceData::Gc {
                full: false,
                reclaimed: 10,
                free_after: 90,
                useless: false,
            },
        );
        emit(
            Some(NodeId(0)),
            None,
            SimTime::from_nanos(200),
            SimDuration::ZERO,
            TraceData::Interrupted {
                task: 2,
                emergency: false,
                cause: EventId(1),
            },
        );
        let run = take_run().unwrap();
        disable();
        let runs = vec![("quick \"wc\"".to_string(), run)];
        let chrome = chrome_json(&runs);
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.contains("\"name\":\"gc.minor\""));
        assert!(chrome.contains("\"ph\":\"X\""));
        assert!(chrome.contains("\"ph\":\"i\""));
        assert!(chrome.contains("quick \\\"wc\\\""));
        assert!(chrome.contains("\"cause\":1"));
        let lines = jsonl(&runs);
        assert!(lines.starts_with("{\"run\":0,\"kind\":\"run\""));
        assert_eq!(lines.lines().count(), 3);
        assert!(lines.contains("\"kind\":\"interrupt\""));
    }

    #[test]
    fn overload_variants_render_and_link() {
        let _g = lock();
        enable();
        begin_run();
        let storm = emit(
            Some(NodeId(2)),
            None,
            SimTime::from_nanos(10),
            SimDuration::ZERO,
            TraceData::Storm {
                omes: 3,
                full_gcs: 2,
                useless_gcs: 1,
            },
        );
        emit(
            Some(NodeId(2)),
            None,
            SimTime::from_nanos(20),
            SimDuration::ZERO,
            TraceData::Breaker {
                state: "open",
                cause: storm,
            },
        );
        emit(
            None,
            None,
            SimTime::from_nanos(30),
            SimDuration::ZERO,
            TraceData::Shed {
                tenant: 4,
                reason: "deadline",
            },
        );
        emit(
            None,
            None,
            SimTime::from_nanos(5),
            SimDuration::from_nanos(40),
            TraceData::Brownout {
                rounds: 7,
                cause: storm,
            },
        );
        let run = take_run().unwrap();
        disable();
        // Merged order is (time, node, seq): brownout (t=5) sorts first,
        // then storm, breaker, shed — both linked events cite the storm.
        assert_eq!(run[0].data.cause(), storm, "brownout links to its storm");
        assert_eq!(run[2].data.cause(), storm, "breaker links to its storm");
        let runs = vec![("overload".to_string(), run)];
        let lines = jsonl(&runs);
        assert!(lines.contains("\"kind\":\"storm\""));
        assert!(lines.contains("\"omes\":3,\"full_gcs\":2,\"useless_gcs\":1"));
        assert!(lines.contains("\"state\":\"open\""));
        assert!(lines.contains("\"reason\":\"deadline\""));
        assert!(lines.contains("\"rounds\":7"));
        let chrome = chrome_json(&runs);
        assert!(chrome.contains("\"name\":\"breaker.open\""));
        assert!(chrome.contains("\"name\":\"shed.deadline\""));
        assert!(chrome.contains("\"name\":\"brownout\""));
    }

    #[test]
    fn streamed_render_matches_whole_buffer() {
        let _g = lock();
        enable();
        let mut runs = Vec::new();
        for r in 0..3u64 {
            begin_run();
            emit(
                Some(NodeId(r as u32)),
                None,
                SimTime::from_nanos(r),
                SimDuration::ZERO,
                TraceData::NodeCrash,
            );
            runs.push((format!("run{r}"), take_run().unwrap()));
        }
        disable();
        // Appending per-run fragments must produce the same bytes as
        // the whole-buffer writers — the streaming writer's contract.
        let mut chrome = String::from(CHROME_HEADER);
        let mut first = true;
        let mut lines = String::new();
        for (i, (label, events)) in runs.iter().enumerate() {
            chrome.push_str(&chrome_run(i, label, events, &mut first));
            lines.push_str(&jsonl_run(i, label, events));
        }
        chrome.push_str(CHROME_FOOTER);
        assert_eq!(chrome, chrome_json(&runs));
        assert_eq!(lines, jsonl(&runs));
    }
}
