//! Deterministic randomness: a seeded RNG plus the skewed samplers the
//! workload generators need (Zipf ranks for hot keys, bounded Pareto for
//! record sizes) and a stable 64-bit hash for partitioning decisions.
//!
//! Nothing in the workspace may consult ambient entropy: every distribution
//! is driven by a [`DetRng`] constructed from an explicit seed so that each
//! table and figure regenerates bit-identically.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random number generator.
///
/// Thin wrapper over [`StdRng`] that can only be constructed from an
/// explicit seed, with convenience methods for the simulator's needs.
#[derive(Clone, Debug)]
pub struct DetRng {
    inner: StdRng,
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        DetRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator; `label` keeps sibling
    /// streams (e.g. per-split generators) decorrelated.
    pub fn fork(&mut self, label: u64) -> DetRng {
        let s = self.inner.next_u64() ^ stable_hash64(label);
        DetRng::new(s)
    }

    /// A uniform `u64` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        self.inner.gen_range(0..bound)
    }

    /// A uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "index(0)");
        self.inner.gen_range(0..bound)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen_range(0.0..1.0)
    }

    /// A uniform `u64` in `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_inclusive({lo}, {hi})");
        self.inner.gen_range(lo..=hi)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// A sample from a bounded Pareto distribution over `[lo, hi]` with
    /// shape `alpha`; used for heavy-tailed record sizes.
    ///
    /// # Panics
    ///
    /// Panics if `lo == 0`, `lo > hi`, or `alpha <= 0`.
    pub fn bounded_pareto(&mut self, lo: u64, hi: u64, alpha: f64) -> u64 {
        assert!(lo > 0 && lo <= hi, "bounded_pareto bounds");
        assert!(alpha > 0.0, "bounded_pareto alpha");
        let (l, h) = (lo as f64, hi as f64);
        let u = self.unit();
        let la = l.powf(alpha);
        let ha = h.powf(alpha);
        // Inverse-CDF of the bounded Pareto.
        let x = (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha);
        (x as u64).clamp(lo, hi)
    }
}

/// Precomputed inverse-CDF sampler for a Zipf distribution over ranks
/// `0..n` with exponent `s`.
///
/// Rank 0 is the most popular item. Used for word frequencies and hot keys.
#[derive(Clone, Debug)]
pub struct ZipfTable {
    cdf: Vec<f64>,
}

impl ZipfTable {
    /// Builds the cumulative table for `n` ranks and exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "ZipfTable over zero ranks");
        assert!(s >= 0.0, "negative Zipf exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfTable { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the table is empty (never true: construction requires n > 0).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `0..n`; rank 0 is the hottest.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let u = rng.unit();
        // First index whose cumulative mass reaches u.
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("NaN in CDF"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// The probability mass of `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn mass(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

/// A stable 64-bit mixer (splitmix64 finalizer).
///
/// Used wherever the simulator needs a hash that is identical across runs
/// and platforms — hash-partitioning tuples, deriving tags, forking RNGs.
pub const fn stable_hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Stable hash of a byte string (FNV-1a folded through splitmix64).
pub fn stable_hash_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    stable_hash64(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.below(1_000_000), b.below(1_000_000));
        }
    }

    #[test]
    fn forks_are_decorrelated() {
        let mut root = DetRng::new(7);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        let s1: Vec<u64> = (0..16).map(|_| c1.below(1000)).collect();
        let s2: Vec<u64> = (0..16).map(|_| c2.below(1000)).collect();
        assert_ne!(s1, s2);
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let table = ZipfTable::new(1000, 1.0);
        let mut rng = DetRng::new(123);
        let mut counts = vec![0u32; 1000];
        for _ in 0..20_000 {
            counts[table.sample(&mut rng)] += 1;
        }
        // Rank 0 must dominate rank 100 by a wide margin.
        assert!(counts[0] > 10 * counts[100].max(1));
        // Mass function sums to ~1.
        let total: f64 = (0..1000).map(|r| table.mass(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let table = ZipfTable::new(10, 0.0);
        for r in 0..10 {
            assert!((table.mass(r) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn bounded_pareto_respects_bounds() {
        let mut rng = DetRng::new(99);
        for _ in 0..10_000 {
            let v = rng.bounded_pareto(10, 10_000, 1.2);
            assert!((10..=10_000).contains(&v));
        }
    }

    #[test]
    fn bounded_pareto_is_heavy_tailed() {
        let mut rng = DetRng::new(5);
        let n = 50_000;
        let samples: Vec<u64> = (0..n)
            .map(|_| rng.bounded_pareto(10, 1_000_000, 1.1))
            .collect();
        let small = samples.iter().filter(|&&v| v < 100).count();
        let big = samples.iter().filter(|&&v| v > 100_000).count();
        // Most mass near the floor, but a real tail exists.
        assert!(small > n / 2);
        assert!(big > 0);
    }

    #[test]
    fn stable_hashes_are_stable() {
        assert_eq!(stable_hash64(0), stable_hash64(0));
        assert_ne!(stable_hash64(1), stable_hash64(2));
        assert_eq!(stable_hash_bytes(b"word"), stable_hash_bytes(b"word"));
        assert_ne!(stable_hash_bytes(b"word"), stable_hash_bytes(b"word2"));
    }
}
