//! A deterministic quantile sketch (Munro–Paterson style compacting
//! buffers) shared by every layer that accounts latencies.
//!
//! Originally private to `simserve` (SLO latency accounting), the
//! sketch moved here so the metrics plane ([`crate::metrics`]), the SMR
//! commit tail, and the trace analyzers all fold samples through one
//! implementation. Sorting every sample would be exact but O(n log n)
//! memory; a sketch with `k`-slot buffers per level keeps memory at
//! O(k log(n/k)) with a deterministic, platform-independent answer —
//! the same inserts in the same order always produce the same
//! quantiles, which the byte-identical tables and metric dumps depend
//! on.
//!
//! Exactness: with fewer than `k` samples everything sits in level 0
//! with weight 1, so quantiles are exact order statistics — the common
//! case for per-tenant latencies in a bounded sweep.

/// Deterministic quantile sketch over `u64` samples.
#[derive(Clone, Debug)]
pub struct QuantileSketch {
    /// Buffer capacity per level (compaction threshold).
    k: usize,
    /// levels[l] holds values of weight `2^l`, unsorted between carries.
    levels: Vec<Vec<u64>>,
    /// Per-level survivor-offset toggle (alternates to cancel the
    /// half-sample bias of each compaction).
    toggles: Vec<bool>,
    count: u64,
    min: u64,
    max: u64,
}

impl QuantileSketch {
    /// Default buffer size: exact up to 256 samples, ~2KB per level after.
    pub const DEFAULT_K: usize = 256;

    /// Creates an empty sketch with buffer capacity `k` (min 2, rounded
    /// up to even so compaction halves exactly).
    pub fn new(k: usize) -> Self {
        let k = k.max(2) + (k.max(2) & 1);
        QuantileSketch {
            k,
            levels: vec![Vec::new()],
            toggles: vec![false],
            count: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Number of samples inserted.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether any sample was inserted.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest sample (`0` when empty).
    pub fn min(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (`0` when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Inserts one sample.
    pub fn insert(&mut self, v: u64) {
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.levels[0].push(v);
        self.carry(0);
    }

    /// Merges another sketch into this one (buffer capacities need not
    /// match; the receiver's `k` governs).
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.is_empty() {
            return;
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (level, vals) in other.levels.iter().enumerate() {
            while self.levels.len() <= level {
                self.levels.push(Vec::new());
                self.toggles.push(false);
            }
            self.levels[level].extend_from_slice(vals);
            self.carry(level);
        }
    }

    /// The `q`-quantile (`0.0 ≤ q ≤ 1.0`) as a weighted rank walk over
    /// the sketch's (value, weight) pairs. Returns `0` when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.is_empty() {
            return 0;
        }
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        let mut pairs: Vec<(u64, u64)> = Vec::new();
        let mut total: u64 = 0;
        for (level, vals) in self.levels.iter().enumerate() {
            let w = 1u64 << level;
            for &v in vals {
                pairs.push((v, w));
                total += w;
            }
        }
        pairs.sort_unstable();
        // Target rank in [1, total]; integer arithmetic keeps the walk
        // exactly reproducible.
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (v, w) in pairs {
            seen += w;
            if seen >= target {
                return v;
            }
        }
        self.max
    }

    /// One deterministic read of the whole distribution: count, range
    /// and the standard reporting quantiles (p50/p90/p99/p99.9). Every
    /// consumer — `metricsctl` rollups, `tracectl` tail lines, the
    /// OpenMetrics snapshot — reads this instead of re-deriving its own
    /// quantile set.
    pub fn snapshot(&self) -> SketchSnapshot {
        SketchSnapshot {
            count: self.count(),
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.5),
            p90: self.quantile(0.9),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
        }
    }

    /// Compacts `level` (and cascades) while it is at capacity: the
    /// buffer is sorted and every other value is promoted with doubled
    /// weight, alternating the surviving offset per carry.
    fn carry(&mut self, mut level: usize) {
        while self.levels[level].len() >= self.k {
            if self.levels.len() <= level + 1 {
                self.levels.push(Vec::new());
                self.toggles.push(false);
            }
            let mut buf = std::mem::take(&mut self.levels[level]);
            buf.sort_unstable();
            let offset = usize::from(self.toggles[level]);
            self.toggles[level] = !self.toggles[level];
            // Odd leftover (merge can overfill past an even k) stays put.
            if buf.len() % 2 == 1 {
                let last = buf.pop().expect("non-empty buffer");
                self.levels[level].push(last);
            }
            let promoted: Vec<u64> = buf.iter().copied().skip(offset).step_by(2).collect();
            self.levels[level + 1].extend(promoted);
            level += 1;
        }
    }
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new(Self::DEFAULT_K)
    }
}

/// A point-in-time summary of a [`QuantileSketch`] (nanosecond samples
/// unless a caller says otherwise).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SketchSnapshot {
    /// Samples folded in.
    pub count: u64,
    /// Smallest sample (`0` when empty).
    pub min: u64,
    /// Largest sample (`0` when empty).
    pub max: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

/// Formats virtual nanoseconds as milliseconds with 3 decimals —
/// the shared rendering every latency line uses.
pub fn fmt_ms(ns: u64) -> String {
    format!("{:.3}ms", ns as f64 / 1e6)
}

impl SketchSnapshot {
    /// The body-quantile latency line (`n=.. p50=.. p90=.. max=..`)
    /// used by per-run rollups; `"n=0"` when empty.
    pub fn mid_line(&self) -> String {
        if self.count == 0 {
            "n=0".to_string()
        } else {
            format!(
                "n={:<5} p50={:<10} p90={:<10} max={}",
                self.count,
                fmt_ms(self.p50),
                fmt_ms(self.p90),
                fmt_ms(self.max),
            )
        }
    }

    /// Like [`SketchSnapshot::mid_line`] but with the tail quantiles an
    /// SLO lens needs: commit latencies are judged at p99/p99.9, not
    /// p90.
    pub fn tail_line(&self) -> String {
        if self.count == 0 {
            "n=0".to_string()
        } else {
            format!(
                "n={:<5} p50={:<10} p99={:<10} p99.9={:<10} max={}",
                self.count,
                fmt_ms(self.p50),
                fmt_ms(self.p99),
                fmt_ms(self.p999),
                fmt_ms(self.max),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_capacity() {
        let mut s = QuantileSketch::new(64);
        for v in (1..=50u64).rev() {
            s.insert(v * 10);
        }
        assert_eq!(s.count(), 50);
        assert_eq!(s.min(), 10);
        assert_eq!(s.max(), 500);
        assert_eq!(s.quantile(0.5), 250);
        assert_eq!(s.quantile(0.0), 10);
        assert_eq!(s.quantile(1.0), 500);
        // Exact order statistics: q=0.02 is the 1st of 50.
        assert_eq!(s.quantile(0.02), 10);
        assert_eq!(s.quantile(0.98), 490);
    }

    #[test]
    fn empty_sketch_answers_zero() {
        let s = QuantileSketch::default();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.snapshot(), SketchSnapshot::default());
        assert_eq!(s.snapshot().mid_line(), "n=0");
        assert_eq!(s.snapshot().tail_line(), "n=0");
    }

    #[test]
    fn compacted_quantiles_stay_close() {
        let mut s = QuantileSketch::new(32);
        // 10_000 samples of a known uniform ramp, inserted in a
        // scrambled but deterministic order.
        let n = 10_000u64;
        for i in 0..n {
            s.insert((i * 7919) % n);
        }
        assert_eq!(s.count(), n);
        for (q, want) in [(0.5, n / 2), (0.95, n * 95 / 100), (0.99, n * 99 / 100)] {
            let got = s.quantile(q);
            let err = got.abs_diff(want) as f64 / n as f64;
            assert!(err < 0.05, "q={q}: got {got}, want ~{want}");
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let build = || {
            let mut s = QuantileSketch::new(16);
            for i in 0..5_000u64 {
                s.insert(i.wrapping_mul(6364136223846793005).wrapping_add(i) % 100_000);
            }
            (s.quantile(0.5), s.quantile(0.95), s.quantile(0.99))
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn merge_matches_sequential_insertion() {
        let mut all = QuantileSketch::new(16);
        let mut a = QuantileSketch::new(16);
        let mut b = QuantileSketch::new(16);
        for i in 0..2_000u64 {
            let v = (i * 31) % 977;
            all.insert(v);
            if i % 2 == 0 {
                a.insert(v);
            } else {
                b.insert(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        for q in [0.5, 0.95, 0.99] {
            let (ma, mb) = (a.quantile(q), all.quantile(q));
            let err = ma.abs_diff(mb) as f64 / 977.0;
            assert!(err < 0.08, "q={q}: merged {ma} vs sequential {mb}");
        }
    }

    #[test]
    fn merge_is_associative_within_error() {
        // Compaction toggles make the two association orders distinct
        // code paths; counts/extrema must agree exactly and quantiles
        // within the sketch's error envelope.
        let part = |seed: u64| {
            let mut s = QuantileSketch::new(16);
            for i in 0..1_500u64 {
                s.insert((i.wrapping_mul(2862933555777941757).wrapping_add(seed)) % 10_000);
            }
            s
        };
        let (a, b, c) = (part(1), part(2), part(3));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left.count(), right.count());
        assert_eq!(left.min(), right.min());
        assert_eq!(left.max(), right.max());
        for q in [0.5, 0.9, 0.99] {
            let (l, r) = (left.quantile(q), right.quantile(q));
            let err = l.abs_diff(r) as f64 / 10_000.0;
            assert!(err < 0.08, "q={q}: (a+b)+c={l} vs a+(b+c)={r}");
        }
    }

    #[test]
    fn snapshot_lines_render_quantiles() {
        let mut s = QuantileSketch::new(1024);
        for i in 1..=1000u64 {
            s.insert(i * 1_000_000); // 1..=1000 ms
        }
        let snap = s.snapshot();
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.p50, 500_000_000);
        assert_eq!(snap.p99, s.quantile(0.99));
        assert_eq!(snap.p999, s.quantile(0.999));
        let tail = snap.tail_line();
        assert!(tail.starts_with("n=1000  p50=500.000ms"), "{tail}");
        assert!(tail.contains("p99.9="), "{tail}");
        assert!(tail.ends_with("max=1000.000ms"), "{tail}");
        let mid = snap.mid_line();
        assert!(mid.starts_with("n=1000  p50=500.000ms"), "{mid}");
        assert!(mid.ends_with("max=1000.000ms"), "{mid}");
        assert_eq!(fmt_ms(1_500_000), "1.500ms");
    }
}
