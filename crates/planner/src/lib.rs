#![warn(missing_docs)]

//! A declarative query layer over the ITask runtime.
//!
//! The paper closes §4.3 with: *"an important and promising future
//! direction is to modify the compilers of those high-level languages to
//! make them automatically generate ITask code."* This crate implements
//! that direction at small scale: a logical plan — flat-map into keyed
//! contributions, then an aggregation — is compiled into the same
//! interruptible map / reduce / merge pipeline the hand-written
//! applications use, with the interrupt logic (flush on map interrupts,
//! tag-and-queue on reduce interrupts, self-requeue on merge interrupts)
//! generated for free.
//!
//! # Examples
//!
//! Revenue per order over TPC-H line items, as one expression:
//!
//! ```
//! use planner::Query;
//! use workloads::tpch::LineItem;
//!
//! let q = Query::<LineItem>::named("revenue_by_order")
//!     .flat_map(|li, out| {
//!         out.push((li.orderkey, li.extendedprice as u64 * li.quantity as u64))
//!     })
//!     .sum();
//! // q.run_itask(&params, inputs) / q.run_regular(&params, inputs)
//! ```

use std::sync::Arc;

use apps::agg::AggSpec;
use apps::hyracks_apps::{run_itask_spec, run_regular_spec, HyracksParams};
use apps::{CountMid, ListMid, OutKv, RunSummary};
use itask_core::Tuple;

/// Emits `(key, value)` contributions for one input record.
pub type FlatMapFn<In> = Arc<dyn Fn(&In, &mut Vec<(u64, u64)>) + Send + Sync>;

/// Reduces a group's collected values to one output value.
pub type FinishFn = Arc<dyn Fn(&[u64]) -> u64 + Send + Sync>;

/// A named logical query over records of type `In`.
pub struct Query<In> {
    name: &'static str,
    _marker: std::marker::PhantomData<fn(&In)>,
}

impl<In: Tuple> Query<In> {
    /// Starts a query plan.
    pub fn named(name: &'static str) -> Self {
        Query {
            name,
            _marker: std::marker::PhantomData,
        }
    }

    /// Adds the keying stage: `f` turns each record into zero or more
    /// `(key, value)` contributions.
    pub fn flat_map(
        self,
        f: impl Fn(&In, &mut Vec<(u64, u64)>) + Send + Sync + 'static,
    ) -> KeyedQuery<In> {
        KeyedQuery {
            name: self.name,
            flat_map: Arc::new(f),
        }
    }
}

/// A keyed plan awaiting its aggregation.
pub struct KeyedQuery<In> {
    name: &'static str,
    flat_map: FlatMapFn<In>,
}

impl<In: Tuple> KeyedQuery<In> {
    /// Counts contributions per key (values are ignored).
    pub fn count(self) -> FoldQuery<In> {
        FoldQuery {
            name: self.name,
            flat_map: self.flat_map,
            count_only: true,
            entry_bytes: FOLD_ENTRY,
        }
    }

    /// Sums contribution values per key.
    pub fn sum(self) -> FoldQuery<In> {
        FoldQuery {
            name: self.name,
            flat_map: self.flat_map,
            count_only: false,
            entry_bytes: FOLD_ENTRY,
        }
    }

    /// Collects each key's values and reduces them with `finish` at the
    /// very end (the collect-then-aggregate pattern — the memory-hungry
    /// shape of §2's "large intermediate results").
    pub fn collect(
        self,
        finish: impl Fn(&[u64]) -> u64 + Send + Sync + 'static,
    ) -> CollectQuery<In> {
        CollectQuery {
            name: self.name,
            flat_map: self.flat_map,
            finish: Arc::new(finish),
            entry_bytes: COLLECT_ENTRY,
            item_bytes: COLLECT_ITEM,
        }
    }
}

/// Simulated footprint of a fold entry (`key → running value`).
const FOLD_ENTRY: u32 = 136;
/// Simulated footprint of a collect entry base.
const COLLECT_ENTRY: u32 = 176;
/// Simulated footprint per collected value.
const COLLECT_ITEM: u32 = 40;

/// A compiled additive-aggregation plan (count / sum).
pub struct FoldQuery<In> {
    name: &'static str,
    flat_map: FlatMapFn<In>,
    count_only: bool,
    /// Simulated bytes per aggregation-table entry.
    pub entry_bytes: u32,
}

impl<In> Clone for FoldQuery<In> {
    fn clone(&self) -> Self {
        FoldQuery {
            name: self.name,
            flat_map: self.flat_map.clone(),
            count_only: self.count_only,
            entry_bytes: self.entry_bytes,
        }
    }
}

impl<In: Tuple + Clone> AggSpec for FoldQuery<In> {
    type In = In;
    type Mid = CountMid;
    type Out = OutKv;

    fn name(&self) -> &'static str {
        self.name
    }

    fn explode(&self, rec: &In, out: &mut Vec<CountMid>) {
        let mut kvs = Vec::new();
        (self.flat_map)(rec, &mut kvs);
        for (k, v) in kvs {
            let count = if self.count_only { 1 } else { v };
            out.push(CountMid {
                key: k,
                count,
                entry_bytes: self.entry_bytes,
            });
        }
    }

    fn finish(&self, mid: CountMid) -> OutKv {
        OutKv {
            key: mid.key,
            value: mid.count,
        }
    }
}

/// A compiled collect-then-reduce plan.
pub struct CollectQuery<In> {
    name: &'static str,
    flat_map: FlatMapFn<In>,
    finish: FinishFn,
    /// Simulated bytes per group entry.
    pub entry_bytes: u32,
    /// Simulated bytes per collected value.
    pub item_bytes: u32,
}

impl<In> Clone for CollectQuery<In> {
    fn clone(&self) -> Self {
        CollectQuery {
            name: self.name,
            flat_map: self.flat_map.clone(),
            finish: self.finish.clone(),
            entry_bytes: self.entry_bytes,
            item_bytes: self.item_bytes,
        }
    }
}

impl<In: Tuple + Clone> AggSpec for CollectQuery<In> {
    type In = In;
    type Mid = ListMid;
    type Out = OutKv;

    fn name(&self) -> &'static str {
        self.name
    }

    fn explode(&self, rec: &In, out: &mut Vec<ListMid>) {
        let mut kvs = Vec::new();
        (self.flat_map)(rec, &mut kvs);
        for (k, v) in kvs {
            out.push(ListMid::one(k, v, self.entry_bytes, self.item_bytes));
        }
    }

    fn finish(&self, mid: ListMid) -> OutKv {
        OutKv {
            key: mid.key,
            value: (self.finish)(&mid.items),
        }
    }
}

/// Execution entry points shared by both compiled plan kinds.
pub trait RunnableQuery: AggSpec<Out = OutKv> + Sized {
    /// Runs the generated *ITask* pipeline on a Hyracks cluster.
    fn run_itask(
        &self,
        params: &HyracksParams,
        inputs: Vec<Vec<Vec<Self::In>>>,
    ) -> RunSummary<OutKv> {
        run_itask_spec(self, params, inputs)
    }

    /// Runs the equivalent regular (non-interruptible) pipeline.
    fn run_regular(
        &self,
        params: &HyracksParams,
        inputs: Vec<Vec<Vec<Self::In>>>,
    ) -> RunSummary<OutKv> {
        run_regular_spec(self, params, inputs)
    }
}

impl<In: Tuple + Clone> RunnableQuery for FoldQuery<In> {}
impl<In: Tuple + Clone> RunnableQuery for CollectQuery<In> {}

#[cfg(test)]
mod tests {
    use super::*;
    use apps::MergeableTuple;

    #[derive(Clone, Copy)]
    struct R(u64);

    impl Tuple for R {
        fn heap_bytes(&self) -> u64 {
            32
        }
    }

    #[test]
    fn count_plan_emits_unit_contributions() {
        let q = Query::<R>::named("c")
            .flat_map(|r, out| out.push((r.0 % 4, 99)))
            .count();
        let mut out = Vec::new();
        q.explode(&R(6), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].key(), 2);
        assert_eq!(out[0].count, 1, "count ignores the value");
    }

    #[test]
    fn sum_plan_accumulates_values() {
        let q = Query::<R>::named("s")
            .flat_map(|r, out| out.push((0, r.0)))
            .sum();
        let mut a = Vec::new();
        q.explode(&R(5), &mut a);
        let mut b = Vec::new();
        q.explode(&R(7), &mut b);
        let mut acc = a.pop().unwrap();
        acc.merge(b.pop().unwrap());
        assert_eq!(q.finish(acc).value, 12);
    }

    #[test]
    fn collect_plan_applies_the_finisher() {
        let q = Query::<R>::named("max")
            .flat_map(|r, out| out.push((1, r.0)))
            .collect(|vals| vals.iter().copied().max().unwrap_or(0));
        let mut acc = Vec::new();
        q.explode(&R(3), &mut acc);
        let mut more = Vec::new();
        q.explode(&R(11), &mut more);
        let mut mid = acc.pop().unwrap();
        mid.merge(more.pop().unwrap());
        let out = q.finish(mid);
        assert_eq!(out.value, 11);
    }

    #[test]
    fn flat_map_may_emit_many_or_none() {
        let q = Query::<R>::named("fan")
            .flat_map(|r, out| {
                for i in 0..r.0 {
                    out.push((i, 1));
                }
            })
            .count();
        let mut out = Vec::new();
        q.explode(&R(0), &mut out);
        assert!(out.is_empty());
        q.explode(&R(5), &mut out);
        assert_eq!(out.len(), 5);
    }
}
