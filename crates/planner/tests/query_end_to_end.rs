//! End-to-end planner tests: compiled queries run through the real
//! engines and must agree with direct computation — with and without
//! memory pressure, in both regular and generated-ITask form.

use std::collections::BTreeMap;

use apps::hyracks_apps::HyracksParams;
use planner::{Query, RunnableQuery};
use simcore::ByteSize;
use workloads::tpch::{LineItem, TpchConfig, TpchScale};
use workloads::webmap::{AdjRecord, WebmapConfig, WebmapSize};

fn lineitem_inputs(params: &HyracksParams) -> (Vec<Vec<Vec<LineItem>>>, Vec<LineItem>) {
    let cfg = TpchConfig::preset(TpchScale::X10, params.seed);
    let mut blocks = Vec::new();
    let mut all = Vec::new();
    let mut k = 0;
    while k < cfg.lineitems {
        let b = cfg.lineitem_block(k, 1_200);
        all.extend(b.iter().copied());
        blocks.push(b);
        k += 1_200;
    }
    (
        hyracks::distribute_blocks(params.nodes, blocks, params.granularity),
        all,
    )
}

fn as_map(outs: &[apps::OutKv]) -> BTreeMap<u64, u64> {
    let mut m = BTreeMap::new();
    for o in outs {
        assert!(m.insert(o.key, o.value).is_none(), "duplicate key");
    }
    m
}

#[test]
fn sum_query_matches_direct_computation() {
    let params = HyracksParams {
        heap_per_node: ByteSize::mib(64),
        ..Default::default()
    };
    let (inputs, all) = lineitem_inputs(&params);
    let q = Query::<LineItem>::named("revenue_by_order")
        .flat_map(|li, out| out.push((li.orderkey, li.extendedprice as u64 * li.quantity as u64)))
        .sum();

    let mut expected = BTreeMap::new();
    for li in &all {
        *expected.entry(li.orderkey).or_insert(0u64) +=
            li.extendedprice as u64 * li.quantity as u64;
    }

    let reg = q.run_regular(&params, inputs.clone());
    assert_eq!(as_map(&reg.result.unwrap()), expected);
    let it = q.run_itask(&params, inputs);
    assert_eq!(as_map(&it.result.unwrap()), expected);
}

#[test]
fn collect_query_computes_group_maxima() {
    let params = HyracksParams {
        heap_per_node: ByteSize::mib(64),
        ..Default::default()
    };
    let (inputs, all) = lineitem_inputs(&params);
    let q = Query::<LineItem>::named("max_price_by_supplier")
        .flat_map(|li, out| out.push((li.suppkey, li.extendedprice as u64)))
        .collect(|vals| vals.iter().copied().max().unwrap_or(0));

    let mut expected = BTreeMap::new();
    for li in &all {
        let e = expected.entry(li.suppkey).or_insert(0u64);
        *e = (*e).max(li.extendedprice as u64);
    }

    let it = q.run_itask(&params, inputs);
    assert_eq!(as_map(&it.result.unwrap()), expected);
}

#[test]
fn generated_pipeline_survives_pressure_the_regular_one_may_not() {
    // A degree-count query over the 10GB webmap on default (12MiB)
    // heaps: the generated ITask pipeline must complete exactly.
    let params = HyracksParams::default();
    let cfg = WebmapConfig::preset(WebmapSize::G10, params.seed);
    let blocks: Vec<Vec<AdjRecord>> = (0..cfg.num_blocks(ByteSize::kib(128)))
        .map(|b| cfg.block(b, ByteSize::kib(128)))
        .collect();
    let expected_total: u64 = blocks
        .iter()
        .flatten()
        .map(|r| 1 + r.neighbors.len() as u64)
        .sum();
    let inputs = hyracks::distribute_blocks(params.nodes, blocks, params.granularity);

    let q = Query::<AdjRecord>::named("token_count")
        .flat_map(|rec, out| {
            out.push((rec.vertex, 1));
            for &n in &rec.neighbors {
                out.push((n, 1));
            }
        })
        .count();
    let it = q.run_itask(&params, inputs);
    assert!(it.ok(), "generated ITask pipeline must survive");
    let total: u64 = it.result.unwrap().iter().map(|o| o.value).sum();
    assert_eq!(total, expected_total);
}

#[test]
fn queries_are_deterministic() {
    let params = HyracksParams {
        heap_per_node: ByteSize::mib(64),
        ..Default::default()
    };
    let (inputs, _) = lineitem_inputs(&params);
    let q = Query::<LineItem>::named("qty")
        .flat_map(|li, out| out.push((li.orderkey % 97, li.quantity as u64)));
    let q = q.sum();
    let a = q.run_itask(&params, inputs.clone());
    let b = q.run_itask(&params, inputs);
    assert_eq!(a.report.elapsed, b.report.elapsed);
    assert_eq!(as_map(&a.result.unwrap()), as_map(&b.result.unwrap()));
}
