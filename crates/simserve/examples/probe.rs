//! Calibration probe: scan tenant counts on both engines and print
//! completion/OME/latency behavior (dev aid for sizing the standard
//! config; the real table lives in `itask-bench`'s `service` binary).

use simserve::{EngineKind, Service, ServiceConfig};

fn main() {
    for tenants in [1u32, 2, 3, 4, 6, 8] {
        for engine in [EngineKind::Regular, EngineKind::Itask] {
            let r = Service::new(ServiceConfig::standard(engine, tenants, 42)).run();
            let lat = r.merged_latency();
            println!(
                "tenants={tenants} {:>7}: sub={} done={} fail={} omes={} retries={} p50={}ms p99={}ms elapsed={}ms rounds={}",
                engine.label(),
                r.total(|t| t.submitted),
                r.total(|t| t.completed),
                r.total(|t| t.failed),
                r.total(|t| t.omes),
                r.total(|t| t.retries),
                lat.quantile(0.5) / 1_000_000,
                lat.quantile(0.99) / 1_000_000,
                r.elapsed.as_nanos() / 1_000_000,
                r.rounds,
            );
        }
    }
}
