//! Overload-control primitives: retry budgets, deterministic backoff,
//! shed accounting, the per-node OME-storm circuit breaker, and the
//! cluster-wide brownout gate.
//!
//! The paper's thesis is that memory pressure handled as an *interrupt*
//! lets programs degrade gracefully; this module is the service-layer
//! half of that bargain. Past saturation no scheduler can run every
//! job, so the controls decide — deterministically — which work to
//! shed, which failures deserve another attempt, and which nodes are
//! too storm-wrecked to schedule onto at all. Everything here is pure
//! integer/virtual-time state: the same `(config, seed)` pair always
//! sheds the same jobs at the same instants, whatever `--jobs` is.

use std::collections::VecDeque;

use simcore::{rng::stable_hash64, SimDuration, SimError, SimTime};

/// Why a failed job did or did not deserve a retry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureClass {
    /// Substrate fault (node loss, disk fault): the job itself was
    /// fine; rerunning it elsewhere is likely to succeed.
    Transient,
    /// An OutOfMemoryError: deterministic given the same co-location,
    /// so blind retries mostly re-burn the heap that is already scarce.
    DeterministicOme,
}

/// Classifies a failure for the retry policy.
pub fn classify(err: &SimError) -> FailureClass {
    if err.is_oom() {
        FailureClass::DeterministicOme
    } else {
        FailureClass::Transient
    }
}

/// Why the controller shed a job instead of running it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// The submit deadline passed while the job sat in a queue.
    DeadlineExpired,
    /// The tenant's bounded queue was already full at enqueue.
    QueueFull,
    /// The tenant's retry token bucket was empty: fail fast rather than
    /// let a retry storm starve first-attempt traffic.
    RetryBudget,
}

impl ShedReason {
    /// Stable label (tracer payloads, tables).
    pub fn label(self) -> &'static str {
        match self {
            ShedReason::DeadlineExpired => "deadline",
            ShedReason::QueueFull => "queue_full",
            ShedReason::RetryBudget => "retry_budget",
        }
    }
}

/// One shed decision, for per-tenant accounting and tracing.
#[derive(Clone, Copy, Debug)]
pub struct ShedRecord {
    /// The tenant whose job was shed.
    pub tenant: u32,
    /// The job's per-tenant sequence number.
    pub seq: u32,
    /// Why it was shed.
    pub reason: ShedReason,
    /// When the decision fired (virtual time).
    pub at: SimTime,
}

/// Per-tenant retry token bucket configuration.
#[derive(Clone, Copy, Debug)]
pub struct RetryBudget {
    /// Maximum banked retry tokens (also the initial balance).
    pub capacity: u32,
    /// One token refills per this much virtual time.
    pub refill_every: SimDuration,
}

/// Retry policy: how many attempts each failure class deserves, how
/// retries back off, and the optional per-tenant token budget.
///
/// [`RetryPolicy::flat`] reproduces the historical behavior exactly —
/// a single retry counter, immediate requeue, no budget — which is what
/// keeps the pre-existing service tables byte-identical.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retries allowed after transient substrate faults.
    pub max_attempts_transient: u32,
    /// Retries allowed after deterministic OMEs (typically smaller:
    /// fail fast instead of re-burning scarce heap).
    pub max_attempts_ome: u32,
    /// First backoff delay (`ZERO` = immediate requeue, the legacy
    /// behavior). Doubles per attempt up to `max_backoff`.
    pub base_backoff: SimDuration,
    /// Backoff ceiling.
    pub max_backoff: SimDuration,
    /// Optional per-tenant retry token bucket.
    pub budget: Option<RetryBudget>,
}

impl RetryPolicy {
    /// The legacy flat counter: `n` retries for every failure class,
    /// immediate requeue, no budget.
    pub fn flat(n: u32) -> Self {
        RetryPolicy {
            max_attempts_transient: n,
            max_attempts_ome: n,
            base_backoff: SimDuration::ZERO,
            max_backoff: SimDuration::ZERO,
            budget: None,
        }
    }

    /// The overload-hardened defaults: transient faults get patient
    /// backed-off retries, OMEs fail fast after one, and each tenant
    /// spends from a finite token bucket.
    pub fn budgeted() -> Self {
        RetryPolicy {
            max_attempts_transient: 3,
            max_attempts_ome: 1,
            base_backoff: SimDuration::from_millis(1),
            max_backoff: SimDuration::from_millis(8),
            budget: Some(RetryBudget {
                capacity: 4,
                refill_every: SimDuration::from_millis(4),
            }),
        }
    }

    /// Retry ceiling for a failure class.
    pub fn max_for(&self, class: FailureClass) -> u32 {
        match class {
            FailureClass::Transient => self.max_attempts_transient,
            FailureClass::DeterministicOme => self.max_attempts_ome,
        }
    }

    /// The backoff before retry number `attempt` (1-based): exponential
    /// from `base_backoff`, capped at `max_backoff`, scaled by a
    /// deterministic jitter in `[0.5, 1.5)` per mille derived from
    /// `(seed, tenant, seq, attempt)` — a pure function, so the retry
    /// schedule is identical across `--jobs` counts and reruns.
    pub fn backoff(&self, seed: u64, tenant: u32, seq: u32, attempt: u32) -> SimDuration {
        if self.base_backoff.is_zero() {
            return SimDuration::ZERO;
        }
        let shift = attempt.saturating_sub(1).min(20);
        let raw = self
            .base_backoff
            .as_nanos()
            .saturating_mul(1u64 << shift)
            .min(
                self.max_backoff
                    .as_nanos()
                    .max(self.base_backoff.as_nanos()),
            );
        let h = stable_hash64(
            seed ^ ((tenant as u64) << 32) ^ ((seq as u64) << 8) ^ ((attempt as u64) << 56),
        );
        let jitter = 500 + h % 1_000; // [0.5, 1.5) per mille
        SimDuration::from_nanos(raw.saturating_mul(jitter) / 1_000)
    }
}

/// Per-tenant retry token bucket state. Refills on virtual time, so the
/// balance at any instant is a pure function of the spend history.
#[derive(Clone, Copy, Debug)]
pub struct TokenBucket {
    tokens: u32,
    last_refill: SimTime,
}

impl TokenBucket {
    /// A full bucket, refilling from `start`.
    pub fn new(cfg: &RetryBudget, start: SimTime) -> Self {
        TokenBucket {
            tokens: cfg.capacity,
            last_refill: start,
        }
    }

    /// Current balance after refilling up to `now`.
    pub fn balance(&mut self, cfg: &RetryBudget, now: SimTime) -> u32 {
        if !cfg.refill_every.is_zero() && now > self.last_refill {
            let periods = now.since(self.last_refill).as_nanos() / cfg.refill_every.as_nanos();
            if periods > 0 {
                self.tokens = self
                    .tokens
                    .saturating_add(periods.min(u32::MAX as u64) as u32)
                    .min(cfg.capacity);
                self.last_refill +=
                    SimDuration::from_nanos(periods.saturating_mul(cfg.refill_every.as_nanos()));
            }
        }
        self.tokens
    }

    /// Takes one token if available.
    pub fn try_take(&mut self, cfg: &RetryBudget, now: SimTime) -> bool {
        if self.balance(cfg, now) == 0 {
            return false;
        }
        self.tokens -= 1;
        true
    }
}

/// Per-node OME-storm circuit breaker configuration.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Sliding window over which storm scores accumulate.
    pub window: SimDuration,
    /// Windowed score at which the breaker opens.
    pub trip_score: u64,
    /// How long an open breaker quarantines the node before probing.
    pub cooldown: SimDuration,
    /// How long the half-open probe must stay storm-free to close.
    pub probe: SimDuration,
    /// Score per OutOfMemoryError charged to the node.
    pub ome_weight: u64,
    /// Score per full collection.
    pub full_gc_weight: u64,
    /// Score per long-and-useless collection.
    pub useless_gc_weight: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: SimDuration::from_millis(4),
            trip_score: 6,
            cooldown: SimDuration::from_millis(4),
            probe: SimDuration::from_millis(2),
            ome_weight: 3,
            full_gc_weight: 1,
            useless_gc_weight: 2,
        }
    }
}

/// Breaker state: closed (healthy) → open (quarantined, drained) →
/// half-open (probing) → closed, re-opening on any storm during the
/// probe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: schedulable.
    Closed,
    /// Quarantined until the instant.
    Open(SimTime),
    /// Probing: schedulable again, closing at the instant if no storm.
    HalfOpen(SimTime),
}

/// A state transition the service should trace and act on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerTransition {
    /// Tripped: quarantine and drain the node.
    Opened,
    /// Cooldown elapsed: admit probes.
    HalfOpened,
    /// Probe survived: fully schedulable again.
    Closed,
}

impl BreakerTransition {
    /// Stable label for tracer payloads.
    pub fn label(self) -> &'static str {
        match self {
            BreakerTransition::Opened => "open",
            BreakerTransition::HalfOpened => "half_open",
            BreakerTransition::Closed => "closed",
        }
    }
}

/// One node's circuit breaker over its recent OME/pause storm score.
#[derive(Clone, Debug)]
pub struct Breaker {
    state: BreakerState,
    /// `(instant, score)` samples inside the sliding window.
    samples: VecDeque<(SimTime, u64)>,
}

impl Default for Breaker {
    fn default() -> Self {
        Breaker {
            state: BreakerState::Closed,
            samples: VecDeque::new(),
        }
    }
}

impl Breaker {
    /// Scores one round's storm contribution.
    pub fn score(cfg: &BreakerConfig, omes: u64, full_gcs: u64, useless_gcs: u64) -> u64 {
        omes.saturating_mul(cfg.ome_weight)
            + full_gcs.saturating_mul(cfg.full_gc_weight)
            + useless_gcs.saturating_mul(cfg.useless_gc_weight)
    }

    /// Records a non-zero storm sample.
    pub fn record(&mut self, now: SimTime, score: u64) {
        if score > 0 {
            self.samples.push_back((now, score));
        }
    }

    /// Advances the state machine to `now`; returns the transition that
    /// fired, if any. At most one transition fires per step, so a
    /// quarantine always lasts at least one scheduling round.
    pub fn step(&mut self, cfg: &BreakerConfig, now: SimTime) -> Option<BreakerTransition> {
        while let Some(&(at, _)) = self.samples.front() {
            if now.since(at) > cfg.window {
                self.samples.pop_front();
            } else {
                break;
            }
        }
        match self.state {
            BreakerState::Closed => {
                let sum: u64 = self.samples.iter().map(|&(_, s)| s).sum();
                if sum >= cfg.trip_score {
                    self.state = BreakerState::Open(now + cfg.cooldown);
                    self.samples.clear();
                    Some(BreakerTransition::Opened)
                } else {
                    None
                }
            }
            BreakerState::Open(until) => {
                if now >= until {
                    self.state = BreakerState::HalfOpen(now + cfg.probe);
                    self.samples.clear();
                    Some(BreakerTransition::HalfOpened)
                } else {
                    None
                }
            }
            BreakerState::HalfOpen(until) => {
                if !self.samples.is_empty() {
                    // The probe stormed: straight back to quarantine.
                    self.state = BreakerState::Open(now + cfg.cooldown);
                    self.samples.clear();
                    Some(BreakerTransition::Opened)
                } else if now >= until {
                    self.state = BreakerState::Closed;
                    Some(BreakerTransition::Closed)
                } else {
                    None
                }
            }
        }
    }

    /// Sum of the storm samples still inside the sliding window at
    /// `now`, without mutating the sample queue.
    pub fn windowed_score(&self, cfg: &BreakerConfig, now: SimTime) -> u64 {
        self.samples
            .iter()
            .filter(|&&(at, _)| now.since(at) <= cfg.window)
            .map(|&(_, s)| s)
            .sum()
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether the node must be excluded from placement (open only;
    /// half-open nodes take probe traffic by design).
    pub fn quarantined(&self) -> bool {
        matches!(self.state, BreakerState::Open(_))
    }
}

/// Brownout configuration: sustained cluster-wide pressure proactively
/// tightens the memory-aware gate and deflates active ITask jobs
/// before the full-GC cliff, instead of waiting for OMEs.
#[derive(Clone, Copy, Debug)]
pub struct BrownoutConfig {
    /// Enter brownout after the worst node's free-heap ratio stays
    /// below this for `sustain_rounds` consecutive rounds.
    pub enter_free_ratio: f64,
    /// Leave brownout once the worst ratio recovers above this
    /// (hysteresis: strictly larger than `enter_free_ratio`).
    pub exit_free_ratio: f64,
    /// Consecutive low-pressure rounds required to enter.
    pub sustain_rounds: u32,
    /// Active-job ceiling while browned out (tightens `max_active`).
    pub max_active: usize,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        BrownoutConfig {
            enter_free_ratio: 0.25,
            exit_free_ratio: 0.45,
            sustain_rounds: 3,
            max_active: 2,
        }
    }
}

/// Brownout state machine: a low-ratio streak counter with hysteresis.
#[derive(Clone, Copy, Debug, Default)]
pub struct BrownoutState {
    streak: u32,
    /// When the current window opened (`None` = not browned out).
    since: Option<SimTime>,
    /// Rounds spent inside the current window.
    rounds: u64,
}

impl BrownoutState {
    /// Observes one round's worst free-heap ratio; returns `true` on
    /// the activation edge and `Some((since, rounds))` on deactivation.
    pub fn observe(
        &mut self,
        cfg: &BrownoutConfig,
        min_free_ratio: f64,
        now: SimTime,
    ) -> (bool, Option<(SimTime, u64)>) {
        match self.since {
            None => {
                if min_free_ratio < cfg.enter_free_ratio {
                    self.streak += 1;
                } else {
                    self.streak = 0;
                }
                if self.streak >= cfg.sustain_rounds {
                    self.since = Some(now);
                    self.rounds = 0;
                    self.streak = 0;
                    (true, None)
                } else {
                    (false, None)
                }
            }
            Some(since) => {
                self.rounds += 1;
                if min_free_ratio >= cfg.exit_free_ratio {
                    let window = (since, self.rounds);
                    self.since = None;
                    self.rounds = 0;
                    (false, Some(window))
                } else {
                    (false, None)
                }
            }
        }
    }

    /// Whether the service is currently browned out.
    pub fn active(&self) -> bool {
        self.since.is_some()
    }

    /// The current window, if browned out (for end-of-run flushing).
    pub fn window(&self) -> Option<(SimTime, u64)> {
        self.since.map(|s| (s, self.rounds))
    }
}

/// The optional overload-control add-ons a service run can arm. All
/// `None`/default-off, so pre-existing configurations behave (and
/// print) exactly as before.
#[derive(Clone, Copy, Debug, Default)]
pub struct OverloadConfig {
    /// Per-node OME-storm circuit breaker.
    pub breaker: Option<BreakerConfig>,
    /// Cluster-wide brownout gate.
    pub brownout: Option<BrownoutConfig>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::NodeId;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn classification_splits_oom_from_substrate_faults() {
        let oom = SimError::OutOfMemory {
            node: NodeId(0),
            requested: simcore::ByteSize(1),
            free: simcore::ByteSize(0),
        };
        assert_eq!(classify(&oom), FailureClass::DeterministicOme);
        let lost = SimError::NodeLost { node: NodeId(1) };
        assert_eq!(classify(&lost), FailureClass::Transient);
    }

    #[test]
    fn flat_policy_reproduces_legacy_behavior() {
        let p = RetryPolicy::flat(2);
        assert_eq!(p.max_for(FailureClass::Transient), 2);
        assert_eq!(p.max_for(FailureClass::DeterministicOme), 2);
        assert!(p.budget.is_none());
        assert_eq!(p.backoff(42, 3, 9, 1), SimDuration::ZERO);
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_capped() {
        let p = RetryPolicy::budgeted();
        let a1 = p.backoff(42, 1, 5, 1);
        let a2 = p.backoff(42, 1, 5, 2);
        assert_eq!(a1, p.backoff(42, 1, 5, 1), "pure function of inputs");
        assert_ne!(a1, p.backoff(43, 1, 5, 1), "seed matters");
        assert_ne!(a1, p.backoff(42, 2, 5, 1), "tenant matters");
        // Jitter spans [0.5, 1.5): attempt 2's floor (base*2*0.5) equals
        // attempt 1's ceiling, so compare against the jitter-free means.
        assert!(a1.as_nanos() >= p.base_backoff.as_nanos() / 2);
        assert!(a1.as_nanos() < p.base_backoff.as_nanos() * 3 / 2);
        assert!(a2.as_nanos() >= p.base_backoff.as_nanos());
        // Deep attempts stay at the ceiling regardless of shift.
        let deep = p.backoff(42, 1, 5, 40);
        assert!(deep.as_nanos() < p.max_backoff.as_nanos() * 3 / 2);
    }

    #[test]
    fn token_bucket_spends_and_refills_on_virtual_time() {
        let cfg = RetryBudget {
            capacity: 2,
            refill_every: SimDuration::from_millis(10),
        };
        let mut b = TokenBucket::new(&cfg, t(0));
        assert!(b.try_take(&cfg, t(0)));
        assert!(b.try_take(&cfg, t(0)));
        assert!(!b.try_take(&cfg, t(0)), "empty");
        assert!(!b.try_take(&cfg, t(9)), "not yet refilled");
        assert!(b.try_take(&cfg, t(10)), "one period banked one token");
        assert!(!b.try_take(&cfg, t(10)));
        // Long idle refills to capacity, never beyond.
        assert_eq!(b.balance(&cfg, t(1_000)), 2);
    }

    #[test]
    fn breaker_walks_open_half_open_closed() {
        let cfg = BreakerConfig {
            window: SimDuration::from_millis(5),
            trip_score: 4,
            cooldown: SimDuration::from_millis(3),
            probe: SimDuration::from_millis(2),
            ome_weight: 2,
            full_gc_weight: 1,
            useless_gc_weight: 1,
        };
        let mut b = Breaker::default();
        assert_eq!(Breaker::score(&cfg, 1, 1, 1), 4);
        b.record(t(1), 2);
        assert_eq!(b.step(&cfg, t(1)), None, "below threshold");
        assert!(!b.quarantined());
        b.record(t(2), 2);
        assert_eq!(b.step(&cfg, t(2)), Some(BreakerTransition::Opened));
        assert!(b.quarantined());
        assert_eq!(b.step(&cfg, t(3)), None, "still cooling down");
        assert_eq!(b.step(&cfg, t(5)), Some(BreakerTransition::HalfOpened));
        assert!(!b.quarantined(), "half-open admits probes");
        assert_eq!(b.step(&cfg, t(7)), Some(BreakerTransition::Closed));
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn breaker_reopens_when_probe_storms() {
        let cfg = BreakerConfig {
            trip_score: 2,
            ..BreakerConfig::default()
        };
        let mut b = Breaker::default();
        b.record(t(0), 2);
        assert_eq!(b.step(&cfg, t(0)), Some(BreakerTransition::Opened));
        let until = match b.state() {
            BreakerState::Open(u) => u,
            s => panic!("expected open, got {s:?}"),
        };
        assert_eq!(b.step(&cfg, until), Some(BreakerTransition::HalfOpened));
        b.record(until, 1);
        assert_eq!(
            b.step(&cfg, until),
            Some(BreakerTransition::Opened),
            "any storm during the probe re-trips"
        );
    }

    #[test]
    fn breaker_window_forgets_old_storms() {
        let cfg = BreakerConfig {
            window: SimDuration::from_millis(2),
            trip_score: 4,
            ..BreakerConfig::default()
        };
        let mut b = Breaker::default();
        b.record(t(0), 3);
        assert_eq!(b.step(&cfg, t(0)), None);
        // The old sample ages out before the next one lands.
        b.record(t(5), 3);
        assert_eq!(b.step(&cfg, t(5)), None, "3 < 4 after expiry");
        b.record(t(6), 1);
        assert_eq!(b.step(&cfg, t(6)), Some(BreakerTransition::Opened));
    }

    #[test]
    fn windowed_score_sums_only_fresh_samples_without_mutating() {
        let cfg = BreakerConfig {
            window: SimDuration::from_millis(2),
            trip_score: 100,
            ..BreakerConfig::default()
        };
        let mut b = Breaker::default();
        b.record(t(0), 3);
        b.record(t(1), 2);
        assert_eq!(b.windowed_score(&cfg, t(1)), 5);
        // The t(0) sample is outside the window at t(4); the query must
        // not drop it from the queue either (repeat reads agree).
        assert_eq!(b.windowed_score(&cfg, t(4)), 0);
        assert_eq!(b.windowed_score(&cfg, t(1)), 5);
    }

    #[test]
    fn brownout_requires_sustained_pressure_and_exits_on_hysteresis() {
        let cfg = BrownoutConfig {
            enter_free_ratio: 0.3,
            exit_free_ratio: 0.5,
            sustain_rounds: 2,
            max_active: 1,
        };
        let mut s = BrownoutState::default();
        assert_eq!(s.observe(&cfg, 0.2, t(1)), (false, None), "one low round");
        assert_eq!(s.observe(&cfg, 0.8, t(2)), (false, None), "streak resets");
        assert_eq!(s.observe(&cfg, 0.2, t(3)), (false, None));
        assert_eq!(s.observe(&cfg, 0.1, t(4)), (true, None), "sustained: on");
        assert!(s.active());
        // 0.4 is above enter but below exit: stays browned out.
        assert_eq!(s.observe(&cfg, 0.4, t(5)), (false, None));
        assert!(s.active());
        let (on, off) = s.observe(&cfg, 0.6, t(6));
        assert!(!on);
        assert_eq!(off, Some((t(4), 2)), "window reports entry and rounds");
        assert!(!s.active());
    }
}
