//! Admission control: per-tenant queues plus a pluggable policy that
//! decides which queued job (if any) may start next.
//!
//! The memory-aware policy is the service-layer use of the IRS monitor:
//! before co-locating another job onto shared heaps it consults the
//! cluster's worst free-heap ratio and the active jobs' memory signals,
//! holding admissions while any running job is under `REDUCE` pressure.
//! FIFO and weighted-fair ignore memory entirely and serve as the
//! baselines the service table compares against.
//!
//! Overload controls live at the queue boundary: per-tenant queues are
//! optionally bounded (`queue_cap`), jobs may carry submit deadlines
//! that are enforced both at enqueue and at pop, and backed-off retries
//! park in a delayed set until their release instant. Every job the
//! controller refuses to run is recorded as a [`ShedRecord`] for the
//! service to account and trace; nothing is dropped silently.
//!
//! Pops are O(log n) in the number of queued tenants. Three ordered
//! indexes shadow the per-tenant queues: a FIFO index over each queue's
//! front stamp, a weighted-fair index over exact cross-multiplied
//! virtual time ([`FairKey`]), and a deadline index over every queued
//! deadline-carrying job. The indexed pops preserve the original linear
//! scans' semantics bit-for-bit (exact rational comparison, lowest
//! tenant id on virtual-time ties, global stamp order for FIFO); the
//! [`reference`] module retains the naive O(n) implementation as the
//! oracle for the equivalence property tests.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

use simcore::{SimDuration, SimTime};

use crate::overload::{ShedReason, ShedRecord};
use crate::workload::{Arrival, JobKind, WeightRule};

/// Which admission policy orders and gates the queues.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// Global arrival order; admit whenever a slot is free.
    Fifo,
    /// Pick the tenant with the smallest served-virtual-time
    /// (served busy-nanos divided by weight); admit whenever a slot is
    /// free.
    WeightedFair,
    /// FIFO order, but co-locating beyond one active job additionally
    /// requires every node's free-heap ratio above a floor and no
    /// active job signalling `REDUCE`.
    MemoryAware,
}

impl PolicyKind {
    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Fifo => "fifo",
            PolicyKind::WeightedFair => "wfair",
            PolicyKind::MemoryAware => "memaware",
        }
    }
}

/// Admission configuration.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionConfig {
    /// The ordering/gating policy.
    pub policy: PolicyKind,
    /// Hard cap on concurrently active jobs.
    pub max_active: usize,
    /// Memory-aware floor: co-locate only while the worst node keeps at
    /// least this fraction of its heap effectively free.
    pub min_free_ratio: f64,
    /// Bound on each tenant's queue length; arrivals beyond it are shed
    /// at enqueue. `None` (the default) keeps queues unbounded.
    pub queue_cap: Option<usize>,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            policy: PolicyKind::Fifo,
            max_active: 4,
            min_free_ratio: 0.35,
            queue_cap: None,
        }
    }
}

/// One queued submission (an [`Arrival`] plus retry bookkeeping).
#[derive(Clone, Debug)]
pub struct QueuedJob {
    /// Submitting tenant.
    pub tenant: u32,
    /// Per-tenant sequence number.
    pub seq: u32,
    /// Job kind to build on admission.
    pub kind: JobKind,
    /// Original submission instant (latency is measured from here even
    /// across retries).
    pub arrived: SimTime,
    /// Most recent enqueue instant: the arrival for fresh submissions,
    /// the requeue instant for retries. Queue wait is measured from
    /// here, so a retry's wait does not absorb its prior execution.
    pub enqueued: SimTime,
    /// Dataset seed.
    pub dataset_seed: u64,
    /// How many times this job has already failed and been requeued.
    pub retries: u32,
    /// Absolute submit deadline; the controller sheds the job rather
    /// than pop it once this instant has passed.
    pub deadline: Option<SimTime>,
    /// Global enqueue stamp (FIFO order; retries are stamped afresh so
    /// they rejoin at the back).
    stamp: u64,
}

/// What the policy may inspect about the cluster before admitting.
#[derive(Clone, Copy, Debug)]
pub struct ClusterView {
    /// Number of currently active jobs.
    pub active: usize,
    /// Worst per-node effectively-free heap fraction.
    pub min_free_ratio: f64,
    /// Whether any active job's IRS currently signals `REDUCE`.
    pub any_reduce_signal: bool,
    /// The current virtual instant (deadline enforcement at pop).
    pub now: SimTime,
}

/// Weighted-fair index key: orders tenants by exact virtual time
/// (`served / weight`), ties broken by ascending tenant id.
///
/// Virtual times compare by u128 cross-multiplication —
/// `served_a * weight_b` vs `served_b * weight_a` — so the order is
/// exact: no scaling constant, no integer division to quantize distinct
/// vtimes together. This is the same total order the original linear
/// scan computed with its strict less-than over ascending tenants, so
/// `BTreeSet::first()` on these keys reproduces that scan's pick
/// bit-for-bit.
#[derive(Clone, Copy, Debug)]
struct FairKey {
    served: u64,
    weight: u64,
    tenant: u32,
}

impl Ord for FairKey {
    fn cmp(&self, other: &Self) -> Ordering {
        let lhs = (self.served as u128) * (other.weight as u128);
        let rhs = (other.served as u128) * (self.weight as u128);
        lhs.cmp(&rhs).then(self.tenant.cmp(&other.tenant))
    }
}

impl PartialOrd for FairKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

// Eq must agree with Ord's notion of equality: (1, 2, t) and (2, 4, t)
// are the same virtual time, so a derived field-wise Eq would disagree
// with `cmp` returning `Equal`.
impl PartialEq for FairKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for FairKey {}

/// Per-tenant queues plus the policy state.
pub struct AdmissionController {
    cfg: AdmissionConfig,
    queues: BTreeMap<u32, VecDeque<QueuedJob>>,
    /// Immediately-runnable jobs across all queues (kept in lockstep
    /// with the queues so `queued()` is O(1)).
    queued_count: usize,
    /// One `(front stamp, tenant)` entry per non-empty queue. Front
    /// tracking, not min tracking: a released retry can park an older
    /// stamp *behind* a fresher arrival, and FIFO order is defined by
    /// queue fronts exactly as the original scan saw them.
    fifo_index: BTreeSet<(u64, u32)>,
    /// One [`FairKey`] entry per non-empty queue, re-keyed whenever the
    /// tenant's served time advances.
    fair_index: BTreeSet<FairKey>,
    /// Every queued deadline-carrying job, keyed `(deadline, stamp,
    /// tenant)` so expiry walks only the jobs that are actually due.
    deadline_index: BTreeSet<(SimTime, u64, u32)>,
    /// Backed-off retries parked until their release instant, keyed by
    /// `(release, stamp)` so ties release in stamp order.
    delayed: BTreeMap<(SimTime, u64), QueuedJob>,
    /// Shed decisions since the last [`AdmissionController::take_shed`].
    shed: Vec<ShedRecord>,
    /// Tenant weights (weighted-fair).
    weights: BTreeMap<u32, u64>,
    /// Procedural weights for populations too large for a weight table;
    /// takes precedence over `weights` when set.
    weight_rule: Option<WeightRule>,
    /// Served busy-nanos per tenant (weighted-fair virtual time).
    served: BTreeMap<u32, u64>,
    next_stamp: u64,
}

impl AdmissionController {
    /// Creates a controller; `weights` maps tenant → weighted-fair
    /// share (tenants absent from the map default to weight 1).
    pub fn new(cfg: AdmissionConfig, weights: BTreeMap<u32, u64>) -> Self {
        Self::build(cfg, weights, None)
    }

    /// Creates a controller whose weights derive procedurally from the
    /// tenant id — no per-tenant table, so a million-tenant population
    /// costs nothing until tenants actually queue.
    pub fn with_weight_rule(cfg: AdmissionConfig, rule: WeightRule) -> Self {
        Self::build(cfg, BTreeMap::new(), Some(rule))
    }

    fn build(cfg: AdmissionConfig, weights: BTreeMap<u32, u64>, rule: Option<WeightRule>) -> Self {
        AdmissionController {
            cfg,
            queues: BTreeMap::new(),
            queued_count: 0,
            fifo_index: BTreeSet::new(),
            fair_index: BTreeSet::new(),
            deadline_index: BTreeSet::new(),
            delayed: BTreeMap::new(),
            shed: Vec::new(),
            weights,
            weight_rule: rule,
            served: BTreeMap::new(),
            next_stamp: 0,
        }
    }

    /// The configured policy.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Total immediately-runnable queued jobs across tenants (excludes
    /// delayed retries still waiting on their release instant). O(1).
    pub fn queued(&self) -> usize {
        self.queued_count
    }

    /// Backed-off retries still parked.
    pub fn pending_delayed(&self) -> usize {
        self.delayed.len()
    }

    /// The earliest parked retry's release instant, if any (the service
    /// jumps its clock here when otherwise idle).
    pub fn next_release(&self) -> Option<SimTime> {
        self.delayed.keys().next().map(|&(at, _)| at)
    }

    /// Tenants with at least one immediately-runnable queued job. The
    /// per-tenant map prunes lazily on every pop/shed path, so this is
    /// exactly the non-empty set — no tombstone queues.
    pub fn queued_tenants(&self) -> Vec<u32> {
        debug_assert!(
            self.queues.values().all(|q| !q.is_empty()),
            "empty tenant queue left unpruned"
        );
        debug_assert_eq!(
            self.fifo_index.len(),
            self.queues.len(),
            "fifo index must hold exactly one front per non-empty queue"
        );
        debug_assert_eq!(
            self.fair_index.len(),
            self.queues.len(),
            "fair index must hold exactly one key per non-empty queue"
        );
        debug_assert_eq!(
            self.queued_count,
            self.queues.values().map(VecDeque::len).sum::<usize>(),
            "queued counter out of lockstep with the queues"
        );
        self.queues.keys().copied().collect()
    }

    /// Drains the shed decisions recorded since the last call.
    pub fn take_shed(&mut self) -> Vec<ShedRecord> {
        std::mem::take(&mut self.shed)
    }

    /// Enqueues a fresh arrival at `now`, unless it must be shed on the
    /// spot: already past its deadline (the service fell far behind the
    /// arrival schedule) or over the tenant's queue bound.
    pub fn enqueue_arrival(&mut self, a: &Arrival, now: SimTime) {
        if a.deadline.is_some_and(|d| d < now) {
            self.shed.push(ShedRecord {
                tenant: a.tenant,
                seq: a.seq,
                reason: ShedReason::DeadlineExpired,
                at: now,
            });
            return;
        }
        if let Some(cap) = self.cfg.queue_cap {
            let len = self.queues.get(&a.tenant).map_or(0, VecDeque::len);
            if len >= cap {
                self.shed.push(ShedRecord {
                    tenant: a.tenant,
                    seq: a.seq,
                    reason: ShedReason::QueueFull,
                    at: now,
                });
                return;
            }
        }
        let job = QueuedJob {
            tenant: a.tenant,
            seq: a.seq,
            kind: a.kind,
            arrived: a.at,
            enqueued: a.at,
            dataset_seed: a.dataset_seed,
            retries: 0,
            deadline: a.deadline,
            stamp: self.next_stamp,
        };
        self.next_stamp += 1;
        self.push_job(job);
    }

    /// Requeues a failed job at the back of its tenant's queue with a
    /// fresh stamp, a fresh enqueue instant (`now`), and an incremented
    /// retry count.
    pub fn requeue(&mut self, mut job: QueuedJob, now: SimTime) {
        job.retries += 1;
        job.enqueued = now;
        job.stamp = self.next_stamp;
        self.next_stamp += 1;
        self.push_job(job);
    }

    /// Parks a failed job until `now + delay` (seeded exponential
    /// backoff), with the same bookkeeping as [`requeue`]: retry count
    /// up, fresh stamp, and the queue-wait clock restarting at the
    /// *release* instant — a backed-off retry's wait measures queueing,
    /// not its own deliberate delay.
    ///
    /// [`requeue`]: AdmissionController::requeue
    pub fn requeue_after(&mut self, mut job: QueuedJob, now: SimTime, delay: SimDuration) {
        if delay.is_zero() {
            return self.requeue(job, now);
        }
        let release = now + delay;
        job.retries += 1;
        job.enqueued = release;
        job.stamp = self.next_stamp;
        self.next_stamp += 1;
        self.delayed.insert((release, job.stamp), job);
    }

    /// Moves parked retries whose release instant has passed into their
    /// tenant queues. Call once per round before popping.
    pub fn release_due(&mut self, now: SimTime) {
        while let Some((&(release, stamp), _)) = self.delayed.first_key_value() {
            if release > now {
                break;
            }
            let job = self
                .delayed
                .remove(&(release, stamp))
                .expect("first key present");
            self.push_job(job);
        }
    }

    /// Credits a tenant with served busy time (drives weighted-fair
    /// virtual time forward on completion or failure). Re-keys the
    /// tenant's fair-index entry if it currently has queued work.
    pub fn credit_served(&mut self, tenant: u32, busy_nanos: u64) {
        let queued = self.queues.contains_key(&tenant);
        if queued {
            let old = self.fair_key(tenant);
            self.fair_index.remove(&old);
        }
        *self.served.entry(tenant).or_insert(0) += busy_nanos;
        if queued {
            let new = self.fair_key(tenant);
            self.fair_index.insert(new);
        }
    }

    /// Sheds every queued job whose deadline has passed (enforcement at
    /// pop: a job that waited out its deadline in the queue must not
    /// burn cluster time), pruning tenant queues that empty out.
    ///
    /// Index-driven: walks the deadline index only as far as jobs that
    /// are actually due, so a quiet round costs one `first()` probe
    /// regardless of how many tenants are queued. Each expiry pays a
    /// scan of the owning tenant's queue (bounded by `queue_cap` when
    /// one is set), never of the tenant population. Records shed in
    /// `(deadline, stamp)` order rather than the old tenant-major
    /// order; shed *sets* are unchanged.
    fn expire(&mut self, now: SimTime) {
        while let Some(&(deadline, stamp, tenant)) = self.deadline_index.first() {
            if deadline >= now {
                break;
            }
            self.deadline_index.remove(&(deadline, stamp, tenant));
            let (seq, was_front, next_front) = {
                let q = self
                    .queues
                    .get_mut(&tenant)
                    .expect("deadline-indexed job has a queue");
                let pos = q
                    .iter()
                    .position(|j| j.stamp == stamp)
                    .expect("deadline-indexed job is queued");
                let job = q.remove(pos).expect("position is in range");
                (job.seq, pos == 0, q.front().map(|j| j.stamp))
            };
            self.queued_count -= 1;
            self.shed.push(ShedRecord {
                tenant,
                seq,
                reason: ShedReason::DeadlineExpired,
                at: now,
            });
            if was_front {
                self.fifo_index.remove(&(stamp, tenant));
                if let Some(front) = next_front {
                    self.fifo_index.insert((front, tenant));
                }
            }
            if next_front.is_none() {
                self.queues.remove(&tenant);
                let key = self.fair_key(tenant);
                self.fair_index.remove(&key);
            }
        }
    }

    /// Pops the next admissible job under the policy, or `None` if the
    /// queues are empty, every slot is taken, or the memory gate holds.
    /// Deadline-expired jobs are shed first, so an admission never
    /// hands back dead work.
    ///
    /// All policies are work-conserving: when nothing is active, the
    /// head job is always admitted regardless of memory state.
    pub fn next(&mut self, view: ClusterView) -> Option<QueuedJob> {
        self.expire(view.now);
        if view.active >= self.cfg.max_active || self.queued() == 0 {
            return None;
        }
        match self.cfg.policy {
            PolicyKind::Fifo => self.pop_fifo(),
            PolicyKind::WeightedFair => self.pop_weighted_fair(),
            PolicyKind::MemoryAware => {
                if view.active > 0
                    && (view.min_free_ratio < self.cfg.min_free_ratio || view.any_reduce_signal)
                {
                    return None;
                }
                self.pop_fifo()
            }
        }
    }

    /// Head job across tenants by global stamp: the least element of
    /// the FIFO front index. O(log n).
    fn pop_fifo(&mut self) -> Option<QueuedJob> {
        let &(stamp, tenant) = self.fifo_index.first()?;
        let job = self.pop_front(tenant);
        debug_assert_eq!(
            job.as_ref().map(|j| j.stamp),
            Some(stamp),
            "fifo index front must match the queue front"
        );
        job
    }

    /// Head job of the non-empty tenant with the smallest virtual time
    /// (`served / weight`), ties broken by tenant id: the least
    /// [`FairKey`] in the fair index. O(log n).
    fn pop_weighted_fair(&mut self) -> Option<QueuedJob> {
        let tenant = self.fair_index.first()?.tenant;
        self.pop_front(tenant)
    }

    fn pop_front(&mut self, tenant: u32) -> Option<QueuedJob> {
        let (job, next_front) = {
            let q = self.queues.get_mut(&tenant)?;
            let job = q.pop_front()?;
            (job, q.front().map(|j| j.stamp))
        };
        self.queued_count -= 1;
        self.fifo_index.remove(&(job.stamp, tenant));
        if let Some(d) = job.deadline {
            self.deadline_index.remove(&(d, job.stamp, tenant));
        }
        match next_front {
            Some(front) => {
                self.fifo_index.insert((front, tenant));
            }
            None => {
                self.queues.remove(&tenant);
                let key = self.fair_key(tenant);
                self.fair_index.remove(&key);
            }
        }
        Some(job)
    }

    /// Appends `job` to its tenant's queue and keeps every index in
    /// lockstep: the deadline index gains the job, and a queue going
    /// non-empty gains its FIFO-front and fair-index entries.
    fn push_job(&mut self, job: QueuedJob) {
        if let Some(d) = job.deadline {
            self.deadline_index.insert((d, job.stamp, job.tenant));
        }
        let key = self.fair_key(job.tenant);
        let (stamp, tenant) = (job.stamp, job.tenant);
        let q = self.queues.entry(tenant).or_default();
        let was_empty = q.is_empty();
        q.push_back(job);
        self.queued_count += 1;
        if was_empty {
            self.fifo_index.insert((stamp, tenant));
            self.fair_index.insert(key);
        }
    }

    /// The tenant's weighted-fair share: the procedural rule when one
    /// is set, else the weight table (absent tenants default to 1).
    fn weight_of(&self, tenant: u32) -> u64 {
        match self.weight_rule {
            Some(rule) => rule.weight_of(tenant),
            None => self.weights.get(&tenant).copied().unwrap_or(1),
        }
        .max(1)
    }

    /// The tenant's current fair-index key. Weights are immutable per
    /// controller, so a key built here always matches the entry
    /// inserted earlier for the same tenant unless `served` moved — and
    /// `credit_served` re-keys on every move.
    fn fair_key(&self, tenant: u32) -> FairKey {
        FairKey {
            served: self.served.get(&tenant).copied().unwrap_or(0),
            weight: self.weight_of(tenant),
            tenant,
        }
    }
}

pub mod reference {
    //! The original O(n)-scan admission controller, retained as the
    //! oracle for the equivalence property tests: the indexed
    //! [`AdmissionController`](super::AdmissionController) must emit
    //! the identical job sequence under any schedule of arrivals,
    //! weights, deadlines, requeues, and credits.
    //!
    //! Kept deliberately close to the pre-index code: linear scans over
    //! the queue map for both pops, `retain`-based expiry, `queued()`
    //! by summation. Do not optimise this module — its value is being
    //! obviously correct and independently derived from the indexes.

    use std::collections::{BTreeMap, VecDeque};

    use simcore::{SimDuration, SimTime};

    use super::{AdmissionConfig, ClusterView, PolicyKind, QueuedJob};
    use crate::overload::{ShedReason, ShedRecord};
    use crate::workload::{Arrival, WeightRule};

    /// Per-tenant queues plus policy state, all scans linear.
    pub struct NaiveController {
        cfg: AdmissionConfig,
        queues: BTreeMap<u32, VecDeque<QueuedJob>>,
        delayed: BTreeMap<(SimTime, u64), QueuedJob>,
        shed: Vec<ShedRecord>,
        weights: BTreeMap<u32, u64>,
        weight_rule: Option<WeightRule>,
        served: BTreeMap<u32, u64>,
        next_stamp: u64,
    }

    impl NaiveController {
        /// Mirror of [`super::AdmissionController::new`].
        pub fn new(cfg: AdmissionConfig, weights: BTreeMap<u32, u64>) -> Self {
            Self::build(cfg, weights, None)
        }

        /// Mirror of [`super::AdmissionController::with_weight_rule`].
        pub fn with_weight_rule(cfg: AdmissionConfig, rule: WeightRule) -> Self {
            Self::build(cfg, BTreeMap::new(), Some(rule))
        }

        fn build(
            cfg: AdmissionConfig,
            weights: BTreeMap<u32, u64>,
            rule: Option<WeightRule>,
        ) -> Self {
            NaiveController {
                cfg,
                queues: BTreeMap::new(),
                delayed: BTreeMap::new(),
                shed: Vec::new(),
                weights,
                weight_rule: rule,
                served: BTreeMap::new(),
                next_stamp: 0,
            }
        }

        /// Mirror of [`super::AdmissionController::queued`] (O(n)).
        pub fn queued(&self) -> usize {
            self.queues.values().map(VecDeque::len).sum()
        }

        /// Mirror of [`super::AdmissionController::pending_delayed`].
        pub fn pending_delayed(&self) -> usize {
            self.delayed.len()
        }

        /// Mirror of [`super::AdmissionController::next_release`].
        pub fn next_release(&self) -> Option<SimTime> {
            self.delayed.keys().next().map(|&(at, _)| at)
        }

        /// Mirror of [`super::AdmissionController::queued_tenants`].
        pub fn queued_tenants(&self) -> Vec<u32> {
            self.queues.keys().copied().collect()
        }

        /// Mirror of [`super::AdmissionController::take_shed`].
        pub fn take_shed(&mut self) -> Vec<ShedRecord> {
            std::mem::take(&mut self.shed)
        }

        /// Mirror of [`super::AdmissionController::enqueue_arrival`].
        pub fn enqueue_arrival(&mut self, a: &Arrival, now: SimTime) {
            if a.deadline.is_some_and(|d| d < now) {
                self.shed.push(ShedRecord {
                    tenant: a.tenant,
                    seq: a.seq,
                    reason: ShedReason::DeadlineExpired,
                    at: now,
                });
                return;
            }
            if let Some(cap) = self.cfg.queue_cap {
                let len = self.queues.get(&a.tenant).map_or(0, VecDeque::len);
                if len >= cap {
                    self.shed.push(ShedRecord {
                        tenant: a.tenant,
                        seq: a.seq,
                        reason: ShedReason::QueueFull,
                        at: now,
                    });
                    return;
                }
            }
            let job = QueuedJob {
                tenant: a.tenant,
                seq: a.seq,
                kind: a.kind,
                arrived: a.at,
                enqueued: a.at,
                dataset_seed: a.dataset_seed,
                retries: 0,
                deadline: a.deadline,
                stamp: self.next_stamp,
            };
            self.next_stamp += 1;
            self.queues.entry(a.tenant).or_default().push_back(job);
        }

        /// Mirror of [`super::AdmissionController::requeue`].
        pub fn requeue(&mut self, mut job: QueuedJob, now: SimTime) {
            job.retries += 1;
            job.enqueued = now;
            job.stamp = self.next_stamp;
            self.next_stamp += 1;
            self.queues.entry(job.tenant).or_default().push_back(job);
        }

        /// Mirror of [`super::AdmissionController::requeue_after`].
        pub fn requeue_after(&mut self, mut job: QueuedJob, now: SimTime, delay: SimDuration) {
            if delay.is_zero() {
                return self.requeue(job, now);
            }
            let release = now + delay;
            job.retries += 1;
            job.enqueued = release;
            job.stamp = self.next_stamp;
            self.next_stamp += 1;
            self.delayed.insert((release, job.stamp), job);
        }

        /// Mirror of [`super::AdmissionController::release_due`].
        pub fn release_due(&mut self, now: SimTime) {
            while let Some((&(release, stamp), _)) = self.delayed.first_key_value() {
                if release > now {
                    break;
                }
                let job = self
                    .delayed
                    .remove(&(release, stamp))
                    .expect("first key present");
                self.queues.entry(job.tenant).or_default().push_back(job);
            }
        }

        /// Mirror of [`super::AdmissionController::credit_served`].
        pub fn credit_served(&mut self, tenant: u32, busy_nanos: u64) {
            *self.served.entry(tenant).or_insert(0) += busy_nanos;
        }

        fn expire(&mut self, now: SimTime) {
            let shed = &mut self.shed;
            self.queues.retain(|_, q| {
                q.retain(|j| {
                    let expired = j.deadline.is_some_and(|d| d < now);
                    if expired {
                        shed.push(ShedRecord {
                            tenant: j.tenant,
                            seq: j.seq,
                            reason: ShedReason::DeadlineExpired,
                            at: now,
                        });
                    }
                    !expired
                });
                !q.is_empty()
            });
        }

        /// Mirror of [`super::AdmissionController::next`].
        pub fn next(&mut self, view: ClusterView) -> Option<QueuedJob> {
            self.expire(view.now);
            if view.active >= self.cfg.max_active || self.queued() == 0 {
                return None;
            }
            match self.cfg.policy {
                PolicyKind::Fifo => self.pop_fifo(),
                PolicyKind::WeightedFair => self.pop_weighted_fair(),
                PolicyKind::MemoryAware => {
                    if view.active > 0
                        && (view.min_free_ratio < self.cfg.min_free_ratio || view.any_reduce_signal)
                    {
                        return None;
                    }
                    self.pop_fifo()
                }
            }
        }

        fn weight_of(&self, tenant: u32) -> u64 {
            match self.weight_rule {
                Some(rule) => rule.weight_of(tenant),
                None => self.weights.get(&tenant).copied().unwrap_or(1),
            }
            .max(1)
        }

        fn pop_fifo(&mut self) -> Option<QueuedJob> {
            let tenant = self
                .queues
                .iter()
                .filter_map(|(t, q)| q.front().map(|j| (j.stamp, *t)))
                .min()
                .map(|(_, t)| t)?;
            self.pop_front(tenant)
        }

        fn pop_weighted_fair(&mut self) -> Option<QueuedJob> {
            let mut best: Option<(u128, u128, u32)> = None; // (served, weight, tenant)
            for (&t, q) in &self.queues {
                if q.is_empty() {
                    continue;
                }
                let w = self.weight_of(t) as u128;
                let served = self.served.get(&t).copied().unwrap_or(0) as u128;
                // Ascending tenant order + strict inequality keeps the
                // lowest tenant id on vtime ties.
                if best.map(|(bs, bw, _)| served * bw < bs * w).unwrap_or(true) {
                    best = Some((served, w, t));
                }
            }
            let tenant = best.map(|(_, _, t)| t)?;
            self.pop_front(tenant)
        }

        fn pop_front(&mut self, tenant: u32) -> Option<QueuedJob> {
            let q = self.queues.get_mut(&tenant)?;
            let job = q.pop_front();
            if q.is_empty() {
                self.queues.remove(&tenant);
            }
            job
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimDuration;

    fn arrival(tenant: u32, seq: u32, at_ms: u64) -> Arrival {
        Arrival {
            at: SimTime::ZERO + SimDuration::from_millis(at_ms),
            tenant,
            seq,
            kind: JobKind::DegreeCount,
            dataset_seed: (tenant as u64) << 32 | seq as u64,
            deadline: None,
        }
    }

    fn deadlined(tenant: u32, seq: u32, at_ms: u64, deadline_ms: u64) -> Arrival {
        Arrival {
            deadline: Some(SimTime::ZERO + SimDuration::from_millis(deadline_ms)),
            ..arrival(tenant, seq, at_ms)
        }
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn calm(active: usize) -> ClusterView {
        ClusterView {
            active,
            min_free_ratio: 0.9,
            any_reduce_signal: false,
            now: SimTime::ZERO,
        }
    }

    fn calm_at(active: usize, now_ms: u64) -> ClusterView {
        ClusterView {
            now: t(now_ms),
            ..calm(active)
        }
    }

    fn enq(c: &mut AdmissionController, a: &Arrival) {
        c.enqueue_arrival(a, a.at);
    }

    #[test]
    fn fifo_serves_global_arrival_order_and_respects_cap() {
        let cfg = AdmissionConfig {
            policy: PolicyKind::Fifo,
            max_active: 2,
            ..AdmissionConfig::default()
        };
        let mut c = AdmissionController::new(cfg, BTreeMap::new());
        enq(&mut c, &arrival(1, 0, 10));
        enq(&mut c, &arrival(0, 0, 20));
        enq(&mut c, &arrival(1, 1, 30));
        let a = c.next(calm(0)).unwrap();
        let b = c.next(calm(1)).unwrap();
        assert_eq!((a.tenant, a.seq), (1, 0));
        assert_eq!((b.tenant, b.seq), (0, 0));
        // Cap reached: the third job waits even though it is queued.
        assert!(c.next(calm(2)).is_none());
        assert_eq!(c.queued(), 1);
        let d = c.next(calm(1)).unwrap();
        assert_eq!((d.tenant, d.seq), (1, 1));
    }

    #[test]
    fn weighted_fair_prefers_underserved_heavy_tenants() {
        let cfg = AdmissionConfig {
            policy: PolicyKind::WeightedFair,
            max_active: 8,
            ..AdmissionConfig::default()
        };
        let mut weights = BTreeMap::new();
        weights.insert(0u32, 1u64);
        weights.insert(1u32, 3u64);
        let mut c = AdmissionController::new(cfg, weights);
        for seq in 0..3 {
            enq(&mut c, &arrival(0, seq, seq as u64));
            enq(&mut c, &arrival(1, seq, seq as u64));
        }
        // Equal served time: tie on vtime 0 broken by tenant id.
        let first = c.next(calm(0)).unwrap();
        assert_eq!(first.tenant, 0);
        // Tenant 0 has now been served heavily; weight-3 tenant 1 has a
        // 3x smaller vtime per unit served, so it gets the next slots.
        c.credit_served(0, 9_000);
        c.credit_served(1, 9_000);
        let second = c.next(calm(1)).unwrap();
        assert_eq!(second.tenant, 1);
        c.credit_served(1, 12_000);
        // vtime(0) = 9000/1 > vtime(1) = 21000/3 = 7000: tenant 1 again.
        let third = c.next(calm(2)).unwrap();
        assert_eq!(third.tenant, 1);
    }

    #[test]
    fn memory_aware_gates_colocation_but_stays_work_conserving() {
        let cfg = AdmissionConfig {
            policy: PolicyKind::MemoryAware,
            max_active: 4,
            min_free_ratio: 0.5,
            queue_cap: None,
        };
        let mut c = AdmissionController::new(cfg, BTreeMap::new());
        enq(&mut c, &arrival(0, 0, 1));
        enq(&mut c, &arrival(0, 1, 2));
        enq(&mut c, &arrival(0, 2, 3));
        let tight = ClusterView {
            active: 1,
            min_free_ratio: 0.2,
            any_reduce_signal: false,
            now: SimTime::ZERO,
        };
        let pressured = ClusterView {
            active: 1,
            min_free_ratio: 0.9,
            any_reduce_signal: true,
            now: SimTime::ZERO,
        };
        // Work conservation: empty cluster admits even under a low view.
        let first = c
            .next(ClusterView {
                active: 0,
                min_free_ratio: 0.0,
                any_reduce_signal: true,
                now: SimTime::ZERO,
            })
            .unwrap();
        assert_eq!(first.seq, 0);
        // Co-location blocked by the free-heap floor and by REDUCE.
        assert!(c.next(tight).is_none());
        assert!(c.next(pressured).is_none());
        // Healthy cluster co-locates.
        let second = c.next(calm(1)).unwrap();
        assert_eq!(second.seq, 1);
    }

    #[test]
    fn requeue_rejoins_at_the_back_with_retry_count() {
        let mut c = AdmissionController::new(AdmissionConfig::default(), BTreeMap::new());
        enq(&mut c, &arrival(0, 0, 1));
        enq(&mut c, &arrival(0, 1, 2));
        let failed = c.next(calm(0)).unwrap();
        assert_eq!(failed.seq, 0);
        let arrived = failed.arrived;
        let requeued_at = SimTime::ZERO + SimDuration::from_millis(9);
        c.requeue(failed, requeued_at);
        let next = c.next(calm(0)).unwrap();
        assert_eq!(next.seq, 1, "requeued job goes to the back");
        let retried = c.next(calm(0)).unwrap();
        assert_eq!(retried.seq, 0);
        assert_eq!(retried.retries, 1);
        assert_eq!(retried.arrived, arrived, "latency clock not reset");
        assert_eq!(
            retried.enqueued, requeued_at,
            "queue-wait clock restarts at the requeue"
        );
    }

    #[test]
    fn weighted_fair_ordering_is_exact_for_tiny_vtime_gaps() {
        let cfg = AdmissionConfig {
            policy: PolicyKind::WeightedFair,
            max_active: 8,
            ..AdmissionConfig::default()
        };
        // Both tenants' scaled vtimes would quantize to the same value
        // under `served * 1e6 / w`; cross-multiplication must still see
        // that tenant 1 (weight 3M, served 1) is the less-served one.
        let mut weights = BTreeMap::new();
        weights.insert(0u32, 2_000_000u64);
        weights.insert(1u32, 3_000_000u64);
        let mut c = AdmissionController::new(cfg, weights);
        enq(&mut c, &arrival(0, 0, 1));
        enq(&mut c, &arrival(1, 0, 2));
        c.credit_served(0, 1);
        c.credit_served(1, 1);
        let first = c.next(calm(0)).unwrap();
        assert_eq!(first.tenant, 1, "sub-resolution vtime gap lost");
    }

    #[test]
    fn queue_cap_sheds_at_enqueue_per_tenant() {
        let cfg = AdmissionConfig {
            queue_cap: Some(2),
            ..AdmissionConfig::default()
        };
        let mut c = AdmissionController::new(cfg, BTreeMap::new());
        enq(&mut c, &arrival(0, 0, 1));
        enq(&mut c, &arrival(0, 1, 2));
        enq(&mut c, &arrival(0, 2, 3)); // over tenant 0's cap
        enq(&mut c, &arrival(1, 0, 4)); // tenant 1 has its own budget
        assert_eq!(c.queued(), 3);
        let shed = c.take_shed();
        assert_eq!(shed.len(), 1);
        assert_eq!((shed[0].tenant, shed[0].seq), (0, 2));
        assert_eq!(shed[0].reason, ShedReason::QueueFull);
        assert_eq!(shed[0].reason.label(), "queue_full");
        assert!(c.take_shed().is_empty(), "take_shed drains");
    }

    #[test]
    fn deadlines_shed_at_enqueue_and_at_pop() {
        let mut c = AdmissionController::new(AdmissionConfig::default(), BTreeMap::new());
        // Arrives already past its deadline: shed on the spot.
        c.enqueue_arrival(&deadlined(0, 0, 10, 5), t(10));
        // Alive at enqueue, expires while queued: shed at pop.
        c.enqueue_arrival(&deadlined(0, 1, 10, 20), t(10));
        // No deadline: survives any wait.
        enq(&mut c, &arrival(0, 2, 11));
        assert_eq!(c.queued(), 2);
        let popped = c.next(calm_at(0, 30)).unwrap();
        assert_eq!(popped.seq, 2, "expired job skipped at pop");
        let shed = c.take_shed();
        assert_eq!(shed.len(), 2);
        assert!(shed.iter().all(|s| s.reason == ShedReason::DeadlineExpired));
        assert_eq!(shed[0].at, t(10));
        assert_eq!(shed[1].at, t(30));
    }

    #[test]
    fn deadline_exactly_now_still_runs() {
        let mut c = AdmissionController::new(AdmissionConfig::default(), BTreeMap::new());
        c.enqueue_arrival(&deadlined(0, 0, 5, 30), t(5));
        let popped = c.next(calm_at(0, 30));
        assert!(popped.is_some(), "deadline == now is not yet expired");
        assert!(c.take_shed().is_empty());
    }

    #[test]
    fn requeue_after_parks_until_release() {
        let mut c = AdmissionController::new(AdmissionConfig::default(), BTreeMap::new());
        enq(&mut c, &arrival(0, 0, 1));
        let failed = c.next(calm(0)).unwrap();
        c.requeue_after(failed, t(10), SimDuration::from_millis(5));
        assert_eq!(c.queued(), 0);
        assert_eq!(c.pending_delayed(), 1);
        assert_eq!(c.next_release(), Some(t(15)));
        // Not due yet: releasing early moves nothing.
        c.release_due(t(14));
        assert!(c.next(calm_at(0, 14)).is_none());
        c.release_due(t(15));
        assert_eq!(c.pending_delayed(), 0);
        assert_eq!(c.next_release(), None);
        let job = c.next(calm_at(0, 15)).unwrap();
        assert_eq!(job.retries, 1);
        assert_eq!(job.enqueued, t(15), "wait clock restarts at release");
    }

    #[test]
    fn requeue_after_zero_delay_is_plain_requeue() {
        let mut c = AdmissionController::new(AdmissionConfig::default(), BTreeMap::new());
        enq(&mut c, &arrival(0, 0, 1));
        let failed = c.next(calm(0)).unwrap();
        c.requeue_after(failed, t(9), SimDuration::ZERO);
        assert_eq!(c.pending_delayed(), 0);
        let job = c.next(calm_at(0, 9)).unwrap();
        assert_eq!((job.retries, job.enqueued), (1, t(9)));
    }

    #[test]
    fn delayed_releases_in_release_then_stamp_order() {
        let mut c = AdmissionController::new(AdmissionConfig::default(), BTreeMap::new());
        enq(&mut c, &arrival(0, 0, 1));
        enq(&mut c, &arrival(0, 1, 2));
        let a = c.next(calm(0)).unwrap();
        let b = c.next(calm(0)).unwrap();
        // Same release instant: the earlier-parked job keeps the earlier
        // stamp and pops first.
        c.requeue_after(b, t(10), SimDuration::from_millis(3));
        c.requeue_after(a, t(10), SimDuration::from_millis(3));
        c.release_due(t(13));
        let first = c.next(calm_at(0, 13)).unwrap();
        let second = c.next(calm_at(0, 13)).unwrap();
        assert_eq!((first.seq, second.seq), (1, 0));
    }

    #[test]
    fn tenant_queues_prune_under_churn() {
        // Regression: requeue/enqueue/expire cycles must never leave
        // tombstone (empty) per-tenant queues behind.
        let mut c = AdmissionController::new(AdmissionConfig::default(), BTreeMap::new());
        assert!(c.queued_tenants().is_empty());
        enq(&mut c, &arrival(3, 0, 1));
        enq(&mut c, &arrival(7, 0, 2));
        assert_eq!(c.queued_tenants(), vec![3, 7]);
        let j3 = c.next(calm(0)).unwrap();
        assert_eq!(c.queued_tenants(), vec![7]);
        c.requeue(j3, t(5));
        assert_eq!(c.queued_tenants(), vec![3, 7]);
        let _ = c.next(calm_at(0, 5)).unwrap();
        let _ = c.next(calm_at(0, 5)).unwrap();
        assert!(c.queued_tenants().is_empty(), "popped queues pruned");
        // Expiry-driven pruning: a queue emptied by deadline shedding
        // disappears too (queued_tenants() debug-asserts no tombstones).
        c.enqueue_arrival(&deadlined(9, 0, 6, 7), t(6));
        assert_eq!(c.queued_tenants(), vec![9]);
        assert!(c.next(calm_at(0, 20)).is_none());
        assert!(c.queued_tenants().is_empty(), "expired queues pruned");
        assert_eq!(c.take_shed().len(), 1);
        // Churn loop: heavy mixed traffic, invariant holds throughout.
        for round in 0..50u64 {
            enq(
                &mut c,
                &arrival((round % 5) as u32, round as u32, 30 + round),
            );
            if round % 3 == 0 {
                if let Some(j) = c.next(calm_at(0, 30 + round)) {
                    c.requeue_after(j, t(30 + round), SimDuration::from_millis(2));
                }
            }
            c.release_due(t(30 + round));
            let _ = c.queued_tenants(); // debug_assert: no tombstones
        }
    }

    #[test]
    fn indexes_stay_tombstone_free_under_large_tenant_churn() {
        // Million-tenant-scale churn, shrunk to 20k so debug test runs
        // stay quick: one deadlined job per tenant, pop a slice, expire
        // the rest. Every index (fifo fronts, fair keys, deadlines) and
        // the queued counter must drain back to exactly empty —
        // `queued_tenants()` debug-asserts index/queue lockstep on
        // every call.
        const TENANTS: u32 = 20_000;
        let cfg = AdmissionConfig {
            policy: PolicyKind::WeightedFair,
            max_active: usize::MAX,
            ..AdmissionConfig::default()
        };
        let mut c = AdmissionController::new(cfg, BTreeMap::new());
        for tid in 0..TENANTS {
            c.enqueue_arrival(&deadlined(tid, 0, 100, 101), t(100));
        }
        assert_eq!(c.queued(), TENANTS as usize);
        assert_eq!(c.queued_tenants().len(), TENANTS as usize);
        let mut popped = 0u32;
        for _ in 0..100 {
            let job = c.next(calm_at(0, 100)).expect("queued job pops");
            c.credit_served(job.tenant, 5_000);
            popped += 1;
        }
        // Everything still queued is now past its deadline; one probe
        // expires the lot and the controller is exactly empty again.
        assert!(c.next(calm_at(0, 200)).is_none());
        assert_eq!(c.queued(), 0);
        assert!(c.queued_tenants().is_empty(), "all queues pruned");
        assert_eq!(c.pending_delayed(), 0);
        let shed = c.take_shed();
        assert_eq!(shed.len(), (TENANTS - popped) as usize);
        assert!(shed.iter().all(|s| s.reason == ShedReason::DeadlineExpired));
    }

    #[test]
    fn weight_rule_matches_equivalent_weight_table() {
        // A procedural premium tier must order pops identically to the
        // same weights spelled out in a table.
        let cfg = AdmissionConfig {
            policy: PolicyKind::WeightedFair,
            max_active: usize::MAX,
            ..AdmissionConfig::default()
        };
        let rule = WeightRule {
            premium_every: 4,
            premium_weight: 6,
        };
        let mut table = BTreeMap::new();
        for tid in 0..12u32 {
            table.insert(tid, rule.weight_of(tid));
        }
        let mut by_rule = AdmissionController::with_weight_rule(cfg, rule);
        let mut by_table = AdmissionController::new(cfg, table);
        for tid in 0..12u32 {
            enq(&mut by_rule, &arrival(tid, 0, 1));
            enq(&mut by_table, &arrival(tid, 0, 1));
            by_rule.credit_served(tid, 1_000 + tid as u64);
            by_table.credit_served(tid, 1_000 + tid as u64);
        }
        for _ in 0..12 {
            let a = by_rule.next(calm_at(0, 2)).expect("rule pop");
            let b = by_table.next(calm_at(0, 2)).expect("table pop");
            assert_eq!((a.tenant, a.seq), (b.tenant, b.seq));
        }
        assert!(by_rule.next(calm_at(0, 2)).is_none());
        assert!(by_table.next(calm_at(0, 2)).is_none());
    }
}
