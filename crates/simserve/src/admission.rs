//! Admission control: per-tenant queues plus a pluggable policy that
//! decides which queued job (if any) may start next.
//!
//! The memory-aware policy is the service-layer use of the IRS monitor:
//! before co-locating another job onto shared heaps it consults the
//! cluster's worst free-heap ratio and the active jobs' memory signals,
//! holding admissions while any running job is under `REDUCE` pressure.
//! FIFO and weighted-fair ignore memory entirely and serve as the
//! baselines the service table compares against.

use std::collections::{BTreeMap, VecDeque};

use simcore::SimTime;

use crate::workload::{Arrival, JobKind};

/// Which admission policy orders and gates the queues.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// Global arrival order; admit whenever a slot is free.
    Fifo,
    /// Pick the tenant with the smallest served-virtual-time
    /// (served busy-nanos divided by weight); admit whenever a slot is
    /// free.
    WeightedFair,
    /// FIFO order, but co-locating beyond one active job additionally
    /// requires every node's free-heap ratio above a floor and no
    /// active job signalling `REDUCE`.
    MemoryAware,
}

impl PolicyKind {
    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Fifo => "fifo",
            PolicyKind::WeightedFair => "wfair",
            PolicyKind::MemoryAware => "memaware",
        }
    }
}

/// Admission configuration.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionConfig {
    /// The ordering/gating policy.
    pub policy: PolicyKind,
    /// Hard cap on concurrently active jobs.
    pub max_active: usize,
    /// Memory-aware floor: co-locate only while the worst node keeps at
    /// least this fraction of its heap effectively free.
    pub min_free_ratio: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            policy: PolicyKind::Fifo,
            max_active: 4,
            min_free_ratio: 0.35,
        }
    }
}

/// One queued submission (an [`Arrival`] plus retry bookkeeping).
#[derive(Clone, Debug)]
pub struct QueuedJob {
    /// Submitting tenant.
    pub tenant: u32,
    /// Per-tenant sequence number.
    pub seq: u32,
    /// Job kind to build on admission.
    pub kind: JobKind,
    /// Original submission instant (latency is measured from here even
    /// across retries).
    pub arrived: SimTime,
    /// Most recent enqueue instant: the arrival for fresh submissions,
    /// the requeue instant for retries. Queue wait is measured from
    /// here, so a retry's wait does not absorb its prior execution.
    pub enqueued: SimTime,
    /// Dataset seed.
    pub dataset_seed: u64,
    /// How many times this job has already failed and been requeued.
    pub retries: u32,
    /// Global enqueue stamp (FIFO order; retries are stamped afresh so
    /// they rejoin at the back).
    stamp: u64,
}

/// What the policy may inspect about the cluster before admitting.
#[derive(Clone, Copy, Debug)]
pub struct ClusterView {
    /// Number of currently active jobs.
    pub active: usize,
    /// Worst per-node effectively-free heap fraction.
    pub min_free_ratio: f64,
    /// Whether any active job's IRS currently signals `REDUCE`.
    pub any_reduce_signal: bool,
}

/// Per-tenant queues plus the policy state.
pub struct AdmissionController {
    cfg: AdmissionConfig,
    queues: BTreeMap<u32, VecDeque<QueuedJob>>,
    /// Tenant weights (weighted-fair).
    weights: BTreeMap<u32, u64>,
    /// Served busy-nanos per tenant (weighted-fair virtual time).
    served: BTreeMap<u32, u64>,
    next_stamp: u64,
}

impl AdmissionController {
    /// Creates a controller; `weights` maps tenant → weighted-fair
    /// share (tenants absent from the map default to weight 1).
    pub fn new(cfg: AdmissionConfig, weights: BTreeMap<u32, u64>) -> Self {
        AdmissionController {
            cfg,
            queues: BTreeMap::new(),
            weights,
            served: BTreeMap::new(),
            next_stamp: 0,
        }
    }

    /// The configured policy.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Total queued jobs across tenants.
    pub fn queued(&self) -> usize {
        self.queues.values().map(VecDeque::len).sum()
    }

    /// Enqueues a fresh arrival.
    pub fn enqueue_arrival(&mut self, a: &Arrival) {
        let job = QueuedJob {
            tenant: a.tenant,
            seq: a.seq,
            kind: a.kind,
            arrived: a.at,
            enqueued: a.at,
            dataset_seed: a.dataset_seed,
            retries: 0,
            stamp: self.next_stamp,
        };
        self.next_stamp += 1;
        self.queues.entry(a.tenant).or_default().push_back(job);
    }

    /// Requeues a failed job at the back of its tenant's queue with a
    /// fresh stamp, a fresh enqueue instant (`now`), and an incremented
    /// retry count.
    pub fn requeue(&mut self, mut job: QueuedJob, now: SimTime) {
        job.retries += 1;
        job.enqueued = now;
        job.stamp = self.next_stamp;
        self.next_stamp += 1;
        self.queues.entry(job.tenant).or_default().push_back(job);
    }

    /// Credits a tenant with served busy time (drives weighted-fair
    /// virtual time forward on completion or failure).
    pub fn credit_served(&mut self, tenant: u32, busy_nanos: u64) {
        *self.served.entry(tenant).or_insert(0) += busy_nanos;
    }

    /// Pops the next admissible job under the policy, or `None` if the
    /// queues are empty, every slot is taken, or the memory gate holds.
    ///
    /// All policies are work-conserving: when nothing is active, the
    /// head job is always admitted regardless of memory state.
    pub fn next(&mut self, view: ClusterView) -> Option<QueuedJob> {
        if view.active >= self.cfg.max_active || self.queued() == 0 {
            return None;
        }
        match self.cfg.policy {
            PolicyKind::Fifo => self.pop_fifo(),
            PolicyKind::WeightedFair => self.pop_weighted_fair(),
            PolicyKind::MemoryAware => {
                if view.active > 0
                    && (view.min_free_ratio < self.cfg.min_free_ratio || view.any_reduce_signal)
                {
                    return None;
                }
                self.pop_fifo()
            }
        }
    }

    /// Head job across tenants by global stamp.
    fn pop_fifo(&mut self) -> Option<QueuedJob> {
        let tenant = self
            .queues
            .iter()
            .filter_map(|(t, q)| q.front().map(|j| (j.stamp, *t)))
            .min()
            .map(|(_, t)| t)?;
        self.pop_front(tenant)
    }

    /// Head job of the non-empty tenant with the smallest virtual time
    /// (`served / weight`), ties broken by tenant id. Pairs are ordered
    /// by cross-multiplication — `served_t * w_b < served_b * w_t` —
    /// so the comparison is exact: no scaling constant, no integer
    /// division to quantize distinct vtimes together.
    fn pop_weighted_fair(&mut self) -> Option<QueuedJob> {
        let mut best: Option<(u128, u128, u32)> = None; // (served, weight, tenant)
        for (&t, q) in &self.queues {
            if q.is_empty() {
                continue;
            }
            let w = self.weights.get(&t).copied().unwrap_or(1).max(1) as u128;
            let served = self.served.get(&t).copied().unwrap_or(0) as u128;
            // Queues iterate in ascending tenant order, so the strict
            // inequality keeps the lowest tenant id on vtime ties.
            if best.map(|(bs, bw, _)| served * bw < bs * w).unwrap_or(true) {
                best = Some((served, w, t));
            }
        }
        let tenant = best.map(|(_, _, t)| t)?;
        self.pop_front(tenant)
    }

    fn pop_front(&mut self, tenant: u32) -> Option<QueuedJob> {
        let q = self.queues.get_mut(&tenant)?;
        let job = q.pop_front();
        if q.is_empty() {
            self.queues.remove(&tenant);
        }
        job
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimDuration;

    fn arrival(tenant: u32, seq: u32, at_ms: u64) -> Arrival {
        Arrival {
            at: SimTime::ZERO + SimDuration::from_millis(at_ms),
            tenant,
            seq,
            kind: JobKind::DegreeCount,
            dataset_seed: (tenant as u64) << 32 | seq as u64,
        }
    }

    fn calm(active: usize) -> ClusterView {
        ClusterView {
            active,
            min_free_ratio: 0.9,
            any_reduce_signal: false,
        }
    }

    #[test]
    fn fifo_serves_global_arrival_order_and_respects_cap() {
        let cfg = AdmissionConfig {
            policy: PolicyKind::Fifo,
            max_active: 2,
            ..AdmissionConfig::default()
        };
        let mut c = AdmissionController::new(cfg, BTreeMap::new());
        c.enqueue_arrival(&arrival(1, 0, 10));
        c.enqueue_arrival(&arrival(0, 0, 20));
        c.enqueue_arrival(&arrival(1, 1, 30));
        let a = c.next(calm(0)).unwrap();
        let b = c.next(calm(1)).unwrap();
        assert_eq!((a.tenant, a.seq), (1, 0));
        assert_eq!((b.tenant, b.seq), (0, 0));
        // Cap reached: the third job waits even though it is queued.
        assert!(c.next(calm(2)).is_none());
        assert_eq!(c.queued(), 1);
        let d = c.next(calm(1)).unwrap();
        assert_eq!((d.tenant, d.seq), (1, 1));
    }

    #[test]
    fn weighted_fair_prefers_underserved_heavy_tenants() {
        let cfg = AdmissionConfig {
            policy: PolicyKind::WeightedFair,
            max_active: 8,
            ..AdmissionConfig::default()
        };
        let mut weights = BTreeMap::new();
        weights.insert(0u32, 1u64);
        weights.insert(1u32, 3u64);
        let mut c = AdmissionController::new(cfg, weights);
        for seq in 0..3 {
            c.enqueue_arrival(&arrival(0, seq, seq as u64));
            c.enqueue_arrival(&arrival(1, seq, seq as u64));
        }
        // Equal served time: tie on vtime 0 broken by tenant id.
        let first = c.next(calm(0)).unwrap();
        assert_eq!(first.tenant, 0);
        // Tenant 0 has now been served heavily; weight-3 tenant 1 has a
        // 3x smaller vtime per unit served, so it gets the next slots.
        c.credit_served(0, 9_000);
        c.credit_served(1, 9_000);
        let second = c.next(calm(1)).unwrap();
        assert_eq!(second.tenant, 1);
        c.credit_served(1, 12_000);
        // vtime(0) = 9000/1 > vtime(1) = 21000/3 = 7000: tenant 1 again.
        let third = c.next(calm(2)).unwrap();
        assert_eq!(third.tenant, 1);
    }

    #[test]
    fn memory_aware_gates_colocation_but_stays_work_conserving() {
        let cfg = AdmissionConfig {
            policy: PolicyKind::MemoryAware,
            max_active: 4,
            min_free_ratio: 0.5,
        };
        let mut c = AdmissionController::new(cfg, BTreeMap::new());
        c.enqueue_arrival(&arrival(0, 0, 1));
        c.enqueue_arrival(&arrival(0, 1, 2));
        c.enqueue_arrival(&arrival(0, 2, 3));
        let tight = ClusterView {
            active: 1,
            min_free_ratio: 0.2,
            any_reduce_signal: false,
        };
        let pressured = ClusterView {
            active: 1,
            min_free_ratio: 0.9,
            any_reduce_signal: true,
        };
        // Work conservation: empty cluster admits even under a low view.
        let first = c
            .next(ClusterView {
                active: 0,
                min_free_ratio: 0.0,
                any_reduce_signal: true,
            })
            .unwrap();
        assert_eq!(first.seq, 0);
        // Co-location blocked by the free-heap floor and by REDUCE.
        assert!(c.next(tight).is_none());
        assert!(c.next(pressured).is_none());
        // Healthy cluster co-locates.
        let second = c.next(calm(1)).unwrap();
        assert_eq!(second.seq, 1);
    }

    #[test]
    fn requeue_rejoins_at_the_back_with_retry_count() {
        let mut c = AdmissionController::new(AdmissionConfig::default(), BTreeMap::new());
        c.enqueue_arrival(&arrival(0, 0, 1));
        c.enqueue_arrival(&arrival(0, 1, 2));
        let failed = c.next(calm(0)).unwrap();
        assert_eq!(failed.seq, 0);
        let arrived = failed.arrived;
        let requeued_at = SimTime::ZERO + SimDuration::from_millis(9);
        c.requeue(failed, requeued_at);
        let next = c.next(calm(0)).unwrap();
        assert_eq!(next.seq, 1, "requeued job goes to the back");
        let retried = c.next(calm(0)).unwrap();
        assert_eq!(retried.seq, 0);
        assert_eq!(retried.retries, 1);
        assert_eq!(retried.arrived, arrived, "latency clock not reset");
        assert_eq!(
            retried.enqueued, requeued_at,
            "queue-wait clock restarts at the requeue"
        );
    }

    #[test]
    fn weighted_fair_ordering_is_exact_for_tiny_vtime_gaps() {
        let cfg = AdmissionConfig {
            policy: PolicyKind::WeightedFair,
            max_active: 8,
            ..AdmissionConfig::default()
        };
        // Both tenants' scaled vtimes would quantize to the same value
        // under `served * 1e6 / w`; cross-multiplication must still see
        // that tenant 1 (weight 3M, served 1) is the less-served one.
        let mut weights = BTreeMap::new();
        weights.insert(0u32, 2_000_000u64);
        weights.insert(1u32, 3_000_000u64);
        let mut c = AdmissionController::new(cfg, weights);
        c.enqueue_arrival(&arrival(0, 0, 1));
        c.enqueue_arrival(&arrival(1, 0, 2));
        c.credit_served(0, 1);
        c.credit_served(1, 1);
        let first = c.next(calm(0)).unwrap();
        assert_eq!(first.tenant, 1, "sub-resolution vtime gap lost");
    }
}
