//! simserve: a deterministic multi-tenant job service on the cluster
//! simulator.
//!
//! The paper evaluates ITasks one job at a time; this crate asks the
//! service-operator question instead: *how many tenants can one cluster
//! absorb before jobs start dying?* It layers on top of the existing
//! simulator stack:
//!
//! - [`workload`] — a seeded open-loop client generator: N tenants
//!   submitting planner fold, Hyracks WC, and planner collect jobs at
//!   configurable rates and mixes, all derived from one root seed.
//! - [`admission`] — per-tenant queues behind a pluggable policy:
//!   FIFO, weighted-fair, or memory-aware (which consults the
//!   cluster's free-heap ratios and the active jobs' IRS memory
//!   signals before co-locating).
//! - [`job`] — an incremental two-phase job driver whose threads and
//!   heap spaces are attributed to per-job *allocation scopes*, so
//!   concurrent jobs share node heaps, contend genuinely, interrupt
//!   each other, and can be torn down surgically.
//! - [`service`] — the scheduling loop tying it together, with
//!   per-tenant SLO accounting (latency and queue-wait quantiles via
//!   the deterministic [`sketch`], OME/retry/failure counts) and an
//!   event log of service gauges.
//! - [`overload`] — survival controls for sustained OME storms:
//!   deadline-aware shedding, per-tenant retry token budgets with
//!   seeded exponential backoff, a per-node storm circuit breaker
//!   (quarantine → drain → half-open probe), and a cluster-wide
//!   brownout that deflates ITask jobs before the full-GC cliff. All
//!   default-off, so pre-existing configurations are untouched.
//!
//! Everything is virtual-time and seeded: the same configuration
//! produces byte-identical reports on any machine at any parallelism,
//! which `itask-bench`'s `service` binary relies on for its tables.

pub mod admission;
pub mod job;
pub mod overload;
pub mod service;
pub mod sketch;
pub mod workload;

pub use admission::{AdmissionConfig, AdmissionController, ClusterView, PolicyKind, QueuedJob};
pub use job::{EngineKind, JobDriver, JobParams, TwoPhaseJob};
pub use overload::{
    classify, Breaker, BreakerConfig, BreakerState, BreakerTransition, BrownoutConfig,
    BrownoutState, FailureClass, OverloadConfig, RetryBudget, RetryPolicy, ShedReason, ShedRecord,
    TokenBucket,
};
pub use service::{ScaleSpec, Service, ServiceConfig, ServiceReport, TenantSlo};
pub use sketch::QuantileSketch;
pub use workload::{
    generate_arrivals, Arrival, ArrivalGen, ArrivalSource, JobKind, LoadShape, TenantModel,
    TenantSpec, WeightRule,
};
