//! A deterministic quantile sketch (Munro–Paterson style compacting
//! buffers) for SLO latency accounting.
//!
//! The service records one latency sample per completed job and reports
//! p50/p95/p99 per tenant. Sorting every sample would be exact but
//! O(n log n) memory; a sketch with `k`-slot buffers per level keeps
//! memory at O(k log(n/k)) with a deterministic, platform-independent
//! answer — the same inserts in the same order always produce the same
//! quantiles, which the byte-identical service table depends on.
//!
//! Exactness: with fewer than `k` samples everything sits in level 0
//! with weight 1, so quantiles are exact order statistics — the common
//! case for per-tenant latencies in a bounded sweep.

/// Deterministic quantile sketch over `u64` samples.
#[derive(Clone, Debug)]
pub struct QuantileSketch {
    /// Buffer capacity per level (compaction threshold).
    k: usize,
    /// levels[l] holds values of weight `2^l`, unsorted between carries.
    levels: Vec<Vec<u64>>,
    /// Per-level survivor-offset toggle (alternates to cancel the
    /// half-sample bias of each compaction).
    toggles: Vec<bool>,
    count: u64,
    min: u64,
    max: u64,
}

impl QuantileSketch {
    /// Default buffer size: exact up to 256 samples, ~2KB per level after.
    pub const DEFAULT_K: usize = 256;

    /// Creates an empty sketch with buffer capacity `k` (min 2, rounded
    /// up to even so compaction halves exactly).
    pub fn new(k: usize) -> Self {
        let k = k.max(2) + (k.max(2) & 1);
        QuantileSketch {
            k,
            levels: vec![Vec::new()],
            toggles: vec![false],
            count: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Number of samples inserted.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether any sample was inserted.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest sample (`0` when empty).
    pub fn min(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (`0` when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Inserts one sample.
    pub fn insert(&mut self, v: u64) {
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.levels[0].push(v);
        self.carry(0);
    }

    /// Merges another sketch into this one (buffer capacities need not
    /// match; the receiver's `k` governs).
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.is_empty() {
            return;
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (level, vals) in other.levels.iter().enumerate() {
            while self.levels.len() <= level {
                self.levels.push(Vec::new());
                self.toggles.push(false);
            }
            self.levels[level].extend_from_slice(vals);
            self.carry(level);
        }
    }

    /// The `q`-quantile (`0.0 ≤ q ≤ 1.0`) as a weighted rank walk over
    /// the sketch's (value, weight) pairs. Returns `0` when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.is_empty() {
            return 0;
        }
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        let mut pairs: Vec<(u64, u64)> = Vec::new();
        let mut total: u64 = 0;
        for (level, vals) in self.levels.iter().enumerate() {
            let w = 1u64 << level;
            for &v in vals {
                pairs.push((v, w));
                total += w;
            }
        }
        pairs.sort_unstable();
        // Target rank in [1, total]; integer arithmetic keeps the walk
        // exactly reproducible.
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (v, w) in pairs {
            seen += w;
            if seen >= target {
                return v;
            }
        }
        self.max
    }

    /// Compacts `level` (and cascades) while it is at capacity: the
    /// buffer is sorted and every other value is promoted with doubled
    /// weight, alternating the surviving offset per carry.
    fn carry(&mut self, mut level: usize) {
        while self.levels[level].len() >= self.k {
            if self.levels.len() <= level + 1 {
                self.levels.push(Vec::new());
                self.toggles.push(false);
            }
            let mut buf = std::mem::take(&mut self.levels[level]);
            buf.sort_unstable();
            let offset = usize::from(self.toggles[level]);
            self.toggles[level] = !self.toggles[level];
            // Odd leftover (merge can overfill past an even k) stays put.
            if buf.len() % 2 == 1 {
                let last = buf.pop().expect("non-empty buffer");
                self.levels[level].push(last);
            }
            let promoted: Vec<u64> = buf.iter().copied().skip(offset).step_by(2).collect();
            self.levels[level + 1].extend(promoted);
            level += 1;
        }
    }
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new(Self::DEFAULT_K)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_capacity() {
        let mut s = QuantileSketch::new(64);
        for v in (1..=50u64).rev() {
            s.insert(v * 10);
        }
        assert_eq!(s.count(), 50);
        assert_eq!(s.min(), 10);
        assert_eq!(s.max(), 500);
        assert_eq!(s.quantile(0.5), 250);
        assert_eq!(s.quantile(0.0), 10);
        assert_eq!(s.quantile(1.0), 500);
        // Exact order statistics: q=0.02 is the 1st of 50.
        assert_eq!(s.quantile(0.02), 10);
        assert_eq!(s.quantile(0.98), 490);
    }

    #[test]
    fn empty_sketch_answers_zero() {
        let s = QuantileSketch::default();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
    }

    #[test]
    fn compacted_quantiles_stay_close() {
        let mut s = QuantileSketch::new(32);
        // 10_000 samples of a known uniform ramp, inserted in a
        // scrambled but deterministic order.
        let n = 10_000u64;
        for i in 0..n {
            s.insert((i * 7919) % n);
        }
        assert_eq!(s.count(), n);
        for (q, want) in [(0.5, n / 2), (0.95, n * 95 / 100), (0.99, n * 99 / 100)] {
            let got = s.quantile(q);
            let err = got.abs_diff(want) as f64 / n as f64;
            assert!(err < 0.05, "q={q}: got {got}, want ~{want}");
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let build = || {
            let mut s = QuantileSketch::new(16);
            for i in 0..5_000u64 {
                s.insert(i.wrapping_mul(6364136223846793005).wrapping_add(i) % 100_000);
            }
            (s.quantile(0.5), s.quantile(0.95), s.quantile(0.99))
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn merge_matches_sequential_insertion() {
        let mut all = QuantileSketch::new(16);
        let mut a = QuantileSketch::new(16);
        let mut b = QuantileSketch::new(16);
        for i in 0..2_000u64 {
            let v = (i * 31) % 977;
            all.insert(v);
            if i % 2 == 0 {
                a.insert(v);
            } else {
                b.insert(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        for q in [0.5, 0.95, 0.99] {
            let (ma, mb) = (a.quantile(q), all.quantile(q));
            let err = ma.abs_diff(mb) as f64 / 977.0;
            assert!(err < 0.08, "q={q}: merged {ma} vs sequential {mb}");
        }
    }
}
