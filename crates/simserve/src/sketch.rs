//! Re-export of the deterministic quantile sketch, which moved to
//! [`simcore::sketch`] so the metrics plane, the SMR commit tail and
//! the trace analyzers share one implementation. Existing
//! `simserve::sketch::QuantileSketch` paths keep working.

pub use simcore::sketch::{fmt_ms, QuantileSketch, SketchSnapshot};
