//! The service loop: a deterministic multi-tenant job service driving
//! admission, concurrent execution, failure handling, and per-tenant
//! SLO accounting on one shared simulated cluster.
//!
//! One iteration of the loop is one scheduling round: due arrivals are
//! enqueued, the admission policy fills free slots, every active job's
//! control plane is pumped, every live node runs one processor-sharing
//! round (stepping *all* jobs' threads together, so co-located jobs
//! contend for the same heaps), crashes fire, and failures are retried
//! or charged against their tenant. Everything is seeded and stepped in
//! a fixed order, so a `(config, seed)` pair always produces the same
//! report — byte for byte.

use std::collections::BTreeMap;

use itask_core::MemSignal;
use simcluster::{run_parts, Cluster, ClusterConfig, ShardExecutor};
use simcore::{
    metrics, tracer, tracer::EventId, ByteSize, EventLog, FaultPlan, NodeId, SimDuration, SimError,
    SimTime,
};

use crate::admission::{AdmissionConfig, AdmissionController, ClusterView, QueuedJob};
use crate::job::{salvage_crashed_workers, EngineKind, JobDriver, JobParams, TwoPhaseJob};
use crate::overload::{
    classify, Breaker, BreakerTransition, BrownoutState, OverloadConfig, RetryPolicy, ShedReason,
    TokenBucket,
};
use crate::sketch::QuantileSketch;
use crate::workload::{
    dataset_blocks, generate_arrivals, ArrivalGen, ArrivalSource, JobKind, TenantModel, TenantSpec,
};

/// Safety valve: a service run that exceeds this many scheduling rounds
/// has livelocked (a bug, not a workload property — idle periods jump
/// the clock instead of spinning).
const MAX_ROUNDS: u64 = 2_000_000;

/// Full configuration of one service run.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Cluster shape.
    pub nodes: usize,
    /// Cores per node.
    pub cores: usize,
    /// Managed-heap capacity per node (the contended resource).
    pub heap_per_node: ByteSize,
    /// Which engine executes every job.
    pub engine: EngineKind,
    /// Admission policy and limits.
    pub admission: AdmissionConfig,
    /// Root seed for arrival schedules and datasets.
    pub seed: u64,
    /// Arrival-generation horizon.
    pub horizon: SimDuration,
    /// The tenants and their traffic profiles.
    pub tenants: Vec<TenantSpec>,
    /// Retry policy: attempt ceilings per failure class, backoff, and
    /// the optional per-tenant retry token budget.
    pub retry: RetryPolicy,
    /// Optional overload controls (circuit breaker, brownout); default
    /// off, leaving pre-existing configurations untouched.
    pub overload: OverloadConfig,
    /// Optional deterministic fault plan (node crashes, disk faults).
    pub fault_plan: Option<FaultPlan>,
    /// Per-job sizing knobs.
    pub params: JobParams,
    /// Input block granularity for generated datasets.
    pub block_size: ByteSize,
    /// Scale mode: a lazily generated tenant population with sharded
    /// admission, replacing `tenants` (which must then be empty).
    /// `None` (the default) keeps the classic single-controller path —
    /// and its bytes — untouched.
    pub scale: Option<ScaleSpec>,
}

/// Configuration of scale mode: how the 10^5–10^6-tenant admission
/// plane is populated and sharded.
#[derive(Clone, Debug)]
pub struct ScaleSpec {
    /// The lazily synthesized tenant population.
    pub model: TenantModel,
    /// Admission shards: tenants hash to a shard (`tenant % shards`),
    /// each shard owns an indexed controller gating on its own slice of
    /// nodes (`node % shards`), and per-shard decisions fan out across
    /// [`run_parts`] with a deterministic shard-order merge. Clamped to
    /// `[1, nodes]`. The configured `max_active` (and any brownout cap)
    /// applies per shard.
    pub admission_shards: usize,
}

impl ServiceConfig {
    /// The calibrated standard configuration used by benches and tests:
    /// heaps sized so one job of any kind runs comfortably but
    /// co-located heavy jobs genuinely pressure each other.
    pub fn standard(engine: EngineKind, tenant_count: u32, seed: u64) -> Self {
        ServiceConfig {
            nodes: 4,
            cores: 2,
            heap_per_node: ByteSize::kib(512),
            engine,
            admission: AdmissionConfig::default(),
            seed,
            horizon: SimDuration::from_millis(40),
            tenants: (0..tenant_count)
                .map(|i| TenantSpec::uniform(i, SimDuration::from_millis(8)))
                .collect(),
            retry: RetryPolicy::flat(2),
            overload: OverloadConfig::default(),
            fault_plan: None,
            params: JobParams {
                threads: 2,
                max_parallelism: 2,
                granularity: ByteSize::kib(8),
                buckets: 16,
            },
            block_size: ByteSize::kib(8),
            scale: None,
        }
    }
}

/// Per-tenant service-level accounting.
#[derive(Clone, Debug, Default)]
pub struct TenantSlo {
    /// Jobs submitted (arrivals inside the horizon).
    pub submitted: u64,
    /// Jobs completed successfully.
    pub completed: u64,
    /// Jobs that exhausted their retries.
    pub failed: u64,
    /// Out-of-memory errors charged to this tenant's jobs.
    pub omes: u64,
    /// Retry attempts consumed.
    pub retries: u64,
    /// Jobs shed because their submit deadline expired in a queue.
    pub shed_deadline: u64,
    /// Arrivals shed because the tenant's bounded queue was full.
    pub shed_queue: u64,
    /// Failures denied a retry by the tenant's empty token bucket.
    pub shed_retry: u64,
    /// End-to-end latency (submission → completion), nanoseconds.
    pub latency: QuantileSketch,
    /// Queue wait (submission → admission), nanoseconds.
    pub queue_wait: QuantileSketch,
}

/// The outcome of one service run.
pub struct ServiceReport {
    /// Per-tenant SLO accounting.
    pub tenants: BTreeMap<u32, TenantSlo>,
    /// Virtual wall time of the whole run.
    pub elapsed: SimDuration,
    /// Total output tuples across completed jobs (a checksum that the
    /// engines computed the same answers).
    pub total_outputs: u64,
    /// Scheduling rounds executed.
    pub rounds: u64,
    /// Circuit-breaker trips (nodes quarantined, counting re-trips).
    pub quarantines: u64,
    /// Rounds spent browned out.
    pub brownout_rounds: u64,
    /// High-water mark of immediately-runnable queued jobs across all
    /// admission shards.
    pub peak_queued: u64,
    /// Scale mode only: end-to-end latency samples, recorded per
    /// admission shard and merged in shard order (bounded memory — the
    /// per-tenant sketches stay empty at 10^5 tenants).
    pub scale_latency: Option<QuantileSketch>,
    /// Scale mode only: queue-wait samples, sharded and merged like
    /// `scale_latency`.
    pub scale_queue_wait: Option<QuantileSketch>,
    /// Time series of service-level gauges.
    pub log: EventLog,
}

impl ServiceReport {
    /// Sums a counter over every tenant.
    pub fn total(&self, f: impl Fn(&TenantSlo) -> u64) -> u64 {
        self.tenants.values().map(f).sum()
    }

    /// Jobs shed across all tenants and reasons.
    pub fn total_shed(&self) -> u64 {
        self.total(|t| t.shed_deadline + t.shed_queue + t.shed_retry)
    }

    /// All latency samples merged: the shard-merged scale sketch when
    /// in scale mode, else every tenant's sketch merged.
    pub fn merged_latency(&self) -> QuantileSketch {
        if let Some(s) = &self.scale_latency {
            return s.clone();
        }
        let mut all = QuantileSketch::default();
        for t in self.tenants.values() {
            all.merge(&t.latency);
        }
        all
    }

    /// All queue-wait samples merged (scale sketch when present).
    pub fn merged_queue_wait(&self) -> QuantileSketch {
        if let Some(s) = &self.scale_queue_wait {
            return s.clone();
        }
        let mut all = QuantileSketch::default();
        for t in self.tenants.values() {
            all.merge(&t.queue_wait);
        }
        all
    }

    /// The report reduced to stable table cells:
    /// `[done/submitted, OMEs, retries, failed, p50, p95, p99, qwait-p95]`.
    /// Everything derives from integer state, so equal runs produce
    /// byte-identical cells — the service table's determinism contract.
    pub fn summary_cells(&self) -> Vec<String> {
        let lat = self.merged_latency();
        let qw = self.merged_queue_wait();
        vec![
            format!(
                "{}/{}",
                self.total(|t| t.completed),
                self.total(|t| t.submitted)
            ),
            self.total(|t| t.omes).to_string(),
            self.total(|t| t.retries).to_string(),
            self.total(|t| t.failed).to_string(),
            fmt_ms(lat.quantile(0.5)),
            fmt_ms(lat.quantile(0.95)),
            fmt_ms(lat.quantile(0.99)),
            fmt_ms(qw.quantile(0.95)),
        ]
    }
}

/// Nanoseconds as fixed-point milliseconds (integer math: stable).
fn fmt_ms(ns: u64) -> String {
    let tenths = ns / 100_000;
    format!("{}.{}ms", tenths / 10, tenths % 10)
}

/// One admitted, executing job.
struct ActiveJob {
    driver: Box<dyn JobDriver>,
    queued: QueuedJob,
    failure: Option<SimError>,
    /// Admission shard that issued the job (0 outside scale mode).
    shard: usize,
}

/// The service runtime.
pub struct Service {
    cfg: ServiceConfig,
    cluster: Cluster,
    /// Admission controllers: exactly one outside scale mode; one per
    /// admission shard (tenant % shards) in scale mode.
    controllers: Vec<AdmissionController>,
    arrivals: ArrivalSource,
    /// Scale mode: node slice owned by each admission shard
    /// (`node % shards`); a single all-nodes slice otherwise.
    shard_nodes: Vec<Vec<NodeId>>,
    active: Vec<ActiveJob>,
    slos: BTreeMap<u32, TenantSlo>,
    /// Scale mode: per-shard bounded-memory latency sketches (empty
    /// vectors outside scale mode; per-tenant sketches used instead).
    scale_lat: Vec<QuantileSketch>,
    scale_wait: Vec<QuantileSketch>,
    peak_queued: u64,
    log: EventLog,
    next_scope: u64,
    total_outputs: u64,
    rounds: u64,
    /// Per-node circuit breakers (always sized, only stepped when the
    /// breaker config is armed).
    breakers: Vec<Breaker>,
    /// Cluster-wide brownout state.
    brownout: BrownoutState,
    /// Per-tenant retry token buckets (lazily created on first spend).
    retry_buckets: BTreeMap<u32, TokenBucket>,
    /// Per-node cumulative GC counters already charged to the breaker:
    /// `(minor, full, useless)`.
    gc_seen: Vec<(u64, u64, u64)>,
    /// Per-node OutOfMemory thread failures observed this round.
    oom_round: Vec<u64>,
    /// Per-node id of the last storm trace event (breaker causal link).
    last_storm: Vec<EventId>,
    /// Per-shard queue depth last published to the metrics plane
    /// (change-driven so idle rounds emit nothing).
    last_queue_depth: Vec<i64>,
    /// Id of the last storm event anywhere (brownout causal link).
    last_storm_any: EventId,
    quarantines: u64,
    brownout_rounds: u64,
    /// Lockstep shard executor for the data-plane rounds (persistent so
    /// the worker pool is built once, not per round).
    exec: ShardExecutor,
}

impl Service {
    /// Builds the service: generates the arrival schedule, sizes the
    /// cluster, and arms the fault plan if any.
    pub fn new(cfg: ServiceConfig) -> Self {
        let mut cluster = Cluster::new(ClusterConfig {
            nodes: cfg.nodes,
            cores: cfg.cores,
            heap_per_node: cfg.heap_per_node,
            ..ClusterConfig::default()
        });
        if let Some(plan) = cfg.fault_plan.clone() {
            cluster.install_faults(plan);
        }
        let mut slos: BTreeMap<u32, TenantSlo> = BTreeMap::new();
        let all_nodes: Vec<NodeId> = (0..cfg.nodes).map(|n| NodeId(n as u32)).collect();
        let (controllers, arrivals, shard_nodes, scale_lat, scale_wait) = match &cfg.scale {
            None => {
                for t in &cfg.tenants {
                    slos.insert(t.id, TenantSlo::default());
                }
                let weights = cfg.tenants.iter().map(|t| (t.id, t.weight)).collect();
                let fixed = generate_arrivals(cfg.seed, &cfg.tenants, cfg.horizon);
                (
                    vec![AdmissionController::new(cfg.admission, weights)],
                    ArrivalSource::fixed(fixed),
                    vec![all_nodes],
                    Vec::new(),
                    Vec::new(),
                )
            }
            Some(spec) => {
                assert!(
                    cfg.tenants.is_empty(),
                    "scale mode replaces the explicit tenant list"
                );
                let shards = spec.admission_shards.clamp(1, cfg.nodes.max(1));
                let controllers = (0..shards)
                    .map(|_| {
                        AdmissionController::with_weight_rule(cfg.admission, spec.model.weights)
                    })
                    .collect();
                let shard_nodes = (0..shards)
                    .map(|s| {
                        all_nodes
                            .iter()
                            .copied()
                            .filter(|n| n.as_usize() % shards == s)
                            .collect()
                    })
                    .collect();
                let stream = ArrivalGen::new(cfg.seed, spec.model.clone(), cfg.horizon);
                (
                    controllers,
                    ArrivalSource::lazy(stream),
                    shard_nodes,
                    vec![QuantileSketch::default(); shards],
                    vec![QuantileSketch::default(); shards],
                )
            }
        };
        let nodes = cfg.nodes;
        let n_shards = controllers.len();
        Service {
            cfg,
            cluster,
            controllers,
            arrivals,
            shard_nodes,
            active: Vec::new(),
            slos,
            scale_lat,
            scale_wait,
            peak_queued: 0,
            log: EventLog::new(),
            next_scope: 1,
            total_outputs: 0,
            rounds: 0,
            breakers: vec![Breaker::default(); nodes],
            brownout: BrownoutState::default(),
            retry_buckets: BTreeMap::new(),
            gc_seen: vec![(0, 0, 0); nodes],
            oom_round: vec![0; nodes],
            last_storm: vec![EventId::NONE; nodes],
            last_queue_depth: vec![i64::MIN; n_shards],
            last_storm_any: EventId::NONE,
            quarantines: 0,
            brownout_rounds: 0,
            exec: ShardExecutor::new(),
        }
    }

    /// Runs the service to completion (all arrivals processed, all jobs
    /// completed or failed) and returns the report.
    pub fn run(mut self) -> ServiceReport {
        loop {
            let now = SimTime::ZERO + self.cluster.elapsed();
            self.enqueue_due(now);
            self.admit(now);
            self.drain_sheds(now);
            self.pump();
            self.step_data_plane();
            self.handle_crashes();
            self.update_overload();
            self.settle_jobs();

            let idle = self.active.is_empty() && self.queued_total() == 0;
            if idle {
                // Nothing runnable now: jump to whichever comes first,
                // the next arrival or the next backed-off retry release
                // (spinning rounds until a release would livelock).
                let next_arrival = self.arrivals.peek().map(|a| a.at);
                let next_release = self
                    .controllers
                    .iter()
                    .filter_map(|c| c.next_release())
                    .min();
                match (next_arrival, next_release) {
                    (None, None) => break,
                    (Some(a), None) => self.cluster.advance_clocks_to(a),
                    (None, Some(r)) => self.cluster.advance_clocks_to(r),
                    (Some(a), Some(r)) => self.cluster.advance_clocks_to(a.min(r)),
                }
            }
            self.rounds += 1;
            assert!(
                self.rounds < MAX_ROUNDS,
                "service livelocked after {} rounds ({} active, {} queued)",
                self.rounds,
                self.active.len(),
                self.queued_total()
            );
        }
        // A run can end still browned out: flush the open window so the
        // trace always accounts every brownout round.
        if let Some((since, rounds)) = self.brownout.window() {
            if tracer::is_enabled() {
                let now = SimTime::ZERO + self.cluster.elapsed();
                tracer::emit(
                    None,
                    None,
                    since,
                    now.since(since),
                    tracer::TraceData::Brownout {
                        rounds,
                        cause: self.last_storm_any,
                    },
                );
            }
        }
        // Shard sketches merge in shard order: any `--jobs`/`--shards`
        // count produced the same per-shard sketches, so the merged
        // quantiles are deterministic too.
        let merge = |sketches: &[QuantileSketch]| {
            let mut all = QuantileSketch::default();
            for s in sketches {
                all.merge(s);
            }
            all
        };
        let (scale_latency, scale_queue_wait) = if self.scale_lat.is_empty() {
            (None, None)
        } else {
            (Some(merge(&self.scale_lat)), Some(merge(&self.scale_wait)))
        };
        ServiceReport {
            tenants: self.slos,
            elapsed: self.cluster.elapsed(),
            total_outputs: self.total_outputs,
            rounds: self.rounds,
            quarantines: self.quarantines,
            brownout_rounds: self.brownout_rounds,
            peak_queued: self.peak_queued,
            scale_latency,
            scale_queue_wait,
            log: self.log,
        }
    }

    /// Which admission shard owns a tenant.
    fn shard_of(&self, tenant: u32) -> usize {
        tenant as usize % self.controllers.len()
    }

    /// Immediately runnable jobs queued across all shards.
    fn queued_total(&self) -> u64 {
        self.controllers.iter().map(|c| c.queued() as u64).sum()
    }

    /// Moves due arrivals into the admission queues (and due backed-off
    /// retries out of the delayed set).
    fn enqueue_due(&mut self, now: SimTime) {
        for c in &mut self.controllers {
            c.release_due(now);
        }
        while let Some(a) = self.arrivals.peek() {
            if a.at > now {
                break;
            }
            let a = self.arrivals.pop().expect("peeked");
            self.slos.entry(a.tenant).or_default().submitted += 1;
            if tracer::is_enabled() {
                tracer::emit(
                    None,
                    None,
                    a.at,
                    SimDuration::ZERO,
                    tracer::TraceData::JobSubmitted { tenant: a.tenant },
                );
            }
            let shard = self.shard_of(a.tenant);
            self.controllers[shard].enqueue_arrival(&a, now);
        }
        let queued = self.queued_total();
        self.peak_queued = self.peak_queued.max(queued);
        self.log.record("svc.queued", now, queued as f64);
        // Per-shard queue depths, keyed by shard index in the node
        // label (the admission plane has no node of its own).
        if metrics::is_enabled() {
            for (s, c) in self.controllers.iter().enumerate() {
                let depth = c.queued() as i64;
                if self.last_queue_depth[s] != depth {
                    self.last_queue_depth[s] = depth;
                    metrics::gauge_set(
                        Some(NodeId(s as u32)),
                        metrics::Metric::ServeQueueDepth,
                        now,
                        depth,
                    );
                }
            }
        }
    }

    /// Accounts and traces every shed decision the controller recorded
    /// (at enqueue or at pop) since the last drain.
    fn drain_sheds(&mut self, now: SimTime) {
        let sheds: Vec<_> = self
            .controllers
            .iter_mut()
            .flat_map(|c| c.take_shed())
            .collect();
        for s in sheds {
            let slo = self.slos.entry(s.tenant).or_default();
            match s.reason {
                ShedReason::DeadlineExpired => slo.shed_deadline += 1,
                ShedReason::QueueFull => slo.shed_queue += 1,
                ShedReason::RetryBudget => slo.shed_retry += 1,
            }
            if tracer::is_enabled() {
                tracer::emit(
                    None,
                    None,
                    s.at,
                    SimDuration::ZERO,
                    tracer::TraceData::Shed {
                        tenant: s.tenant,
                        reason: s.reason.label(),
                    },
                );
            }
            if metrics::is_enabled() {
                let m = match s.reason {
                    ShedReason::DeadlineExpired => metrics::Metric::ServeShedDeadline,
                    ShedReason::QueueFull => metrics::Metric::ServeShedQueueFull,
                    ShedReason::RetryBudget => metrics::Metric::ServeShedRetryBudget,
                };
                metrics::counter_add(None, m, s.at, 1);
            }
            self.log.record("svc.shed", now, 1.0);
        }
    }

    /// Fills free slots per the admission policy. Brownout tightens the
    /// loop two ways: the active ceiling drops to the brownout cap, and
    /// the memory-aware gate sees a standing `REDUCE` signal.
    fn admit(&mut self, now: SimTime) {
        if self.cfg.scale.is_some() {
            self.admit_scale(now);
        } else {
            self.admit_serial(now);
        }
    }

    /// The classic single-controller admission loop.
    fn admit_serial(&mut self, now: SimTime) {
        let brownout_cap = self
            .cfg
            .overload
            .brownout
            .filter(|_| self.brownout.active())
            .map(|b| b.max_active);
        loop {
            if brownout_cap.is_some_and(|cap| self.active.len() >= cap) {
                break;
            }
            let view = ClusterView {
                active: self.active.len(),
                min_free_ratio: self.cluster.min_free_heap_ratio(),
                any_reduce_signal: self.brownout.active()
                    || self
                        .active
                        .iter()
                        .any(|j| j.driver.memory_signal() == MemSignal::Reduce),
                now,
            };
            let Some(job) = self.controllers[0].next(view) else {
                break;
            };
            let scope = self.next_scope;
            self.next_scope += 1;
            let targets = self.schedulable_nodes();
            let mut driver = build_driver(
                job.kind,
                self.cfg.engine,
                scope,
                self.cfg.params,
                job.dataset_seed,
                self.cfg.block_size,
                &targets,
                &mut self.cluster,
            );
            // Waits are measured from the latest enqueue, so a retry's
            // sample is its genuine re-queueing delay, not the failed
            // execution that preceded it.
            let wait = now.since(job.enqueued).as_nanos();
            if tracer::is_enabled() {
                tracer::emit(
                    None,
                    Some(scope),
                    now,
                    SimDuration::ZERO,
                    tracer::TraceData::Admitted {
                        tenant: job.tenant,
                        wait_ns: wait,
                    },
                );
            }
            metrics::counter_add(None, metrics::Metric::ServeAdmitted, now, 1);
            let failure = driver.start(&mut self.cluster).err();
            let slo = self.slos.entry(job.tenant).or_default();
            slo.queue_wait.insert(wait);
            self.active.push(ActiveJob {
                driver,
                queued: job,
                failure,
                shard: 0,
            });
            self.log.record("svc.active", now, self.active.len() as f64);
        }
    }

    /// Scale-mode admission: every shard's controller drains its queue
    /// against a frozen per-shard view in parallel ([`run_parts`]), and
    /// decisions commit in shard order so the outcome is identical at
    /// any worker count. The view is frozen for the whole batch — the
    /// documented semantics of one sharded admission round: `max_active`
    /// and the brownout cap bound each *shard*, and the memory gate
    /// reads the shard's node slice as of round start.
    fn admit_scale(&mut self, now: SimTime) {
        let shards = self.controllers.len();
        let brownout_cap = self
            .cfg
            .overload
            .brownout
            .filter(|_| self.brownout.active())
            .map(|b| b.max_active);
        // Per-shard frozen inputs: active jobs, REDUCE signals, and the
        // shard's own min-free-heap ratio.
        let mut base_active = vec![0usize; shards];
        let mut reduce = vec![self.brownout.active(); shards];
        for j in &self.active {
            base_active[j.shard] += 1;
            if j.driver.memory_signal() == MemSignal::Reduce {
                reduce[j.shard] = true;
            }
        }
        let free: Vec<f64> = (0..shards)
            .map(|s| self.cluster.min_free_heap_ratio_of(&self.shard_nodes[s]))
            .collect();
        let controllers = std::mem::take(&mut self.controllers);
        let parts: Vec<_> = controllers
            .into_iter()
            .enumerate()
            .map(|(s, c)| (c, base_active[s], reduce[s], free[s]))
            .collect();
        // The closure runs on worker threads: pure controller state
        // machine, no tracer/profiler emission (driver-thread-only).
        let results = run_parts(parts, |_s, (mut ctl, base, reduce, free)| {
            let mut jobs = Vec::new();
            loop {
                let active = base + jobs.len();
                if brownout_cap.is_some_and(|cap| active >= cap) {
                    break;
                }
                let view = ClusterView {
                    active,
                    min_free_ratio: free,
                    any_reduce_signal: reduce,
                    now,
                };
                let Some(job) = ctl.next(view) else { break };
                jobs.push(job);
            }
            (ctl, jobs)
        });
        // Commit in shard order: scopes, traces, and job starts happen
        // in one canonical sequence regardless of worker count.
        for (s, (ctl, jobs)) in results.into_iter().enumerate() {
            self.controllers.push(ctl);
            for job in jobs {
                let scope = self.next_scope;
                self.next_scope += 1;
                let targets = self.schedulable_shard_nodes(s);
                let mut driver = build_driver(
                    job.kind,
                    self.cfg.engine,
                    scope,
                    self.cfg.params,
                    job.dataset_seed,
                    self.cfg.block_size,
                    &targets,
                    &mut self.cluster,
                );
                let wait = now.since(job.enqueued).as_nanos();
                if tracer::is_enabled() {
                    tracer::emit(
                        None,
                        Some(scope),
                        now,
                        SimDuration::ZERO,
                        tracer::TraceData::Admitted {
                            tenant: job.tenant,
                            wait_ns: wait,
                        },
                    );
                }
                metrics::counter_add(None, metrics::Metric::ServeAdmitted, now, 1);
                let failure = driver.start(&mut self.cluster).err();
                // Bounded memory at 10^5 tenants: waits go into the
                // shard sketch, not per-tenant sketches.
                self.scale_wait[s].insert(wait);
                self.active.push(ActiveJob {
                    driver,
                    queued: job,
                    failure,
                    shard: s,
                });
                self.log.record("svc.active", now, self.active.len() as f64);
            }
        }
    }

    /// Live nodes minus quarantined ones — where new jobs' inputs land.
    /// Falls back to all live nodes if quarantine has eaten the whole
    /// cluster (work-conservation beats a perfect quarantine).
    fn schedulable_nodes(&self) -> Vec<NodeId> {
        let live = self.cluster.live_nodes();
        let targets: Vec<NodeId> = live
            .iter()
            .copied()
            .filter(|n| !self.breakers[n.as_usize()].quarantined())
            .collect();
        if targets.is_empty() {
            live
        } else {
            targets
        }
    }

    /// Scale mode: the shard's own nodes minus crashed/quarantined
    /// ones, falling back to the whole cluster's schedulable set when
    /// the shard's slice is entirely unavailable (work-conservation
    /// again beats strict shard affinity).
    fn schedulable_shard_nodes(&self, shard: usize) -> Vec<NodeId> {
        let live = self.cluster.live_nodes();
        let targets: Vec<NodeId> = self.shard_nodes[shard]
            .iter()
            .copied()
            .filter(|n| live.contains(n) && !self.breakers[n.as_usize()].quarantined())
            .collect();
        if targets.is_empty() {
            self.schedulable_nodes()
        } else {
            targets
        }
    }

    /// Advances every healthy active job's control plane once.
    fn pump(&mut self) {
        for job in &mut self.active {
            if job.failure.is_some() {
                continue;
            }
            match job.driver.pump(&mut self.cluster) {
                Ok(_done) => {}
                Err(e) => job.failure = Some(e),
            }
        }
    }

    /// Runs one scheduling round on every live node and maps thread
    /// failures back to their owning jobs via allocation scopes.
    fn step_data_plane(&mut self) {
        // Every node's round commits (no fail-fast): a thread failure
        // only fails its owning job, never the round. Crash polling
        // happens in [`Self::handle_crashes`] *after* the barrier, so
        // the parallel fan-out is safe even under a crash plan.
        let mut nodes = Vec::with_capacity(self.cluster.node_count());
        for n in 0..self.cluster.node_count() {
            let node = NodeId(n as u32);
            if !self.cluster.sim(node).is_crashed() {
                nodes.push(node);
            }
        }
        if nodes.is_empty() {
            return;
        }
        let run = self.exec.run_round(&mut self.cluster, &nodes, false);
        for (node, report) in run.reports {
            let n = node.as_usize();
            for (tid, err) in report.failed {
                if err.is_oom() {
                    // Charged to the node for the storm breaker, on top
                    // of the per-tenant SLO charge at settle.
                    self.oom_round[n] += 1;
                }
                let scope = self.cluster.sim(node).thread_scope(tid);
                if let Some(scope) = scope {
                    if let Some(job) = self
                        .active
                        .iter_mut()
                        .find(|j| j.driver.scope() == scope && j.failure.is_none())
                    {
                        job.failure = Some(err);
                    }
                }
            }
        }
    }

    /// Fires due crashes: salvages ITask workers through the interrupt
    /// path, then lets every job react (re-home or fail).
    ///
    /// Jobs are notified on the crash *transition*, never on salvage
    /// contents: a node can die with zero live threads (e.g. a job
    /// between `enter_reduce` offering partitions and the next pump
    /// spawning workers) and its queued state must still be re-homed —
    /// otherwise the job would quiesce over the survivors alone and
    /// settle as completed with partial output.
    fn handle_crashes(&mut self) {
        for n in 0..self.cluster.node_count() {
            let node = NodeId(n as u32);
            let was_crashed = self.cluster.sim(node).is_crashed();
            let salvaged = self.cluster.poll_crash(node);
            if was_crashed || !self.cluster.sim(node).is_crashed() {
                // No crash fired this round (salvage is only ever
                // non-empty when one does).
                continue;
            }
            if !salvaged.is_empty() {
                if let Err(e) = salvage_crashed_workers(&mut self.cluster, node, salvaged) {
                    // Salvage is best-effort; jobs that lost state will
                    // fail on their own and retry.
                    let at = SimTime::ZERO + self.cluster.elapsed();
                    self.log.record("svc.salvage_error", at, 1.0);
                    let _ = e;
                }
            }
            for job in &mut self.active {
                if job.failure.is_some() {
                    continue;
                }
                if let Err(e) = job.driver.on_node_crash(&mut self.cluster, node) {
                    job.failure = Some(e);
                }
            }
        }
    }

    /// Advances the overload controls one round: scores each node's
    /// OME/GC storm into its circuit breaker (quarantining, draining,
    /// and probing nodes as breakers transition) and walks the
    /// cluster-wide brownout state machine (deflating active ITask jobs
    /// while pressure is sustained). No-op unless armed in the config.
    fn update_overload(&mut self) {
        let now = SimTime::ZERO + self.cluster.elapsed();
        if let Some(bcfg) = self.cfg.overload.breaker {
            // Pass 1: this round's storm score per node, plus each
            // node's effective windowed score for outlier detection.
            let mut scores = vec![0u64; self.cluster.node_count()];
            let mut effective = vec![0u64; self.cluster.node_count()];
            let mut live_scores = Vec::new();
            for n in 0..self.cluster.node_count() {
                let node = NodeId(n as u32);
                let omes = std::mem::take(&mut self.oom_round[n]);
                if self.cluster.sim(node).is_crashed() {
                    continue;
                }
                let stats = self.cluster.sim(node).node().heap.stats();
                let (minor, full, useless) =
                    (stats.minor_count, stats.full_count, stats.useless_count);
                let seen = &mut self.gc_seen[n];
                let d_full = full.saturating_sub(seen.1);
                let d_useless = useless.saturating_sub(seen.2);
                *seen = (minor, full, useless);
                if omes + d_full + d_useless > 0 {
                    if tracer::is_enabled() {
                        let id = tracer::emit(
                            Some(node),
                            None,
                            now,
                            SimDuration::ZERO,
                            tracer::TraceData::Storm {
                                omes,
                                full_gcs: d_full,
                                useless_gcs: d_useless,
                            },
                        );
                        if id.is_some() {
                            self.last_storm[n] = id;
                            self.last_storm_any = id;
                        }
                    }
                    scores[n] = Breaker::score(&bcfg, omes, d_full, d_useless);
                }
                effective[n] = self.breakers[n].windowed_score(&bcfg, now) + scores[n];
                live_scores.push(effective[n]);
            }
            // Quarantine shifts load off a sick node onto its peers,
            // which only helps while the peers are actually healthier.
            // A node is only *charged* when it is a clear outlier —
            // its windowed score at least twice the live-cluster median
            // — so a skewed storm trips its breaker while a uniform,
            // cluster-wide storm (brownout's job) charges nobody.
            live_scores.sort_unstable();
            let median = live_scores.get(live_scores.len() / 2).copied().unwrap_or(0);
            // Pass 2: charge outlier samples and step each machine.
            for n in 0..self.cluster.node_count() {
                let node = NodeId(n as u32);
                if self.cluster.sim(node).is_crashed() {
                    continue;
                }
                if scores[n] > 0 && effective[n] >= median.saturating_mul(2) {
                    self.breakers[n].record(now, scores[n]);
                }
                let Some(transition) = self.breakers[n].step(&bcfg, now) else {
                    continue;
                };
                if tracer::is_enabled() {
                    tracer::emit(
                        Some(node),
                        None,
                        now,
                        SimDuration::ZERO,
                        tracer::TraceData::Breaker {
                            state: transition.label(),
                            cause: self.last_storm[n],
                        },
                    );
                }
                if metrics::is_enabled() {
                    // closed=0, half-open=1, open=2 (higher = sicker).
                    let level = match transition {
                        BreakerTransition::Closed => 0,
                        BreakerTransition::HalfOpened => 1,
                        BreakerTransition::Opened => 2,
                    };
                    metrics::gauge_set(Some(node), metrics::Metric::ServeBreakerState, now, level);
                }
                match transition {
                    BreakerTransition::Opened => {
                        self.quarantines += 1;
                        self.log.record("svc.quarantine", now, 1.0);
                        // Drain: evacuate the node's queued partitions
                        // onto healthy peers through the same re-homing
                        // path a crash would use — but the node stays
                        // alive, so it pushes its own bytes.
                        let targets: Vec<NodeId> = self
                            .cluster
                            .live_nodes()
                            .into_iter()
                            .filter(|&m| m != node && !self.breakers[m.as_usize()].quarantined())
                            .collect();
                        if !targets.is_empty() {
                            for job in &mut self.active {
                                if job.failure.is_some() {
                                    continue;
                                }
                                if let Err(e) =
                                    job.driver.drain_node(&mut self.cluster, node, &targets)
                                {
                                    job.failure = Some(e);
                                }
                            }
                        }
                    }
                    BreakerTransition::HalfOpened => {
                        self.log.record("svc.quarantine", now, 0.5);
                    }
                    BreakerTransition::Closed => {
                        self.log.record("svc.quarantine", now, 0.0);
                    }
                }
            }
        }
        if let Some(bcfg) = self.cfg.overload.brownout {
            let ratio = self.cluster.min_free_heap_ratio();
            let (entered, exited) = self.brownout.observe(&bcfg, ratio, now);
            if entered {
                self.log.record("svc.brownout", now, 1.0);
                metrics::gauge_set(None, metrics::Metric::ServeBrownout, now, 1);
            }
            if self.brownout.active() {
                self.brownout_rounds += 1;
            }
            if entered {
                // Proactive deflation on the entry edge: force every
                // active ITask job's controllers into REDUCE before the
                // full-GC cliff. Once deflated, the tightened admission
                // gate keeps pressure falling — re-deflating every
                // round would only thrash the spill path.
                for job in &mut self.active {
                    if job.failure.is_none() {
                        job.driver.deflate();
                    }
                }
            }
            if let Some((since, rounds)) = exited {
                self.log.record("svc.brownout", now, 0.0);
                metrics::gauge_set(None, metrics::Metric::ServeBrownout, now, 0);
                if tracer::is_enabled() {
                    tracer::emit(
                        None,
                        None,
                        since,
                        now.since(since),
                        tracer::TraceData::Brownout {
                            rounds,
                            cause: self.last_storm_any,
                        },
                    );
                }
            }
        }
    }

    /// Retires completed and failed jobs: SLO accounting, teardown,
    /// retry or charge.
    fn settle_jobs(&mut self) {
        let now = SimTime::ZERO + self.cluster.elapsed();
        let mut i = 0;
        while i < self.active.len() {
            let done = self.active[i].driver.output_count().is_some();
            let failed = self.active[i].failure.is_some();
            if !done && !failed {
                i += 1;
                continue;
            }
            let mut job = self.active.swap_remove(i);
            // Weighted-fair charges what the job itself consumed — the
            // per-scope CPU time the schedulers metered — not its
            // wall-clock residency, which would also bill the tenant
            // for rounds spent co-resident with heavy neighbors.
            let mut busy = SimDuration::ZERO;
            for n in 0..self.cluster.node_count() {
                busy += self
                    .cluster
                    .sim(NodeId(n as u32))
                    .take_scope_cpu(job.driver.scope());
            }
            job.driver.teardown(&mut self.cluster);
            let shard = self.shard_of(job.queued.tenant);
            self.controllers[shard].credit_served(job.queued.tenant, busy.as_nanos());
            let slo = self.slos.entry(job.queued.tenant).or_default();
            if done {
                slo.completed += 1;
                let latency = now.since(job.queued.arrived).as_nanos();
                if self.scale_lat.is_empty() {
                    slo.latency.insert(latency);
                } else {
                    self.scale_lat[job.shard].insert(latency);
                }
                if tracer::is_enabled() {
                    tracer::emit(
                        None,
                        Some(job.driver.scope()),
                        now,
                        SimDuration::ZERO,
                        tracer::TraceData::JobCompleted {
                            tenant: job.queued.tenant,
                            latency_ns: latency,
                        },
                    );
                }
                metrics::counter_add(None, metrics::Metric::ServeCompleted, now, 1);
                metrics::observe(None, metrics::Metric::ServeLatencyNs, now, latency);
                self.total_outputs += job.driver.output_count().unwrap_or(0);
                self.log.record("svc.completed", now, 1.0);
            } else {
                let err = job.failure.expect("failed checked");
                let oom = err.is_oom();
                if oom {
                    slo.omes += 1;
                    self.log.record("svc.ome", now, 1.0);
                }
                // Classification picks the attempt ceiling (transient
                // substrate faults earn more attempts than deterministic
                // OMEs), then the tenant's token bucket gets a veto:
                // an empty bucket fails the job fast rather than letting
                // a retry storm starve first-attempt traffic.
                let class = classify(&err);
                let policy = self.cfg.retry;
                let mut retry = job.queued.retries < policy.max_for(class);
                let mut budget_denied = false;
                if retry {
                    if let Some(budget) = policy.budget {
                        let bucket = self
                            .retry_buckets
                            .entry(job.queued.tenant)
                            .or_insert_with(|| TokenBucket::new(&budget, SimTime::ZERO));
                        if !bucket.try_take(&budget, now) {
                            retry = false;
                            budget_denied = true;
                        }
                    }
                }
                if tracer::is_enabled() {
                    tracer::emit(
                        None,
                        Some(job.driver.scope()),
                        now,
                        SimDuration::ZERO,
                        tracer::TraceData::JobFailed {
                            tenant: job.queued.tenant,
                            oom,
                            retry,
                        },
                    );
                }
                if retry {
                    slo.retries += 1;
                    let attempt = job.queued.retries + 1;
                    let delay =
                        policy.backoff(self.cfg.seed, job.queued.tenant, job.queued.seq, attempt);
                    self.controllers[shard].requeue_after(job.queued, now, delay);
                } else {
                    slo.failed += 1;
                    metrics::counter_add(None, metrics::Metric::ServeFailed, now, 1);
                    self.log.record("svc.failed", now, 1.0);
                    if budget_denied {
                        slo.shed_retry += 1;
                        metrics::counter_add(None, metrics::Metric::ServeShedRetryBudget, now, 1);
                        self.log.record("svc.shed", now, 1.0);
                        if tracer::is_enabled() {
                            tracer::emit(
                                None,
                                None,
                                now,
                                SimDuration::ZERO,
                                tracer::TraceData::Shed {
                                    tenant: job.queued.tenant,
                                    reason: ShedReason::RetryBudget.label(),
                                },
                            );
                        }
                    }
                }
            }
        }
        // A refilled bucket is indistinguishable from a fresh one
        // (refills advance on the ZERO-anchored grid even while
        // capped), so full buckets can be dropped: the retry-bucket map
        // stays O(tenants retrying recently), not O(all tenants ever),
        // under million-tenant churn.
        if let Some(budget) = self.cfg.retry.budget {
            self.retry_buckets
                .retain(|_, b| b.balance(&budget, now) < budget.capacity);
        }
    }
}

/// Builds the typed driver for a job kind (each kind pins a different
/// `AggSpec`, so the match is where the types are erased). Inputs land
/// round-robin on `targets` (live minus quarantined nodes); an empty
/// slice falls back to every live node.
#[allow(clippy::too_many_arguments)]
fn build_driver(
    kind: JobKind,
    engine: EngineKind,
    scope: u64,
    params: JobParams,
    dataset_seed: u64,
    block_size: ByteSize,
    targets: &[NodeId],
    cluster: &mut Cluster,
) -> Box<dyn JobDriver> {
    let blocks = dataset_blocks(kind, dataset_seed, block_size);
    let live = if targets.is_empty() {
        cluster.live_nodes()
    } else {
        targets.to_vec()
    };
    let mut inputs: Vec<Vec<Vec<workloads::webmap::AdjRecord>>> =
        (0..cluster.node_count()).map(|_| Vec::new()).collect();
    if !live.is_empty() {
        for (i, block) in blocks.into_iter().enumerate() {
            inputs[live[i % live.len()].as_usize()].push(block);
        }
    }
    match kind {
        JobKind::DegreeCount => Box::new(TwoPhaseJob::new(
            JobKind::degree_count_query(),
            engine,
            scope,
            params,
            inputs,
        )),
        JobKind::WordCount => Box::new(TwoPhaseJob::new(
            apps::hyracks_apps::wc::WcSpec,
            engine,
            scope,
            params,
            inputs,
        )),
        JobKind::LinkCollect => Box::new(TwoPhaseJob::new(
            JobKind::link_collect_query(),
            engine,
            scope,
            params,
            inputs,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Arrival;

    /// A service with no arrivals of its own, so tests can inject jobs
    /// at precise points in the round.
    fn empty_service(engine: EngineKind, fault_plan: Option<FaultPlan>) -> Service {
        let mut cfg = ServiceConfig::standard(engine, 1, 1);
        cfg.tenants.clear();
        cfg.fault_plan = fault_plan;
        Service::new(cfg)
    }

    /// Builds a driver for one injected job and registers it active,
    /// without starting it.
    fn inject(svc: &mut Service, engine: EngineKind) {
        let mut ctl = AdmissionController::new(AdmissionConfig::default(), BTreeMap::new());
        ctl.enqueue_arrival(
            &Arrival {
                at: SimTime::ZERO,
                tenant: 0,
                seq: 0,
                kind: JobKind::DegreeCount,
                dataset_seed: 77,
                deadline: None,
            },
            SimTime::ZERO,
        );
        let job = ctl
            .next(ClusterView {
                active: 0,
                min_free_ratio: 1.0,
                any_reduce_signal: false,
                now: SimTime::ZERO,
            })
            .expect("queued job");
        let driver = build_driver(
            job.kind,
            engine,
            1,
            svc.cfg.params,
            job.dataset_seed,
            svc.cfg.block_size,
            &[],
            &mut svc.cluster,
        );
        svc.active.push(ActiveJob {
            driver,
            queued: job,
            failure: None,
            shard: 0,
        });
    }

    /// A crash must be reported to every active job even when the dead
    /// node had zero live threads (empty salvage): regular jobs have no
    /// recovery plane and die with `NodeLost`.
    #[test]
    fn crash_with_zero_live_threads_still_fails_regular_jobs() {
        let plan = FaultPlan::new(0).with_crash(NodeId(1), SimTime::ZERO);
        let mut svc = empty_service(EngineKind::Regular, Some(plan));
        inject(&mut svc, EngineKind::Regular);
        // The job has not started: no threads anywhere, so the crash
        // salvages nothing — and must be reported regardless.
        svc.handle_crashes();
        assert!(
            matches!(
                svc.active[0].failure,
                Some(SimError::NodeLost { node: NodeId(1) })
            ),
            "crash with empty salvage not reported: {:?}",
            svc.active[0].failure
        );
    }

    /// An ITask job whose state on the dead node is *only* queued
    /// partitions (offered, workers not yet spawned) must re-home them
    /// and still produce the full answer — not settle as completed with
    /// the dead node's share of the output silently missing.
    #[test]
    fn itask_queued_only_state_is_rehomed_on_crash() {
        let run = |crash: bool| {
            let plan = crash.then(|| FaultPlan::new(0).with_crash(NodeId(1), SimTime::ZERO));
            let mut svc = empty_service(EngineKind::Itask, plan);
            inject(&mut svc, EngineKind::Itask);
            svc.active[0]
                .driver
                .start(&mut svc.cluster)
                .expect("start offers partitions");
            // Fire the crash before any pump: the dead node holds only
            // queued partitions and zero live threads.
            svc.handle_crashes();
            assert!(
                svc.active[0].failure.is_none(),
                "itask job must survive: {:?}",
                svc.active[0].failure
            );
            for _ in 0..200_000 {
                if svc.active.is_empty() {
                    break;
                }
                svc.pump();
                svc.step_data_plane();
                svc.handle_crashes();
                svc.settle_jobs();
            }
            assert_eq!(svc.slos[&0].completed, 1, "job must settle as completed");
            svc.total_outputs
        };
        let with_crash = run(true);
        let without = run(false);
        assert!(without > 0);
        assert_eq!(with_crash, without, "crash run lost partitions");
    }

    /// The retry-bucket map must not accumulate one entry per tenant
    /// that ever retried: once a bucket refills to capacity it is
    /// indistinguishable from a fresh one and settle drops it.
    #[test]
    fn retry_buckets_prune_once_refilled() {
        let mut svc = empty_service(EngineKind::Itask, None);
        svc.cfg.retry = RetryPolicy::budgeted();
        let budget = svc.cfg.retry.budget.expect("budgeted policy has budget");
        for t in 0..1000u32 {
            let mut b = TokenBucket::new(&budget, SimTime::ZERO);
            assert!(b.try_take(&budget, SimTime::ZERO));
            svc.retry_buckets.insert(t, b);
        }
        svc.settle_jobs();
        assert_eq!(
            svc.retry_buckets.len(),
            1000,
            "spent buckets must be retained"
        );
        // One full refill interval per missing token later, every
        // bucket is back at capacity and must be dropped.
        svc.cluster
            .advance_clocks_to(SimTime::ZERO + SimDuration::from_secs(1));
        svc.settle_jobs();
        assert!(
            svc.retry_buckets.is_empty(),
            "refilled buckets must be pruned, {} left",
            svc.retry_buckets.len()
        );
    }

    /// Scale mode end to end on a small population: the run completes,
    /// jobs finish, and the whole report is reproducible.
    #[test]
    fn scale_mode_runs_and_is_deterministic() {
        use crate::workload::{LoadShape, TenantModel};
        let run = || {
            let mut cfg = ServiceConfig::standard(EngineKind::Itask, 0, 7);
            cfg.horizon = SimDuration::from_millis(10);
            cfg.admission.max_active = 2;
            let mut model = TenantModel::uniform(1000, SimDuration::from_micros(400));
            model.shape = LoadShape::Steady;
            cfg.scale = Some(ScaleSpec {
                model,
                admission_shards: 2,
            });
            let report = Service::new(cfg).run();
            (
                report.summary_cells(),
                report.total_shed(),
                report.peak_queued,
                report.total(|t| t.submitted),
                report.total_outputs,
            )
        };
        let a = run();
        assert!(a.3 > 0, "lazy stream produced no arrivals");
        assert!(!a.0[0].starts_with("0/"), "no jobs completed: {:?}", a.0);
        let b = run();
        assert_eq!(a, b, "scale mode must be deterministic");
    }
}
