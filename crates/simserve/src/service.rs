//! The service loop: a deterministic multi-tenant job service driving
//! admission, concurrent execution, failure handling, and per-tenant
//! SLO accounting on one shared simulated cluster.
//!
//! One iteration of the loop is one scheduling round: due arrivals are
//! enqueued, the admission policy fills free slots, every active job's
//! control plane is pumped, every live node runs one processor-sharing
//! round (stepping *all* jobs' threads together, so co-located jobs
//! contend for the same heaps), crashes fire, and failures are retried
//! or charged against their tenant. Everything is seeded and stepped in
//! a fixed order, so a `(config, seed)` pair always produces the same
//! report — byte for byte.

use std::collections::{BTreeMap, VecDeque};

use itask_core::MemSignal;
use simcluster::{Cluster, ClusterConfig};
use simcore::{tracer, ByteSize, EventLog, FaultPlan, NodeId, SimDuration, SimError, SimTime};

use crate::admission::{AdmissionConfig, AdmissionController, ClusterView, QueuedJob};
use crate::job::{salvage_crashed_workers, EngineKind, JobDriver, JobParams, TwoPhaseJob};
use crate::sketch::QuantileSketch;
use crate::workload::{dataset_blocks, generate_arrivals, JobKind, TenantSpec};

/// Safety valve: a service run that exceeds this many scheduling rounds
/// has livelocked (a bug, not a workload property — idle periods jump
/// the clock instead of spinning).
const MAX_ROUNDS: u64 = 2_000_000;

/// Full configuration of one service run.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Cluster shape.
    pub nodes: usize,
    /// Cores per node.
    pub cores: usize,
    /// Managed-heap capacity per node (the contended resource).
    pub heap_per_node: ByteSize,
    /// Which engine executes every job.
    pub engine: EngineKind,
    /// Admission policy and limits.
    pub admission: AdmissionConfig,
    /// Root seed for arrival schedules and datasets.
    pub seed: u64,
    /// Arrival-generation horizon.
    pub horizon: SimDuration,
    /// The tenants and their traffic profiles.
    pub tenants: Vec<TenantSpec>,
    /// Failed jobs are requeued at most this many times before being
    /// charged as failed.
    pub max_retries: u32,
    /// Optional deterministic fault plan (node crashes, disk faults).
    pub fault_plan: Option<FaultPlan>,
    /// Per-job sizing knobs.
    pub params: JobParams,
    /// Input block granularity for generated datasets.
    pub block_size: ByteSize,
}

impl ServiceConfig {
    /// The calibrated standard configuration used by benches and tests:
    /// heaps sized so one job of any kind runs comfortably but
    /// co-located heavy jobs genuinely pressure each other.
    pub fn standard(engine: EngineKind, tenant_count: u32, seed: u64) -> Self {
        ServiceConfig {
            nodes: 4,
            cores: 2,
            heap_per_node: ByteSize::kib(512),
            engine,
            admission: AdmissionConfig::default(),
            seed,
            horizon: SimDuration::from_millis(40),
            tenants: (0..tenant_count)
                .map(|i| TenantSpec::uniform(i, SimDuration::from_millis(8)))
                .collect(),
            max_retries: 2,
            fault_plan: None,
            params: JobParams {
                threads: 2,
                max_parallelism: 2,
                granularity: ByteSize::kib(8),
                buckets: 16,
            },
            block_size: ByteSize::kib(8),
        }
    }
}

/// Per-tenant service-level accounting.
#[derive(Clone, Debug, Default)]
pub struct TenantSlo {
    /// Jobs submitted (arrivals inside the horizon).
    pub submitted: u64,
    /// Jobs completed successfully.
    pub completed: u64,
    /// Jobs that exhausted their retries.
    pub failed: u64,
    /// Out-of-memory errors charged to this tenant's jobs.
    pub omes: u64,
    /// Retry attempts consumed.
    pub retries: u64,
    /// End-to-end latency (submission → completion), nanoseconds.
    pub latency: QuantileSketch,
    /// Queue wait (submission → admission), nanoseconds.
    pub queue_wait: QuantileSketch,
}

/// The outcome of one service run.
pub struct ServiceReport {
    /// Per-tenant SLO accounting.
    pub tenants: BTreeMap<u32, TenantSlo>,
    /// Virtual wall time of the whole run.
    pub elapsed: SimDuration,
    /// Total output tuples across completed jobs (a checksum that the
    /// engines computed the same answers).
    pub total_outputs: u64,
    /// Scheduling rounds executed.
    pub rounds: u64,
    /// Time series of service-level gauges.
    pub log: EventLog,
}

impl ServiceReport {
    /// Sums a counter over every tenant.
    pub fn total(&self, f: impl Fn(&TenantSlo) -> u64) -> u64 {
        self.tenants.values().map(f).sum()
    }

    /// All tenants' latency sketches merged.
    pub fn merged_latency(&self) -> QuantileSketch {
        let mut all = QuantileSketch::default();
        for t in self.tenants.values() {
            all.merge(&t.latency);
        }
        all
    }

    /// All tenants' queue-wait sketches merged.
    pub fn merged_queue_wait(&self) -> QuantileSketch {
        let mut all = QuantileSketch::default();
        for t in self.tenants.values() {
            all.merge(&t.queue_wait);
        }
        all
    }

    /// The report reduced to stable table cells:
    /// `[done/submitted, OMEs, retries, failed, p50, p95, p99, qwait-p95]`.
    /// Everything derives from integer state, so equal runs produce
    /// byte-identical cells — the service table's determinism contract.
    pub fn summary_cells(&self) -> Vec<String> {
        let lat = self.merged_latency();
        let qw = self.merged_queue_wait();
        vec![
            format!(
                "{}/{}",
                self.total(|t| t.completed),
                self.total(|t| t.submitted)
            ),
            self.total(|t| t.omes).to_string(),
            self.total(|t| t.retries).to_string(),
            self.total(|t| t.failed).to_string(),
            fmt_ms(lat.quantile(0.5)),
            fmt_ms(lat.quantile(0.95)),
            fmt_ms(lat.quantile(0.99)),
            fmt_ms(qw.quantile(0.95)),
        ]
    }
}

/// Nanoseconds as fixed-point milliseconds (integer math: stable).
fn fmt_ms(ns: u64) -> String {
    let tenths = ns / 100_000;
    format!("{}.{}ms", tenths / 10, tenths % 10)
}

/// One admitted, executing job.
struct ActiveJob {
    driver: Box<dyn JobDriver>,
    queued: QueuedJob,
    failure: Option<SimError>,
}

/// The service runtime.
pub struct Service {
    cfg: ServiceConfig,
    cluster: Cluster,
    controller: AdmissionController,
    arrivals: VecDeque<crate::workload::Arrival>,
    active: Vec<ActiveJob>,
    slos: BTreeMap<u32, TenantSlo>,
    log: EventLog,
    next_scope: u64,
    total_outputs: u64,
    rounds: u64,
}

impl Service {
    /// Builds the service: generates the arrival schedule, sizes the
    /// cluster, and arms the fault plan if any.
    pub fn new(cfg: ServiceConfig) -> Self {
        let mut cluster = Cluster::new(ClusterConfig {
            nodes: cfg.nodes,
            cores: cfg.cores,
            heap_per_node: cfg.heap_per_node,
            ..ClusterConfig::default()
        });
        if let Some(plan) = cfg.fault_plan.clone() {
            cluster.install_faults(plan);
        }
        let arrivals = generate_arrivals(cfg.seed, &cfg.tenants, cfg.horizon);
        let mut slos: BTreeMap<u32, TenantSlo> = BTreeMap::new();
        for t in &cfg.tenants {
            slos.insert(t.id, TenantSlo::default());
        }
        let weights = cfg.tenants.iter().map(|t| (t.id, t.weight)).collect();
        let controller = AdmissionController::new(cfg.admission, weights);
        Service {
            cfg,
            cluster,
            controller,
            arrivals: arrivals.into(),
            active: Vec::new(),
            slos,
            log: EventLog::new(),
            next_scope: 1,
            total_outputs: 0,
            rounds: 0,
        }
    }

    /// Runs the service to completion (all arrivals processed, all jobs
    /// completed or failed) and returns the report.
    pub fn run(mut self) -> ServiceReport {
        loop {
            let now = SimTime::ZERO + self.cluster.elapsed();
            self.enqueue_due(now);
            self.admit(now);
            self.pump();
            self.step_data_plane();
            self.handle_crashes();
            self.settle_jobs();

            let idle = self.active.is_empty() && self.controller.queued() == 0;
            if idle {
                match self.arrivals.front() {
                    None => break,
                    Some(next) => {
                        // Nothing to run until the next arrival: jump.
                        let at = next.at;
                        self.cluster.advance_clocks_to(at);
                    }
                }
            }
            self.rounds += 1;
            assert!(
                self.rounds < MAX_ROUNDS,
                "service livelocked after {} rounds ({} active, {} queued)",
                self.rounds,
                self.active.len(),
                self.controller.queued()
            );
        }
        ServiceReport {
            tenants: self.slos,
            elapsed: self.cluster.elapsed(),
            total_outputs: self.total_outputs,
            rounds: self.rounds,
            log: self.log,
        }
    }

    /// Moves due arrivals into the admission queues.
    fn enqueue_due(&mut self, now: SimTime) {
        while let Some(a) = self.arrivals.front() {
            if a.at > now {
                break;
            }
            let a = self.arrivals.pop_front().expect("front checked");
            self.slos.entry(a.tenant).or_default().submitted += 1;
            if tracer::is_enabled() {
                tracer::emit(
                    None,
                    None,
                    a.at,
                    SimDuration::ZERO,
                    tracer::TraceData::JobSubmitted { tenant: a.tenant },
                );
            }
            self.controller.enqueue_arrival(&a);
        }
        self.log
            .record("svc.queued", now, self.controller.queued() as f64);
    }

    /// Fills free slots per the admission policy.
    fn admit(&mut self, now: SimTime) {
        loop {
            let view = ClusterView {
                active: self.active.len(),
                min_free_ratio: self.cluster.min_free_heap_ratio(),
                any_reduce_signal: self
                    .active
                    .iter()
                    .any(|j| j.driver.memory_signal() == MemSignal::Reduce),
            };
            let Some(job) = self.controller.next(view) else {
                break;
            };
            let scope = self.next_scope;
            self.next_scope += 1;
            let mut driver = build_driver(
                job.kind,
                self.cfg.engine,
                scope,
                self.cfg.params,
                job.dataset_seed,
                self.cfg.block_size,
                &mut self.cluster,
            );
            // Waits are measured from the latest enqueue, so a retry's
            // sample is its genuine re-queueing delay, not the failed
            // execution that preceded it.
            let wait = now.since(job.enqueued).as_nanos();
            if tracer::is_enabled() {
                tracer::emit(
                    None,
                    Some(scope),
                    now,
                    SimDuration::ZERO,
                    tracer::TraceData::Admitted {
                        tenant: job.tenant,
                        wait_ns: wait,
                    },
                );
            }
            let failure = driver.start(&mut self.cluster).err();
            let slo = self.slos.entry(job.tenant).or_default();
            slo.queue_wait.insert(wait);
            self.active.push(ActiveJob {
                driver,
                queued: job,
                failure,
            });
            self.log.record("svc.active", now, self.active.len() as f64);
        }
    }

    /// Advances every healthy active job's control plane once.
    fn pump(&mut self) {
        for job in &mut self.active {
            if job.failure.is_some() {
                continue;
            }
            match job.driver.pump(&mut self.cluster) {
                Ok(_done) => {}
                Err(e) => job.failure = Some(e),
            }
        }
    }

    /// Runs one scheduling round on every live node and maps thread
    /// failures back to their owning jobs via allocation scopes.
    fn step_data_plane(&mut self) {
        for n in 0..self.cluster.node_count() {
            let node = NodeId(n as u32);
            if self.cluster.sim(node).is_crashed() {
                continue;
            }
            let report = self.cluster.sim(node).run_round();
            for (tid, err) in report.failed {
                let scope = self.cluster.sim(node).thread_scope(tid);
                if let Some(scope) = scope {
                    if let Some(job) = self
                        .active
                        .iter_mut()
                        .find(|j| j.driver.scope() == scope && j.failure.is_none())
                    {
                        job.failure = Some(err);
                    }
                }
            }
        }
    }

    /// Fires due crashes: salvages ITask workers through the interrupt
    /// path, then lets every job react (re-home or fail).
    ///
    /// Jobs are notified on the crash *transition*, never on salvage
    /// contents: a node can die with zero live threads (e.g. a job
    /// between `enter_reduce` offering partitions and the next pump
    /// spawning workers) and its queued state must still be re-homed —
    /// otherwise the job would quiesce over the survivors alone and
    /// settle as completed with partial output.
    fn handle_crashes(&mut self) {
        for n in 0..self.cluster.node_count() {
            let node = NodeId(n as u32);
            let was_crashed = self.cluster.sim(node).is_crashed();
            let salvaged = self.cluster.poll_crash(node);
            if was_crashed || !self.cluster.sim(node).is_crashed() {
                // No crash fired this round (salvage is only ever
                // non-empty when one does).
                continue;
            }
            if !salvaged.is_empty() {
                if let Err(e) = salvage_crashed_workers(&mut self.cluster, node, salvaged) {
                    // Salvage is best-effort; jobs that lost state will
                    // fail on their own and retry.
                    let at = SimTime::ZERO + self.cluster.elapsed();
                    self.log.record("svc.salvage_error", at, 1.0);
                    let _ = e;
                }
            }
            for job in &mut self.active {
                if job.failure.is_some() {
                    continue;
                }
                if let Err(e) = job.driver.on_node_crash(&mut self.cluster, node) {
                    job.failure = Some(e);
                }
            }
        }
    }

    /// Retires completed and failed jobs: SLO accounting, teardown,
    /// retry or charge.
    fn settle_jobs(&mut self) {
        let now = SimTime::ZERO + self.cluster.elapsed();
        let mut i = 0;
        while i < self.active.len() {
            let done = self.active[i].driver.output_count().is_some();
            let failed = self.active[i].failure.is_some();
            if !done && !failed {
                i += 1;
                continue;
            }
            let mut job = self.active.swap_remove(i);
            // Weighted-fair charges what the job itself consumed — the
            // per-scope CPU time the schedulers metered — not its
            // wall-clock residency, which would also bill the tenant
            // for rounds spent co-resident with heavy neighbors.
            let mut busy = SimDuration::ZERO;
            for n in 0..self.cluster.node_count() {
                busy += self
                    .cluster
                    .sim(NodeId(n as u32))
                    .take_scope_cpu(job.driver.scope());
            }
            job.driver.teardown(&mut self.cluster);
            self.controller
                .credit_served(job.queued.tenant, busy.as_nanos());
            let slo = self.slos.entry(job.queued.tenant).or_default();
            if done {
                slo.completed += 1;
                let latency = now.since(job.queued.arrived).as_nanos();
                slo.latency.insert(latency);
                if tracer::is_enabled() {
                    tracer::emit(
                        None,
                        Some(job.driver.scope()),
                        now,
                        SimDuration::ZERO,
                        tracer::TraceData::JobCompleted {
                            tenant: job.queued.tenant,
                            latency_ns: latency,
                        },
                    );
                }
                self.total_outputs += job.driver.output_count().unwrap_or(0);
                self.log.record("svc.completed", now, 1.0);
            } else {
                let err = job.failure.expect("failed checked");
                let oom = err.is_oom();
                if oom {
                    slo.omes += 1;
                    self.log.record("svc.ome", now, 1.0);
                }
                let retry = job.queued.retries < self.cfg.max_retries;
                if tracer::is_enabled() {
                    tracer::emit(
                        None,
                        Some(job.driver.scope()),
                        now,
                        SimDuration::ZERO,
                        tracer::TraceData::JobFailed {
                            tenant: job.queued.tenant,
                            oom,
                            retry,
                        },
                    );
                }
                if retry {
                    slo.retries += 1;
                    self.controller.requeue(job.queued, now);
                } else {
                    slo.failed += 1;
                    self.log.record("svc.failed", now, 1.0);
                }
            }
        }
    }
}

/// Builds the typed driver for a job kind (each kind pins a different
/// `AggSpec`, so the match is where the types are erased).
fn build_driver(
    kind: JobKind,
    engine: EngineKind,
    scope: u64,
    params: JobParams,
    dataset_seed: u64,
    block_size: ByteSize,
    cluster: &mut Cluster,
) -> Box<dyn JobDriver> {
    let blocks = dataset_blocks(kind, dataset_seed, block_size);
    let live = cluster.live_nodes();
    let mut inputs: Vec<Vec<Vec<workloads::webmap::AdjRecord>>> =
        (0..cluster.node_count()).map(|_| Vec::new()).collect();
    if !live.is_empty() {
        for (i, block) in blocks.into_iter().enumerate() {
            inputs[live[i % live.len()].as_usize()].push(block);
        }
    }
    match kind {
        JobKind::DegreeCount => Box::new(TwoPhaseJob::new(
            JobKind::degree_count_query(),
            engine,
            scope,
            params,
            inputs,
        )),
        JobKind::WordCount => Box::new(TwoPhaseJob::new(
            apps::hyracks_apps::wc::WcSpec,
            engine,
            scope,
            params,
            inputs,
        )),
        JobKind::LinkCollect => Box::new(TwoPhaseJob::new(
            JobKind::link_collect_query(),
            engine,
            scope,
            params,
            inputs,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Arrival;

    /// A service with no arrivals of its own, so tests can inject jobs
    /// at precise points in the round.
    fn empty_service(engine: EngineKind, fault_plan: Option<FaultPlan>) -> Service {
        let mut cfg = ServiceConfig::standard(engine, 1, 1);
        cfg.tenants.clear();
        cfg.fault_plan = fault_plan;
        Service::new(cfg)
    }

    /// Builds a driver for one injected job and registers it active,
    /// without starting it.
    fn inject(svc: &mut Service, engine: EngineKind) {
        let mut ctl = AdmissionController::new(AdmissionConfig::default(), BTreeMap::new());
        ctl.enqueue_arrival(&Arrival {
            at: SimTime::ZERO,
            tenant: 0,
            seq: 0,
            kind: JobKind::DegreeCount,
            dataset_seed: 77,
        });
        let job = ctl
            .next(ClusterView {
                active: 0,
                min_free_ratio: 1.0,
                any_reduce_signal: false,
            })
            .expect("queued job");
        let driver = build_driver(
            job.kind,
            engine,
            1,
            svc.cfg.params,
            job.dataset_seed,
            svc.cfg.block_size,
            &mut svc.cluster,
        );
        svc.active.push(ActiveJob {
            driver,
            queued: job,
            failure: None,
        });
    }

    /// A crash must be reported to every active job even when the dead
    /// node had zero live threads (empty salvage): regular jobs have no
    /// recovery plane and die with `NodeLost`.
    #[test]
    fn crash_with_zero_live_threads_still_fails_regular_jobs() {
        let plan = FaultPlan::new(0).with_crash(NodeId(1), SimTime::ZERO);
        let mut svc = empty_service(EngineKind::Regular, Some(plan));
        inject(&mut svc, EngineKind::Regular);
        // The job has not started: no threads anywhere, so the crash
        // salvages nothing — and must be reported regardless.
        svc.handle_crashes();
        assert!(
            matches!(
                svc.active[0].failure,
                Some(SimError::NodeLost { node: NodeId(1) })
            ),
            "crash with empty salvage not reported: {:?}",
            svc.active[0].failure
        );
    }

    /// An ITask job whose state on the dead node is *only* queued
    /// partitions (offered, workers not yet spawned) must re-home them
    /// and still produce the full answer — not settle as completed with
    /// the dead node's share of the output silently missing.
    #[test]
    fn itask_queued_only_state_is_rehomed_on_crash() {
        let run = |crash: bool| {
            let plan = crash.then(|| FaultPlan::new(0).with_crash(NodeId(1), SimTime::ZERO));
            let mut svc = empty_service(EngineKind::Itask, plan);
            inject(&mut svc, EngineKind::Itask);
            svc.active[0]
                .driver
                .start(&mut svc.cluster)
                .expect("start offers partitions");
            // Fire the crash before any pump: the dead node holds only
            // queued partitions and zero live threads.
            svc.handle_crashes();
            assert!(
                svc.active[0].failure.is_none(),
                "itask job must survive: {:?}",
                svc.active[0].failure
            );
            for _ in 0..200_000 {
                if svc.active.is_empty() {
                    break;
                }
                svc.pump();
                svc.step_data_plane();
                svc.handle_crashes();
                svc.settle_jobs();
            }
            assert_eq!(svc.slos[&0].completed, 1, "job must settle as completed");
            svc.total_outputs
        };
        let with_crash = run(true);
        let without = run(false);
        assert!(without > 0);
        assert_eq!(with_crash, without, "crash run lost partitions");
    }
}
