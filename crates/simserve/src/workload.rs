//! Tenants, job kinds, and the seeded open-loop client generator.
//!
//! Each tenant submits a stream of jobs from a weighted mix of three
//! kinds spanning the repo's front ends — a planner fold query (light),
//! the Hyracks WC application spec (medium), and a planner collect
//! query whose reduce-side adjacency lists are the memory hog (heavy,
//! the service-scale cousin of the paper's II/GR problems). All three
//! compile to the same two-phase [`apps::AggSpec`] shape over webmap
//! adjacency records, so one generic driver executes any of them on
//! either engine.

use std::collections::{HashMap, VecDeque};

use planner::{CollectQuery, FoldQuery, Query};
use simcore::{ByteSize, DetRng, SimDuration, SimTime};
use workloads::webmap::{AdjRecord, WebmapConfig, WebmapSize};

/// The job catalog: what a client can submit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobKind {
    /// Planner fold: out-degree histogram (small input, counter state).
    DegreeCount,
    /// Hyracks WC: token counts over the adjacency text (medium).
    WordCount,
    /// Planner collect: in-link lists per target vertex (reduce-side
    /// list state — the co-location memory hog).
    LinkCollect,
}

impl JobKind {
    /// Short label for tables and logs.
    pub fn label(self) -> &'static str {
        match self {
            JobKind::DegreeCount => "deg",
            JobKind::WordCount => "wc",
            JobKind::LinkCollect => "links",
        }
    }

    /// The generated dataset for one submission of this kind.
    pub fn dataset(self, seed: u64) -> WebmapConfig {
        let (vertices, edges, bytes) = match self {
            JobKind::DegreeCount => (600, 1_800, ByteSize::kib(28)),
            JobKind::WordCount => (1_500, 6_000, ByteSize::kib(90)),
            JobKind::LinkCollect => (3_000, 24_000, ByteSize::kib(360)),
        };
        WebmapConfig {
            size: WebmapSize::G3,
            vertices,
            edges,
            total_bytes: bytes,
            seed,
        }
    }

    /// The planner fold spec for [`JobKind::DegreeCount`].
    pub fn degree_count_query() -> FoldQuery<AdjRecord> {
        Query::<AdjRecord>::named("svc_deg")
            .flat_map(|r, out| out.push((r.neighbors.len() as u64, 1)))
            .count()
    }

    /// The planner collect spec for [`JobKind::LinkCollect`].
    pub fn link_collect_query() -> CollectQuery<AdjRecord> {
        Query::<AdjRecord>::named("svc_links")
            .flat_map(|r, out| {
                for &n in &r.neighbors {
                    out.push((n, r.vertex));
                }
            })
            .collect(|items| items.len() as u64)
    }
}

/// Procedural tenant weights: the weighted-fair share derived from the
/// tenant id alone, so a million-tenant population needs no per-tenant
/// weight table. Every `premium_every`-th tenant (id divisible by it)
/// gets `premium_weight`; everyone else gets weight 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WeightRule {
    /// Stride of premium tenants; `0` disables the premium tier.
    pub premium_every: u32,
    /// Weighted-fair share for premium tenants.
    pub premium_weight: u64,
}

impl WeightRule {
    /// Every tenant at weight 1.
    pub fn uniform() -> Self {
        WeightRule {
            premium_every: 0,
            premium_weight: 1,
        }
    }

    /// The weighted-fair share for `tenant` (always at least 1).
    pub fn weight_of(self, tenant: u32) -> u64 {
        if self.premium_every > 0 && tenant.is_multiple_of(self.premium_every) {
            self.premium_weight.max(1)
        } else {
            1
        }
    }
}

/// One tenant's traffic profile.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Tenant id (also the weighted-fair tie-break).
    pub id: u32,
    /// Weighted-fair share.
    pub weight: u64,
    /// Mean time between submissions (open loop: arrivals do not wait
    /// for completions).
    pub mean_interarrival: SimDuration,
    /// Weighted job mix `(kind, weight)`.
    pub mix: Vec<(JobKind, u32)>,
    /// Relative submit deadline: a job still queued this long after its
    /// arrival is shed instead of run. `None` (the default) disables
    /// deadline shedding for the tenant.
    pub deadline: Option<SimDuration>,
}

impl TenantSpec {
    /// A uniform tenant: equal shares, the default mixed workload.
    pub fn uniform(id: u32, mean_interarrival: SimDuration) -> Self {
        TenantSpec {
            id,
            weight: 1,
            mean_interarrival,
            mix: vec![
                (JobKind::DegreeCount, 2),
                (JobKind::WordCount, 2),
                (JobKind::LinkCollect, 1),
            ],
            deadline: None,
        }
    }

    /// The same tenant with a submit deadline armed.
    pub fn with_deadline(mut self, deadline: SimDuration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// One generated job submission.
#[derive(Clone, Debug)]
pub struct Arrival {
    /// Submission instant.
    pub at: SimTime,
    /// Submitting tenant.
    pub tenant: u32,
    /// Per-tenant sequence number.
    pub seq: u32,
    /// What was submitted.
    pub kind: JobKind,
    /// Seed for the job's dataset generator.
    pub dataset_seed: u64,
    /// Absolute submit deadline (`arrival + tenant deadline`), if the
    /// tenant armed one. Derived without consuming RNG draws, so arming
    /// deadlines never perturbs the arrival schedule itself.
    pub deadline: Option<SimTime>,
}

/// Generates every tenant's arrival stream up to `horizon`, merged into
/// one deterministic schedule (sorted by instant, tenant, sequence).
///
/// Interarrival gaps are the tenant's mean scaled by a seeded jitter in
/// `[0.5, 1.5)`; job kinds are drawn from the tenant's weighted mix.
/// Everything derives from `seed` via forked [`DetRng`] streams, so the
/// same `(seed, tenants, horizon)` always yields the same schedule.
pub fn generate_arrivals(seed: u64, tenants: &[TenantSpec], horizon: SimDuration) -> Vec<Arrival> {
    let mut all = Vec::new();
    let mut root = DetRng::new(seed);
    for t in tenants {
        let mut rng = root.fork(t.id as u64 + 1);
        let total_mix: u32 = t.mix.iter().map(|(_, w)| w).sum();
        assert!(total_mix > 0, "tenant {} has an empty job mix", t.id);
        let mut at = SimTime::ZERO;
        let mut seq = 0u32;
        loop {
            let jitter = 500 + rng.below(1_000); // [0.5, 1.5) per mille
            let gap = SimDuration::from_nanos(
                t.mean_interarrival.as_nanos().saturating_mul(jitter) / 1_000,
            );
            at += gap;
            if at.since(SimTime::ZERO) > horizon {
                break;
            }
            let mut pick = rng.below(total_mix as u64) as u32;
            let mut kind = t.mix[0].0;
            for &(k, w) in &t.mix {
                if pick < w {
                    kind = k;
                    break;
                }
                pick -= w;
            }
            all.push(Arrival {
                at,
                tenant: t.id,
                seq,
                kind,
                dataset_seed: simcore::rng::stable_hash64(
                    seed ^ ((t.id as u64) << 32) ^ seq as u64,
                ),
                deadline: t.deadline.map(|d| at + d),
            });
            seq += 1;
        }
    }
    all.sort_by_key(|a| (a.at, a.tenant, a.seq));
    all
}

/// Aggregate load shape for the scale generator: a per-mille rate
/// multiplier as a pure integer function of time since the run start,
/// so the same instant always sees the same rate on any host.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadShape {
    /// Constant baseline rate.
    Steady,
    /// Triangle-wave diurnal cycle: the rate climbs from
    /// `1000 - amplitude_pm` per mille to `1000 + amplitude_pm` over
    /// the first half of each `period` and falls back over the second.
    Diurnal {
        /// One full day-night cycle.
        period: SimDuration,
        /// Peak-to-baseline swing in per mille (clamped to 999 so the
        /// rate never reaches zero).
        amplitude_pm: u64,
    },
    /// Square-wave bursts: `mult_pm` per mille for the first
    /// `burst_len` of each `period`, baseline 1000 otherwise.
    Bursty {
        /// Burst repetition interval.
        period: SimDuration,
        /// How long each burst lasts (clamped to the period).
        burst_len: SimDuration,
        /// Rate multiplier inside a burst, in per mille.
        mult_pm: u64,
    },
}

impl LoadShape {
    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            LoadShape::Steady => "steady",
            LoadShape::Diurnal { .. } => "diurnal",
            LoadShape::Bursty { .. } => "bursty",
        }
    }

    /// The rate multiplier (per mille, always ≥ 1) at `since_start`.
    pub fn multiplier_pm(self, since_start: SimDuration) -> u64 {
        match self {
            LoadShape::Steady => 1_000,
            LoadShape::Diurnal {
                period,
                amplitude_pm,
            } => {
                let p = period.as_nanos();
                let half = p / 2;
                if half == 0 {
                    return 1_000;
                }
                let phase = since_start.as_nanos() % p;
                // Triangle in [0, half]: rises to the half-period peak,
                // falls back down.
                let tri = if phase < half { phase } else { p - phase };
                let amp = amplitude_pm.min(999);
                1_000 - amp + 2 * amp * tri / half
            }
            LoadShape::Bursty {
                period,
                burst_len,
                mult_pm,
            } => {
                let p = period.as_nanos();
                if p == 0 {
                    return 1_000;
                }
                let phase = since_start.as_nanos() % p;
                if phase < burst_len.as_nanos() {
                    mult_pm.max(1)
                } else {
                    1_000
                }
            }
        }
    }
}

/// A whole tenant population described in O(1) state: the scale-mode
/// counterpart of a `Vec<TenantSpec>`. Arrivals are drawn from one
/// aggregate open-loop process and assigned to uniformly random tenant
/// ids, so describing 10^6 tenants costs a few words — per-tenant state
/// exists only for tenants that actually submit.
#[derive(Clone, Debug)]
pub struct TenantModel {
    /// Number of addressable tenants (ids `0..population`).
    pub population: u32,
    /// Mean gap between aggregate arrivals (across the population) at
    /// the baseline rate. The per-tenant mean is `population` times
    /// this.
    pub mean_gap: SimDuration,
    /// Time-varying rate modulation.
    pub shape: LoadShape,
    /// Weighted job mix `(kind, weight)`, shared by every tenant.
    pub mix: Vec<(JobKind, u32)>,
    /// Relative submit deadline applied to every arrival, if armed.
    pub deadline: Option<SimDuration>,
    /// Procedural weighted-fair shares.
    pub weights: WeightRule,
}

impl TenantModel {
    /// A uniform population: the default mixed workload, equal weights,
    /// no deadlines, steady rate.
    pub fn uniform(population: u32, mean_gap: SimDuration) -> Self {
        TenantModel {
            population,
            mean_gap,
            shape: LoadShape::Steady,
            mix: vec![
                (JobKind::DegreeCount, 2),
                (JobKind::WordCount, 2),
                (JobKind::LinkCollect, 1),
            ],
            deadline: None,
            weights: WeightRule::uniform(),
        }
    }
}

/// Lazy open-loop arrival stream over a [`TenantModel`]: synthesizes
/// the next arrival on demand instead of materialising the whole
/// schedule, so horizon and population scale independently of memory.
///
/// Gaps are the model's mean scaled by seeded jitter in `[0.5, 1.5)`
/// and divided by the shape's rate multiplier; tenants are drawn
/// uniformly from the population. Everything derives from `seed` via
/// one [`DetRng`] stream, so the same `(seed, model, horizon)` always
/// yields the same arrival sequence — and because arrivals are drawn
/// from a single aggregate process they are emitted already in
/// nondecreasing time order.
pub struct ArrivalGen {
    rng: DetRng,
    model: TenantModel,
    horizon: SimDuration,
    seed: u64,
    at: SimTime,
    total_mix: u32,
    /// Next per-tenant sequence number, allocated on a tenant's first
    /// arrival only. Accessed strictly by key (never iterated), so the
    /// hash map's unstable order cannot leak into the schedule.
    seqs: HashMap<u32, u32>,
    done: bool,
}

impl ArrivalGen {
    /// Creates the stream; no per-tenant work happens here.
    pub fn new(seed: u64, model: TenantModel, horizon: SimDuration) -> Self {
        assert!(model.population > 0, "empty tenant population");
        let total_mix: u32 = model.mix.iter().map(|(_, w)| w).sum();
        assert!(total_mix > 0, "tenant model has an empty job mix");
        ArrivalGen {
            rng: DetRng::new(seed),
            model,
            horizon,
            seed,
            at: SimTime::ZERO,
            total_mix,
            seqs: HashMap::new(),
            done: false,
        }
    }

    /// Tenants that have submitted at least once (the only per-tenant
    /// state the generator holds).
    pub fn touched_tenants(&self) -> usize {
        self.seqs.len()
    }

    /// Synthesizes the next arrival, or `None` once the horizon is
    /// reached (terminal: the stream never resumes).
    pub fn next_arrival(&mut self) -> Option<Arrival> {
        if self.done {
            return None;
        }
        let jitter = 500 + self.rng.below(1_000); // [0.5, 1.5) per mille
        let base = self.model.mean_gap.as_nanos().saturating_mul(jitter) / 1_000;
        let mult = self
            .model
            .shape
            .multiplier_pm(self.at.since(SimTime::ZERO))
            .max(1);
        let gap = (base.saturating_mul(1_000) / mult).max(1);
        self.at += SimDuration::from_nanos(gap);
        if self.at.since(SimTime::ZERO) > self.horizon {
            self.done = true;
            return None;
        }
        let tenant = self.rng.below(self.model.population as u64) as u32;
        let mut pick = self.rng.below(self.total_mix as u64) as u32;
        let mut kind = self.model.mix[0].0;
        for &(k, w) in &self.model.mix {
            if pick < w {
                kind = k;
                break;
            }
            pick -= w;
        }
        let slot = self.seqs.entry(tenant).or_insert(0);
        let seq = *slot;
        *slot += 1;
        Some(Arrival {
            at: self.at,
            tenant,
            seq,
            kind,
            dataset_seed: simcore::rng::stable_hash64(
                self.seed ^ ((tenant as u64) << 32) ^ seq as u64,
            ),
            deadline: self.model.deadline.map(|d| self.at + d),
        })
    }
}

/// Where the service pulls arrivals from: a pre-generated schedule (the
/// classic per-tenant generator) or the lazy scale stream.
pub enum ArrivalSource {
    /// Materialised schedule, popped front-first.
    Fixed(VecDeque<Arrival>),
    /// Lazily synthesized stream plus a one-slot lookahead for `peek`.
    /// Boxed so the variant stays pocket-sized next to `Fixed`.
    Lazy {
        /// The generator.
        stream: Box<ArrivalGen>,
        /// Synthesized but not yet consumed.
        peeked: Option<Arrival>,
    },
}

impl ArrivalSource {
    /// Wraps a materialised schedule.
    pub fn fixed(arrivals: Vec<Arrival>) -> Self {
        ArrivalSource::Fixed(arrivals.into())
    }

    /// Wraps a lazy stream.
    pub fn lazy(stream: ArrivalGen) -> Self {
        ArrivalSource::Lazy {
            stream: Box::new(stream),
            peeked: None,
        }
    }

    /// The next arrival without consuming it.
    pub fn peek(&mut self) -> Option<&Arrival> {
        match self {
            ArrivalSource::Fixed(q) => q.front(),
            ArrivalSource::Lazy { stream, peeked } => {
                if peeked.is_none() {
                    *peeked = stream.next_arrival();
                }
                peeked.as_ref()
            }
        }
    }

    /// Consumes and returns the next arrival.
    pub fn pop(&mut self) -> Option<Arrival> {
        match self {
            ArrivalSource::Fixed(q) => q.pop_front(),
            ArrivalSource::Lazy { stream, peeked } => {
                peeked.take().or_else(|| stream.next_arrival())
            }
        }
    }
}

/// Generator blocks for one arrival's dataset.
pub fn dataset_blocks(
    kind: JobKind,
    dataset_seed: u64,
    block_size: ByteSize,
) -> Vec<Vec<AdjRecord>> {
    let cfg = kind.dataset(dataset_seed);
    (0..cfg.num_blocks(block_size))
        .map(|b| cfg.block(b, block_size))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tenants(n: u32) -> Vec<TenantSpec> {
        (0..n)
            .map(|i| TenantSpec::uniform(i, SimDuration::from_millis(200)))
            .collect()
    }

    #[test]
    fn schedule_is_deterministic_and_sorted() {
        let a = generate_arrivals(42, &tenants(3), SimDuration::from_secs(2));
        let b = generate_arrivals(42, &tenants(3), SimDuration::from_secs(2));
        assert!(!a.is_empty());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                (x.at, x.tenant, x.seq, x.kind),
                (y.at, y.tenant, y.seq, y.kind)
            );
            assert_eq!(x.dataset_seed, y.dataset_seed);
        }
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_arrivals(1, &tenants(2), SimDuration::from_secs(2));
        let b = generate_arrivals(2, &tenants(2), SimDuration::from_secs(2));
        let times_a: Vec<_> = a.iter().map(|x| x.at).collect();
        let times_b: Vec<_> = b.iter().map(|x| x.at).collect();
        assert_ne!(times_a, times_b);
    }

    #[test]
    fn mix_covers_every_kind_over_time() {
        let a = generate_arrivals(7, &tenants(4), SimDuration::from_secs(10));
        for kind in [
            JobKind::DegreeCount,
            JobKind::WordCount,
            JobKind::LinkCollect,
        ] {
            assert!(a.iter().any(|x| x.kind == kind), "{kind:?} never generated");
        }
    }

    #[test]
    fn deadlines_do_not_perturb_the_schedule() {
        let plain = generate_arrivals(42, &tenants(3), SimDuration::from_secs(2));
        let armed: Vec<TenantSpec> = tenants(3)
            .into_iter()
            .map(|t| t.with_deadline(SimDuration::from_millis(7)))
            .collect();
        let with = generate_arrivals(42, &armed, SimDuration::from_secs(2));
        assert_eq!(plain.len(), with.len());
        for (p, w) in plain.iter().zip(&with) {
            assert_eq!(
                (p.at, p.tenant, p.seq, p.kind),
                (w.at, w.tenant, w.seq, w.kind)
            );
            assert_eq!(p.dataset_seed, w.dataset_seed);
            assert_eq!(p.deadline, None);
            assert_eq!(w.deadline, Some(w.at + SimDuration::from_millis(7)));
        }
    }

    #[test]
    fn lazy_stream_is_deterministic_sorted_and_seq_numbered() {
        let model = TenantModel::uniform(1_000, SimDuration::from_micros(50));
        let drain = |seed: u64| {
            let mut g = ArrivalGen::new(seed, model.clone(), SimDuration::from_millis(20));
            let mut out = Vec::new();
            while let Some(a) = g.next_arrival() {
                out.push(a);
            }
            assert!(g.next_arrival().is_none(), "horizon exhaustion is terminal");
            out
        };
        let a = drain(42);
        let b = drain(42);
        assert!(!a.is_empty());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                (x.at, x.tenant, x.seq, x.kind, x.dataset_seed),
                (y.at, y.tenant, y.seq, y.kind, y.dataset_seed)
            );
        }
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at), "time-ordered");
        // Per-tenant seqs count up densely from 0.
        let mut next = HashMap::new();
        for x in &a {
            let slot = next.entry(x.tenant).or_insert(0u32);
            assert_eq!(x.seq, *slot);
            *slot += 1;
        }
        let c = drain(7);
        assert_ne!(
            a.iter().map(|x| x.at).collect::<Vec<_>>(),
            c.iter().map(|x| x.at).collect::<Vec<_>>()
        );
    }

    #[test]
    fn lazy_stream_allocates_no_tenant_state_up_front() {
        // A million-tenant model is a few words until arrivals draw
        // tenants; per-tenant state appears only for touched tenants.
        let model = TenantModel::uniform(1_000_000, SimDuration::from_micros(10));
        let mut g = ArrivalGen::new(42, model, SimDuration::from_secs(3_600));
        assert_eq!(g.touched_tenants(), 0);
        for _ in 0..100 {
            g.next_arrival().expect("horizon is far away");
        }
        assert!(g.touched_tenants() <= 100);
        assert!(g.touched_tenants() > 0);
    }

    #[test]
    fn load_shapes_modulate_the_rate() {
        // Steady is flat.
        assert_eq!(
            LoadShape::Steady.multiplier_pm(SimDuration::from_millis(3)),
            1_000
        );
        // Diurnal: trough at phase 0, peak at half period, back to
        // trough at the period boundary; bounded by the amplitude.
        let d = LoadShape::Diurnal {
            period: SimDuration::from_millis(10),
            amplitude_pm: 600,
        };
        assert_eq!(d.multiplier_pm(SimDuration::ZERO), 400);
        assert_eq!(d.multiplier_pm(SimDuration::from_millis(5)), 1_600);
        assert_eq!(d.multiplier_pm(SimDuration::from_millis(10)), 400);
        for us in 0..10_000u64 {
            let m = d.multiplier_pm(SimDuration::from_micros(us));
            assert!((400..=1_600).contains(&m));
        }
        // Bursty: multiplied inside the burst window, baseline outside.
        let b = LoadShape::Bursty {
            period: SimDuration::from_millis(8),
            burst_len: SimDuration::from_millis(2),
            mult_pm: 4_000,
        };
        assert_eq!(b.multiplier_pm(SimDuration::from_millis(1)), 4_000);
        assert_eq!(b.multiplier_pm(SimDuration::from_millis(5)), 1_000);
        assert_eq!(b.multiplier_pm(SimDuration::from_millis(9)), 4_000);
        // The burst actually densifies arrivals: more land inside burst
        // windows than in equally long off-burst windows.
        let model = TenantModel {
            shape: b,
            ..TenantModel::uniform(10_000, SimDuration::from_micros(40))
        };
        let mut g = ArrivalGen::new(42, model, SimDuration::from_millis(64));
        let (mut in_burst, mut off_burst) = (0u64, 0u64);
        while let Some(a) = g.next_arrival() {
            let phase = a.at.since(SimTime::ZERO).as_nanos() % 8_000_000;
            if phase < 2_000_000 {
                in_burst += 1;
            } else {
                off_burst += 1;
            }
        }
        // Burst windows are 1/4 of the time at 4x the rate: they should
        // hold clearly more than half of all arrivals.
        assert!(in_burst > off_burst, "{in_burst} vs {off_burst}");
    }

    #[test]
    fn arrival_source_peek_then_pop_agree_for_both_variants() {
        let arrivals = generate_arrivals(
            42,
            &[TenantSpec::uniform(0, SimDuration::from_millis(5))],
            SimDuration::from_millis(40),
        );
        let mut fixed = ArrivalSource::fixed(arrivals.clone());
        let model = TenantModel::uniform(100, SimDuration::from_millis(1));
        let mut lazy =
            ArrivalSource::lazy(ArrivalGen::new(42, model, SimDuration::from_millis(40)));
        for src in [&mut fixed, &mut lazy] {
            let mut n = 0usize;
            loop {
                let peeked = src.peek().map(|a| (a.at, a.tenant, a.seq));
                let popped = src.pop().map(|a| (a.at, a.tenant, a.seq));
                assert_eq!(peeked, popped);
                if popped.is_none() {
                    break;
                }
                n += 1;
            }
            assert!(n > 0);
        }
    }

    #[test]
    fn datasets_are_small_and_seeded() {
        let blocks = dataset_blocks(JobKind::WordCount, 99, ByteSize::kib(16));
        assert!(!blocks.is_empty());
        let again = dataset_blocks(JobKind::WordCount, 99, ByteSize::kib(16));
        assert_eq!(blocks, again);
        let other = dataset_blocks(JobKind::WordCount, 100, ByteSize::kib(16));
        assert_ne!(blocks, other);
    }
}
