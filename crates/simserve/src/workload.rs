//! Tenants, job kinds, and the seeded open-loop client generator.
//!
//! Each tenant submits a stream of jobs from a weighted mix of three
//! kinds spanning the repo's front ends — a planner fold query (light),
//! the Hyracks WC application spec (medium), and a planner collect
//! query whose reduce-side adjacency lists are the memory hog (heavy,
//! the service-scale cousin of the paper's II/GR problems). All three
//! compile to the same two-phase [`apps::AggSpec`] shape over webmap
//! adjacency records, so one generic driver executes any of them on
//! either engine.

use planner::{CollectQuery, FoldQuery, Query};
use simcore::{ByteSize, DetRng, SimDuration, SimTime};
use workloads::webmap::{AdjRecord, WebmapConfig, WebmapSize};

/// The job catalog: what a client can submit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobKind {
    /// Planner fold: out-degree histogram (small input, counter state).
    DegreeCount,
    /// Hyracks WC: token counts over the adjacency text (medium).
    WordCount,
    /// Planner collect: in-link lists per target vertex (reduce-side
    /// list state — the co-location memory hog).
    LinkCollect,
}

impl JobKind {
    /// Short label for tables and logs.
    pub fn label(self) -> &'static str {
        match self {
            JobKind::DegreeCount => "deg",
            JobKind::WordCount => "wc",
            JobKind::LinkCollect => "links",
        }
    }

    /// The generated dataset for one submission of this kind.
    pub fn dataset(self, seed: u64) -> WebmapConfig {
        let (vertices, edges, bytes) = match self {
            JobKind::DegreeCount => (600, 1_800, ByteSize::kib(28)),
            JobKind::WordCount => (1_500, 6_000, ByteSize::kib(90)),
            JobKind::LinkCollect => (3_000, 24_000, ByteSize::kib(360)),
        };
        WebmapConfig {
            size: WebmapSize::G3,
            vertices,
            edges,
            total_bytes: bytes,
            seed,
        }
    }

    /// The planner fold spec for [`JobKind::DegreeCount`].
    pub fn degree_count_query() -> FoldQuery<AdjRecord> {
        Query::<AdjRecord>::named("svc_deg")
            .flat_map(|r, out| out.push((r.neighbors.len() as u64, 1)))
            .count()
    }

    /// The planner collect spec for [`JobKind::LinkCollect`].
    pub fn link_collect_query() -> CollectQuery<AdjRecord> {
        Query::<AdjRecord>::named("svc_links")
            .flat_map(|r, out| {
                for &n in &r.neighbors {
                    out.push((n, r.vertex));
                }
            })
            .collect(|items| items.len() as u64)
    }
}

/// One tenant's traffic profile.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Tenant id (also the weighted-fair tie-break).
    pub id: u32,
    /// Weighted-fair share.
    pub weight: u64,
    /// Mean time between submissions (open loop: arrivals do not wait
    /// for completions).
    pub mean_interarrival: SimDuration,
    /// Weighted job mix `(kind, weight)`.
    pub mix: Vec<(JobKind, u32)>,
    /// Relative submit deadline: a job still queued this long after its
    /// arrival is shed instead of run. `None` (the default) disables
    /// deadline shedding for the tenant.
    pub deadline: Option<SimDuration>,
}

impl TenantSpec {
    /// A uniform tenant: equal shares, the default mixed workload.
    pub fn uniform(id: u32, mean_interarrival: SimDuration) -> Self {
        TenantSpec {
            id,
            weight: 1,
            mean_interarrival,
            mix: vec![
                (JobKind::DegreeCount, 2),
                (JobKind::WordCount, 2),
                (JobKind::LinkCollect, 1),
            ],
            deadline: None,
        }
    }

    /// The same tenant with a submit deadline armed.
    pub fn with_deadline(mut self, deadline: SimDuration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// One generated job submission.
#[derive(Clone, Debug)]
pub struct Arrival {
    /// Submission instant.
    pub at: SimTime,
    /// Submitting tenant.
    pub tenant: u32,
    /// Per-tenant sequence number.
    pub seq: u32,
    /// What was submitted.
    pub kind: JobKind,
    /// Seed for the job's dataset generator.
    pub dataset_seed: u64,
    /// Absolute submit deadline (`arrival + tenant deadline`), if the
    /// tenant armed one. Derived without consuming RNG draws, so arming
    /// deadlines never perturbs the arrival schedule itself.
    pub deadline: Option<SimTime>,
}

/// Generates every tenant's arrival stream up to `horizon`, merged into
/// one deterministic schedule (sorted by instant, tenant, sequence).
///
/// Interarrival gaps are the tenant's mean scaled by a seeded jitter in
/// `[0.5, 1.5)`; job kinds are drawn from the tenant's weighted mix.
/// Everything derives from `seed` via forked [`DetRng`] streams, so the
/// same `(seed, tenants, horizon)` always yields the same schedule.
pub fn generate_arrivals(seed: u64, tenants: &[TenantSpec], horizon: SimDuration) -> Vec<Arrival> {
    let mut all = Vec::new();
    let mut root = DetRng::new(seed);
    for t in tenants {
        let mut rng = root.fork(t.id as u64 + 1);
        let total_mix: u32 = t.mix.iter().map(|(_, w)| w).sum();
        assert!(total_mix > 0, "tenant {} has an empty job mix", t.id);
        let mut at = SimTime::ZERO;
        let mut seq = 0u32;
        loop {
            let jitter = 500 + rng.below(1_000); // [0.5, 1.5) per mille
            let gap = SimDuration::from_nanos(
                t.mean_interarrival.as_nanos().saturating_mul(jitter) / 1_000,
            );
            at += gap;
            if at.since(SimTime::ZERO) > horizon {
                break;
            }
            let mut pick = rng.below(total_mix as u64) as u32;
            let mut kind = t.mix[0].0;
            for &(k, w) in &t.mix {
                if pick < w {
                    kind = k;
                    break;
                }
                pick -= w;
            }
            all.push(Arrival {
                at,
                tenant: t.id,
                seq,
                kind,
                dataset_seed: simcore::rng::stable_hash64(
                    seed ^ ((t.id as u64) << 32) ^ seq as u64,
                ),
                deadline: t.deadline.map(|d| at + d),
            });
            seq += 1;
        }
    }
    all.sort_by_key(|a| (a.at, a.tenant, a.seq));
    all
}

/// Generator blocks for one arrival's dataset.
pub fn dataset_blocks(
    kind: JobKind,
    dataset_seed: u64,
    block_size: ByteSize,
) -> Vec<Vec<AdjRecord>> {
    let cfg = kind.dataset(dataset_seed);
    (0..cfg.num_blocks(block_size))
        .map(|b| cfg.block(b, block_size))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tenants(n: u32) -> Vec<TenantSpec> {
        (0..n)
            .map(|i| TenantSpec::uniform(i, SimDuration::from_millis(200)))
            .collect()
    }

    #[test]
    fn schedule_is_deterministic_and_sorted() {
        let a = generate_arrivals(42, &tenants(3), SimDuration::from_secs(2));
        let b = generate_arrivals(42, &tenants(3), SimDuration::from_secs(2));
        assert!(!a.is_empty());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                (x.at, x.tenant, x.seq, x.kind),
                (y.at, y.tenant, y.seq, y.kind)
            );
            assert_eq!(x.dataset_seed, y.dataset_seed);
        }
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_arrivals(1, &tenants(2), SimDuration::from_secs(2));
        let b = generate_arrivals(2, &tenants(2), SimDuration::from_secs(2));
        let times_a: Vec<_> = a.iter().map(|x| x.at).collect();
        let times_b: Vec<_> = b.iter().map(|x| x.at).collect();
        assert_ne!(times_a, times_b);
    }

    #[test]
    fn mix_covers_every_kind_over_time() {
        let a = generate_arrivals(7, &tenants(4), SimDuration::from_secs(10));
        for kind in [
            JobKind::DegreeCount,
            JobKind::WordCount,
            JobKind::LinkCollect,
        ] {
            assert!(a.iter().any(|x| x.kind == kind), "{kind:?} never generated");
        }
    }

    #[test]
    fn deadlines_do_not_perturb_the_schedule() {
        let plain = generate_arrivals(42, &tenants(3), SimDuration::from_secs(2));
        let armed: Vec<TenantSpec> = tenants(3)
            .into_iter()
            .map(|t| t.with_deadline(SimDuration::from_millis(7)))
            .collect();
        let with = generate_arrivals(42, &armed, SimDuration::from_secs(2));
        assert_eq!(plain.len(), with.len());
        for (p, w) in plain.iter().zip(&with) {
            assert_eq!(
                (p.at, p.tenant, p.seq, p.kind),
                (w.at, w.tenant, w.seq, w.kind)
            );
            assert_eq!(p.dataset_seed, w.dataset_seed);
            assert_eq!(p.deadline, None);
            assert_eq!(w.deadline, Some(w.at + SimDuration::from_millis(7)));
        }
    }

    #[test]
    fn datasets_are_small_and_seeded() {
        let blocks = dataset_blocks(JobKind::WordCount, 99, ByteSize::kib(16));
        assert!(!blocks.is_empty());
        let again = dataset_blocks(JobKind::WordCount, 99, ByteSize::kib(16));
        assert_eq!(blocks, again);
        let other = dataset_blocks(JobKind::WordCount, 100, ByteSize::kib(16));
        assert_ne!(blocks, other);
    }
}
