//! The per-job execution driver: an incremental, multi-job-safe
//! re-expression of the hyracks two-phase engine.
//!
//! The engine's `run_regular`/`run_itask` own the whole cluster and
//! drive it to completion with cluster-wide barriers between phases —
//! fine for one job, useless for a service where co-located jobs must
//! interleave on the *same* node clocks and heaps. [`TwoPhaseJob`]
//! breaks the same phase structure (partition-local map → hash shuffle
//! → bucket-exclusive reduce) into a resumable state machine: the
//! service pumps every active job once per scheduling round, and the
//! shared [`simcluster::NodeSim::run_round`] steps all jobs' threads
//! together, so co-located jobs genuinely contend for memory and
//! trigger interrupts in each other.
//!
//! Isolation comes from allocation scopes: every thread a job spawns —
//! regular operator workers and IRS task instances alike — carries the
//! job's scope, every heap space created inside those steps is
//! attributed to it, and teardown is `kill_scope` + `release_scope` per
//! node, whatever state the job died in.

use std::collections::{BTreeMap, VecDeque};

use apps::agg::{itask_factories, AggMapOp, AggReduceOp, AggSpec};
use hyracks::{chunk_into_frames, OperatorWorker, OutputSink, ShuffleBatch};
use itask_core::{
    offer_serialized, Irs, IrsConfig, ItaskWorker, MemSignal, PartitionState, Tag, TaskGraph, Tuple,
};
use simcluster::{Cluster, NodeSim, WorkCx, DEFAULT_IO_RETRIES};
use simcore::{tracer, ByteSize, NodeId, SimDuration, SimError, SimResult, SimTime};

/// Which engine executes a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// Fixed thread pools, state pinned for the phase; an OME or node
    /// loss anywhere kills the job (stock Hyracks semantics).
    Regular,
    /// ITasks under a per-node IRS: interruptible, recoverable.
    Itask,
}

impl EngineKind {
    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Regular => "regular",
            EngineKind::Itask => "itask",
        }
    }
}

/// Execution phase of a two-phase job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Phase 1 running.
    Map,
    /// Phase 2 running.
    Reduce,
    /// Completed; `outputs` holds the result count.
    Done,
}

/// Object-safe handle the service holds on an executing job.
pub trait JobDriver {
    /// Places inputs and spawns phase-1 work. Called exactly once.
    fn start(&mut self, cluster: &mut Cluster) -> SimResult<()>;

    /// Advances the job's control plane one notch: ticks its IRS
    /// controllers, detects phase completion, shuffles and launches the
    /// next phase. Returns `true` when the job has fully completed.
    /// The service steps the data plane separately via `run_round`.
    fn pump(&mut self, cluster: &mut Cluster) -> SimResult<bool>;

    /// Reacts to a node crash (already salvaged by the service): ITask
    /// jobs re-home the dead node's partitions onto survivors; regular
    /// jobs have no recovery plane and fail with `NodeLost`.
    fn on_node_crash(&mut self, cluster: &mut Cluster, node: NodeId) -> SimResult<()>;

    /// Evacuates the node's queued partitions onto `targets` while the
    /// node is still *alive* (quarantine: the service is taking an
    /// OME-storming node out of rotation). Returns how many partitions
    /// moved. Engines without a partition queue have nothing to drain.
    fn drain_node(
        &mut self,
        _cluster: &mut Cluster,
        _node: NodeId,
        _targets: &[NodeId],
    ) -> SimResult<usize> {
        Ok(0)
    }

    /// Asks the job to proactively shrink its footprint (brownout):
    /// ITask jobs force a `REDUCE` on every controller's next tick,
    /// deflating ahead of the full-GC cliff. Default no-op for engines
    /// without an interrupt plane.
    fn deflate(&mut self) {}

    /// Kills the job's remaining threads and releases every heap space
    /// attributed to it, on every node. Idempotent.
    fn teardown(&mut self, cluster: &mut Cluster);

    /// Worst memory signal across the job's IRS monitors (`Steady` for
    /// regular jobs, which have no monitor).
    fn memory_signal(&self) -> MemSignal;

    /// Number of output tuples, once completed.
    fn output_count(&self) -> Option<u64>;

    /// The allocation scope identifying this job's threads and spaces.
    fn scope(&self) -> u64;
}

/// Sizing knobs shared by every job the service builds.
#[derive(Clone, Copy, Debug)]
pub struct JobParams {
    /// Regular-engine worker threads per node.
    pub threads: usize,
    /// IRS max parallelism per node.
    pub max_parallelism: usize,
    /// Frame/partition granularity.
    pub granularity: ByteSize,
    /// Hash buckets for the shuffle.
    pub buckets: u32,
}

/// A two-phase aggregation job executing incrementally on a shared
/// cluster. Generic over the [`AggSpec`] so planner queries, Hyracks
/// app specs, and Hadoop-style specs all run through the same driver.
pub struct TwoPhaseJob<S: AggSpec> {
    spec: S,
    engine: EngineKind,
    scope: u64,
    params: JobParams,
    inputs: Option<Vec<Vec<Vec<S::In>>>>,
    phase: Phase,
    /// Regular engine: per-node sinks for the running phase.
    map_sinks: Vec<OutputSink<S::Mid>>,
    reduce_sinks: Vec<OutputSink<S::Out>>,
    /// ITask engine: per-node controllers for the running phase.
    irss: Vec<Irs>,
    outputs: Option<u64>,
}

impl<S: AggSpec> TwoPhaseJob<S> {
    /// Builds a job over per-node input frames. `scope` must be unique
    /// among live jobs (the service allocates them monotonically).
    pub fn new(
        spec: S,
        engine: EngineKind,
        scope: u64,
        params: JobParams,
        inputs: Vec<Vec<Vec<S::In>>>,
    ) -> Self {
        TwoPhaseJob {
            spec,
            engine,
            scope,
            params,
            inputs: Some(inputs),
            phase: Phase::Map,
            map_sinks: Vec::new(),
            reduce_sinks: Vec::new(),
            irss: Vec::new(),
            outputs: None,
        }
    }

    /// Whether every thread and controller of the current phase has
    /// retired on every live node.
    fn phase_quiesced(&mut self, cluster: &mut Cluster) -> bool {
        for n in 0..cluster.node_count() {
            let sim = cluster.sim(NodeId(n as u32));
            if sim.is_crashed() {
                continue;
            }
            if sim.live_count_in_scope(self.scope) > 0 {
                return false;
            }
            if let Some(irs) = self.irss.get(n) {
                if !irs.is_idle() {
                    return false;
                }
            }
        }
        true
    }

    /// Spawns regular operator workers for one phase on one node.
    #[allow(clippy::too_many_arguments)]
    fn spawn_regular_map(&mut self, sim: &mut NodeSim, frames: Vec<Vec<S::In>>, node: usize) {
        let sink: OutputSink<S::Mid> = OutputSink::default();
        self.map_sinks.push(sink.clone());
        let threads = self.params.threads.max(1);
        let mut per_thread: Vec<VecDeque<Vec<S::In>>> =
            (0..threads).map(|_| VecDeque::new()).collect();
        for (i, f) in frames.into_iter().enumerate() {
            per_thread[i % threads].push_back(f);
        }
        for (t, frames) in per_thread.into_iter().enumerate() {
            if frames.is_empty() {
                continue;
            }
            let worker = OperatorWorker::new(
                AggMapOp::new(self.spec.clone(), self.params.buckets),
                frames,
                sink.clone(),
                true,
                format!("svc{}.n{node}.map{t}", self.scope),
            );
            sim.spawn_scoped(Box::new(worker), Some(self.scope));
        }
    }

    fn start_regular(&mut self, cluster: &mut Cluster) {
        let inputs = self.inputs.take().expect("started once");
        for (n, frames) in inputs.into_iter().enumerate() {
            let sim = cluster.sim(NodeId(n as u32));
            self.spawn_regular_map(sim, frames, n);
        }
    }

    fn start_itask(&mut self, cluster: &mut Cluster) -> SimResult<()> {
        let inputs = self.inputs.take().expect("started once");
        let factories = itask_factories(self.spec.clone(), self.params.buckets);
        for (n, frames) in inputs.into_iter().enumerate() {
            let mut graph = TaskGraph::new();
            let map_f = factories.map.clone();
            let map = graph.add_task("map", move || map_f());
            let irs = Irs::new(graph, self.irs_config());
            let handle = irs.handle();
            let sim = cluster.sim(NodeId(n as u32));
            for frame in frames {
                offer_serialized(&handle, sim.node_mut(), map, Tag(0), frame)?;
            }
            self.irss.push(irs);
        }
        Ok(())
    }

    fn irs_config(&self) -> IrsConfig {
        IrsConfig {
            max_parallelism: self.params.max_parallelism,
            scope: Some(self.scope),
            ..IrsConfig::default()
        }
    }

    /// Transitions map → reduce: collects phase-1 outputs, shuffles
    /// them (advancing only destination clocks — no cluster barrier),
    /// and launches phase 2.
    fn enter_reduce(&mut self, cluster: &mut Cluster) -> SimResult<()> {
        let outputs: Vec<(NodeId, BucketedFrames<S::Mid>)> = match self.engine {
            EngineKind::Regular => std::mem::take(&mut self.map_sinks)
                .into_iter()
                .enumerate()
                .map(|(n, s)| {
                    let arena = std::mem::take(&mut *s.lock().unwrap());
                    (NodeId(n as u32), arena.into_batches())
                })
                .collect(),
            EngineKind::Itask => {
                let mut out = Vec::new();
                for (n, irs) in self.irss.iter_mut().enumerate() {
                    let mut batches = Vec::new();
                    for f in irs.take_final_outputs() {
                        let batch = f
                            .data
                            .downcast::<ShuffleBatch<S::Mid>>()
                            .expect("map tasks emit ShuffleBatch finals");
                        batches.extend(batch.buckets);
                    }
                    out.push((NodeId(n as u32), batches));
                }
                out
            }
        };
        let per_node = service_shuffle(cluster, outputs)?;
        self.irss.clear();
        self.phase = Phase::Reduce;

        match self.engine {
            EngineKind::Regular => {
                let threads = self.params.threads.max(1);
                let node_count = cluster.node_count();
                for (n, buckets) in per_node.into_iter().enumerate() {
                    let sink: OutputSink<S::Out> = OutputSink::default();
                    self.reduce_sinks.push(sink.clone());
                    let mut per_thread: Vec<VecDeque<Vec<S::Mid>>> =
                        (0..threads).map(|_| VecDeque::new()).collect();
                    for (bucket, tuples) in buckets {
                        let t = (bucket as usize / node_count) % threads;
                        for frame in chunk_into_frames(tuples, self.params.granularity) {
                            per_thread[t].push_back(frame);
                        }
                    }
                    let sim = cluster.sim(NodeId(n as u32));
                    for (t, frames) in per_thread.into_iter().enumerate() {
                        if frames.is_empty() {
                            continue;
                        }
                        let worker = OperatorWorker::new(
                            AggReduceOp::new(self.spec.clone(), self.params.buckets),
                            frames,
                            sink.clone(),
                            false,
                            format!("svc{}.n{n}.red{t}", self.scope),
                        );
                        sim.spawn_scoped(Box::new(worker), Some(self.scope));
                    }
                }
            }
            EngineKind::Itask => {
                let factories = itask_factories(self.spec.clone(), self.params.buckets);
                for (n, buckets) in per_node.into_iter().enumerate() {
                    let mut graph = TaskGraph::new();
                    let red_f = factories.reduce.clone();
                    let mer_f = factories.merge.clone();
                    let reduce = graph.add_task("reduce", move || red_f());
                    let merge = graph.add_mitask("merge", move || mer_f());
                    graph.connect(reduce, merge);
                    graph.connect(merge, merge);
                    let irs = Irs::new(graph, self.irs_config());
                    let handle = irs.handle();
                    let sim = cluster.sim(NodeId(n as u32));
                    for (bucket, tuples) in buckets {
                        for frame in chunk_into_frames(tuples, self.params.granularity) {
                            offer_serialized(
                                &handle,
                                sim.node_mut(),
                                reduce,
                                Tag(bucket as u64),
                                frame,
                            )?;
                        }
                    }
                    self.irss.push(irs);
                }
            }
        }
        Ok(())
    }

    /// Moves every queued partition of `src`'s IRS onto `targets`,
    /// keeping whole tag groups on one node (split groups would
    /// duplicate finals). Shared by the crash path (`src` is dead: a
    /// surviving donor re-sends the bytes) and the quarantine drain
    /// (`src` is alive and pushes its own partitions out).
    fn rehome_queue(
        &mut self,
        cluster: &mut Cluster,
        src: NodeId,
        targets: &[NodeId],
        src_alive: bool,
    ) -> SimResult<usize> {
        if self.irss.is_empty() {
            return Ok(0);
        }
        let mut parts = self.irss[src.as_usize()].drain_queue();
        parts.sort_by_key(|p| p.meta().id);
        if parts.is_empty() {
            return Ok(0);
        }
        if targets.is_empty() {
            return Err(SimError::NodeLost { node: src });
        }
        let now = SimTime::ZERO + cluster.elapsed();
        let moved = parts.len();
        for mut part in parts {
            if let Some(space) = part.meta().space() {
                cluster.sim(src).node_mut().heap.release_space(space);
            }
            let (pid, ser) = (part.meta().id, part.meta().ser_bytes);
            let dst = targets[(part.meta().tag.0 % targets.len() as u64) as usize];
            let tx = if src_alive {
                src
            } else {
                targets.iter().copied().find(|&n| n != dst).unwrap_or(dst)
            };
            let wire = cluster.fabric().transfer_at(tx, dst, ser, now)?;
            let dst_sim = cluster.sim(dst);
            dst_sim.node_mut().now += wire;
            let (file, _retries) = dst_sim.node_mut().disk_write_retried(
                &format!("{pid}.rehome"),
                ser,
                DEFAULT_IO_RETRIES,
            )?;
            let meta = part.meta_mut();
            meta.state = PartitionState::Serialized(file);
            meta.last_serialized = Some(dst_sim.node().now);
            if tracer::is_enabled() {
                tracer::emit(
                    Some(dst),
                    Some(self.scope),
                    dst_sim.node().now,
                    SimDuration::ZERO,
                    tracer::TraceData::Rehome {
                        partition: pid.as_u32(),
                        from: src.as_u32(),
                    },
                );
            }
            let handle = self.irss[dst.as_usize()].handle();
            handle.push_partition(part);
            handle.note_crash_requeued(1);
        }
        Ok(moved)
    }

    /// Completes the job: counts reduce outputs.
    fn finish(&mut self) {
        let count: u64 = match self.engine {
            EngineKind::Regular => std::mem::take(&mut self.reduce_sinks)
                .into_iter()
                .map(|s| s.lock().unwrap().total_len())
                .sum(),
            EngineKind::Itask => {
                let mut total = 0u64;
                for irs in &mut self.irss {
                    for f in irs.take_final_outputs() {
                        let v = f
                            .data
                            .downcast::<Vec<S::Out>>()
                            .expect("merge tasks emit Vec<Out> finals");
                        total += v.len() as u64;
                    }
                }
                total
            }
        };
        self.irss.clear();
        self.outputs = Some(count);
        self.phase = Phase::Done;
    }
}

impl<S: AggSpec> JobDriver for TwoPhaseJob<S> {
    fn start(&mut self, cluster: &mut Cluster) -> SimResult<()> {
        match self.engine {
            EngineKind::Regular => {
                self.start_regular(cluster);
                Ok(())
            }
            EngineKind::Itask => self.start_itask(cluster),
        }
    }

    fn pump(&mut self, cluster: &mut Cluster) -> SimResult<bool> {
        // Tick this job's controllers (activation, interrupts, growth).
        for n in 0..self.irss.len() {
            let node = NodeId(n as u32);
            if cluster.sim(node).is_crashed() || self.irss[n].is_idle() {
                continue;
            }
            let sim = cluster.sim(node);
            self.irss[n].tick(sim)?;
        }
        if !self.phase_quiesced(cluster) {
            return Ok(false);
        }
        match self.phase {
            Phase::Map => {
                self.enter_reduce(cluster)?;
                // A degenerate job may shuffle nothing; settle next pump.
                Ok(false)
            }
            Phase::Reduce => {
                self.finish();
                Ok(true)
            }
            Phase::Done => Ok(true),
        }
    }

    fn on_node_crash(&mut self, cluster: &mut Cluster, node: NodeId) -> SimResult<()> {
        if self.phase == Phase::Done {
            return Ok(());
        }
        if self.engine == EngineKind::Regular {
            // No recovery plane: the phase's operator state died with
            // the node (exactly like the single-job engine).
            return Err(SimError::NodeLost { node });
        }
        if self.irss.is_empty() {
            return Ok(());
        }
        // Re-home the dead node's queued partitions onto the survivors.
        let live = cluster.live_nodes();
        self.rehome_queue(cluster, node, &live, false)?;
        Ok(())
    }

    fn drain_node(
        &mut self,
        cluster: &mut Cluster,
        node: NodeId,
        targets: &[NodeId],
    ) -> SimResult<usize> {
        if self.phase == Phase::Done || self.engine == EngineKind::Regular {
            // Regular jobs pin phase state to threads already running on
            // the node; there is no queue to evacuate.
            return Ok(0);
        }
        self.rehome_queue(cluster, node, targets, true)
    }

    fn deflate(&mut self) {
        for irs in &self.irss {
            irs.request_reduce(ByteSize::ZERO);
        }
    }

    fn teardown(&mut self, cluster: &mut Cluster) {
        for n in 0..cluster.node_count() {
            let sim = cluster.sim(NodeId(n as u32));
            sim.kill_scope(self.scope);
            sim.node_mut().heap.release_scope(self.scope);
        }
        self.irss.clear();
        self.map_sinks.clear();
        self.reduce_sinks.clear();
    }

    fn memory_signal(&self) -> MemSignal {
        if self.irss.is_empty() {
            // Regular jobs (and phase transitions) have no monitor: the
            // trait contract is Steady, not "room to grow".
            return MemSignal::Steady;
        }
        let mut worst = MemSignal::Grow;
        for irs in &self.irss {
            match irs.memory_signal() {
                MemSignal::Reduce => return MemSignal::Reduce,
                MemSignal::Steady => worst = MemSignal::Steady,
                MemSignal::Grow => {}
            }
        }
        worst
    }

    fn output_count(&self) -> Option<u64> {
        self.outputs
    }

    fn scope(&self) -> u64 {
        self.scope
    }
}

/// Runs every salvaged worker body of a crashed node through the
/// post-mortem interrupt path (flush state, requeue remainders into the
/// worker's own IRS queue). Job-agnostic: each [`ItaskWorker`] holds a
/// handle to its owning controller, so salvage works before the service
/// even knows which jobs were hit.
pub fn salvage_crashed_workers(
    cluster: &mut Cluster,
    node: NodeId,
    salvaged: Vec<Box<dyn simcluster::Work>>,
) -> SimResult<()> {
    let sim = cluster.sim(node);
    let mut cx = WorkCx::detached(sim.node_mut(), SimDuration::ZERO);
    for mut work in salvaged {
        if let Some(any) = work.as_any_mut() {
            if let Some(worker) = any.downcast_mut::<ItaskWorker>() {
                worker.crash_salvage(&mut cx)?;
            }
        }
    }
    Ok(())
}

/// One node's phase-1 output: `(bucket, tuples)` batches.
type BucketedFrames<T> = Vec<(u32, Vec<T>)>;

/// Routes one job's bucketed phase-1 outputs to their destination
/// nodes. Identical routing to the engine's shuffle, but instead of a
/// cluster-wide barrier the wire time delays only the receiving nodes —
/// other jobs' clocks are untouched.
fn service_shuffle<T: Tuple>(
    cluster: &mut Cluster,
    outputs: Vec<(NodeId, BucketedFrames<T>)>,
) -> SimResult<Vec<BTreeMap<u32, Vec<T>>>> {
    let nodes = cluster.node_count();
    let live = cluster.live_nodes();
    let now = SimTime::ZERO + cluster.elapsed();
    let mut per_node: Vec<BTreeMap<u32, Vec<T>>> = (0..nodes).map(|_| BTreeMap::new()).collect();
    let mut dst_wire: BTreeMap<NodeId, SimDuration> = BTreeMap::new();
    for (src, batches) in outputs {
        let src = if live.contains(&src) {
            src
        } else {
            *live.first().ok_or(SimError::NodeLost { node: src })?
        };
        for (bucket, tuples) in batches {
            let dst = live[bucket as usize % live.len()];
            let bytes = ByteSize(tuples.iter().map(Tuple::ser_bytes).sum());
            let wire = cluster.fabric().transfer_at(src, dst, bytes, now)?;
            let slot = dst_wire.entry(dst).or_insert(SimDuration::ZERO);
            *slot = (*slot).max(wire);
            per_node[dst.as_usize()]
                .entry(bucket)
                .or_default()
                .extend(tuples);
        }
    }
    for (dst, wire) in dst_wire {
        cluster.sim(dst).node_mut().now += wire;
    }
    Ok(per_node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{dataset_blocks, JobKind};
    use simcluster::ClusterConfig;

    /// The window the service's crash-transition reporting must cover:
    /// a node that dies holding *only queued partitions* (offered by
    /// `start`/`enter_reduce`, workers not yet spawned by a pump tick)
    /// salvages nothing, yet `on_node_crash` must still re-home every
    /// one of them — abandoning the queue would let the job quiesce
    /// over the survivors and complete with partial output.
    #[test]
    fn on_node_crash_rehomes_queued_partitions_before_workers_spawn() {
        let mut cluster = Cluster::new(ClusterConfig {
            nodes: 4,
            ..ClusterConfig::default()
        });
        let blocks = dataset_blocks(JobKind::DegreeCount, 77, ByteSize::kib(8));
        assert!(blocks.len() >= 4, "need input on every node");
        let mut inputs: Vec<Vec<Vec<workloads::webmap::AdjRecord>>> =
            (0..4).map(|_| Vec::new()).collect();
        for (i, b) in blocks.into_iter().enumerate() {
            inputs[i % 4].push(b);
        }
        let params = JobParams {
            threads: 2,
            max_parallelism: 2,
            granularity: ByteSize::kib(8),
            buckets: 16,
        };
        let mut job = TwoPhaseJob::new(
            JobKind::degree_count_query(),
            EngineKind::Itask,
            1,
            params,
            inputs,
        );
        job.start(&mut cluster).unwrap();

        let dead = NodeId(1);
        let queued_before = job.irss[dead.as_usize()].queued();
        assert!(
            queued_before > 0,
            "offers must be queued on the doomed node"
        );
        assert_eq!(cluster.sim(dead).live_count(), 0, "no workers spawned yet");

        let salvaged = cluster.sim(dead).crash();
        assert!(salvaged.is_empty(), "queued-only node salvages nothing");
        job.on_node_crash(&mut cluster, dead).unwrap();

        assert_eq!(job.irss[dead.as_usize()].queued(), 0, "dead queue drained");
        let rehomed: u64 = job
            .irss
            .iter()
            .map(|irs| irs.stats().crash_requeued_partitions)
            .sum();
        assert_eq!(
            rehomed as usize, queued_before,
            "every queued partition must land on a survivor"
        );
    }

    /// Quarantine drain: the node is *alive* but being taken out of
    /// rotation, so `drain_node` must evacuate its queue onto the given
    /// targets without the node crashing — and without routing any
    /// partition back to the drained node.
    #[test]
    fn drain_node_evacuates_a_live_node_onto_targets() {
        let mut cluster = Cluster::new(ClusterConfig {
            nodes: 4,
            ..ClusterConfig::default()
        });
        let blocks = dataset_blocks(JobKind::DegreeCount, 77, ByteSize::kib(8));
        let mut inputs: Vec<Vec<Vec<workloads::webmap::AdjRecord>>> =
            (0..4).map(|_| Vec::new()).collect();
        for (i, b) in blocks.into_iter().enumerate() {
            inputs[i % 4].push(b);
        }
        let params = JobParams {
            threads: 2,
            max_parallelism: 2,
            granularity: ByteSize::kib(8),
            buckets: 16,
        };
        let mut job = TwoPhaseJob::new(
            JobKind::degree_count_query(),
            EngineKind::Itask,
            1,
            params,
            inputs,
        );
        job.start(&mut cluster).unwrap();

        let drained = NodeId(2);
        let queued_before = job.irss[drained.as_usize()].queued();
        assert!(queued_before > 0, "offers must be queued on the node");
        let targets: Vec<NodeId> = cluster
            .live_nodes()
            .into_iter()
            .filter(|&n| n != drained)
            .collect();
        let moved = job.drain_node(&mut cluster, drained, &targets).unwrap();
        assert_eq!(moved, queued_before, "whole queue evacuated");
        assert_eq!(job.irss[drained.as_usize()].queued(), 0);
        assert!(
            !cluster.sim(drained).is_crashed(),
            "drain must not kill the node"
        );
        // Draining an already-empty node is a no-op, not an error.
        assert_eq!(job.drain_node(&mut cluster, drained, &targets).unwrap(), 0);
    }
}
