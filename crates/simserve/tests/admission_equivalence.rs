//! Property test pinning the indexed O(log n) admission controller to
//! the retained naive O(n) reference (`admission::reference`).
//!
//! The indexed controller's whole claim is *bit-for-bit* agreement:
//! same pop sequence (vtime ties broken by lowest tenant id, FIFO by
//! enqueue stamp), same queue census, same shed *set*. Random schedules
//! of arrivals, pops (under random cluster views), served credits,
//! requeues, backed-off retries, and clock advances must never make the
//! two controllers diverge.
//!
//! The one sanctioned difference: expiry *order* within a single
//! `release_due`/`next` call. The naive scan sheds tenant-major; the
//! index sheds in (deadline, stamp) order. The shed *sets* are equal,
//! and nothing downstream depends on intra-call order (the service
//! counts sheds per tenant), so sheds compare as sorted multisets.

use proptest::prelude::*;
use simcore::{SimDuration, SimTime};
use simserve::admission::reference::NaiveController;
use simserve::admission::{AdmissionConfig, AdmissionController, ClusterView};
use simserve::workload::{Arrival, JobKind, WeightRule};
use simserve::{PolicyKind, ShedRecord};

const TENANTS: u32 = 8;

#[derive(Clone, Debug)]
enum Op {
    /// Enqueue a fresh arrival for `tenant` with an optional deadline
    /// `deadline_us` after the current clock.
    Arrive {
        tenant: u32,
        kind: u8,
        deadline_us: Option<u64>,
    },
    /// Pop once under a random cluster view.
    Pop {
        active: usize,
        free_pct: u8,
        reduce: bool,
    },
    /// Pop once, then requeue the popped job (the retry path) either
    /// immediately or with a backoff delay.
    PopAndRequeue { delay_us: u64 },
    /// Credit served time to a tenant (weighted-fair vtime movement).
    Credit { tenant: u32, busy: u64 },
    /// Advance the virtual clock (expires deadlines, releases retries).
    Advance { us: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..TENANTS, 0u8..3, prop_oneof![
            2 => Just(None),
            3 => (1u64..5_000).prop_map(Some)
        ])
            .prop_map(|(tenant, kind, deadline_us)| Op::Arrive {
                tenant,
                kind,
                deadline_us,
            }),
        3 => (0usize..6, 0u8..=100, any::<bool>()).prop_map(|(active, free_pct, reduce)| {
            Op::Pop {
                active,
                free_pct,
                reduce,
            }
        }),
        1 => (0u64..3_000).prop_map(|delay_us| Op::PopAndRequeue { delay_us }),
        2 => (0..TENANTS, 1u64..1_000_000).prop_map(|(tenant, busy)| Op::Credit { tenant, busy }),
        2 => (1u64..4_000).prop_map(|us| Op::Advance { us }),
    ]
}

fn config_strategy() -> impl Strategy<Value = AdmissionConfig> {
    (
        prop_oneof![
            Just(PolicyKind::Fifo),
            Just(PolicyKind::WeightedFair),
            Just(PolicyKind::MemoryAware)
        ],
        1usize..6,
        prop_oneof![
            1 => Just(None),
            1 => (1usize..4).prop_map(Some)
        ],
    )
        .prop_map(|(policy, max_active, queue_cap)| AdmissionConfig {
            policy,
            max_active,
            min_free_ratio: 0.35,
            queue_cap,
        })
}

fn kind_of(k: u8) -> JobKind {
    match k % 3 {
        0 => JobKind::DegreeCount,
        1 => JobKind::WordCount,
        _ => JobKind::LinkCollect,
    }
}

/// Sheds compare as sorted multisets: same decisions, order within one
/// call unspecified (see module docs).
fn shed_key(s: &ShedRecord) -> (u64, u32, u32, &'static str) {
    (s.at.as_nanos(), s.tenant, s.seq, s.reason.label())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn indexed_controller_matches_naive_reference(
        cfg in config_strategy(),
        rule in prop_oneof![
            Just(WeightRule::uniform()),
            (2u32..5, 2u64..16).prop_map(|(premium_every, premium_weight)| WeightRule {
                premium_every,
                premium_weight,
            })
        ],
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        let mut fast = AdmissionController::with_weight_rule(cfg, rule);
        let mut slow = NaiveController::with_weight_rule(cfg, rule);
        let mut now = SimTime::ZERO;
        let mut seqs = [0u32; TENANTS as usize];

        for op in ops {
            match op {
                Op::Arrive { tenant, kind, deadline_us } => {
                    let seq = seqs[tenant as usize];
                    seqs[tenant as usize] += 1;
                    let a = Arrival {
                        at: now,
                        tenant,
                        seq,
                        kind: kind_of(kind),
                        dataset_seed: u64::from(tenant) << 32 | u64::from(seq),
                        deadline: deadline_us.map(|us| now + SimDuration::from_micros(us)),
                    };
                    fast.enqueue_arrival(&a, now);
                    slow.enqueue_arrival(&a, now);
                }
                Op::Pop { active, free_pct, reduce } => {
                    let view = ClusterView {
                        active,
                        min_free_ratio: f64::from(free_pct) / 100.0,
                        any_reduce_signal: reduce,
                        now,
                    };
                    let a = fast.next(view);
                    let b = slow.next(view);
                    prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
                }
                Op::PopAndRequeue { delay_us } => {
                    let view = ClusterView {
                        active: 0,
                        min_free_ratio: 1.0,
                        any_reduce_signal: false,
                        now,
                    };
                    let a = fast.next(view);
                    let b = slow.next(view);
                    prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
                    if let (Some(a), Some(b)) = (a, b) {
                        if delay_us == 0 {
                            fast.requeue(a, now);
                            slow.requeue(b, now);
                        } else {
                            let d = SimDuration::from_micros(delay_us);
                            fast.requeue_after(a, now, d);
                            slow.requeue_after(b, now, d);
                        }
                    }
                }
                Op::Credit { tenant, busy } => {
                    fast.credit_served(tenant, busy);
                    slow.credit_served(tenant, busy);
                }
                Op::Advance { us } => {
                    now += SimDuration::from_micros(us);
                    fast.release_due(now);
                    slow.release_due(now);
                }
            }
            // Census must agree after every single op.
            prop_assert_eq!(fast.queued(), slow.queued());
            prop_assert_eq!(fast.pending_delayed(), slow.pending_delayed());
            prop_assert_eq!(fast.queued_tenants(), slow.queued_tenants());
            prop_assert_eq!(fast.next_release(), slow.next_release());
        }

        // Shed decisions agree as multisets (expiry order inside one
        // call is the sanctioned difference).
        let mut fast_sheds = fast.take_shed();
        let mut slow_sheds = slow.take_shed();
        fast_sheds.sort_by_key(shed_key);
        slow_sheds.sort_by_key(shed_key);
        prop_assert_eq!(
            fast_sheds.iter().map(shed_key).collect::<Vec<_>>(),
            slow_sheds.iter().map(shed_key).collect::<Vec<_>>()
        );

        // Drain both to empty: the tail order must match exactly too.
        loop {
            let view = ClusterView {
                active: 0,
                min_free_ratio: 1.0,
                any_reduce_signal: false,
                now,
            };
            let a = fast.next(view);
            let b = slow.next(view);
            prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
            if a.is_none() {
                break;
            }
        }
        prop_assert_eq!(fast.queued(), 0);
        prop_assert_eq!(slow.queued(), 0);
    }
}
