//! Property tests pinning `QuantileSketch` against exact sorted
//! quantiles.
//!
//! The service's byte-identical latency tables depend on the sketch
//! being (a) exact while samples fit in one level-0 buffer and (b) a
//! bounded-rank-error summary once compaction kicks in. Both are
//! checked here against brute-force order statistics, as is the merge
//! path the per-tenant aggregation uses.

use proptest::prelude::*;
use simserve::sketch::QuantileSketch;

/// Exact order statistic matching `QuantileSketch::quantile`'s rank
/// convention: rank `ceil(q*n)` clamped to `[1, n]`, 1-indexed.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let target = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(target - 1) as usize]
}

/// Rank distance of `got` from the target rank of `q` in `sorted`:
/// zero when `got` occupies a position covering the target rank,
/// otherwise how many ranks off the nearest occurrence is.
fn rank_error(sorted: &[u64], q: f64, got: u64) -> u64 {
    let n = sorted.len() as u64;
    let target = ((q * n as f64).ceil() as u64).clamp(1, n);
    // Ranks occupied by `got`: (lo, hi] in 1-indexed terms.
    let lo = sorted.partition_point(|&v| v < got) as u64;
    let hi = sorted.partition_point(|&v| v <= got) as u64;
    if target <= lo {
        lo + 1 - target
    } else if target > hi {
        target - hi.max(1)
    } else {
        0
    }
}

const QS: [f64; 3] = [0.5, 0.9, 0.99];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Below one buffer's capacity nothing compacts, so every quantile
    /// is an exact order statistic.
    #[test]
    fn exact_while_uncompacted(samples in proptest::collection::vec(0u64..1_000_000, 1..400)) {
        let mut s = QuantileSketch::new(512);
        for &v in &samples {
            s.insert(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        prop_assert_eq!(s.count(), samples.len() as u64);
        prop_assert_eq!(s.min(), sorted[0]);
        prop_assert_eq!(s.max(), *sorted.last().unwrap());
        for q in QS {
            prop_assert_eq!(s.quantile(q), exact_quantile(&sorted, q));
        }
    }

    /// Past capacity the sketch compacts; p50/p90/p99 must stay within
    /// a 10%-of-n rank window of the true order statistic, and
    /// count/min/max stay exact (they never go through compaction).
    #[test]
    fn compacted_rank_error_is_bounded(
        samples in proptest::collection::vec(0u64..1_000_000, 200..3_000),
    ) {
        let mut s = QuantileSketch::new(64);
        for &v in &samples {
            s.insert(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let n = sorted.len() as u64;
        prop_assert_eq!(s.count(), n);
        prop_assert_eq!(s.min(), sorted[0]);
        prop_assert_eq!(s.max(), *sorted.last().unwrap());
        let tolerance = (n / 10).max(2);
        for q in QS {
            let got = s.quantile(q);
            let err = rank_error(&sorted, q, got);
            prop_assert!(
                err <= tolerance,
                "q={}: got {} is {} ranks off (n={}, tolerance {})",
                q, got, err, n, tolerance
            );
        }
    }

    /// Merging two sketches must answer like a sketch of the
    /// concatenated stream: count/min/max exactly, quantiles within the
    /// same rank window measured against the exact concatenation.
    #[test]
    fn merge_matches_concatenated_stream(
        left in proptest::collection::vec(0u64..1_000_000, 1..1_500),
        right in proptest::collection::vec(0u64..1_000_000, 1..1_500),
    ) {
        let mut a = QuantileSketch::new(64);
        for &v in &left {
            a.insert(v);
        }
        let mut b = QuantileSketch::new(64);
        for &v in &right {
            b.insert(v);
        }
        a.merge(&b);

        let mut sorted: Vec<u64> = left.iter().chain(right.iter()).copied().collect();
        sorted.sort_unstable();
        let n = sorted.len() as u64;
        prop_assert_eq!(a.count(), n);
        prop_assert_eq!(a.min(), sorted[0]);
        prop_assert_eq!(a.max(), *sorted.last().unwrap());
        let tolerance = (n / 10).max(2);
        for q in QS {
            let got = a.quantile(q);
            let err = rank_error(&sorted, q, got);
            prop_assert!(
                err <= tolerance,
                "q={}: merged {} is {} ranks off (n={}, tolerance {})",
                q, got, err, n, tolerance
            );
        }
    }

    /// Merging an empty sketch is the identity, in either direction.
    #[test]
    fn merge_with_empty_is_identity(
        samples in proptest::collection::vec(0u64..1_000_000, 1..500),
    ) {
        let mut s = QuantileSketch::new(64);
        for &v in &samples {
            s.insert(v);
        }
        let before: Vec<u64> = QS.iter().map(|&q| s.quantile(q)).collect();

        s.merge(&QuantileSketch::new(64));
        let after: Vec<u64> = QS.iter().map(|&q| s.quantile(q)).collect();
        prop_assert_eq!(&before, &after);
        prop_assert_eq!(s.count(), samples.len() as u64);

        let mut empty = QuantileSketch::new(64);
        empty.merge(&s);
        prop_assert_eq!(empty.count(), s.count());
        prop_assert_eq!(empty.min(), s.min());
        prop_assert_eq!(empty.max(), s.max());
    }
}

/// The scale service's accounting shape at 10^5 samples: samples land
/// round-robin in per-shard sketches which merge in shard order. The
/// merged summary must agree with an unsharded sketch of the same
/// stream — count/min/max exactly, quantiles within the compaction
/// rank window of the true order statistics — and re-merging the same
/// shards must be deterministic. (Byte-equality with the unsharded
/// sketch is *not* claimed: compaction points differ.)
#[test]
fn shard_merge_matches_unsharded_at_1e5_samples() {
    const N: u64 = 100_000;
    const SHARDS: usize = 4;

    // Deterministic splitmix64 stream, values spread over ~1e6.
    let sample = |i: u64| {
        let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) % 1_000_000
    };

    let merged_of = || {
        let mut shards = vec![QuantileSketch::default(); SHARDS];
        for i in 0..N {
            shards[(i % SHARDS as u64) as usize].insert(sample(i));
        }
        let mut merged = QuantileSketch::default();
        for s in &shards {
            merged.merge(s);
        }
        merged
    };
    let merged = merged_of();

    let mut unsharded = QuantileSketch::default();
    let mut sorted = Vec::with_capacity(N as usize);
    for i in 0..N {
        unsharded.insert(sample(i));
        sorted.push(sample(i));
    }
    sorted.sort_unstable();

    assert_eq!(merged.count(), N);
    assert_eq!(merged.count(), unsharded.count());
    assert_eq!(merged.min(), unsharded.min());
    assert_eq!(merged.max(), unsharded.max());
    assert_eq!(merged.min(), sorted[0]);
    assert_eq!(merged.max(), *sorted.last().unwrap());

    let tolerance = N / 10;
    for q in QS {
        for (label, got) in [
            ("merged", merged.quantile(q)),
            ("unsharded", unsharded.quantile(q)),
        ] {
            let err = rank_error(&sorted, q, got);
            assert!(
                err <= tolerance,
                "q={q}: {label} {got} is {err} ranks off (n={N}, tolerance {tolerance})"
            );
        }
    }

    // Same shards, same merge order: identical answers every time.
    let again = merged_of();
    assert_eq!(again.count(), merged.count());
    for q in QS {
        assert_eq!(
            again.quantile(q),
            merged.quantile(q),
            "re-merge diverged at q={q}"
        );
    }
}
