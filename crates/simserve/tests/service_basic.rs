//! End-to-end service runs on both engines: jobs complete, SLOs are
//! accounted, and the two engines agree on the answers.

use simcore::SimDuration;
use simserve::{EngineKind, Service, ServiceConfig};

fn run(engine: EngineKind, tenants: u32, seed: u64) -> simserve::ServiceReport {
    Service::new(ServiceConfig::standard(engine, tenants, seed)).run()
}

#[test]
fn single_tenant_completes_everything_on_both_engines() {
    let reg = run(EngineKind::Regular, 1, 11);
    let it = run(EngineKind::Itask, 1, 11);
    for (name, r) in [("regular", &reg), ("itask", &it)] {
        let submitted = r.total(|t| t.submitted);
        let completed = r.total(|t| t.completed);
        assert!(submitted > 0, "{name}: no arrivals generated");
        assert_eq!(
            completed,
            submitted,
            "{name}: {completed}/{submitted} completed (failed {}, omes {})",
            r.total(|t| t.failed),
            r.total(|t| t.omes),
        );
        assert!(r.total_outputs > 0, "{name}: no outputs");
        assert!(r.elapsed > SimDuration::ZERO);
    }
    // Same seed, same arrival schedule, same datasets: the two engines
    // must compute the same answers.
    assert_eq!(reg.total_outputs, it.total_outputs);
}

#[test]
fn slo_sketches_record_every_completion() {
    let r = run(EngineKind::Itask, 2, 23);
    for (tenant, slo) in &r.tenants {
        assert_eq!(
            slo.latency.count(),
            slo.completed,
            "tenant {tenant}: latency samples != completions"
        );
        assert_eq!(
            slo.queue_wait.count(),
            slo.completed + slo.failed + slo.retries,
            "tenant {tenant}: queue-wait samples != admissions"
        );
        if slo.completed > 0 {
            assert!(slo.latency.quantile(0.5) > 0);
            assert!(slo.latency.quantile(0.99) >= slo.latency.quantile(0.5));
        }
    }
}
