//! Chaos under multi-tenancy: deterministic node crashes and disk
//! faults composed with concurrent tenant load.
//!
//! The single-job chaos suite (`itask-bench`'s `faults` binary) shows
//! one ITask job surviving a crash; here the crash lands under
//! co-located load, so salvage and re-homing must interleave with other
//! jobs' scheduling rounds without corrupting anyone's accounting.

use simcore::{FaultPlan, NodeId, SimDuration, SimTime};
use simserve::{EngineKind, Service, ServiceConfig};

fn chaos_config(engine: EngineKind, seed: u64) -> ServiceConfig {
    let mut cfg = ServiceConfig::standard(engine, 3, seed);
    // One node dies mid-run, plus transient disk trouble throughout.
    cfg.fault_plan = Some(
        FaultPlan::new(5)
            .with_disk_transients(15)
            .with_crash(NodeId(1), SimTime::ZERO + SimDuration::from_millis(15)),
    );
    cfg
}

#[test]
fn itask_service_survives_a_node_crash_under_load() {
    let r = Service::new(chaos_config(EngineKind::Itask, 42)).run();
    let submitted = r.total(|t| t.submitted);
    let completed = r.total(|t| t.completed);
    assert!(submitted > 0);
    assert_eq!(
        completed,
        submitted,
        "itask service dropped jobs under chaos (failed {}, omes {})",
        r.total(|t| t.failed),
        r.total(|t| t.omes),
    );
    assert!(r.total_outputs > 0);
}

#[test]
fn regular_service_loses_in_flight_jobs_but_recovers_via_retry() {
    let r = Service::new(chaos_config(EngineKind::Regular, 42)).run();
    let submitted = r.total(|t| t.submitted);
    // Jobs in flight on the crashed node die with NodeLost and are
    // requeued onto the survivors; the service itself must not wedge.
    assert_eq!(
        r.total(|t| t.completed) + r.total(|t| t.failed),
        submitted,
        "every submission must settle"
    );
    assert!(
        r.total(|t| t.completed) > 0,
        "survivors must keep completing work"
    );
}

#[test]
fn chaos_runs_are_deterministic() {
    let run = |engine| {
        let r = Service::new(chaos_config(engine, 42)).run();
        (r.summary_cells(), r.elapsed, r.total_outputs, r.rounds)
    };
    assert_eq!(run(EngineKind::Itask), run(EngineKind::Itask));
    assert_eq!(run(EngineKind::Regular), run(EngineKind::Regular));
}
