//! Release-mode scale smoke: the indexed admission controller at 10^6
//! tenants.
//!
//! Complements the micro-benchmarks (which measure per-op latency) with
//! a hard wall-clock ceiling in CI: one million enqueue/pop/credit
//! cycles through the weighted-fair path must complete in seconds, not
//! the hours the old O(n)-scan controller would need at this
//! population. Skipped in debug builds (the golden suite's pattern):
//! unoptimized BTree traffic is ~20x slower and would only measure the
//! compiler, not the structure.

use std::time::Instant;

use simcore::{SimDuration, SimTime};
use simserve::admission::{AdmissionConfig, AdmissionController, ClusterView};
use simserve::workload::{Arrival, JobKind, WeightRule};
use simserve::PolicyKind;

const TENANTS: u32 = 1_000_000;
/// Generous CI ceiling; a healthy run takes well under 10s in release.
const CEILING_SECS: u64 = 60;

#[test]
fn million_tenant_enqueue_pop_cycles_within_wall_clock_ceiling() {
    if cfg!(debug_assertions) {
        eprintln!("skipping million-tenant smoke in debug build");
        return;
    }
    let started = Instant::now();
    let cfg = AdmissionConfig {
        policy: PolicyKind::WeightedFair,
        max_active: usize::MAX,
        ..AdmissionConfig::default()
    };
    let rule = WeightRule {
        premium_every: 10,
        premium_weight: 8,
    };
    let mut ctl = AdmissionController::with_weight_rule(cfg, rule);

    // Enqueue one job per tenant: 10^6 live index entries.
    for tenant in 0..TENANTS {
        let at = SimTime::from_nanos(u64::from(tenant));
        ctl.enqueue_arrival(
            &Arrival {
                at,
                tenant,
                seq: 0,
                kind: JobKind::DegreeCount,
                dataset_seed: u64::from(tenant),
                deadline: None,
            },
            at,
        );
    }
    assert_eq!(ctl.queued(), TENANTS as usize);

    // Pop/credit/requeue churn against the full population, then drain
    // everything. Every pop is a fair-index first() + re-key; every
    // requeue re-enters the indexes.
    let now = SimTime::from_nanos(u64::from(TENANTS));
    let view = ClusterView {
        active: 0,
        min_free_ratio: 1.0,
        any_reduce_signal: false,
        now,
    };
    let mut popped = 0u64;
    for i in 0..200_000u64 {
        let job = ctl.next(view).expect("population never empties here");
        ctl.credit_served(job.tenant, 1_000 + i % 7);
        popped += 1;
        if i % 4 == 0 {
            ctl.requeue(job, now);
        }
    }
    while ctl.next(view).is_some() {
        popped += 1;
    }
    assert_eq!(ctl.queued(), 0);
    // 1e6 enqueued + 50k requeued, all popped exactly once each.
    assert_eq!(popped, u64::from(TENANTS) + 50_000);

    // Expiry at scale: refill with deadlines and shed the lot through
    // the deadline index.
    for tenant in 0..TENANTS {
        let at = now + SimDuration::from_nanos(u64::from(tenant));
        ctl.enqueue_arrival(
            &Arrival {
                at,
                tenant,
                seq: 1,
                kind: JobKind::WordCount,
                dataset_seed: u64::from(tenant),
                deadline: Some(at + SimDuration::from_micros(1)),
            },
            at,
        );
    }
    // Expiry is enforced at pop: one `next` call past every deadline
    // sheds the entire population through the deadline index.
    let later = now + SimDuration::from_secs(1);
    let none = ctl.next(ClusterView { now: later, ..view });
    assert!(none.is_none(), "every queued job is past its deadline");
    assert_eq!(ctl.queued(), 0, "all deadline-carrying jobs must expire");
    assert_eq!(ctl.take_shed().len(), TENANTS as usize);

    let elapsed = started.elapsed();
    assert!(
        elapsed.as_secs() < CEILING_SECS,
        "million-tenant churn took {elapsed:?} (ceiling {CEILING_SECS}s): \
         admission is no longer O(log n) per decision"
    );
    eprintln!("million-tenant smoke: {elapsed:?}");
}
