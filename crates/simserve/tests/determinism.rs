//! The service's determinism contract: a `(config, seed)` pair fully
//! determines the report — byte-identical table cells across repeated
//! runs, regardless of host state. (Cross-`--jobs` invariance of the
//! bench binary is checked in CI by diffing `--jobs 1` vs `--jobs 2`
//! output; each cell here is one single-threaded virtual-time world, so
//! the same property reduces to run-to-run stability.)

use simserve::{EngineKind, PolicyKind, Service, ServiceConfig};

fn cells(engine: EngineKind, tenants: u32, seed: u64, policy: PolicyKind) -> Vec<String> {
    let mut cfg = ServiceConfig::standard(engine, tenants, seed);
    cfg.admission.policy = policy;
    Service::new(cfg).run().summary_cells()
}

#[test]
fn repeated_runs_are_byte_identical() {
    for engine in [EngineKind::Regular, EngineKind::Itask] {
        for policy in [
            PolicyKind::Fifo,
            PolicyKind::WeightedFair,
            PolicyKind::MemoryAware,
        ] {
            let a = cells(engine, 3, 42, policy);
            let b = cells(engine, 3, 42, policy);
            assert_eq!(a, b, "{} {policy:?} run not reproducible", engine.label());
        }
    }
}

#[test]
fn different_seeds_change_the_schedule_not_the_invariants() {
    let a = cells(EngineKind::Itask, 2, 1, PolicyKind::Fifo);
    let b = cells(EngineKind::Itask, 2, 2, PolicyKind::Fifo);
    // Different seeds yield different workloads (latencies virtually
    // never collide)...
    assert_ne!(a, b);
    // ...but ITask still completes everything under either.
    for (seed, c) in [(1, &a), (2, &b)] {
        let (done, sub) = c[0].split_once('/').expect("done/submitted cell");
        assert_eq!(done, sub, "seed {seed}: itask dropped jobs: {c:?}");
        assert_eq!(c[1], "0", "seed {seed}: itask OMEd: {c:?}");
    }
}

#[test]
fn full_report_state_is_reproducible() {
    let run = || {
        let r = Service::new(ServiceConfig::standard(EngineKind::Regular, 4, 7)).run();
        let per_tenant: Vec<_> = r
            .tenants
            .iter()
            .map(|(id, t)| {
                (
                    *id,
                    t.submitted,
                    t.completed,
                    t.failed,
                    t.omes,
                    t.retries,
                    t.latency.quantile(0.5),
                    t.queue_wait.quantile(0.95),
                )
            })
            .collect();
        (per_tenant, r.elapsed, r.total_outputs, r.rounds)
    };
    assert_eq!(run(), run());
}
