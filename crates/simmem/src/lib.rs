#![warn(missing_docs)]

//! A simulated managed heap with a generational stop-the-world collector.
//!
//! This crate is the substitute for the paper's JVM (see DESIGN.md §1).
//! Rust frees memory deterministically, so the phenomena the paper is
//! built around — garbage lingering until a collection runs, full-GC
//! pauses proportional to the live set, "long and useless" GCs (LUGC),
//! catchable out-of-memory errors — do not exist natively. [`Heap`]
//! recreates them as an explicit state machine:
//!
//! * allocations are grouped into [`space::SpaceInfo`]s (a task's local
//!   structures, a partition's deserialized form, an output buffer) that
//!   live and die together, mirroring how the ITask runtime reasons about
//!   a task's memory components (Figure 1 of the paper);
//! * *freeing* bytes only turns them into garbage — the heap stays full
//!   until a collection actually runs, which is exactly why ITask's
//!   interrupt-then-collect dance is needed;
//! * minor collections evacuate the young generation (cost ∝ survivors),
//!   full collections trace the whole live set (cost ∝ live + used);
//! * a full collection that cannot push free memory above `M%` of capacity
//!   is flagged useless ([`GcRecord::useless`]) — the LUGC signal the
//!   ITask monitor consumes;
//! * an allocation that still does not fit after a full collection fails
//!   with [`HeapError::OutOfMemory`], the simulation's OME.

pub mod gc;
pub mod heap;
pub mod space;

pub use gc::{GcKind, GcRecord, GcStats};
pub use heap::{AllocOutcome, Heap, HeapConfig, HeapCounters, HeapError};
pub use space::SpaceInfo;
