//! Collection records and aggregate GC statistics.

use simcore::{ByteSize, SimDuration, SimTime};

/// Which collector ran.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GcKind {
    /// Young-generation evacuation.
    Minor,
    /// Whole-heap mark/sweep/compact.
    Full,
}

/// One stop-the-world collection, as observed by the monitor.
#[derive(Clone, Debug)]
pub struct GcRecord {
    /// When the collection finished (pause already included by the caller).
    pub at: SimTime,
    /// Minor or full.
    pub kind: GcKind,
    /// Used bytes before the collection.
    pub used_before: ByteSize,
    /// Used bytes after the collection.
    pub used_after: ByteSize,
    /// Free bytes after the collection.
    pub free_after: ByteSize,
    /// Stop-the-world pause length.
    pub pause: SimDuration,
    /// A *long and useless* GC: a full collection that failed to raise
    /// free memory above the configured `M%` of capacity (paper §5.2).
    pub useless: bool,
}

impl GcRecord {
    /// Bytes reclaimed by this collection.
    pub fn reclaimed(&self) -> ByteSize {
        self.used_before.saturating_sub(self.used_after)
    }
}

/// Aggregate collector statistics for one heap.
#[derive(Clone, Debug, Default)]
pub struct GcStats {
    /// Number of minor collections.
    pub minor_count: u64,
    /// Number of full collections.
    pub full_count: u64,
    /// Number of collections flagged useless (LUGCs).
    pub useless_count: u64,
    /// Total stop-the-world pause time.
    pub total_pause: SimDuration,
    /// Total bytes reclaimed across all collections.
    pub total_reclaimed: ByteSize,
}

impl GcStats {
    pub(crate) fn absorb(&mut self, rec: &GcRecord) {
        match rec.kind {
            GcKind::Minor => self.minor_count += 1,
            GcKind::Full => self.full_count += 1,
        }
        if rec.useless {
            self.useless_count += 1;
        }
        self.total_pause += rec.pause;
        self.total_reclaimed += rec.reclaimed();
    }

    /// Total number of collections.
    pub fn count(&self) -> u64 {
        self.minor_count + self.full_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_absorb_records() {
        let mut stats = GcStats::default();
        stats.absorb(&GcRecord {
            at: SimTime::ZERO,
            kind: GcKind::Minor,
            used_before: ByteSize(100),
            used_after: ByteSize(40),
            free_after: ByteSize(60),
            pause: SimDuration::from_micros(50),
            useless: false,
        });
        stats.absorb(&GcRecord {
            at: SimTime::ZERO,
            kind: GcKind::Full,
            used_before: ByteSize(90),
            used_after: ByteSize(85),
            free_after: ByteSize(15),
            pause: SimDuration::from_millis(2),
            useless: true,
        });
        assert_eq!(stats.minor_count, 1);
        assert_eq!(stats.full_count, 1);
        assert_eq!(stats.useless_count, 1);
        assert_eq!(stats.count(), 2);
        assert_eq!(stats.total_reclaimed, ByteSize(65));
        assert_eq!(
            stats.total_pause,
            SimDuration::from_micros(50) + SimDuration::from_millis(2)
        );
    }

    #[test]
    fn reclaimed_saturates() {
        let rec = GcRecord {
            at: SimTime::ZERO,
            kind: GcKind::Full,
            used_before: ByteSize(10),
            used_after: ByteSize(20),
            free_after: ByteSize(0),
            pause: SimDuration::ZERO,
            useless: true,
        };
        assert_eq!(rec.reclaimed(), ByteSize::ZERO);
    }
}
