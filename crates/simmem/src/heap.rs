//! The heap state machine.

use simcore::{metrics, prof, tracer, ByteSize, CostModel, NodeId, SimDuration, SimTime, SpaceId};

use crate::gc::{GcKind, GcRecord, GcStats};
use crate::space::SpaceInfo;

/// Heap sizing and collector parameters.
#[derive(Clone, Debug)]
pub struct HeapConfig {
    /// Total heap capacity (the `-Xmx` of the simulated JVM).
    pub capacity: ByteSize,
    /// Young-generation size; allocations land here and a minor
    /// collection runs when it fills.
    pub young_capacity: ByteSize,
    /// `M`: a full GC leaving free memory below `M%` of capacity is
    /// recorded as useless (the paper's LUGC signal, §5.2; default 10).
    pub lugc_free_pct: u8,
    /// Cost model for collection pauses.
    pub cost: CostModel,
}

impl HeapConfig {
    /// A conventional configuration: young generation = 1/3 of the heap
    /// (HotSpot's default `NewRatio=2`), `M = 10%`, default cost model.
    pub fn with_capacity(capacity: ByteSize) -> Self {
        HeapConfig {
            capacity,
            young_capacity: ByteSize(capacity.as_u64() / 3),
            lugc_free_pct: 10,
            cost: CostModel::default(),
        }
    }

    fn lugc_threshold(&self) -> ByteSize {
        self.capacity.mul_ratio(self.lugc_free_pct as u64, 100)
    }

    /// Allocations at or above this size bypass the young generation
    /// (HotSpot's "humongous" objects).
    fn humongous_threshold(&self) -> ByteSize {
        ByteSize(self.young_capacity.as_u64() / 2)
    }
}

/// Error returned by [`Heap::alloc`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HeapError {
    /// The allocation does not fit even after a full collection — the
    /// simulation's `OutOfMemoryError`.
    OutOfMemory {
        /// Bytes requested.
        requested: ByteSize,
        /// Free bytes after the failed full collection.
        free: ByteSize,
    },
    /// The space id is unknown or already released.
    NoSuchSpace(SpaceId),
}

impl std::fmt::Display for HeapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeapError::OutOfMemory { requested, free } => {
                write!(f, "OutOfMemory: requested {requested}, free {free}")
            }
            HeapError::NoSuchSpace(id) => write!(f, "no such space: {id}"),
        }
    }
}

impl std::error::Error for HeapError {}

/// What happened during an allocation: zero or more stop-the-world
/// collections ran before the bytes were placed.
///
/// The caller (the node simulator) is responsible for advancing virtual
/// time by each pause and for forwarding the records to the ITask monitor.
#[derive(Clone, Debug, Default)]
pub struct AllocOutcome {
    /// Collections triggered by this allocation, in order.
    pub pauses: Vec<GcRecord>,
}

/// A snapshot of a heap's report-visible counters (see
/// [`Heap::counters_mark`]).
#[derive(Clone, Debug)]
pub struct HeapCounters {
    stats: GcStats,
    peak_used: ByteSize,
    records: usize,
}

/// The simulated managed heap. See the crate docs for the model.
#[derive(Clone, Debug)]
pub struct Heap {
    cfg: HeapConfig,
    spaces: Vec<Option<SpaceInfo>>,
    /// Young-generation occupancy (live + garbage, both ages).
    young_used: ByteSize,
    /// Old-generation occupancy (live + garbage).
    old_used: ByteSize,
    /// Total live eden bytes (sum over spaces).
    young0_live: ByteSize,
    /// Total live survivor bytes (sum over spaces).
    young1_live: ByteSize,
    /// Total live old bytes (sum over spaces).
    old_live: ByteSize,
    peak_used: ByteSize,
    stats: GcStats,
    records: Vec<GcRecord>,
    /// Scope stamped onto spaces created while it is set (see
    /// [`Heap::set_alloc_scope`]).
    alloc_scope: Option<u64>,
    /// Node attributed to traced GC spans (see [`Heap::set_trace_node`]).
    trace_node: Option<NodeId>,
}

impl Heap {
    /// Creates an empty heap.
    pub fn new(cfg: HeapConfig) -> Self {
        Heap {
            cfg,
            spaces: Vec::new(),
            young_used: ByteSize::ZERO,
            old_used: ByteSize::ZERO,
            young0_live: ByteSize::ZERO,
            young1_live: ByteSize::ZERO,
            old_live: ByteSize::ZERO,
            peak_used: ByteSize::ZERO,
            stats: GcStats::default(),
            records: Vec::new(),
            alloc_scope: None,
            trace_node: None,
        }
    }

    /// The heap configuration.
    pub fn config(&self) -> &HeapConfig {
        &self.cfg
    }

    /// Total capacity.
    pub fn capacity(&self) -> ByteSize {
        self.cfg.capacity
    }

    /// Occupied bytes (live + garbage, both generations).
    pub fn used(&self) -> ByteSize {
        self.young_used + self.old_used
    }

    /// Unoccupied bytes.
    pub fn free_bytes(&self) -> ByteSize {
        self.cfg.capacity - self.used()
    }

    /// Bytes that *would* be free after a full collection: capacity
    /// minus the live set. Runtime policies reason about this value —
    /// garbage is reclaimable, so treating it as occupied would trigger
    /// needless collections just to refresh the number.
    pub fn effective_free(&self) -> ByteSize {
        self.cfg.capacity - self.live()
    }

    /// Live (reachable) bytes.
    pub fn live(&self) -> ByteSize {
        self.young0_live + self.young1_live + self.old_live
    }

    /// Garbage bytes awaiting collection.
    pub fn garbage(&self) -> ByteSize {
        self.used() - self.live()
    }

    /// High-water mark of `used()`.
    pub fn peak_used(&self) -> ByteSize {
        self.peak_used
    }

    /// Aggregate collector statistics.
    pub fn stats(&self) -> &GcStats {
        &self.stats
    }

    /// Total stop-the-world pause accumulated so far — a *mark* for
    /// attribution windows. Callers snapshot it, run a window of work,
    /// and charge [`Heap::pause_since`] the mark to whatever the window
    /// stalled (an SMR engine attributes it to commit latency).
    pub fn pause_mark(&self) -> SimDuration {
        self.stats.total_pause
    }

    /// Pause time accumulated since a [`Heap::pause_mark`] snapshot.
    pub fn pause_since(&self, mark: SimDuration) -> SimDuration {
        self.stats.total_pause.saturating_sub(mark)
    }

    /// Snapshots the report-visible counters (GC stats, peak occupancy,
    /// record count) ahead of a speculative scheduling round.
    pub fn counters_mark(&self) -> HeapCounters {
        HeapCounters {
            stats: self.stats.clone(),
            peak_used: self.peak_used,
            records: self.records.len(),
        }
    }

    /// Restores the counters captured by [`Heap::counters_mark`]. Heap
    /// *contents* (spaces, occupancy) are not rolled back — the shard
    /// executor only rewinds counters on rounds whose run is about to
    /// abort, where contents are never observed again.
    pub fn counters_rewind(&mut self, mark: &HeapCounters) {
        self.stats = mark.stats.clone();
        self.peak_used = mark.peak_used;
        self.records.truncate(mark.records);
    }

    /// All collection records, oldest first.
    pub fn gc_records(&self) -> &[GcRecord] {
        &self.records
    }

    /// Creates a new, empty space, attributed to the current allocation
    /// scope (if one is set).
    pub fn create_space(&mut self, label: impl Into<String>) -> SpaceId {
        let id = SpaceId(self.spaces.len() as u32);
        let mut info = SpaceInfo::new(id, label.into());
        info.scope = self.alloc_scope;
        self.spaces.push(Some(info));
        id
    }

    /// Sets the allocation scope stamped onto spaces created from now on.
    ///
    /// A multi-job service sets the scope to the owning job's id around
    /// each scheduler step, so every space a job creates — directly or
    /// deep inside the runtime — is attributed to that job and can be
    /// torn down with [`Heap::release_scope`] when the job ends.
    pub fn set_alloc_scope(&mut self, scope: Option<u64>) {
        self.alloc_scope = scope;
    }

    /// The current allocation scope.
    pub fn alloc_scope(&self) -> Option<u64> {
        self.alloc_scope
    }

    /// Sets the node that traced GC spans are attributed to. A hosting
    /// node calls this once at construction; heaps outside a cluster
    /// (unit tests, micro-benches) trace as node-less.
    pub fn set_trace_node(&mut self, node: NodeId) {
        self.trace_node = Some(node);
    }

    /// Emits one GC pause span into the global tracer (no-op unless a
    /// sweep armed it). Every collection funnels through here — the
    /// same choke point as the `prof::Stage::Gc` counters — so traced
    /// span durations and profiler GC vtime agree by construction.
    fn trace_gc(&self, rec: &GcRecord) {
        if tracer::is_enabled() {
            tracer::emit(
                self.trace_node,
                self.alloc_scope,
                rec.at,
                rec.pause,
                tracer::TraceData::Gc {
                    full: rec.kind == GcKind::Full,
                    reclaimed: rec.reclaimed().as_u64(),
                    free_after: rec.free_after.as_u64(),
                    useless: rec.useless,
                },
            );
        }
        // The metrics plane shares this choke point, so the gc_pause_ns
        // counter, the profiler's gc vtime and traced span durations
        // are one number by construction.
        if metrics::is_enabled() {
            use metrics::Metric;
            let node = self.trace_node;
            metrics::counter_add(node, Metric::MemGcCount, rec.at, 1);
            metrics::counter_add(node, Metric::MemGcPauseNs, rec.at, rec.pause.as_nanos());
            if rec.useless {
                metrics::counter_add(node, Metric::MemUselessGc, rec.at, 1);
            }
            let cap = self.cfg.capacity.as_u64();
            let free = rec.free_after.as_u64();
            metrics::gauge_set(node, Metric::MemHeapBytes, rec.at, cap as i64);
            metrics::gauge_set(node, Metric::MemFreeBytes, rec.at, free as i64);
            metrics::gauge_set(node, Metric::MemLiveBytes, rec.at, (cap - free) as i64);
        }
    }

    /// Live bytes attributed to `scope` across all its spaces.
    pub fn scope_live(&self, scope: u64) -> ByteSize {
        self.spaces
            .iter()
            .flatten()
            .filter(|s| s.scope == Some(scope))
            .map(|s| s.live())
            .fold(ByteSize::ZERO, |a, b| a + b)
    }

    /// Releases every space attributed to `scope`: all their live bytes
    /// become garbage (reclaimed by the next collection) and their ids
    /// become invalid. Returns the bytes turned into garbage.
    pub fn release_scope(&mut self, scope: u64) -> ByteSize {
        let ids: Vec<SpaceId> = self
            .spaces
            .iter()
            .flatten()
            .filter(|s| s.scope == Some(scope))
            .map(|s| s.id)
            .collect();
        let mut freed = ByteSize::ZERO;
        for id in ids {
            freed += self.release_space(id);
        }
        freed
    }

    /// Looks up a live space.
    pub fn space(&self, id: SpaceId) -> Option<&SpaceInfo> {
        self.spaces.get(id.as_usize()).and_then(|s| s.as_ref())
    }

    /// Live bytes currently attributed to `id` (zero if released).
    pub fn space_live(&self, id: SpaceId) -> ByteSize {
        self.space(id).map_or(ByteSize::ZERO, |s| s.live())
    }

    /// Allocates `n` bytes into `space`.
    ///
    /// May run a minor and/or full collection first; the pauses are
    /// returned in the outcome for the caller to charge to virtual time.
    /// Fails with [`HeapError::OutOfMemory`] if the bytes still do not fit
    /// after a full collection, leaving the heap state unchanged apart
    /// from the collections themselves (exactly like a real JVM: the
    /// failed allocation is not performed, but the GCs it triggered did
    /// happen).
    pub fn alloc(
        &mut self,
        space: SpaceId,
        n: ByteSize,
        now: SimTime,
    ) -> Result<AllocOutcome, HeapError> {
        if self.space(space).is_none() {
            return Err(HeapError::NoSuchSpace(space));
        }
        let mut out = AllocOutcome::default();
        if n.is_zero() {
            return Ok(out);
        }

        if n >= self.cfg.humongous_threshold() {
            // Humongous allocation: straight to the old generation.
            if self.used() + n > self.cfg.capacity {
                self.full_gc(now, &mut out);
            }
            if self.used() + n > self.cfg.capacity {
                return Err(self.oom(n, out));
            }
            self.old_used += n;
            self.old_live += n;
            let s = self.space_mut(space);
            s.old_live += n;
        } else {
            if self.young_used + n > self.cfg.young_capacity {
                self.minor_gc(now, &mut out);
            }
            if self.used() + n > self.cfg.capacity {
                self.full_gc(now, &mut out);
            }
            if self.used() + n > self.cfg.capacity {
                return Err(self.oom(n, out));
            }
            self.young_used += n;
            self.young0_live += n;
            let s = self.space_mut(space);
            s.young0_live += n;
        }
        self.peak_used = self.peak_used.max(self.used());
        Ok(out)
    }

    /// Frees up to `n` live bytes of `space`, turning them into garbage
    /// that remains in the heap until a collection runs.
    ///
    /// Returns the number of bytes actually freed (clamped to the space's
    /// live bytes; zero for an unknown space). Young bytes die first.
    pub fn free(&mut self, space: SpaceId, n: ByteSize) -> ByteSize {
        let Some(s) = self
            .spaces
            .get_mut(space.as_usize())
            .and_then(|s| s.as_mut())
        else {
            return ByteSize::ZERO;
        };
        // Youngest bytes die first (LIFO lifetimes dominate in practice).
        let from_y0 = n.min(s.young0_live);
        let from_y1 = (n - from_y0).min(s.young1_live);
        let from_old = (n - from_y0 - from_y1).min(s.old_live);
        s.young0_live -= from_y0;
        s.young1_live -= from_y1;
        s.old_live -= from_old;
        self.young0_live -= from_y0;
        self.young1_live -= from_y1;
        self.old_live -= from_old;
        // The bytes stay in `*_used` — they are garbage now.
        from_y0 + from_y1 + from_old
    }

    /// Releases a space entirely: all its live bytes become garbage and
    /// the space id becomes invalid.
    ///
    /// Returns the number of bytes turned into garbage.
    pub fn release_space(&mut self, space: SpaceId) -> ByteSize {
        let freed = self.free(space, ByteSize(u64::MAX));
        if let Some(slot) = self.spaces.get_mut(space.as_usize()) {
            *slot = None;
        }
        freed
    }

    /// Runs a full collection unconditionally (System.gc(), or the IRS
    /// forcing a collection after interrupting tasks).
    pub fn force_full_gc(&mut self, now: SimTime) -> GcRecord {
        let mut out = AllocOutcome::default();
        self.full_gc(now, &mut out);
        out.pauses.pop().expect("full_gc always records a pause")
    }

    fn space_mut(&mut self, id: SpaceId) -> &mut SpaceInfo {
        self.spaces[id.as_usize()]
            .as_mut()
            .expect("checked by caller")
    }

    fn oom(&self, requested: ByteSize, _out: AllocOutcome) -> HeapError {
        HeapError::OutOfMemory {
            requested,
            free: self.free_bytes(),
        }
    }

    /// Evacuates the young generation: eden survivors move to the
    /// survivor bucket, survivor-bucket bytes are promoted to old, and
    /// young garbage is reclaimed. Copy cost covers both ages.
    fn minor_gc(&mut self, now: SimTime, out: &mut AllocOutcome) {
        let used_before = self.used();
        let survivors = self.young0_live + self.young1_live;
        let promoted = self.young1_live;
        let pause = self.cfg.cost.minor_gc_pause(survivors);
        for s in self.spaces.iter_mut().flatten() {
            s.old_live += s.young1_live;
            s.young1_live = s.young0_live;
            s.young0_live = ByteSize::ZERO;
        }
        self.old_used += promoted;
        self.old_live += promoted;
        self.young1_live = self.young0_live;
        self.young0_live = ByteSize::ZERO;
        // Young now holds exactly the (compacted) survivor bucket.
        self.young_used = self.young1_live;
        let rec = GcRecord {
            at: now,
            kind: GcKind::Minor,
            used_before,
            used_after: self.used(),
            free_after: self.free_bytes(),
            pause,
            useless: false,
        };
        prof::count(prof::Stage::Gc, 1, rec.reclaimed().as_u64());
        prof::vtime(prof::Stage::Gc, pause);
        self.trace_gc(&rec);
        self.stats.absorb(&rec);
        self.records.push(rec.clone());
        out.pauses.push(rec);
    }

    /// Collects the whole heap: all garbage is reclaimed and all young
    /// survivors are promoted (a compacting full collection).
    fn full_gc(&mut self, now: SimTime, out: &mut AllocOutcome) {
        let used_before = self.used();
        let live = self.live();
        let pause = self.cfg.cost.full_gc_pause(live, used_before);
        for s in self.spaces.iter_mut().flatten() {
            s.old_live += s.young_live();
            s.young0_live = ByteSize::ZERO;
            s.young1_live = ByteSize::ZERO;
        }
        self.old_live += self.young0_live + self.young1_live;
        self.young0_live = ByteSize::ZERO;
        self.young1_live = ByteSize::ZERO;
        self.young_used = ByteSize::ZERO;
        self.old_used = self.old_live;
        let free_after = self.free_bytes();
        let rec = GcRecord {
            at: now,
            kind: GcKind::Full,
            used_before,
            used_after: self.used(),
            free_after,
            pause,
            useless: free_after < self.cfg.lugc_threshold(),
        };
        prof::count(prof::Stage::Gc, 1, rec.reclaimed().as_u64());
        prof::vtime(prof::Stage::Gc, pause);
        self.trace_gc(&rec);
        self.stats.absorb(&rec);
        self.records.push(rec.clone());
        out.pauses.push(rec);
    }

    /// Internal consistency check used by tests: per-space live totals
    /// match the heap counters, and used ≥ live in both generations.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut y0 = ByteSize::ZERO;
        let mut y1 = ByteSize::ZERO;
        let mut old = ByteSize::ZERO;
        for s in self.spaces.iter().flatten() {
            y0 += s.young0_live;
            y1 += s.young1_live;
            old += s.old_live;
        }
        if y0 != self.young0_live {
            return Err(format!("eden live mismatch: {y0} != {}", self.young0_live));
        }
        if y1 != self.young1_live {
            return Err(format!(
                "survivor live mismatch: {y1} != {}",
                self.young1_live
            ));
        }
        if old != self.old_live {
            return Err(format!("old live mismatch: {old} != {}", self.old_live));
        }
        if self.young_used < self.young0_live + self.young1_live {
            return Err("young used < young live".into());
        }
        if self.old_used < self.old_live {
            return Err("old used < old live".into());
        }
        if self.used() > self.cfg.capacity {
            return Err("used > capacity".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap(cap_kib: u64) -> Heap {
        Heap::new(HeapConfig::with_capacity(ByteSize::kib(cap_kib)))
    }

    #[test]
    fn alloc_without_pressure_is_silent() {
        let mut h = heap(1024);
        let s = h.create_space("a");
        let out = h.alloc(s, ByteSize::kib(16), SimTime::ZERO).unwrap();
        assert!(out.pauses.is_empty());
        assert_eq!(h.used(), ByteSize::kib(16));
        assert_eq!(h.live(), ByteSize::kib(16));
        h.check_invariants().unwrap();
    }

    #[test]
    fn zero_alloc_is_noop() {
        let mut h = heap(1024);
        let s = h.create_space("a");
        h.alloc(s, ByteSize::ZERO, SimTime::ZERO).unwrap();
        assert_eq!(h.used(), ByteSize::ZERO);
    }

    #[test]
    fn unknown_space_is_rejected() {
        let mut h = heap(64);
        let err = h.alloc(SpaceId(9), ByteSize(1), SimTime::ZERO).unwrap_err();
        assert_eq!(err, HeapError::NoSuchSpace(SpaceId(9)));
    }

    #[test]
    fn freeing_creates_garbage_not_free_memory() {
        let mut h = heap(1024);
        let s = h.create_space("a");
        h.alloc(s, ByteSize::kib(32), SimTime::ZERO).unwrap();
        let freed = h.free(s, ByteSize::kib(32));
        assert_eq!(freed, ByteSize::kib(32));
        // Still occupied until a collection runs — the core JVM behaviour
        // the paper's mechanism depends on.
        assert_eq!(h.used(), ByteSize::kib(32));
        assert_eq!(h.live(), ByteSize::ZERO);
        assert_eq!(h.garbage(), ByteSize::kib(32));
        let rec = h.force_full_gc(SimTime::ZERO);
        assert_eq!(rec.reclaimed(), ByteSize::kib(32));
        assert_eq!(h.used(), ByteSize::ZERO);
        h.check_invariants().unwrap();
    }

    #[test]
    fn free_clamps_to_live() {
        let mut h = heap(1024);
        let s = h.create_space("a");
        h.alloc(s, ByteSize::kib(8), SimTime::ZERO).unwrap();
        assert_eq!(h.free(s, ByteSize::kib(64)), ByteSize::kib(8));
        assert_eq!(h.free(s, ByteSize::kib(1)), ByteSize::ZERO);
        assert_eq!(h.free(SpaceId(77), ByteSize::kib(1)), ByteSize::ZERO);
    }

    /// Allocates `total` in small (non-humongous) chunks.
    fn alloc_chunked(h: &mut Heap, s: SpaceId, total_kib: u64) -> Vec<GcKind> {
        let mut kinds = Vec::new();
        for _ in 0..total_kib {
            let out = h.alloc(s, ByteSize::kib(1), SimTime::ZERO).unwrap();
            kinds.extend(out.pauses.iter().map(|p| p.kind));
        }
        kinds
    }

    #[test]
    fn young_fill_triggers_minor_gc_and_promotion() {
        let mut h = heap(1024); // young = 1024/3 = 341KiB
        let s = h.create_space("a");
        // 450KiB of 1KiB live allocations must cross the young boundary.
        let kinds = alloc_chunked(&mut h, s, 450);
        assert!(kinds.contains(&GcKind::Minor));
        assert!(!kinds.contains(&GcKind::Full));
        assert_eq!(h.space_live(s), ByteSize::kib(450));
        // At least one minor GC promoted survivors to old.
        assert!(h.space(s).unwrap().old_live >= ByteSize::kib(300));
        h.check_invariants().unwrap();
    }

    #[test]
    fn minor_gc_reclaims_young_garbage_cheaply() {
        let mut h = heap(1024);
        let s = h.create_space("a");
        alloc_chunked(&mut h, s, 300);
        h.free(s, ByteSize::kib(300)); // all garbage, still young
        let before_used = h.used();
        assert_eq!(before_used, ByteSize::kib(300));
        // Push past the young boundary: the minor GC finds no survivors.
        let kinds = alloc_chunked(&mut h, s, 100);
        assert!(kinds.contains(&GcKind::Minor));
        assert!(!kinds.contains(&GcKind::Full));
        // The 300KiB of garbage is gone without a full collection.
        assert_eq!(h.used(), ByteSize::kib(100));
        assert_eq!(h.garbage(), ByteSize::ZERO);
    }

    #[test]
    fn humongous_allocations_go_to_old() {
        let mut h = heap(1024); // young 256KiB, humongous >= 128KiB
        let s = h.create_space("big");
        h.alloc(s, ByteSize::kib(300), SimTime::ZERO).unwrap();
        assert_eq!(h.space(s).unwrap().old_live, ByteSize::kib(300));
        assert_eq!(h.space(s).unwrap().young_live(), ByteSize::ZERO);
    }

    #[test]
    fn oom_after_failed_full_gc() {
        let mut h = heap(1024);
        let s = h.create_space("a");
        // Fill the heap with live data in old gen.
        h.alloc(s, ByteSize::kib(500), SimTime::ZERO).unwrap();
        h.alloc(s, ByteSize::kib(500), SimTime::ZERO).unwrap();
        let err = h.alloc(s, ByteSize::kib(200), SimTime::ZERO).unwrap_err();
        match err {
            HeapError::OutOfMemory { requested, .. } => {
                assert_eq!(requested, ByteSize::kib(200));
            }
            other => panic!("expected OOM, got {other}"),
        }
        // The heap survives the failure and remains consistent.
        h.check_invariants().unwrap();
    }

    #[test]
    fn full_gc_near_capacity_is_flagged_useless() {
        let mut h = heap(1000); // LUGC threshold: free < 100KiB
        let s = h.create_space("a");
        // 950KiB live => full GC cannot free anything.
        h.alloc(s, ByteSize::kib(475), SimTime::ZERO).unwrap();
        h.alloc(s, ByteSize::kib(475), SimTime::ZERO).unwrap();
        let rec = h.force_full_gc(SimTime::ZERO);
        assert!(rec.useless);
        assert_eq!(h.stats().useless_count, 1);
    }

    #[test]
    fn full_gc_with_room_is_not_useless() {
        let mut h = heap(1000);
        let s = h.create_space("a");
        h.alloc(s, ByteSize::kib(100), SimTime::ZERO).unwrap();
        let rec = h.force_full_gc(SimTime::ZERO);
        assert!(!rec.useless);
    }

    #[test]
    fn release_space_then_gc_reclaims_everything() {
        let mut h = heap(1024);
        let a = h.create_space("a");
        let b = h.create_space("b");
        h.alloc(a, ByteSize::kib(100), SimTime::ZERO).unwrap();
        h.alloc(b, ByteSize::kib(50), SimTime::ZERO).unwrap();
        assert_eq!(h.release_space(a), ByteSize::kib(100));
        assert!(h.space(a).is_none());
        h.force_full_gc(SimTime::ZERO);
        assert_eq!(h.used(), ByteSize::kib(50));
        assert_eq!(h.space_live(b), ByteSize::kib(50));
        // Released ids reject further allocation.
        assert!(h.alloc(a, ByteSize(1), SimTime::ZERO).is_err());
    }

    #[test]
    fn scopes_attribute_and_release_spaces_in_bulk() {
        let mut h = heap(1024);
        h.set_alloc_scope(Some(7));
        let a = h.create_space("job7.a");
        let b = h.create_space("job7.b");
        h.set_alloc_scope(Some(8));
        let c = h.create_space("job8.c");
        h.set_alloc_scope(None);
        let d = h.create_space("system");
        h.alloc(a, ByteSize::kib(10), SimTime::ZERO).unwrap();
        h.alloc(b, ByteSize::kib(20), SimTime::ZERO).unwrap();
        h.alloc(c, ByteSize::kib(5), SimTime::ZERO).unwrap();
        h.alloc(d, ByteSize::kib(1), SimTime::ZERO).unwrap();
        assert_eq!(h.scope_live(7), ByteSize::kib(30));
        assert_eq!(h.scope_live(8), ByteSize::kib(5));
        assert_eq!(h.scope_live(99), ByteSize::ZERO);
        assert_eq!(h.space(d).unwrap().scope, None);

        assert_eq!(h.release_scope(7), ByteSize::kib(30));
        assert!(h.space(a).is_none());
        assert!(h.space(b).is_none());
        assert_eq!(h.scope_live(7), ByteSize::ZERO);
        // Other scopes and unscoped spaces are untouched.
        assert_eq!(h.scope_live(8), ByteSize::kib(5));
        assert_eq!(h.space_live(d), ByteSize::kib(1));
        h.force_full_gc(SimTime::ZERO);
        assert_eq!(h.used(), ByteSize::kib(6));
        h.check_invariants().unwrap();
    }

    #[test]
    fn peak_used_tracks_high_water_mark() {
        let mut h = heap(1024);
        let s = h.create_space("a");
        h.alloc(s, ByteSize::kib(100), SimTime::ZERO).unwrap();
        h.free(s, ByteSize::kib(100));
        h.force_full_gc(SimTime::ZERO);
        h.alloc(s, ByteSize::kib(10), SimTime::ZERO).unwrap();
        assert_eq!(h.peak_used(), ByteSize::kib(100));
    }

    #[test]
    fn gc_pause_grows_with_live_set() {
        let mut small = heap(10_240);
        let s1 = small.create_space("a");
        small.alloc(s1, ByteSize::kib(100), SimTime::ZERO).unwrap();
        let p_small = small.force_full_gc(SimTime::ZERO).pause;

        let mut big = heap(10_240);
        let s2 = big.create_space("a");
        big.alloc(s2, ByteSize::kib(4000), SimTime::ZERO).unwrap();
        let p_big = big.force_full_gc(SimTime::ZERO).pause;
        assert!(p_big > p_small * 5);
    }

    #[test]
    fn failed_alloc_does_not_change_occupancy() {
        let mut h = heap(100);
        let s = h.create_space("a");
        h.alloc(s, ByteSize::kib(90), SimTime::ZERO).unwrap();
        let used = h.used();
        let _ = h.alloc(s, ByteSize::kib(50), SimTime::ZERO).unwrap_err();
        assert_eq!(h.used(), used);
    }
}
