//! Heap spaces: named groups of allocations that live and die together.

use simcore::{ByteSize, SpaceId};

/// Live-byte accounting for one space, split by generation and age.
///
/// Newly allocated bytes land in *eden* (`young0`); a minor collection
/// moves survivors to the *survivor* bucket (`young1`), and bytes that
/// survive a second minor collection are promoted to *old*. Short-lived
/// data (input frames, scratch) therefore dies young and never inflates
/// full-collection cost — HotSpot's survivor-space behaviour. Freed
/// bytes leave the live counts but remain in the heap's used counts as
/// garbage until the owning generation is collected.
#[derive(Clone, Debug)]
pub struct SpaceInfo {
    /// This space's id.
    pub id: SpaceId,
    /// Debug label (e.g. `"task3.local"`, `"part17.deser"`).
    pub label: String,
    /// Allocation scope (owning job) this space is attributed to, if the
    /// heap had one set when the space was created. Scopes let a service
    /// layer tear down everything a job allocated without tracking the
    /// individual space ids.
    pub scope: Option<u64>,
    /// Live bytes in eden (allocated since the last minor collection).
    pub young0_live: ByteSize,
    /// Live bytes in the survivor bucket (survived one minor collection).
    pub young1_live: ByteSize,
    /// Live bytes promoted to the old generation.
    pub old_live: ByteSize,
}

impl SpaceInfo {
    pub(crate) fn new(id: SpaceId, label: String) -> Self {
        SpaceInfo {
            id,
            label,
            scope: None,
            young0_live: ByteSize::ZERO,
            young1_live: ByteSize::ZERO,
            old_live: ByteSize::ZERO,
        }
    }

    /// Total live bytes of this space.
    pub fn live(&self) -> ByteSize {
        self.young0_live + self.young1_live + self.old_live
    }

    /// Live bytes still in the young generation (either age).
    pub fn young_live(&self) -> ByteSize {
        self.young0_live + self.young1_live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_sums_generations() {
        let mut s = SpaceInfo::new(SpaceId(0), "x".into());
        s.young0_live = ByteSize(10);
        s.young1_live = ByteSize(12);
        s.old_live = ByteSize(20);
        assert_eq!(s.live(), ByteSize(42));
        assert_eq!(s.young_live(), ByteSize(22));
    }
}
