//! Property tests: the heap state machine stays consistent under
//! arbitrary operation sequences.

use proptest::prelude::*;
use simcore::{ByteSize, SimTime, SpaceId};
use simmem::{Heap, HeapConfig};

/// An operation in a random heap workload.
#[derive(Clone, Debug)]
enum Op {
    Create,
    Alloc { space: usize, kib: u64 },
    Free { space: usize, kib: u64 },
    Release { space: usize },
    ForceGc,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        1 => Just(Op::Create),
        5 => (0..8usize, 1..300u64).prop_map(|(space, kib)| Op::Alloc { space, kib }),
        3 => (0..8usize, 1..300u64).prop_map(|(space, kib)| Op::Free { space, kib }),
        1 => (0..8usize).prop_map(|space| Op::Release { space }),
        1 => Just(Op::ForceGc),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Invariants hold after every operation; used never exceeds
    /// capacity; GC never increases occupancy; live ≤ used throughout.
    #[test]
    fn heap_invariants_under_random_ops(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut h = Heap::new(HeapConfig::with_capacity(ByteSize::kib(2048)));
        let mut spaces: Vec<SpaceId> = vec![h.create_space("s0")];
        for op in ops {
            match op {
                Op::Create => {
                    if spaces.len() < 8 {
                        spaces.push(h.create_space("s"));
                    }
                }
                Op::Alloc { space, kib } => {
                    let id = spaces[space % spaces.len()];
                    // OOM is a legal outcome; the heap must survive it.
                    let _ = h.alloc(id, ByteSize::kib(kib), SimTime::ZERO);
                }
                Op::Free { space, kib } => {
                    let id = spaces[space % spaces.len()];
                    h.free(id, ByteSize::kib(kib));
                }
                Op::Release { space } => {
                    let id = spaces[space % spaces.len()];
                    h.release_space(id);
                }
                Op::ForceGc => {
                    let used_before = h.used();
                    let rec = h.force_full_gc(SimTime::ZERO);
                    prop_assert!(h.used() <= used_before);
                    prop_assert_eq!(rec.used_after, h.used());
                }
            }
            prop_assert!(h.check_invariants().is_ok(), "{:?}", h.check_invariants());
            prop_assert!(h.live() <= h.used());
            prop_assert!(h.used() <= h.capacity());
            prop_assert!(h.peak_used() >= h.used());
        }
    }

    /// After a full collection the heap holds exactly its live bytes:
    /// garbage never survives a full GC.
    #[test]
    fn full_gc_leaves_no_garbage(
        allocs in proptest::collection::vec((1..200u64, any::<bool>()), 1..60)
    ) {
        let mut h = Heap::new(HeapConfig::with_capacity(ByteSize::kib(4096)));
        let s = h.create_space("s");
        for (kib, die) in allocs {
            if h.alloc(s, ByteSize::kib(kib), SimTime::ZERO).is_ok() && die {
                h.free(s, ByteSize::kib(kib));
            }
        }
        h.force_full_gc(SimTime::ZERO);
        prop_assert_eq!(h.garbage(), ByteSize::ZERO);
        prop_assert_eq!(h.used(), h.live());
    }

    /// Allocation accounting is conservative: successful allocations
    /// minus frees equals the live set.
    #[test]
    fn live_bytes_equal_alloc_minus_free(
        steps in proptest::collection::vec((1..100u64, 0..100u64), 1..80)
    ) {
        let mut h = Heap::new(HeapConfig::with_capacity(ByteSize::mib(64)));
        let s = h.create_space("s");
        let mut expected_live = 0u64;
        for (alloc_kib, free_kib) in steps {
            if h.alloc(s, ByteSize::kib(alloc_kib), SimTime::ZERO).is_ok() {
                expected_live += alloc_kib * 1024;
            }
            let freed = h.free(s, ByteSize::kib(free_kib));
            expected_live -= freed.as_u64();
        }
        prop_assert_eq!(h.live().as_u64(), expected_live);
    }

    /// Scope attribution partitions the live set: at every step, the
    /// live bytes of the tracked scopes plus the live bytes of unscoped
    /// spaces add up to exactly `Heap::live`, and each scope's total
    /// equals the sum over its member spaces.
    #[test]
    fn scope_live_partitions_total_live(
        ops in proptest::collection::vec(
            (0..6u8, 0..4u64, 1..200u64),
            1..100,
        )
    ) {
        let mut h = Heap::new(HeapConfig::with_capacity(ByteSize::mib(64)));
        // Mirror of every space ever created and the scope it carries.
        let mut spaces: Vec<(SpaceId, Option<u64>)> = Vec::new();
        for (kind, scope, kib) in ops {
            match kind {
                // Create a space under `scope`.
                0 => {
                    h.set_alloc_scope(Some(scope));
                    spaces.push((h.create_space("scoped"), Some(scope)));
                    h.set_alloc_scope(None);
                }
                // Create an unscoped space.
                1 => {
                    spaces.push((h.create_space("plain"), None));
                }
                // Alloc / free into an arbitrary existing space.
                2 | 3 => {
                    if let Some(&(id, _)) = spaces.get((scope as usize) % spaces.len().max(1)) {
                        if kind == 2 {
                            let _ = h.alloc(id, ByteSize::kib(kib), SimTime::ZERO);
                        } else {
                            h.free(id, ByteSize::kib(kib));
                        }
                    }
                }
                // Tear down a whole scope.
                4 => {
                    let released = h.release_scope(scope);
                    prop_assert!(released <= h.capacity());
                    prop_assert_eq!(h.scope_live(scope), ByteSize::ZERO);
                }
                // Collect; attribution must survive GC untouched.
                _ => {
                    h.force_full_gc(SimTime::ZERO);
                }
            }
            let mut by_scope = ByteSize::ZERO;
            for s in 0..4u64 {
                by_scope += h.scope_live(s);
                let member_sum = spaces
                    .iter()
                    .filter(|(_, sc)| *sc == Some(s))
                    .map(|&(id, _)| h.space_live(id))
                    .fold(ByteSize::ZERO, |a, b| a + b);
                prop_assert_eq!(h.scope_live(s), member_sum);
            }
            let unscoped = spaces
                .iter()
                .filter(|(_, sc)| sc.is_none())
                .map(|&(id, _)| h.space_live(id))
                .fold(ByteSize::ZERO, |a, b| a + b);
            prop_assert_eq!(by_scope + unscoped, h.live());
            prop_assert!(h.check_invariants().is_ok(), "{:?}", h.check_invariants());
        }
    }

    /// `release_scope` restores the heap's pre-scope live footprint
    /// exactly: allocate a baseline, stamp a scope, allocate into it,
    /// release, and the live set is back to the baseline byte count.
    #[test]
    fn release_scope_restores_footprint(
        baseline in proptest::collection::vec(1..100u64, 1..8),
        scoped in proptest::collection::vec(1..100u64, 1..24),
    ) {
        let mut h = Heap::new(HeapConfig::with_capacity(ByteSize::mib(64)));
        let base_space = h.create_space("baseline");
        for &kib in &baseline {
            h.alloc(base_space, ByteSize::kib(kib), SimTime::ZERO).unwrap();
        }
        let live_before = h.live();

        h.set_alloc_scope(Some(42));
        let job_spaces: Vec<SpaceId> =
            (0..3).map(|i| h.create_space(format!("job-{i}"))).collect();
        h.set_alloc_scope(None);
        let mut expected_scope = 0u64;
        for (i, &kib) in scoped.iter().enumerate() {
            h.alloc(job_spaces[i % job_spaces.len()], ByteSize::kib(kib), SimTime::ZERO)
                .unwrap();
            expected_scope += kib * 1024;
        }
        prop_assert_eq!(h.scope_live(42).as_u64(), expected_scope);

        let released = h.release_scope(42);
        prop_assert_eq!(released.as_u64(), expected_scope);
        prop_assert_eq!(h.scope_live(42), ByteSize::ZERO);
        prop_assert_eq!(h.live(), live_before);
        prop_assert!(h.check_invariants().is_ok(), "{:?}", h.check_invariants());
    }
}
