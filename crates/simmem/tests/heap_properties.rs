//! Property tests: the heap state machine stays consistent under
//! arbitrary operation sequences.

use proptest::prelude::*;
use simcore::{ByteSize, SimTime, SpaceId};
use simmem::{Heap, HeapConfig};

/// An operation in a random heap workload.
#[derive(Clone, Debug)]
enum Op {
    Create,
    Alloc { space: usize, kib: u64 },
    Free { space: usize, kib: u64 },
    Release { space: usize },
    ForceGc,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        1 => Just(Op::Create),
        5 => (0..8usize, 1..300u64).prop_map(|(space, kib)| Op::Alloc { space, kib }),
        3 => (0..8usize, 1..300u64).prop_map(|(space, kib)| Op::Free { space, kib }),
        1 => (0..8usize).prop_map(|space| Op::Release { space }),
        1 => Just(Op::ForceGc),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Invariants hold after every operation; used never exceeds
    /// capacity; GC never increases occupancy; live ≤ used throughout.
    #[test]
    fn heap_invariants_under_random_ops(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut h = Heap::new(HeapConfig::with_capacity(ByteSize::kib(2048)));
        let mut spaces: Vec<SpaceId> = vec![h.create_space("s0")];
        for op in ops {
            match op {
                Op::Create => {
                    if spaces.len() < 8 {
                        spaces.push(h.create_space("s"));
                    }
                }
                Op::Alloc { space, kib } => {
                    let id = spaces[space % spaces.len()];
                    // OOM is a legal outcome; the heap must survive it.
                    let _ = h.alloc(id, ByteSize::kib(kib), SimTime::ZERO);
                }
                Op::Free { space, kib } => {
                    let id = spaces[space % spaces.len()];
                    h.free(id, ByteSize::kib(kib));
                }
                Op::Release { space } => {
                    let id = spaces[space % spaces.len()];
                    h.release_space(id);
                }
                Op::ForceGc => {
                    let used_before = h.used();
                    let rec = h.force_full_gc(SimTime::ZERO);
                    prop_assert!(h.used() <= used_before);
                    prop_assert_eq!(rec.used_after, h.used());
                }
            }
            prop_assert!(h.check_invariants().is_ok(), "{:?}", h.check_invariants());
            prop_assert!(h.live() <= h.used());
            prop_assert!(h.used() <= h.capacity());
            prop_assert!(h.peak_used() >= h.used());
        }
    }

    /// After a full collection the heap holds exactly its live bytes:
    /// garbage never survives a full GC.
    #[test]
    fn full_gc_leaves_no_garbage(
        allocs in proptest::collection::vec((1..200u64, any::<bool>()), 1..60)
    ) {
        let mut h = Heap::new(HeapConfig::with_capacity(ByteSize::kib(4096)));
        let s = h.create_space("s");
        for (kib, die) in allocs {
            if h.alloc(s, ByteSize::kib(kib), SimTime::ZERO).is_ok() && die {
                h.free(s, ByteSize::kib(kib));
            }
        }
        h.force_full_gc(SimTime::ZERO);
        prop_assert_eq!(h.garbage(), ByteSize::ZERO);
        prop_assert_eq!(h.used(), h.live());
    }

    /// Allocation accounting is conservative: successful allocations
    /// minus frees equals the live set.
    #[test]
    fn live_bytes_equal_alloc_minus_free(
        steps in proptest::collection::vec((1..100u64, 0..100u64), 1..80)
    ) {
        let mut h = Heap::new(HeapConfig::with_capacity(ByteSize::mib(64)));
        let s = h.create_space("s");
        let mut expected_live = 0u64;
        for (alloc_kib, free_kib) in steps {
            if h.alloc(s, ByteSize::kib(alloc_kib), SimTime::ZERO).is_ok() {
                expected_live += alloc_kib * 1024;
            }
            let freed = h.free(s, ByteSize::kib(free_kib));
            expected_live -= freed.as_u64();
        }
        prop_assert_eq!(h.live().as_u64(), expected_live);
    }
}
