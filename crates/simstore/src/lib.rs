#![warn(missing_docs)]

//! Simulated storage: per-node disks with a bandwidth/latency cost model
//! and an HDFS-like replicated block store.
//!
//! Stands in for the paper's SSD RAID-0 volumes and HDFS (128 MB blocks).
//! The ITask partition manager serializes partitions here; the MapReduce
//! engine spills map buffers and reads input splits from the block store.

pub mod blockstore;
pub mod disk;

pub use blockstore::{Block, BlockStore, BlockStoreConfig, Dataset, DatasetId};
pub use disk::{Disk, DiskFile, DiskStats, FileId};
