//! An HDFS-like block store: datasets split into fixed-size blocks,
//! replicated round-robin across nodes.
//!
//! The MapReduce engine derives one input split per block and prefers
//! scheduling map tasks where a replica lives (locality); the Hyracks scan
//! operators read the blocks local to each node.

use simcore::{ByteSize, NodeId};

/// Identifier of a stored dataset.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DatasetId(pub u32);

/// One block of a dataset.
#[derive(Clone, Debug)]
pub struct Block {
    /// The dataset this block belongs to.
    pub dataset: DatasetId,
    /// Index of the block within the dataset.
    pub index: u32,
    /// Payload bytes in this block (the last block may be short).
    pub bytes: ByteSize,
    /// Nodes holding a replica, primary first.
    pub replicas: Vec<NodeId>,
}

impl Block {
    /// Whether `node` holds a replica of this block.
    pub fn is_local_to(&self, node: NodeId) -> bool {
        self.replicas.contains(&node)
    }
}

/// A stored dataset: contiguous logical bytes split into blocks.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// The dataset's id.
    pub id: DatasetId,
    /// Human-readable name (e.g. `"wikipedia-49G"`).
    pub name: String,
    /// Total logical size.
    pub bytes: ByteSize,
    /// The dataset's blocks, in order.
    pub blocks: Vec<Block>,
}

/// Block store parameters.
#[derive(Clone, Debug)]
pub struct BlockStoreConfig {
    /// Block size (the paper's experiments use 128 MB; at 1/1024 scale
    /// that is 128 KiB).
    pub block_size: ByteSize,
    /// Replication factor (HDFS default 3).
    pub replication: usize,
    /// Number of storage nodes.
    pub nodes: usize,
}

impl Default for BlockStoreConfig {
    fn default() -> Self {
        BlockStoreConfig {
            block_size: ByteSize::kib(128),
            replication: 3,
            nodes: 1,
        }
    }
}

/// The cluster-wide block store.
#[derive(Clone, Debug)]
pub struct BlockStore {
    cfg: BlockStoreConfig,
    datasets: Vec<Dataset>,
    next_primary: usize,
}

impl BlockStore {
    /// Creates an empty store.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero nodes or a zero block size.
    pub fn new(cfg: BlockStoreConfig) -> Self {
        assert!(cfg.nodes > 0, "block store needs at least one node");
        assert!(!cfg.block_size.is_zero(), "zero block size");
        BlockStore {
            cfg,
            datasets: Vec::new(),
            next_primary: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &BlockStoreConfig {
        &self.cfg
    }

    /// Stores a dataset of `bytes`, splitting it into blocks and placing
    /// replicas round-robin. Returns the dataset id.
    pub fn put(&mut self, name: impl Into<String>, bytes: ByteSize) -> DatasetId {
        let id = DatasetId(self.datasets.len() as u32);
        let bs = self.cfg.block_size.as_u64();
        let total = bytes.as_u64();
        let n_blocks = total.div_ceil(bs).max(1);
        let replication = self.cfg.replication.min(self.cfg.nodes);
        let mut blocks = Vec::with_capacity(n_blocks as usize);
        for i in 0..n_blocks {
            let this = if i == n_blocks - 1 && !total.is_multiple_of(bs) && total > 0 {
                total % bs
            } else {
                bs.min(total.max(1))
            };
            let mut replicas = Vec::with_capacity(replication);
            for r in 0..replication {
                replicas.push(NodeId(((self.next_primary + r) % self.cfg.nodes) as u32));
            }
            self.next_primary = (self.next_primary + 1) % self.cfg.nodes;
            blocks.push(Block {
                dataset: id,
                index: i as u32,
                bytes: ByteSize(this),
                replicas,
            });
        }
        self.datasets.push(Dataset {
            id,
            name: name.into(),
            bytes,
            blocks,
        });
        id
    }

    /// Looks up a dataset.
    pub fn dataset(&self, id: DatasetId) -> Option<&Dataset> {
        self.datasets.get(id.0 as usize)
    }

    /// Blocks of `id` that have a replica on `node`.
    pub fn local_blocks(&self, id: DatasetId, node: NodeId) -> Vec<&Block> {
        self.dataset(id)
            .map(|d| d.blocks.iter().filter(|b| b.is_local_to(node)).collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(nodes: usize) -> BlockStore {
        BlockStore::new(BlockStoreConfig {
            block_size: ByteSize::kib(128),
            replication: 3,
            nodes,
        })
    }

    #[test]
    fn splits_into_blocks_with_short_tail() {
        let mut s = store(4);
        let id = s.put("data", ByteSize::kib(300));
        let d = s.dataset(id).unwrap();
        assert_eq!(d.blocks.len(), 3);
        assert_eq!(d.blocks[0].bytes, ByteSize::kib(128));
        assert_eq!(d.blocks[1].bytes, ByteSize::kib(128));
        assert_eq!(d.blocks[2].bytes, ByteSize::kib(44));
        let total: ByteSize = d.blocks.iter().map(|b| b.bytes).sum();
        assert_eq!(total, ByteSize::kib(300));
    }

    #[test]
    fn replication_clamped_to_node_count() {
        let mut s = store(2);
        let id = s.put("data", ByteSize::kib(128));
        let d = s.dataset(id).unwrap();
        assert_eq!(d.blocks[0].replicas.len(), 2);
    }

    #[test]
    fn replicas_spread_round_robin() {
        let mut s = store(4);
        let id = s.put("data", ByteSize::kib(512)); // 4 blocks
        let d = s.dataset(id).unwrap();
        let primaries: Vec<u32> = d.blocks.iter().map(|b| b.replicas[0].as_u32()).collect();
        assert_eq!(primaries, vec![0, 1, 2, 3]);
        // Every node sees some local blocks.
        for n in 0..4 {
            assert!(!s.local_blocks(id, NodeId(n)).is_empty());
        }
    }

    #[test]
    fn tiny_dataset_still_gets_one_block() {
        let mut s = store(1);
        let id = s.put("tiny", ByteSize(100));
        let d = s.dataset(id).unwrap();
        assert_eq!(d.blocks.len(), 1);
        assert_eq!(d.blocks[0].bytes, ByteSize(100));
    }

    #[test]
    fn missing_dataset_yields_nothing() {
        let s = store(1);
        assert!(s.dataset(DatasetId(5)).is_none());
        assert!(s.local_blocks(DatasetId(5), NodeId(0)).is_empty());
    }
}
