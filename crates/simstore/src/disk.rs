//! A per-node disk: a registry of simulated files plus an I/O cost model.

use std::fmt;

use simcore::{ByteSize, CostModel, SimDuration};

/// Identifier of a simulated on-disk file.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u64);

impl fmt::Debug for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file{}", self.0)
    }
}

/// Metadata of a simulated file (spill file, serialized partition, ...).
#[derive(Clone, Debug)]
pub struct DiskFile {
    /// The file's id.
    pub id: FileId,
    /// Debug label.
    pub label: String,
    /// Size on disk.
    pub bytes: ByteSize,
}

/// Aggregate I/O statistics for one disk.
#[derive(Clone, Debug, Default)]
pub struct DiskStats {
    /// Total bytes written.
    pub bytes_written: ByteSize,
    /// Total bytes read.
    pub bytes_read: ByteSize,
    /// Number of write operations.
    pub writes: u64,
    /// Number of read operations.
    pub reads: u64,
    /// Total virtual time spent in disk I/O.
    pub io_time: SimDuration,
}

/// A node's disk.
///
/// Capacity is tracked but generous by default: the paper's failures are
/// heap failures; the disk exists to give serialization a realistic price.
#[derive(Clone, Debug)]
pub struct Disk {
    cost: CostModel,
    capacity: ByteSize,
    used: ByteSize,
    files: Vec<Option<DiskFile>>,
    stats: DiskStats,
}

impl Disk {
    /// Creates an empty disk.
    pub fn new(capacity: ByteSize, cost: CostModel) -> Self {
        Disk {
            cost,
            capacity,
            used: ByteSize::ZERO,
            files: Vec::new(),
            stats: DiskStats::default(),
        }
    }

    /// Bytes currently stored.
    pub fn used(&self) -> ByteSize {
        self.used
    }

    /// Remaining capacity.
    pub fn free(&self) -> ByteSize {
        self.capacity - self.used
    }

    /// I/O statistics.
    pub fn stats(&self) -> &DiskStats {
        &self.stats
    }

    /// Writes a new file of `bytes`; returns its id and the I/O time.
    ///
    /// Returns `None` if the disk is full (callers map this to
    /// `SimError::DiskFull`).
    pub fn write(
        &mut self,
        label: impl Into<String>,
        bytes: ByteSize,
    ) -> Option<(FileId, SimDuration)> {
        if self.used + bytes > self.capacity {
            return None;
        }
        let id = FileId(self.files.len() as u64);
        self.files.push(Some(DiskFile { id, label: label.into(), bytes }));
        self.used += bytes;
        let t = self.cost.disk_write(bytes);
        self.stats.bytes_written += bytes;
        self.stats.writes += 1;
        self.stats.io_time += t;
        Some((id, t))
    }

    /// Registers a file that is *already on disk* (an input block laid
    /// down before the job started): occupies space but costs no I/O
    /// time now. Returns `None` if the disk is full.
    pub fn register(
        &mut self,
        label: impl Into<String>,
        bytes: ByteSize,
    ) -> Option<FileId> {
        if self.used + bytes > self.capacity {
            return None;
        }
        let id = FileId(self.files.len() as u64);
        self.files.push(Some(DiskFile { id, label: label.into(), bytes }));
        self.used += bytes;
        Some(id)
    }

    /// Reads a whole file; returns its size and the I/O time.
    pub fn read(&mut self, id: FileId) -> Option<(ByteSize, SimDuration)> {
        let bytes = self.files.get(id.0 as usize)?.as_ref()?.bytes;
        let t = self.cost.disk_read(bytes);
        self.stats.bytes_read += bytes;
        self.stats.reads += 1;
        self.stats.io_time += t;
        Some((bytes, t))
    }

    /// Looks up file metadata.
    pub fn file(&self, id: FileId) -> Option<&DiskFile> {
        self.files.get(id.0 as usize).and_then(|f| f.as_ref())
    }

    /// Deletes a file, freeing its space. Returns the bytes freed.
    pub fn delete(&mut self, id: FileId) -> ByteSize {
        match self.files.get_mut(id.0 as usize).and_then(Option::take) {
            Some(f) => {
                self.used -= f.bytes;
                f.bytes
            }
            None => ByteSize::ZERO,
        }
    }

    /// Number of live files.
    pub fn file_count(&self) -> usize {
        self.files.iter().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> Disk {
        Disk::new(ByteSize::mib(100), CostModel::default())
    }

    #[test]
    fn write_read_delete_roundtrip() {
        let mut d = disk();
        let (id, wt) = d.write("spill", ByteSize::mib(10)).unwrap();
        assert!(wt > SimDuration::ZERO);
        assert_eq!(d.used(), ByteSize::mib(10));
        assert_eq!(d.file(id).unwrap().label, "spill");

        let (bytes, rt) = d.read(id).unwrap();
        assert_eq!(bytes, ByteSize::mib(10));
        assert!(rt > SimDuration::ZERO);
        // Reads are faster than writes under the default cost model.
        assert!(rt < wt);

        assert_eq!(d.delete(id), ByteSize::mib(10));
        assert_eq!(d.used(), ByteSize::ZERO);
        assert!(d.read(id).is_none());
        assert_eq!(d.delete(id), ByteSize::ZERO);
    }

    #[test]
    fn disk_full_is_reported() {
        let mut d = Disk::new(ByteSize::mib(5), CostModel::default());
        assert!(d.write("a", ByteSize::mib(4)).is_some());
        assert!(d.write("b", ByteSize::mib(4)).is_none());
        assert_eq!(d.file_count(), 1);
    }

    #[test]
    fn stats_accumulate() {
        let mut d = disk();
        let (id, _) = d.write("a", ByteSize::mib(1)).unwrap();
        d.read(id);
        d.read(id);
        assert_eq!(d.stats().writes, 1);
        assert_eq!(d.stats().reads, 2);
        assert_eq!(d.stats().bytes_read, ByteSize::mib(2));
        assert!(d.stats().io_time > SimDuration::ZERO);
    }
}
