//! A per-node disk: a registry of simulated files plus an I/O cost model.
//!
//! The disk is a fault-injection point: when a [`FaultInjector`] is
//! installed (see [`Disk::install_injector`]), reads and writes consult
//! it — transient verdicts surface as [`SimError::IoTransient`], and a
//! silently corrupted write stores a file whose checksum no longer
//! matches its content, which [`Disk::read_verified`] later reports as
//! [`SimError::CorruptPartition`].
//!
//! Each disk *owns* its injector. Verdicts are counter-hashed per
//! `(node, op-kind)` (see [`simcore::fault`]), so per-node injector
//! instances replaying the same plan produce exactly the schedule one
//! shared injector would — while keeping the disk `Send` for the shard
//! executor. The cluster aggregates per-disk stats back into one view.

use std::fmt;

use simcore::rng::stable_hash64;
use simcore::{
    ByteSize, CostModel, FaultInjector, FaultStats, NodeId, ReadFault, SimDuration, SimError,
    SimResult, WriteFault,
};

/// Identifier of a simulated on-disk file.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u64);

impl fmt::Debug for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file{}", self.0)
    }
}

/// Metadata of a simulated file (spill file, serialized partition, ...).
#[derive(Clone, Debug)]
pub struct DiskFile {
    /// The file's id.
    pub id: FileId,
    /// Debug label.
    pub label: String,
    /// Size on disk.
    pub bytes: ByteSize,
    /// Checksum of the content as it *should* be.
    pub checksum: u64,
    /// Checksum of the content as *stored* (differs after a silently
    /// corrupted write).
    pub stored_checksum: u64,
}

impl DiskFile {
    /// Whether the stored bytes match their checksum.
    pub fn intact(&self) -> bool {
        self.checksum == self.stored_checksum
    }
}

/// Aggregate I/O statistics for one disk.
#[derive(Clone, Debug, Default)]
pub struct DiskStats {
    /// Total bytes written.
    pub bytes_written: ByteSize,
    /// Total bytes read.
    pub bytes_read: ByteSize,
    /// Number of write operations.
    pub writes: u64,
    /// Number of read operations.
    pub reads: u64,
    /// Total virtual time spent in disk I/O.
    pub io_time: SimDuration,
    /// Transient faults surfaced to callers (injected).
    pub transient_errors: u64,
    /// Checksum mismatches surfaced by verified reads.
    pub checksum_failures: u64,
}

/// A node's disk.
///
/// Capacity is tracked but generous by default: the paper's failures are
/// heap failures; the disk exists to give serialization a realistic price
/// — and, under a fault plan, a realistic way to go wrong.
#[derive(Clone, Debug)]
pub struct Disk {
    node: NodeId,
    cost: CostModel,
    capacity: ByteSize,
    used: ByteSize,
    files: Vec<Option<DiskFile>>,
    stats: DiskStats,
    injector: Option<Box<FaultInjector>>,
}

impl Disk {
    /// Creates an empty disk belonging to `node`.
    pub fn new(node: NodeId, capacity: ByteSize, cost: CostModel) -> Self {
        Disk {
            node,
            cost,
            capacity,
            used: ByteSize::ZERO,
            files: Vec::new(),
            stats: DiskStats::default(),
            injector: None,
        }
    }

    /// Routes subsequent reads/writes through a fault injector this
    /// disk owns. Installing again replaces the previous injector
    /// (used by the shard executor to rewind a speculative round).
    pub fn install_injector(&mut self, injector: FaultInjector) {
        self.injector = Some(Box::new(injector));
    }

    /// The owned fault injector, if one is installed.
    pub fn injector(&self) -> Option<&FaultInjector> {
        self.injector.as_deref()
    }

    /// Replaces (or clears) the installed injector wholesale — the shard
    /// executor's rewind path restores a pre-round clone so an aborted
    /// speculative round leaves no trace in fault schedules or stats.
    pub fn restore_injector(&mut self, injector: Option<FaultInjector>) {
        self.injector = injector.map(Box::new);
    }

    /// Injected-fault counts charged to this disk (zeroes without an
    /// injector).
    pub fn injector_stats(&self) -> FaultStats {
        self.injector
            .as_ref()
            .map(|i| i.stats())
            .unwrap_or_default()
    }

    /// The node this disk belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Bytes currently stored.
    pub fn used(&self) -> ByteSize {
        self.used
    }

    /// Remaining capacity (explicitly saturating: a disk can never
    /// report negative free space, even if accounting drifts).
    pub fn free(&self) -> ByteSize {
        self.capacity.saturating_sub(self.used)
    }

    /// I/O statistics.
    pub fn stats(&self) -> &DiskStats {
        &self.stats
    }

    /// The deterministic checksum a file's content should have.
    fn content_checksum(id: FileId, bytes: ByteSize) -> u64 {
        stable_hash64(id.0 ^ bytes.as_u64().rotate_left(17))
    }

    fn alloc_file(&mut self, label: String, bytes: ByteSize, intact: bool) -> SimResult<FileId> {
        if self.used + bytes > self.capacity {
            return Err(SimError::DiskFull {
                node: self.node,
                requested: bytes,
            });
        }
        let id = FileId(self.files.len() as u64);
        let checksum = Self::content_checksum(id, bytes);
        let stored_checksum = if intact {
            checksum
        } else {
            checksum ^ 0xDEAD_BEEF
        };
        self.files.push(Some(DiskFile {
            id,
            label,
            bytes,
            checksum,
            stored_checksum,
        }));
        self.used += bytes;
        Ok(id)
    }

    /// Writes a new file of `bytes`; returns its id and the I/O time.
    ///
    /// Fails with [`SimError::DiskFull`] when capacity is exhausted and
    /// [`SimError::IoTransient`] when the injector says so; an injected
    /// *silent corruption* succeeds here and is only detectable through
    /// [`Disk::read_verified`] / [`DiskFile::intact`].
    pub fn write(
        &mut self,
        label: impl Into<String>,
        bytes: ByteSize,
    ) -> SimResult<(FileId, SimDuration)> {
        let verdict = match &mut self.injector {
            Some(inj) => inj.on_disk_write(self.node),
            None => WriteFault::Ok,
        };
        if verdict == WriteFault::Transient {
            self.stats.transient_errors += 1;
            return Err(SimError::IoTransient { node: self.node });
        }
        let id = self.alloc_file(label.into(), bytes, verdict != WriteFault::SilentCorruption)?;
        let t = self.cost.disk_write(bytes);
        self.stats.bytes_written += bytes;
        self.stats.writes += 1;
        self.stats.io_time += t;
        Ok((id, t))
    }

    /// Registers a file that is *already on disk* (an input block laid
    /// down before the job started): occupies space but costs no I/O
    /// time now, and is never subject to injection.
    pub fn register(&mut self, label: impl Into<String>, bytes: ByteSize) -> SimResult<FileId> {
        self.alloc_file(label.into(), bytes, true)
    }

    /// Reads a whole file; returns its size and the I/O time.
    ///
    /// Fails with [`SimError::IoTransient`] when the injector says so;
    /// does **not** verify the checksum (see [`Disk::read_verified`]).
    pub fn read(&mut self, id: FileId) -> SimResult<(ByteSize, SimDuration)> {
        let bytes = self
            .files
            .get(id.0 as usize)
            .and_then(|f| f.as_ref())
            .map(|f| f.bytes)
            .ok_or_else(|| {
                SimError::Internal(format!("read of unknown {id:?} on {}", self.node))
            })?;
        let verdict = match &mut self.injector {
            Some(inj) => inj.on_disk_read(self.node),
            None => ReadFault::Ok,
        };
        if verdict == ReadFault::Transient {
            self.stats.transient_errors += 1;
            return Err(SimError::IoTransient { node: self.node });
        }
        let t = self.cost.disk_read(bytes);
        self.stats.bytes_read += bytes;
        self.stats.reads += 1;
        self.stats.io_time += t;
        Ok((bytes, t))
    }

    /// Reads a file and verifies its checksum. The read cost is paid
    /// either way (a mismatch is only discovered after the bytes are
    /// in); a mismatch reports [`SimError::CorruptPartition`].
    pub fn read_verified(&mut self, id: FileId) -> SimResult<(ByteSize, SimDuration)> {
        let (bytes, t) = self.read(id)?;
        let intact = self
            .file(id)
            .map(DiskFile::intact)
            .ok_or_else(|| SimError::Internal(format!("file {id:?} vanished mid-read")))?;
        if intact {
            Ok((bytes, t))
        } else {
            self.stats.checksum_failures += 1;
            Err(SimError::CorruptPartition {
                node: self.node,
                file: id.0,
            })
        }
    }

    /// Looks up file metadata.
    pub fn file(&self, id: FileId) -> Option<&DiskFile> {
        self.files.get(id.0 as usize).and_then(|f| f.as_ref())
    }

    /// Deletes a file, freeing its space. Returns the bytes freed.
    pub fn delete(&mut self, id: FileId) -> ByteSize {
        match self.files.get_mut(id.0 as usize).and_then(Option::take) {
            Some(f) => {
                self.used = self.used.saturating_sub(f.bytes);
                f.bytes
            }
            None => ByteSize::ZERO,
        }
    }

    /// Drops every file (a node crash loses the whole disk). Returns
    /// the number of files lost.
    pub fn purge(&mut self) -> usize {
        let lost = self.file_count();
        self.files.clear();
        self.used = ByteSize::ZERO;
        lost
    }

    /// Number of live files.
    pub fn file_count(&self) -> usize {
        self.files.iter().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::FaultPlan;

    fn disk() -> Disk {
        Disk::new(NodeId(0), ByteSize::mib(100), CostModel::default())
    }

    #[test]
    fn write_read_delete_roundtrip() {
        let mut d = disk();
        let (id, wt) = d.write("spill", ByteSize::mib(10)).unwrap();
        assert!(wt > SimDuration::ZERO);
        assert_eq!(d.used(), ByteSize::mib(10));
        assert_eq!(d.file(id).unwrap().label, "spill");
        assert!(d.file(id).unwrap().intact());

        let (bytes, rt) = d.read(id).unwrap();
        assert_eq!(bytes, ByteSize::mib(10));
        assert!(rt > SimDuration::ZERO);
        // Reads are faster than writes under the default cost model.
        assert!(rt < wt);
        // A verified read of an intact file succeeds identically.
        assert_eq!(d.read_verified(id).unwrap().0, bytes);

        assert_eq!(d.delete(id), ByteSize::mib(10));
        assert_eq!(d.used(), ByteSize::ZERO);
        assert!(d.read(id).is_err());
        assert_eq!(d.delete(id), ByteSize::ZERO);
    }

    #[test]
    fn disk_full_is_reported() {
        let mut d = Disk::new(NodeId(2), ByteSize::mib(5), CostModel::default());
        assert!(d.write("a", ByteSize::mib(4)).is_ok());
        match d.write("b", ByteSize::mib(4)) {
            Err(SimError::DiskFull { node, requested }) => {
                assert_eq!(node, NodeId(2));
                assert_eq!(requested, ByteSize::mib(4));
            }
            other => panic!("expected DiskFull, got {other:?}"),
        }
        assert_eq!(d.file_count(), 1);
    }

    #[test]
    fn free_saturates_when_over_capacity() {
        // Accounting can momentarily exceed capacity (e.g. a capacity
        // shrink in a reconfiguration); free() must clamp to zero, not
        // wrap around to a huge value.
        let mut d = Disk::new(NodeId(0), ByteSize::mib(4), CostModel::default());
        d.write("a", ByteSize::mib(3)).unwrap();
        assert_eq!(d.free(), ByteSize::mib(1));
        d.capacity = ByteSize::mib(2); // shrink below current usage
        assert_eq!(d.free(), ByteSize::ZERO);
        // And deletion never drives `used` below zero either.
        let (id, _) = {
            d.capacity = ByteSize::mib(8);
            d.write("b", ByteSize::mib(1)).unwrap()
        };
        d.delete(id);
        d.delete(id);
        assert_eq!(d.used(), ByteSize::mib(3));
    }

    #[test]
    fn stats_accumulate() {
        let mut d = disk();
        let (id, _) = d.write("a", ByteSize::mib(1)).unwrap();
        d.read(id).unwrap();
        d.read(id).unwrap();
        assert_eq!(d.stats().writes, 1);
        assert_eq!(d.stats().reads, 2);
        assert_eq!(d.stats().bytes_read, ByteSize::mib(2));
        assert!(d.stats().io_time > SimDuration::ZERO);
    }

    #[test]
    fn injected_transients_surface_and_pass() {
        let plan = FaultPlan::new(11).with_disk_transients(400);
        let mut d = disk();
        d.install_injector(FaultInjector::new(plan));
        let mut transients = 0;
        let mut oks = 0;
        for i in 0..100 {
            match d.write(format!("f{i}"), ByteSize::kib(1)) {
                Ok(_) => oks += 1,
                Err(SimError::IoTransient { node }) => {
                    assert_eq!(node, NodeId(0));
                    transients += 1;
                }
                Err(other) => panic!("unexpected {other:?}"),
            }
        }
        assert!(transients > 0, "a 40% rate must fire in 100 writes");
        assert!(oks > 0, "the burst cap guarantees successes");
        assert_eq!(d.stats().transient_errors, transients);
        assert_eq!(d.injector_stats().transient_writes, transients);
    }

    #[test]
    fn corrupted_writes_fail_verified_reads_only() {
        let plan = FaultPlan::new(5).with_corruption(1000).with_max_burst(1000);
        let mut d = disk();
        d.install_injector(FaultInjector::new(plan));
        let (id, _) = d.write("victim", ByteSize::kib(64)).unwrap();
        assert!(!d.file(id).unwrap().intact());
        // A plain read does not notice.
        assert!(d.read(id).is_ok());
        // A verified read does.
        match d.read_verified(id) {
            Err(SimError::CorruptPartition { node, file }) => {
                assert_eq!(node, NodeId(0));
                assert_eq!(file, id.0);
            }
            other => panic!("expected CorruptPartition, got {other:?}"),
        }
        assert_eq!(d.stats().checksum_failures, 1);
    }

    #[test]
    fn purge_loses_everything() {
        let mut d = disk();
        d.write("a", ByteSize::mib(1)).unwrap();
        d.register("b", ByteSize::mib(2)).unwrap();
        assert_eq!(d.purge(), 2);
        assert_eq!(d.used(), ByteSize::ZERO);
        assert_eq!(d.file_count(), 0);
    }
}
