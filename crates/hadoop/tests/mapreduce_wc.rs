//! End-to-end Hadoop engine test: a word-count job in regular form
//! (per-task JVMs, retries) and ITask form (pooled IRS), reproducing the
//! Table 1 methodology at miniature scale.

use std::collections::BTreeMap;
use std::rc::Rc;

use hadoop::{run_itask_job, run_regular_job, HadoopConfig, MapCx, Mapper, ReduceCx, Reducer};
use hyracks::{ItaskFactories, ShuffleBatch};
use itask_core::{ITask, Scale, TaskCx, Tuple, TupleTask};
use simcore::{ByteSize, DetRng, SimResult, TaskId};

const ENTRY: u64 = 64;

#[derive(Clone, Copy, Debug)]
struct WordT(u32);

impl Tuple for WordT {
    fn heap_bytes(&self) -> u64 {
        48
    }
}

#[derive(Clone, Copy, Debug)]
struct CountT(u32, u64);

impl Tuple for CountT {
    fn heap_bytes(&self) -> u64 {
        ENTRY
    }
}

/// In-mapper combiner: aggregates counts in task memory (the pattern
/// whose state blows past small map heaps — the IMC problem of §2).
#[derive(Default)]
struct WcMapper {
    counts: BTreeMap<u32, u64>,
}

impl Mapper for WcMapper {
    type In = WordT;
    type Out = CountT;

    fn map(&mut self, cx: &mut MapCx<'_, '_, CountT>, t: &WordT) -> SimResult<()> {
        if let std::collections::btree_map::Entry::Vacant(v) = self.counts.entry(t.0) {
            cx.alloc_state(ByteSize(ENTRY))?;
            v.insert(0);
        }
        *self.counts.get_mut(&t.0).expect("present") += 1;
        Ok(())
    }

    fn close(&mut self, cx: &mut MapCx<'_, '_, CountT>) -> SimResult<()> {
        for (w, c) in std::mem::take(&mut self.counts) {
            cx.write(w % 16, CountT(w, c))?;
        }
        Ok(())
    }
}

#[derive(Default)]
struct WcReducer {
    counts: BTreeMap<u32, u64>,
}

impl Reducer for WcReducer {
    type In = CountT;
    type Out = CountT;

    fn reduce(&mut self, cx: &mut ReduceCx<'_, '_, CountT>, t: &CountT) -> SimResult<()> {
        if let std::collections::btree_map::Entry::Vacant(v) = self.counts.entry(t.0) {
            cx.alloc_state(ByteSize(ENTRY))?;
            v.insert(0);
        }
        *self.counts.get_mut(&t.0).expect("present") += t.1;
        Ok(())
    }

    fn close(&mut self, cx: &mut ReduceCx<'_, '_, CountT>) -> SimResult<()> {
        for (w, c) in std::mem::take(&mut self.counts) {
            cx.write(CountT(w, c))?;
        }
        Ok(())
    }
}

// ---- ITask versions (same conventions as the Hyracks bridge).

#[derive(Default)]
struct ItaskWcMap {
    counts: BTreeMap<u32, u64>,
}

impl ItaskWcMap {
    fn flush(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        if self.counts.is_empty() {
            return Ok(());
        }
        let mut buckets: BTreeMap<u32, Vec<CountT>> = BTreeMap::new();
        for (w, c) in std::mem::take(&mut self.counts) {
            buckets.entry(w % 16).or_default().push(CountT(w, c));
        }
        let batch = ShuffleBatch {
            buckets: buckets.into_iter().collect(),
        };
        let ser: u64 = batch
            .buckets
            .iter()
            .flat_map(|(_, v)| v)
            .map(Tuple::ser_bytes)
            .sum();
        cx.emit_final(Box::new(batch), ByteSize(ser))
    }
}

impl TupleTask for ItaskWcMap {
    type In = WordT;

    fn initialize(&mut self, _cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        Ok(())
    }

    fn process(&mut self, cx: &mut TaskCx<'_, '_>, t: &WordT) -> SimResult<()> {
        if let std::collections::btree_map::Entry::Vacant(v) = self.counts.entry(t.0) {
            cx.alloc_out(ByteSize(ENTRY))?;
            v.insert(0);
        }
        *self.counts.get_mut(&t.0).expect("present") += 1;
        Ok(())
    }

    fn interrupt(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        self.flush(cx)
    }

    fn cleanup(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        self.flush(cx)
    }
}

#[derive(Default)]
struct ItaskWcReduce {
    counts: BTreeMap<u32, u64>,
}

impl ItaskWcReduce {
    fn flush(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        if self.counts.is_empty() {
            return Ok(());
        }
        let items: Vec<CountT> = std::mem::take(&mut self.counts)
            .into_iter()
            .map(|(w, c)| CountT(w, c))
            .collect();
        let tag = cx.input_tag();
        cx.emit_to_task(TaskId(1), tag, items)
    }
}

impl TupleTask for ItaskWcReduce {
    type In = CountT;

    fn initialize(&mut self, _cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        Ok(())
    }

    fn process(&mut self, cx: &mut TaskCx<'_, '_>, t: &CountT) -> SimResult<()> {
        if let std::collections::btree_map::Entry::Vacant(v) = self.counts.entry(t.0) {
            cx.alloc_out(ByteSize(ENTRY))?;
            v.insert(0);
        }
        *self.counts.get_mut(&t.0).expect("present") += t.1;
        Ok(())
    }

    fn interrupt(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        self.flush(cx)
    }

    fn cleanup(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        self.flush(cx)
    }
}

#[derive(Default)]
struct ItaskWcMerge {
    counts: BTreeMap<u32, u64>,
}

impl TupleTask for ItaskWcMerge {
    type In = CountT;

    fn initialize(&mut self, _cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        Ok(())
    }

    fn process(&mut self, cx: &mut TaskCx<'_, '_>, t: &CountT) -> SimResult<()> {
        if let std::collections::btree_map::Entry::Vacant(v) = self.counts.entry(t.0) {
            cx.alloc_out(ByteSize(ENTRY))?;
            v.insert(0);
        }
        *self.counts.get_mut(&t.0).expect("present") += t.1;
        Ok(())
    }

    fn interrupt(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        if self.counts.is_empty() {
            return Ok(());
        }
        let items: Vec<CountT> = std::mem::take(&mut self.counts)
            .into_iter()
            .map(|(w, c)| CountT(w, c))
            .collect();
        let tag = cx.input_tag();
        let me = cx.task();
        cx.emit_to_task(me, tag, items)
    }

    fn cleanup(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        let out: Vec<CountT> = std::mem::take(&mut self.counts)
            .into_iter()
            .map(|(w, c)| CountT(w, c))
            .collect();
        let ser: u64 = out.iter().map(Tuple::ser_bytes).sum();
        cx.emit_final(Box::new(out), ByteSize(ser))
    }
}

fn factories() -> ItaskFactories {
    ItaskFactories {
        map: Rc::new(|| Box::new(Scale(ItaskWcMap::default())) as Box<dyn ITask>),
        reduce: Rc::new(|| Box::new(Scale(ItaskWcReduce::default())) as Box<dyn ITask>),
        merge: Rc::new(|| Box::new(Scale(ItaskWcMerge::default())) as Box<dyn ITask>),
    }
}

fn splits(n_words: usize, vocab: u64, seed: u64) -> (Vec<Vec<WordT>>, BTreeMap<u32, u64>) {
    let mut rng = DetRng::new(seed);
    let words: Vec<u32> = (0..n_words).map(|_| rng.below(vocab) as u32).collect();
    let mut truth = BTreeMap::new();
    for &w in &words {
        *truth.entry(w).or_insert(0u64) += 1;
    }
    let splits = words
        .chunks(2_500)
        .map(|c| c.iter().map(|&w| WordT(w)).collect())
        .collect();
    (splits, truth)
}

fn as_map(outs: Vec<CountT>) -> BTreeMap<u32, u64> {
    let mut m = BTreeMap::new();
    for CountT(w, c) in outs {
        *m.entry(w).or_insert(0) += c;
    }
    m
}

#[test]
fn regular_job_completes_with_generous_heaps() {
    let (splits, truth) = splits(50_000, 3_000, 1);
    // "4GB" map/reduce heaps.
    let cfg = HadoopConfig::table1(4, 4096, 4096, 4, 4);
    let run = run_regular_job(&cfg, splits, WcMapper::default, WcReducer::default);
    assert!(run.report.outcome.ok());
    assert_eq!(as_map(run.result.unwrap()), truth);
    assert_eq!(run.map_attempts, 20); // 50k words / 2.5k per split
    assert!(run.report.counter("hadoop.spills") > 0.0);
}

#[test]
fn small_map_heap_triggers_retries_then_job_failure() {
    // 24000 distinct words -> ~1.5MiB of combiner state per split vs a
    // "160MB" (156KiB) map heap.
    let (splits, _) = splits(60_000, 24_000, 2);
    let cfg = HadoopConfig::table1(4, 160, 4096, 4, 4);
    let run = run_regular_job(&cfg, splits, WcMapper::default, WcReducer::default);
    assert!(run.result.is_err());
    assert!(run.report.outcome.is_oom());
    // Every failing split burned its full YARN attempt budget.
    assert!(run.map_attempts > 20, "attempts = {}", run.map_attempts);
    // The crash time reflects the retry storm (the CTime effect).
    assert!(run.report.elapsed > simcore::SimDuration::ZERO);
}

#[test]
fn itask_version_survives_the_same_configuration() {
    let (splits, truth) = splits(60_000, 24_000, 2);
    let cfg = HadoopConfig::table1(4, 160, 4096, 4, 4);
    // Regular crashes (previous test); ITask with the same config pools
    // 4 x 160MB per node and survives.
    let (report, result) = run_itask_job::<WordT, CountT, CountT>(&cfg, splits, &factories());
    assert!(report.outcome.ok(), "{:?}", report.outcome);
    assert_eq!(as_map(result.unwrap()), truth);
}

#[test]
fn regular_and_itask_agree_on_results() {
    let (sp, _) = splits(30_000, 2_000, 3);
    let cfg = HadoopConfig::table1(4, 4096, 4096, 4, 4);
    let reg = run_regular_job(&cfg, sp.clone(), WcMapper::default, WcReducer::default);
    let (_, it) = run_itask_job::<WordT, CountT, CountT>(&cfg, sp, &factories());
    assert_eq!(as_map(reg.result.unwrap()), as_map(it.unwrap()));
}
