//! Attempt-level fault semantics: OMEs are deterministic (relaunching a
//! fresh JVM on the same input reproduces them, so the retry wrappers
//! hand them straight to the stage scheduler's YARN chain), while
//! transient substrate faults are relaunch-worthy — a re-salted attempt
//! sees different injection decisions and can succeed.

use hadoop::{run_map_attempt_retrying, HadoopConfig, MapCx, Mapper};
use itask_core::Tuple;
use simcore::{ByteSize, FaultPlan, SimResult};

#[derive(Clone, Copy, Debug)]
struct KvT(u32);

impl Tuple for KvT {
    fn heap_bytes(&self) -> u64 {
        48
    }
}

/// Pass-through mapper: every tuple goes to the sort buffer, so a small
/// `sort_buffer` forces real (injectable) spill writes.
#[derive(Default)]
struct SpillyMapper;

impl Mapper for SpillyMapper {
    type In = KvT;
    type Out = KvT;

    fn map(&mut self, cx: &mut MapCx<'_, '_, KvT>, t: &KvT) -> SimResult<()> {
        cx.write(t.0 % 4, *t)
    }

    fn close(&mut self, _cx: &mut MapCx<'_, '_, KvT>) -> SimResult<()> {
        Ok(())
    }
}

/// Combiner-style mapper whose state outgrows the task heap: the
/// studied deterministic OME.
#[derive(Default)]
struct HoarderMapper;

impl Mapper for HoarderMapper {
    type In = KvT;
    type Out = KvT;

    fn map(&mut self, cx: &mut MapCx<'_, '_, KvT>, t: &KvT) -> SimResult<()> {
        cx.alloc_state(ByteSize::kib(4))?;
        cx.write(t.0 % 4, *t)
    }

    fn close(&mut self, _cx: &mut MapCx<'_, '_, KvT>) -> SimResult<()> {
        Ok(())
    }
}

fn spilly_cfg() -> HadoopConfig {
    let mut cfg = HadoopConfig::table1(1, 1024, 1024, 1, 1);
    // Tiny sort buffer → frequent spill writes → many injectable ops.
    cfg.sort_buffer = ByteSize(256);
    cfg
}

fn frames(n: usize) -> Vec<Vec<KvT>> {
    vec![(0..n as u32).map(KvT).collect()]
}

#[test]
fn hard_substrate_fault_burns_the_whole_attempt_budget() {
    let mut cfg = spilly_cfg();
    // Every spill write fails transiently; a plain (unretried) attempt
    // write dies on the first verdict, and a fresh JVM resets the
    // injector, so every relaunch dies the same way.
    cfg.fault_plan = Some(FaultPlan::new(7).with_disk_transients(1000));
    let (outcome, out) = run_map_attempt_retrying(&cfg, frames(64), SpillyMapper::default);
    assert!(!outcome.result.ok(), "all relaunches must fail");
    assert_eq!(
        outcome.extra_attempts,
        cfg.max_attempts - 1,
        "the wrapper folds the whole YARN budget into one outcome"
    );
    assert!(out.is_empty(), "a dead attempt contributes no shuffle data");
    match &outcome.result {
        hadoop::AttemptResult::Failed(e) => {
            assert!(
                e.is_substrate() && !e.is_oom(),
                "died of substrate, not OME: {e}"
            )
        }
        other => panic!("unexpected result {other:?}"),
    }
}

#[test]
fn transient_fault_survived_by_resalted_relaunch() {
    // At a moderate fault rate some seeds kill the first attempt while a
    // re-salted relaunch sails through. Scanning a fixed seed range is
    // deterministic; we require at least one seed to demonstrate the
    // recovered-by-relaunch outcome.
    let mut proved = false;
    for seed in 0..64u64 {
        let mut cfg = spilly_cfg();
        cfg.fault_plan = Some(FaultPlan::new(seed).with_disk_transients(300));
        let (outcome, out) = run_map_attempt_retrying(&cfg, frames(64), SpillyMapper::default);
        if outcome.result.ok() && outcome.extra_attempts > 0 {
            assert!(
                !out.is_empty(),
                "the surviving relaunch must produce output"
            );
            proved = true;
            break;
        }
    }
    assert!(
        proved,
        "no seed in range produced a survived-by-relaunch attempt"
    );
}

#[test]
fn fault_free_plan_never_relaunches() {
    let mut cfg = spilly_cfg();
    cfg.fault_plan = Some(FaultPlan::new(42)); // armed but fault-free
    let (outcome, out) = run_map_attempt_retrying(&cfg, frames(64), SpillyMapper::default);
    assert!(outcome.result.ok());
    assert_eq!(outcome.extra_attempts, 0);
    let total: usize = out.values().map(Vec::len).sum();
    assert_eq!(total, 64);
}

#[test]
fn ome_is_not_relaunched_even_under_chaos() {
    let mut cfg = HadoopConfig::table1(1, 64, 64, 1, 1); // 64 KiB heap
    cfg.sort_buffer = ByteSize(256);
    cfg.fault_plan = Some(FaultPlan::new(7).with_disk_transients(50));
    let (outcome, out) = run_map_attempt_retrying(&cfg, frames(256), HoarderMapper::default);
    assert!(!outcome.result.ok());
    match &outcome.result {
        hadoop::AttemptResult::Failed(e) => assert!(e.is_oom(), "expected OME, got {e}"),
        other => panic!("unexpected result {other:?}"),
    }
    assert_eq!(
        outcome.extra_attempts, 0,
        "OMEs are deterministic; the wrapper must not burn relaunches on them"
    );
    assert!(out.is_empty());
}
