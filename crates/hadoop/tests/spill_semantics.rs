//! Hadoop attempt internals: sort-buffer spills keep framework memory
//! bounded; user state is what kills attempts; the retry ladder and the
//! pooled-ITask bridge behave per the engine contract.

use std::collections::BTreeMap;

use hadoop::{run_map_attempt, run_regular_job, HadoopConfig, MapCx, Mapper, ReduceCx, Reducer};
use itask_core::Tuple;
use simcore::{ByteSize, SimResult};

#[derive(Clone, Copy, Debug)]
struct Rec(u64);

impl Tuple for Rec {
    fn heap_bytes(&self) -> u64 {
        64
    }
}

/// Pass-through mapper: everything goes to the sort buffer.
#[derive(Default)]
struct Emit;

impl Mapper for Emit {
    type In = Rec;
    type Out = Rec;

    fn map(&mut self, cx: &mut MapCx<'_, '_, Rec>, t: &Rec) -> SimResult<()> {
        cx.write((t.0 % 8) as u32, *t)
    }

    fn close(&mut self, _cx: &mut MapCx<'_, '_, Rec>) -> SimResult<()> {
        Ok(())
    }
}

/// State-hoarding mapper: retains `bytes_per_record` forever.
struct Hoard(u64);

impl Mapper for Hoard {
    type In = Rec;
    type Out = Rec;

    fn map(&mut self, cx: &mut MapCx<'_, '_, Rec>, t: &Rec) -> SimResult<()> {
        cx.alloc_state(ByteSize(self.0))?;
        cx.write(0, *t)
    }

    fn close(&mut self, _cx: &mut MapCx<'_, '_, Rec>) -> SimResult<()> {
        Ok(())
    }
}

#[derive(Default)]
struct Sum {
    by_key: BTreeMap<u64, u64>,
}

impl Reducer for Sum {
    type In = Rec;
    type Out = Rec;

    fn reduce(&mut self, cx: &mut ReduceCx<'_, '_, Rec>, t: &Rec) -> SimResult<()> {
        if !self.by_key.contains_key(&t.0) {
            cx.alloc_state(ByteSize(32))?;
        }
        *self.by_key.entry(t.0).or_insert(0) += 1;
        Ok(())
    }

    fn close(&mut self, cx: &mut ReduceCx<'_, '_, Rec>) -> SimResult<()> {
        for (_k, v) in std::mem::take(&mut self.by_key) {
            cx.write(Rec(v))?;
        }
        Ok(())
    }
}

fn tiny_cfg() -> HadoopConfig {
    // 256KB task heaps, 100KB sort buffer.
    let mut cfg = HadoopConfig::table1(2, 256, 256, 2, 2);
    cfg.sort_buffer = ByteSize::kib(64);
    cfg
}

#[test]
fn spills_bound_framework_memory() {
    // 20x the sort buffer of emissions must pass through a 256KB heap.
    let cfg = tiny_cfg();
    let frames: Vec<Vec<Rec>> = (0..20).map(|_| (0..320).map(Rec).collect()).collect();
    let (outcome, out) = run_map_attempt(&cfg, frames, Emit);
    assert!(outcome.result.ok(), "{:?}", outcome.result);
    assert!(
        outcome.spills >= 5,
        "expected many spills, got {}",
        outcome.spills
    );
    assert!(outcome.peak_heap <= ByteSize::kib(256));
    let emitted: usize = out.values().map(Vec::len).sum();
    assert_eq!(emitted, 20 * 320);
}

#[test]
fn user_state_kills_the_attempt_not_the_framework() {
    let cfg = tiny_cfg();
    let frames: Vec<Vec<Rec>> = vec![(0..10_000).map(Rec).collect()];
    let (outcome, out) = run_map_attempt(&cfg, frames, Hoard(256));
    assert!(!outcome.result.ok(), "hoarding 2.5MB in 256KB must die");
    assert!(out.is_empty(), "failed attempts publish nothing");
    assert!(
        outcome.gc_time > simcore::SimDuration::ZERO,
        "it fought first"
    );
}

#[test]
fn regular_job_counts_attempts_and_completes() {
    let cfg = tiny_cfg();
    let splits: Vec<Vec<Rec>> = (0..6)
        .map(|s| (0..200).map(|i| Rec(s * 200 + i)).collect())
        .collect();
    let run = run_regular_job(&cfg, splits, || Emit, Sum::default);
    assert!(run.report.outcome.ok());
    assert_eq!(run.map_attempts, 6);
    assert_eq!(
        run.reduce_attempts as usize,
        8.min(cfg.reduce_tasks as usize)
    );
    // 1200 distinct keys, each counted once.
    let total: u64 = run.result.unwrap().iter().map(|r| r.0).sum();
    assert_eq!(total, 1200);
}

#[test]
fn failed_tasks_exhaust_the_retry_budget() {
    let cfg = tiny_cfg();
    let splits: Vec<Vec<Rec>> = vec![
        (0..200).map(Rec).collect(),    // small enough to survive Hoard
        (0..10_000).map(Rec).collect(), // hoarded to death
    ];
    let run = run_regular_job(&cfg, splits, || Hoard(256), Sum::default);
    assert!(!run.report.outcome.ok());
    // One clean task + one task burning its full YARN budget.
    assert_eq!(run.map_attempts, 1 + cfg.max_attempts);
}

#[test]
fn pooled_heap_is_the_slot_aggregate() {
    let cfg = HadoopConfig::table1(4, 512, 1024, 8, 3);
    assert_eq!(
        cfg.pooled_heap(),
        ByteSize::kib(8 * 512).max(ByteSize::kib(3 * 1024))
    );
}

mod chunk_properties {
    use super::Rec;
    use hadoop::{run_map_attempt, HadoopConfig};
    use proptest::prelude::*;
    use simcore::ByteSize;

    /// A mapper that forwards everything, used to observe framing.
    struct Fwd;
    impl hadoop::Mapper for Fwd {
        type In = Rec;
        type Out = Rec;
        fn map(&mut self, cx: &mut hadoop::MapCx<'_, '_, Rec>, t: &Rec) -> simcore::SimResult<()> {
            cx.write(0, *t)
        }
        fn close(&mut self, _cx: &mut hadoop::MapCx<'_, '_, Rec>) -> simcore::SimResult<()> {
            Ok(())
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Every record offered to an attempt comes out the other side
        /// exactly once, regardless of how many frames it spans.
        #[test]
        fn attempts_conserve_records(
            frames in proptest::collection::vec(1usize..400, 1..6),
        ) {
            let cfg = HadoopConfig::table1(2, 8192, 8192, 2, 2);
            let mut next = 0u64;
            let input: Vec<Vec<Rec>> = frames
                .iter()
                .map(|&n| {
                    (0..n)
                        .map(|_| {
                            let r = Rec(next);
                            next += 1;
                            r
                        })
                        .collect()
                })
                .collect();
            let total: usize = frames.iter().sum();
            let (outcome, out) = run_map_attempt(&cfg, input, Fwd);
            prop_assert!(outcome.result.ok());
            let emitted: usize = out.values().map(Vec::len).sum();
            prop_assert_eq!(emitted, total);
            prop_assert!(outcome.peak_heap <= ByteSize::mib(8));
        }
    }
}
