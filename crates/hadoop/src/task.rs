//! The Mapper / Reducer programming interface and attempt contexts.

use std::collections::BTreeMap;

use itask_core::Tuple;
use simcluster::WorkCx;
use simcore::{ByteSize, CostModel, SimDuration, SimResult, SpaceId};

/// Context for a running map attempt: user-state allocation plus
/// `context.write`-style emission into the spill-managed sort buffer.
pub struct MapCx<'a, 'b, Out: Tuple> {
    pub(crate) work: &'a mut WorkCx<'b>,
    pub(crate) state_space: SpaceId,
    pub(crate) buffer_space: SpaceId,
    pub(crate) buffer_bytes: &'a mut ByteSize,
    pub(crate) sort_buffer: ByteSize,
    pub(crate) spilled_ser: &'a mut ByteSize,
    pub(crate) spills: &'a mut u32,
    pub(crate) out: &'a mut BTreeMap<u32, Vec<Out>>,
}

impl<Out: Tuple> MapCx<'_, '_, Out> {
    /// The cost model.
    pub fn cost(&self) -> CostModel {
        self.work.cost()
    }

    /// Consumes CPU time.
    pub fn charge(&mut self, t: SimDuration) {
        self.work.charge(t);
    }

    /// Allocates user state (combiner maps, lemmatizer scratch, joined
    /// XML objects — where the studied OMEs come from).
    pub fn alloc_state(&mut self, bytes: ByteSize) -> SimResult<()> {
        let s = self.state_space;
        self.work.alloc(s, bytes)
    }

    /// Frees user state.
    pub fn free_state(&mut self, bytes: ByteSize) -> ByteSize {
        let s = self.state_space;
        self.work.free(s, bytes)
    }

    /// Live user-state bytes.
    pub fn state_bytes(&mut self) -> ByteSize {
        let s = self.state_space;
        self.work.node().heap.space_live(s)
    }

    /// `context.write(key, value)`: buffers the tuple; when the sort
    /// buffer fills, it is spilled to disk and the heap charge released
    /// (Hadoop's own out-of-core path — framework buffers never OME).
    pub fn write(&mut self, bucket: u32, tuple: Out) -> SimResult<()> {
        let bytes = ByteSize(tuple.heap_bytes());
        let buf = self.buffer_space;
        self.work.alloc(buf, bytes)?;
        *self.buffer_bytes += bytes;
        self.out.entry(bucket).or_default().push(tuple);
        if *self.buffer_bytes > self.sort_buffer {
            self.spill()?;
        }
        Ok(())
    }

    /// Spills the sort buffer to disk.
    pub(crate) fn spill(&mut self) -> SimResult<()> {
        if self.buffer_bytes.is_zero() {
            return Ok(());
        }
        // Sort cost before writing the run.
        self.work
            .charge(self.work.cost().serialize_cpu(*self.buffer_bytes));
        let ser = self.buffer_bytes.mul_ratio(1, 3).max(ByteSize(1));
        let spill_no = *self.spills;
        self.work
            .node()
            .disk_write_async(format!("spill{spill_no}"), ser)?;
        *self.spilled_ser += ser;
        *self.spills += 1;
        let buf = self.buffer_space;
        let released = *self.buffer_bytes;
        self.work.free(buf, released);
        *self.buffer_bytes = ByteSize::ZERO;
        Ok(())
    }
}

/// Context for a running reduce attempt: user-state allocation plus
/// final `context.write` to HDFS (no heap accumulation).
pub struct ReduceCx<'a, 'b, Out: Tuple> {
    pub(crate) work: &'a mut WorkCx<'b>,
    pub(crate) state_space: SpaceId,
    pub(crate) out: &'a mut Vec<Out>,
    pub(crate) written_ser: &'a mut ByteSize,
}

impl<Out: Tuple> ReduceCx<'_, '_, Out> {
    /// The cost model.
    pub fn cost(&self) -> CostModel {
        self.work.cost()
    }

    /// Consumes CPU time.
    pub fn charge(&mut self, t: SimDuration) {
        self.work.charge(t);
    }

    /// Allocates user state.
    pub fn alloc_state(&mut self, bytes: ByteSize) -> SimResult<()> {
        let s = self.state_space;
        self.work.alloc(s, bytes)
    }

    /// Frees user state.
    pub fn free_state(&mut self, bytes: ByteSize) -> ByteSize {
        let s = self.state_space;
        self.work.free(s, bytes)
    }

    /// Live user-state bytes.
    pub fn state_bytes(&mut self) -> ByteSize {
        let s = self.state_space;
        self.work.node().heap.space_live(s)
    }

    /// Writes a final record to HDFS (streamed out, no heap charge).
    pub fn write(&mut self, tuple: Out) -> SimResult<()> {
        let ser = ByteSize(tuple.ser_bytes());
        self.work.charge(self.work.cost().serialize_cpu(ser));
        *self.written_ser += ser;
        self.out.push(tuple);
        Ok(())
    }
}

/// A Hadoop map task (user code).
pub trait Mapper: Send {
    /// Input record type.
    type In: Tuple;
    /// Emitted key-value type (bucketed by reduce task).
    type Out: Tuple;

    /// Processes one input record.
    fn map(&mut self, cx: &mut MapCx<'_, '_, Self::Out>, t: &Self::In) -> SimResult<()>;

    /// End of split (flush combiners etc.).
    fn close(&mut self, cx: &mut MapCx<'_, '_, Self::Out>) -> SimResult<()>;
}

/// A Hadoop reduce task (user code). Tuples arrive grouped by bucket and
/// sorted by the shuffle; grouping into key-runs is the reducer's
/// concern (apps typically aggregate into a map keyed by `In`'s key).
pub trait Reducer: Send {
    /// Shuffled input type.
    type In: Tuple;
    /// Final output record type.
    type Out: Tuple;

    /// Processes one shuffled tuple.
    fn reduce(&mut self, cx: &mut ReduceCx<'_, '_, Self::Out>, t: &Self::In) -> SimResult<()>;

    /// End of bucket.
    fn close(&mut self, cx: &mut ReduceCx<'_, '_, Self::Out>) -> SimResult<()>;
}
