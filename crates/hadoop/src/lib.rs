#![warn(missing_docs)]

//! A Hadoop-like MapReduce engine on the cluster simulator.
//!
//! What distinguishes it from the Hyracks engine (and drives Table 1):
//!
//! * **per-task JVMs** — every regular task attempt runs in its own heap
//!   of `MH` (map) or `RH` (reduce) bytes, with `MM`/`MR` concurrent
//!   slots per node (the framework parameters the StackOverflow fixes
//!   keep tuning);
//! * **sort-buffer spills** — map output is buffered up to `io.sort.mb`
//!   and spilled to disk, so framework buffers never OME; the crashes
//!   come from *user* state, exactly as in the studied problems;
//! * **YARN-style retries** — an attempt that dies with an OME is
//!   rescheduled until `max_attempts` is exhausted, which is why the
//!   paper's CTime (time to the final crash) dwarfs PTime;
//! * **the ITask version** pools each node's task memory (`MM × MH`)
//!   under one IRS instead of fencing it per task, which is where its
//!   advantage over manual tuning comes from.

pub mod attempt;
pub mod config;
pub mod itask;
pub mod job;
pub mod task;

pub use attempt::{
    run_map_attempt, run_map_attempt_retrying, run_reduce_attempt, run_reduce_attempt_retrying,
    AttemptOutcome, AttemptResult,
};
pub use config::HadoopConfig;
pub use itask::{run_itask_job, JobHandle, ITASK_BUCKET_MULTIPLIER};
pub use job::{run_regular_job, RegularJobResult};
pub use task::{MapCx, Mapper, ReduceCx, Reducer};
