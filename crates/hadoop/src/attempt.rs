//! Task attempts: one attempt = one simulated task JVM (its own heap),
//! run to completion or to its OME.

use std::collections::BTreeMap;

use itask_core::Tuple;
use simcluster::{NodeSim, NodeState, StepOutcome, Work, WorkCx};
use simcore::{ByteSize, FaultInjector, NodeId, SimDuration, SimError, SpaceId};

use crate::config::HadoopConfig;
use crate::task::{MapCx, Mapper, ReduceCx, Reducer};

/// How an attempt ended.
#[derive(Clone, Debug)]
pub enum AttemptResult {
    /// Ran to completion.
    Completed,
    /// Died (OME in practice).
    Failed(SimError),
}

impl AttemptResult {
    /// Whether the attempt succeeded.
    pub fn ok(&self) -> bool {
        matches!(self, AttemptResult::Completed)
    }
}

/// Everything the job scheduler needs to know about one attempt.
#[derive(Clone, Debug)]
pub struct AttemptOutcome {
    /// Completed or failed.
    pub result: AttemptResult,
    /// Wall-clock duration of the attempt (to completion or crash).
    pub duration: SimDuration,
    /// Stop-the-world GC time inside the attempt's JVM.
    pub gc_time: SimDuration,
    /// Peak heap of the attempt's JVM.
    pub peak_heap: ByteSize,
    /// Spill files written (map attempts).
    pub spills: u32,
    /// Substrate-fault relaunches folded into this outcome: the retry
    /// wrappers re-run an attempt that died of a *transient* substrate
    /// error (disk hiccup, corruption) and accumulate the wasted time
    /// here. OMEs are deterministic and are never folded — the stage
    /// scheduler expands those into their full YARN retry chain.
    pub extra_attempts: u32,
}

/// Golden-ratio increment that re-salts the fault seed per relaunch, so
/// a retried attempt does not deterministically replay the same faults.
const ATTEMPT_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

fn fresh_jvm(heap: ByteSize, cfg: &HadoopConfig, salt: u64) -> NodeSim {
    // One core per task JVM; a generous virtual disk for spills.
    let mut state = NodeState::new(NodeId(0), 1, heap, ByteSize::gib(4));
    if let Some(plan) = &cfg.fault_plan {
        // Each attempt JVM gets its own injector: same plan, seed
        // re-salted by attempt number (salt 0 = the plan verbatim).
        let mut plan = plan.clone();
        plan.seed ^= salt;
        state.install_injector(FaultInjector::new(plan));
    }
    NodeSim::new(state)
}

fn drive(sim: &mut NodeSim) -> AttemptResult {
    // Attempt JVMs are single-node worlds: rounds run inline through the
    // shard executor's solo entry so trace events carry the same
    // stream-namespaced ids as cluster runs at any --shards setting.
    let mut stream_seq = 0u64;
    loop {
        if sim.live_count() == 0 {
            return AttemptResult::Completed;
        }
        let round = simcluster::ShardExecutor::run_solo_round(sim, &mut stream_seq);
        if let Some((_, e)) = round.failed.into_iter().next() {
            if e.is_oom() {
                // Death throes: a JVM at the GC-overhead limit performs a
                // burst of desperate full collections (clearing soft
                // references, retrying) before the OutOfMemoryError
                // finally propagates. This is a large part of why the
                // paper's CTime dwarfs a clean run.
                for _ in 0..8 {
                    sim.node_mut().force_full_gc();
                }
            }
            return AttemptResult::Failed(e);
        }
    }
}

struct MapWork<M: Mapper> {
    mapper: M,
    frames: std::collections::VecDeque<Vec<M::In>>,
    cfg: HadoopConfig,
    cursor: usize,
    state_space: Option<SpaceId>,
    buffer_space: Option<SpaceId>,
    frame_space: Option<SpaceId>,
    buffer_bytes: ByteSize,
    spilled_ser: ByteSize,
    spills: u32,
    out: BTreeMap<u32, Vec<M::Out>>,
    closed: bool,
}

impl<M: Mapper> MapWork<M> {
    #[allow(clippy::too_many_arguments)] // mirrors the context fields
    fn cx<'a, 'b>(
        work: &'a mut WorkCx<'b>,
        state_space: SpaceId,
        buffer_space: SpaceId,
        cfg: &HadoopConfig,
        buffer_bytes: &'a mut ByteSize,
        spilled_ser: &'a mut ByteSize,
        spills: &'a mut u32,
        out: &'a mut BTreeMap<u32, Vec<M::Out>>,
    ) -> MapCx<'a, 'b, M::Out> {
        MapCx {
            work,
            state_space,
            buffer_space,
            buffer_bytes,
            sort_buffer: cfg.sort_buffer,
            spilled_ser,
            spills,
            out,
        }
    }

    fn run(&mut self, cx: &mut WorkCx<'_>) -> Result<bool, SimError> {
        let state_space = match self.state_space {
            Some(s) => s,
            None => {
                let s = cx.create_space("map.state");
                self.state_space = Some(s);
                s
            }
        };
        let buffer_space = match self.buffer_space {
            Some(s) => s,
            None => {
                let s = cx.create_space("map.sortbuf");
                self.buffer_space = Some(s);
                s
            }
        };
        while !cx.out_of_quantum() {
            let Some(frame) = self.frames.front() else {
                break;
            };
            if self.frame_space.is_none() {
                let mem: u64 = frame.iter().map(Tuple::heap_bytes).sum();
                let ser: u64 = frame.iter().map(Tuple::ser_bytes).sum();
                let space = cx.create_space("map.frame");
                cx.charge(cx.cost().disk_read(ByteSize(ser)));
                cx.charge(cx.cost().deserialize_cpu(ByteSize(ser)));
                if let Err(e) = cx.alloc(space, ByteSize(mem)) {
                    cx.node().heap.release_space(space);
                    return Err(e);
                }
                self.frame_space = Some(space);
                self.cursor = 0;
            }
            let frame_len = self.frames.front().map(Vec::len).unwrap_or(0);
            while self.cursor < frame_len && !cx.out_of_quantum() {
                let cost = {
                    let t = &self.frames.front().expect("frame")[self.cursor];
                    cx.cost().tuple_cost(ByteSize(t.ser_bytes()))
                };
                cx.charge(cost);
                {
                    let frame = self.frames.front().expect("frame");
                    let t = &frame[self.cursor];
                    let mut mcx = Self::cx(
                        cx,
                        state_space,
                        buffer_space,
                        &self.cfg,
                        &mut self.buffer_bytes,
                        &mut self.spilled_ser,
                        &mut self.spills,
                        &mut self.out,
                    );
                    self.mapper.map(&mut mcx, t)?;
                }
                self.cursor += 1;
            }
            if self.cursor >= frame_len {
                if let Some(space) = self.frame_space.take() {
                    cx.node().heap.release_space(space);
                }
                self.frames.pop_front();
            }
        }
        if self.frames.is_empty() && !self.closed {
            let mut mcx = Self::cx(
                cx,
                state_space,
                buffer_space,
                &self.cfg,
                &mut self.buffer_bytes,
                &mut self.spilled_ser,
                &mut self.spills,
                &mut self.out,
            );
            self.mapper.close(&mut mcx)?;
            mcx.spill()?;
            // Final merge of spill runs: read + write everything once.
            let total = self.spilled_ser;
            cx.charge(cx.cost().disk_read(total));
            cx.charge(cx.cost().disk_write(total));
            cx.node().heap.release_space(state_space);
            cx.node().heap.release_space(buffer_space);
            self.closed = true;
            return Ok(true);
        }
        Ok(self.frames.is_empty())
    }
}

impl<M: Mapper> Work for MapWork<M> {
    fn step(&mut self, cx: &mut WorkCx<'_>) -> StepOutcome {
        match self.run(cx) {
            Ok(true) => StepOutcome::Finished,
            Ok(false) => StepOutcome::Ran,
            Err(e) => StepOutcome::Failed(e),
        }
    }

    fn label(&self) -> String {
        "map-attempt".into()
    }
}

/// Runs one map attempt in a fresh task JVM. Returns the outcome and
/// the (bucketed) map output — empty if the attempt died.
pub fn run_map_attempt<M: Mapper + 'static>(
    cfg: &HadoopConfig,
    frames: Vec<Vec<M::In>>,
    mapper: M,
) -> (AttemptOutcome, BTreeMap<u32, Vec<M::Out>>) {
    run_map_attempt_salted(cfg, frames, mapper, 0)
}

fn run_map_attempt_salted<M: Mapper + 'static>(
    cfg: &HadoopConfig,
    frames: Vec<Vec<M::In>>,
    mapper: M,
    salt: u64,
) -> (AttemptOutcome, BTreeMap<u32, Vec<M::Out>>) {
    let mut sim = fresh_jvm(cfg.map_heap, cfg, salt);
    // The worker is recovered after the run to harvest its outputs, so
    // it communicates through the node only.
    let work = MapWork {
        mapper,
        frames: frames.into_iter().collect(),
        cfg: cfg.clone(),
        cursor: 0,
        state_space: None,
        buffer_space: None,
        frame_space: None,
        buffer_bytes: ByteSize::ZERO,
        spilled_ser: ByteSize::ZERO,
        spills: 0,
        out: BTreeMap::new(),
        closed: false,
    };
    let out_cell = std::sync::Arc::new(std::sync::Mutex::new(BTreeMap::new()));
    let spills_cell = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
    struct Shim<M: Mapper> {
        inner: MapWork<M>,
        out: std::sync::Arc<std::sync::Mutex<BTreeMap<u32, Vec<M::Out>>>>,
        spills: std::sync::Arc<std::sync::atomic::AtomicU32>,
    }
    impl<M: Mapper> Work for Shim<M> {
        fn step(&mut self, cx: &mut WorkCx<'_>) -> StepOutcome {
            let outcome = self.inner.step(cx);
            if matches!(outcome, StepOutcome::Finished) {
                *self.out.lock().unwrap() = std::mem::take(&mut self.inner.out);
                self.spills
                    .store(self.inner.spills, std::sync::atomic::Ordering::Relaxed);
            }
            outcome
        }
        fn label(&self) -> String {
            self.inner.label()
        }
    }
    sim.spawn(Box::new(Shim {
        inner: work,
        out: out_cell.clone(),
        spills: spills_cell.clone(),
    }));
    let result = drive(&mut sim);
    let node = sim.node();
    let outcome = AttemptOutcome {
        result,
        duration: node.now.since(simcore::SimTime::ZERO),
        gc_time: node.gc_time,
        peak_heap: node.heap.peak_used(),
        spills: spills_cell.load(std::sync::atomic::Ordering::Relaxed),
        extra_attempts: 0,
    };
    let out = std::mem::take(&mut *out_cell.lock().unwrap());
    (outcome, out)
}

/// Runs a map attempt, relaunching (up to the YARN attempt budget) when
/// it dies of a transient substrate fault. OMEs are deterministic —
/// relaunching cannot help — so they are returned immediately and the
/// stage scheduler models their retry chain instead. Each relaunch gets
/// a re-salted fault seed; its wasted duration, GC time and peak heap
/// are folded into the returned outcome, with `extra_attempts` counting
/// the relaunches.
pub fn run_map_attempt_retrying<M: Mapper + 'static>(
    cfg: &HadoopConfig,
    frames: Vec<Vec<M::In>>,
    mapper: impl Fn() -> M,
) -> (AttemptOutcome, BTreeMap<u32, Vec<M::Out>>)
where
    M::In: Clone,
{
    let budget = cfg.max_attempts.max(1);
    let mut wasted = SimDuration::ZERO;
    let mut wasted_gc = SimDuration::ZERO;
    let mut peak = ByteSize::ZERO;
    let mut extra = 0u32;
    loop {
        let salt = (extra as u64).wrapping_mul(ATTEMPT_SALT);
        let (mut outcome, out) = run_map_attempt_salted(cfg, frames.clone(), mapper(), salt);
        let relaunchable = matches!(&outcome.result,
            AttemptResult::Failed(e) if e.is_substrate() && !e.is_oom());
        if relaunchable && extra + 1 < budget {
            wasted += outcome.duration;
            wasted_gc += outcome.gc_time;
            peak = peak.max(outcome.peak_heap);
            extra += 1;
            continue;
        }
        outcome.duration += wasted;
        outcome.gc_time += wasted_gc;
        outcome.peak_heap = outcome.peak_heap.max(peak);
        outcome.extra_attempts = extra;
        return (outcome, out);
    }
}

struct ReduceWork<R: Reducer> {
    reducer: R,
    frames: std::collections::VecDeque<Vec<R::In>>,
    cursor: usize,
    state_space: Option<SpaceId>,
    frame_space: Option<SpaceId>,
    out: Vec<R::Out>,
    written_ser: ByteSize,
    closed: bool,
}

impl<R: Reducer> ReduceWork<R> {
    fn run(&mut self, cx: &mut WorkCx<'_>) -> Result<bool, SimError> {
        let state_space = match self.state_space {
            Some(s) => s,
            None => {
                let s = cx.create_space("reduce.state");
                self.state_space = Some(s);
                s
            }
        };
        while !cx.out_of_quantum() {
            let Some(frame) = self.frames.front() else {
                break;
            };
            if self.frame_space.is_none() {
                let mem: u64 = frame.iter().map(Tuple::heap_bytes).sum();
                let ser: u64 = frame.iter().map(Tuple::ser_bytes).sum();
                let space = cx.create_space("reduce.frame");
                cx.charge(cx.cost().disk_read(ByteSize(ser)));
                cx.charge(cx.cost().deserialize_cpu(ByteSize(ser)));
                if let Err(e) = cx.alloc(space, ByteSize(mem)) {
                    cx.node().heap.release_space(space);
                    return Err(e);
                }
                self.frame_space = Some(space);
                self.cursor = 0;
            }
            let frame_len = self.frames.front().map(Vec::len).unwrap_or(0);
            while self.cursor < frame_len && !cx.out_of_quantum() {
                let cost = {
                    let t = &self.frames.front().expect("frame")[self.cursor];
                    cx.cost().tuple_cost(ByteSize(t.ser_bytes()))
                };
                cx.charge(cost);
                {
                    let frame = self.frames.front().expect("frame");
                    let t = &frame[self.cursor];
                    let mut rcx = ReduceCx {
                        work: cx,
                        state_space,
                        out: &mut self.out,
                        written_ser: &mut self.written_ser,
                    };
                    self.reducer.reduce(&mut rcx, t)?;
                }
                self.cursor += 1;
            }
            if self.cursor >= frame_len {
                if let Some(space) = self.frame_space.take() {
                    cx.node().heap.release_space(space);
                }
                self.frames.pop_front();
            }
        }
        if self.frames.is_empty() && !self.closed {
            let mut rcx = ReduceCx {
                work: cx,
                state_space,
                out: &mut self.out,
                written_ser: &mut self.written_ser,
            };
            self.reducer.close(&mut rcx)?;
            cx.charge(cx.cost().disk_write(self.written_ser));
            cx.node().heap.release_space(state_space);
            self.closed = true;
            return Ok(true);
        }
        Ok(self.frames.is_empty())
    }
}

impl<R: Reducer> Work for ReduceWork<R> {
    fn step(&mut self, cx: &mut WorkCx<'_>) -> StepOutcome {
        match self.run(cx) {
            Ok(true) => StepOutcome::Finished,
            Ok(false) => StepOutcome::Ran,
            Err(e) => StepOutcome::Failed(e),
        }
    }

    fn label(&self) -> String {
        "reduce-attempt".into()
    }
}

/// Runs one reduce attempt in a fresh task JVM.
pub fn run_reduce_attempt<R: Reducer + 'static>(
    cfg: &HadoopConfig,
    frames: Vec<Vec<R::In>>,
    reducer: R,
) -> (AttemptOutcome, Vec<R::Out>) {
    run_reduce_attempt_salted(cfg, frames, reducer, 0)
}

fn run_reduce_attempt_salted<R: Reducer + 'static>(
    cfg: &HadoopConfig,
    frames: Vec<Vec<R::In>>,
    reducer: R,
    salt: u64,
) -> (AttemptOutcome, Vec<R::Out>) {
    let mut sim = fresh_jvm(cfg.reduce_heap, cfg, salt);
    let out_cell = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    struct Shim<R: Reducer> {
        inner: ReduceWork<R>,
        out: std::sync::Arc<std::sync::Mutex<Vec<R::Out>>>,
    }
    impl<R: Reducer> Work for Shim<R> {
        fn step(&mut self, cx: &mut WorkCx<'_>) -> StepOutcome {
            let outcome = self.inner.step(cx);
            if matches!(outcome, StepOutcome::Finished) {
                *self.out.lock().unwrap() = std::mem::take(&mut self.inner.out);
            }
            outcome
        }
        fn label(&self) -> String {
            self.inner.label()
        }
    }
    sim.spawn(Box::new(Shim {
        inner: ReduceWork {
            reducer,
            frames: frames.into_iter().collect(),
            cursor: 0,
            state_space: None,
            frame_space: None,
            out: Vec::new(),
            written_ser: ByteSize::ZERO,
            closed: false,
        },
        out: out_cell.clone(),
    }));
    let result = drive(&mut sim);
    let node = sim.node();
    let outcome = AttemptOutcome {
        result,
        duration: node.now.since(simcore::SimTime::ZERO),
        gc_time: node.gc_time,
        peak_heap: node.heap.peak_used(),
        spills: 0,
        extra_attempts: 0,
    };
    let out = std::mem::take(&mut *out_cell.lock().unwrap());
    (outcome, out)
}

/// Reduce-side counterpart of [`run_map_attempt_retrying`].
pub fn run_reduce_attempt_retrying<R: Reducer + 'static>(
    cfg: &HadoopConfig,
    frames: Vec<Vec<R::In>>,
    reducer: impl Fn() -> R,
) -> (AttemptOutcome, Vec<R::Out>)
where
    R::In: Clone,
{
    let budget = cfg.max_attempts.max(1);
    let mut wasted = SimDuration::ZERO;
    let mut wasted_gc = SimDuration::ZERO;
    let mut peak = ByteSize::ZERO;
    let mut extra = 0u32;
    loop {
        let salt = (extra as u64).wrapping_mul(ATTEMPT_SALT);
        let (mut outcome, out) = run_reduce_attempt_salted(cfg, frames.clone(), reducer(), salt);
        let relaunchable = matches!(&outcome.result,
            AttemptResult::Failed(e) if e.is_substrate() && !e.is_oom());
        if relaunchable && extra + 1 < budget {
            wasted += outcome.duration;
            wasted_gc += outcome.gc_time;
            peak = peak.max(outcome.peak_heap);
            extra += 1;
            continue;
        }
        outcome.duration += wasted;
        outcome.gc_time += wasted_gc;
        outcome.peak_heap = outcome.peak_heap.max(peak);
        outcome.extra_attempts = extra;
        return (outcome, out);
    }
}
