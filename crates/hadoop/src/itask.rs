//! The ITask version of a Hadoop job (paper §4.2): Mapper/Reducer become
//! ITasks and each node's task memory (`MM × MH`) is pooled under one
//! IRS instead of being fenced into per-task JVMs.
//!
//! The job driver itself is shared with the Hyracks engine — "the
//! majority of the IRS code can be reused across frameworks" (§4.2) —
//! only the configuration mapping differs.

use hyracks::{distribute_blocks, ItaskFactories, ItaskJobSpec};
use itask_core::{IrsConfig, Tuple};
use simcluster::{Cluster, ClusterConfig, JobReport};
use simcore::{ByteSize, SimError};

use crate::config::HadoopConfig;

/// How much finer the ITask runtime's shuffle tags are than the regular
/// job's reduce-task count: the IRS manages its own partitions, and
/// finer tags keep one group's aggregate well under the pooled heap.
/// Map-task factories must bucket with the same figure.
pub const ITASK_BUCKET_MULTIPLIER: u32 = 16;

/// Runs the ITask version of a Hadoop job under the *same* framework
/// configuration as its regular counterpart (Table 1's methodology).
///
/// Conventions follow [`hyracks::run_itask`]: the map task emits
/// `ShuffleBatch<Mid>` finals, the reduce task queues tagged partials to
/// the merge MITask, the merge emits `Vec<Out>` finals.
pub fn run_itask_job<MIn, Mid, Out>(
    cfg: &HadoopConfig,
    splits: Vec<Vec<MIn>>,
    factories: &ItaskFactories,
) -> (JobReport, Result<Vec<Out>, SimError>)
where
    MIn: Tuple,
    Mid: Tuple,
    Out: 'static,
{
    let mut cluster = Cluster::new(ClusterConfig {
        nodes: cfg.nodes,
        cores: cfg.max_mappers.max(cfg.max_reducers),
        heap_per_node: cfg.pooled_heap(),
        disk_per_node: ByteSize::gib(4),
        block_size: cfg.split_size,
        replication: 3,
    });
    let spec = ItaskJobSpec {
        name: "hadoop-itask".into(),
        irs: IrsConfig {
            max_parallelism: cfg.max_mappers.max(cfg.max_reducers),
            ..IrsConfig::default()
        },
        granularity: ByteSize::kib(32),
        buckets: cfg.reduce_tasks * ITASK_BUCKET_MULTIPLIER,
    };
    let inputs = distribute_blocks(cfg.nodes, splits, spec.granularity);
    hyracks::run_itask::<MIn, Mid, Out>(&mut cluster, inputs, &spec, factories)
}

/// A reusable handle to an ITask Hadoop job: configuration plus task
/// factories, submittable any number of times with fresh inputs.
///
/// A multi-tenant service keeps one handle per registered job kind and
/// submits it on every client request instead of rebuilding factories
/// per run; the factories are `Rc`-shared so the handle clones cheaply.
pub struct JobHandle {
    cfg: HadoopConfig,
    factories: ItaskFactories,
}

impl Clone for JobHandle {
    fn clone(&self) -> Self {
        JobHandle {
            cfg: self.cfg.clone(),
            factories: self.factories.clone(),
        }
    }
}

impl JobHandle {
    /// Registers a job: framework configuration plus ITask factories.
    pub fn new(cfg: HadoopConfig, factories: ItaskFactories) -> Self {
        JobHandle { cfg, factories }
    }

    /// The framework configuration.
    pub fn config(&self) -> &HadoopConfig {
        &self.cfg
    }

    /// The shared task factories.
    pub fn factories(&self) -> &ItaskFactories {
        &self.factories
    }

    /// Submits one run of the job over `splits`.
    pub fn submit<MIn, Mid, Out>(
        &self,
        splits: Vec<Vec<MIn>>,
    ) -> (JobReport, Result<Vec<Out>, SimError>)
    where
        MIn: Tuple,
        Mid: Tuple,
        Out: 'static,
    {
        run_itask_job::<MIn, Mid, Out>(&self.cfg, splits, &self.factories)
    }
}
