//! Hadoop job configuration: the framework parameters of Table 1.

use simcore::{ByteSize, FaultPlan};

/// The knobs the paper's Table 1 reports per problem (scaled 1/1024).
#[derive(Clone, Debug)]
pub struct HadoopConfig {
    /// Cluster worker nodes.
    pub nodes: usize,
    /// Max heap per map task attempt (`MH`).
    pub map_heap: ByteSize,
    /// Max heap per reduce task attempt (`RH`).
    pub reduce_heap: ByteSize,
    /// Max concurrent mappers per node (`MM`).
    pub max_mappers: usize,
    /// Max concurrent reducers per node (`MR`).
    pub max_reducers: usize,
    /// Map output sort buffer (`io.sort.mb`; Hadoop default 100MB →
    /// 100KiB scaled).
    pub sort_buffer: ByteSize,
    /// Input split size (the HDFS block size: 128MB → 128KiB scaled).
    pub split_size: ByteSize,
    /// YARN attempt budget per task (Hadoop default 4).
    pub max_attempts: u32,
    /// Reduce-side hash buckets (number of reduce tasks).
    pub reduce_tasks: u32,
    /// Fault schedule armed on every attempt JVM's substrate (chaos
    /// runs); each attempt re-salts the seed so a relaunch does not
    /// deterministically replay the same faults.
    pub fault_plan: Option<FaultPlan>,
}

impl HadoopConfig {
    /// A Table 1 style configuration: `mh`/`rh` are the *paper* heap
    /// sizes in MB (so `1024` means "1GB"); they are scaled by 1/1024
    /// into simulation bytes.
    pub fn table1(nodes: usize, mh_mb: u64, rh_mb: u64, mm: usize, mr: usize) -> Self {
        HadoopConfig {
            nodes,
            map_heap: ByteSize::kib(mh_mb),
            reduce_heap: ByteSize::kib(rh_mb),
            max_mappers: mm,
            max_reducers: mr,
            sort_buffer: ByteSize::kib(100),
            split_size: ByteSize::kib(128),
            max_attempts: 4,
            reduce_tasks: (nodes * mr) as u32,
            fault_plan: None,
        }
    }

    /// The aggregate task memory one node controls — what the ITask
    /// version pools under a single IRS.
    pub fn pooled_heap(&self) -> ByteSize {
        let map_pool = ByteSize(self.map_heap.as_u64() * self.max_mappers as u64);
        let red_pool = ByteSize(self.reduce_heap.as_u64() * self.max_reducers as u64);
        map_pool.max(red_pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_scaling() {
        // MSA: MH=RH=1GB, MM=MR=6.
        let cfg = HadoopConfig::table1(10, 1024, 1024, 6, 6);
        assert_eq!(cfg.map_heap, ByteSize::mib(1));
        assert_eq!(cfg.pooled_heap(), ByteSize::mib(6));
        assert_eq!(cfg.reduce_tasks, 60);
        // IMC: MH=0.5GB, RH=1GB, MM=13, MR=6.
        let cfg = HadoopConfig::table1(10, 512, 1024, 13, 6);
        assert_eq!(cfg.map_heap, ByteSize::kib(512));
        assert_eq!(cfg.pooled_heap(), ByteSize::kib(13 * 512));
    }
}
