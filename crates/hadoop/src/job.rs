//! The regular MapReduce job driver: split scheduling over task slots,
//! YARN-style retries, shuffle barrier, reduce scheduling.

use std::collections::BTreeMap;

use itask_core::Tuple;
use simcluster::{JobOutcome, JobReport, NodeReport};
use simcore::{ByteSize, CostModel, EventLog, NodeId, SimDuration, SimError};

use crate::attempt::{
    run_map_attempt_retrying, run_reduce_attempt_retrying, AttemptOutcome, AttemptResult,
};
use crate::config::HadoopConfig;
use crate::task::{Mapper, Reducer};

/// The result of a regular Hadoop job.
pub struct RegularJobResult<Out> {
    /// Timing/GC/peak report (synthesized from attempt outcomes; present
    /// even when the job crashed — its elapsed time is the paper's
    /// CTime).
    pub report: JobReport,
    /// Final outputs, or the error that killed the job.
    pub result: Result<Vec<Out>, SimError>,
    /// Map attempts executed (including retries).
    pub map_attempts: u32,
    /// Reduce attempts executed (including retries).
    pub reduce_attempts: u32,
}

/// Greedy list scheduler: place each task's attempt chain on the
/// earliest-free slot. Returns `(makespan, fail_time)` where `fail_time`
/// is when the first task exhausted its attempts (if any).
struct SlotSchedule {
    slot_free: Vec<SimDuration>,
}

impl SlotSchedule {
    fn new(slots: usize) -> Self {
        SlotSchedule {
            slot_free: vec![SimDuration::ZERO; slots.max(1)],
        }
    }

    /// Schedules one attempt not before `earliest`; returns (slot, end).
    fn place(&mut self, earliest: SimDuration, duration: SimDuration) -> (usize, SimDuration) {
        let (slot, free) = self
            .slot_free
            .iter()
            .copied()
            .enumerate()
            .min_by_key(|&(i, t)| (t, i))
            .expect("at least one slot");
        let start = free.max(earliest);
        let end = start + duration;
        self.slot_free[slot] = end;
        (slot, end)
    }

    fn makespan(&self) -> SimDuration {
        self.slot_free
            .iter()
            .copied()
            .max()
            .unwrap_or(SimDuration::ZERO)
    }
}

/// YARN container allocation + JVM spin-up charged per attempt
/// (~10 paper-seconds; another CTime amplifier under retry storms).
const CONTAINER_STARTUP: SimDuration = SimDuration::from_millis(10);

/// Accounting accumulated per node while scheduling attempts.
#[derive(Clone, Default)]
struct NodeAccount {
    gc_time: SimDuration,
    compute_time: SimDuration,
    peak_heap: ByteSize,
}

/// Schedules a stage of identical-retry tasks; each entry is one task's
/// deterministic attempt outcome. Returns the stage makespan, the fail
/// time if a task exhausted retries, per-slot accounting and attempt
/// count.
fn schedule_stage(
    outcomes: &[AttemptOutcome],
    slots: usize,
    nodes: usize,
    max_attempts: u32,
    accounts: &mut [NodeAccount],
) -> (SimDuration, Option<(SimDuration, SimError)>, u32) {
    let mut sched = SlotSchedule::new(slots);
    let mut attempts = 0u32;
    let mut fail: Option<(SimDuration, SimError)> = None;
    for outcome in outcomes {
        // Substrate relaunches are already folded into the outcome
        // (duration + extra_attempts); what remains of the YARN budget
        // models the deterministic OME repeats.
        let tries = if outcome.result.ok() {
            1
        } else {
            max_attempts.saturating_sub(outcome.extra_attempts).max(1)
        };
        let startup = CONTAINER_STARTUP * (1 + outcome.extra_attempts) as u64;
        let mut earliest = SimDuration::ZERO;
        for _ in 0..tries {
            let (slot, end) = sched.place(earliest, outcome.duration + startup);
            earliest = end;
            attempts += 1 + outcome.extra_attempts;
            let node = slot % nodes.max(1);
            let acc = &mut accounts[node];
            acc.gc_time += outcome.gc_time;
            acc.compute_time += outcome.duration - outcome.gc_time;
            acc.peak_heap = acc.peak_heap.max(outcome.peak_heap);
        }
        if let AttemptResult::Failed(e) = &outcome.result {
            let t = earliest;
            match &fail {
                Some((prev, _)) if *prev <= t => {}
                _ => fail = Some((t, e.clone())),
            }
        }
    }
    (sched.makespan(), fail, attempts)
}

fn synthesize_report(
    cfg: &HadoopConfig,
    elapsed: SimDuration,
    accounts: &[NodeAccount],
    outcome: JobOutcome,
) -> JobReport {
    let nodes = (0..cfg.nodes)
        .map(|n| NodeReport {
            node: NodeId(n as u32),
            elapsed,
            gc_time: accounts[n].gc_time,
            compute_time: accounts[n].compute_time,
            io_stall_time: SimDuration::ZERO,
            peak_heap: accounts[n].peak_heap,
            minor_gcs: 0,
            full_gcs: 0,
            useless_gcs: 0,
            log: EventLog::new(),
        })
        .collect();
    JobReport {
        outcome,
        elapsed,
        nodes,
        counters: BTreeMap::new(),
    }
}

/// Runs a regular Hadoop job: map attempts over `splits`, shuffle,
/// reduce attempts over `reduce_tasks` buckets.
pub fn run_regular_job<M, R>(
    cfg: &HadoopConfig,
    splits: Vec<Vec<M::In>>,
    map_factory: impl Fn() -> M,
    reduce_factory: impl Fn() -> R,
) -> RegularJobResult<R::Out>
where
    M: Mapper + 'static,
    R: Reducer<In = M::Out> + 'static,
    M::In: Clone,
    M::Out: Clone,
{
    let cost = CostModel::default();
    let mut accounts = vec![NodeAccount::default(); cfg.nodes];

    // ---- Map stage: one task per split. OMEs are deterministic (the
    // stage scheduler repeats them for the full YARN budget); transient
    // substrate faults are relaunched with re-salted seeds inside the
    // retrying runner.
    let mut map_outcomes = Vec::new();
    let mut shuffle_data: BTreeMap<u32, Vec<M::Out>> = BTreeMap::new();
    for split in splits {
        // One split = one HDFS block, streamed through the mapper in
        // record-reader frames (Hadoop never materializes a whole block
        // as objects).
        let frames = chunk(split, ByteSize::kib(64));
        let (outcome, out) = run_map_attempt_retrying(cfg, frames, &map_factory);
        if outcome.result.ok() {
            for (bucket, tuples) in out {
                shuffle_data
                    .entry(bucket % cfg.reduce_tasks)
                    .or_default()
                    .extend(tuples);
            }
        }
        map_outcomes.push(outcome);
    }
    let spills: u32 = map_outcomes.iter().map(|o| o.spills).sum();
    let (map_span, map_fail, map_attempts) = schedule_stage(
        &map_outcomes,
        cfg.nodes * cfg.max_mappers,
        cfg.nodes,
        cfg.max_attempts,
        &mut accounts,
    );
    if let Some((t, e)) = map_fail {
        let mut report = synthesize_report(cfg, t, &accounts, JobOutcome::Failed(e.clone()));
        report.bump_counter("hadoop.map_attempts", map_attempts as f64);
        report.bump_counter("hadoop.spills", spills as f64);
        return RegularJobResult {
            report,
            result: Err(e),
            map_attempts,
            reduce_attempts: 0,
        };
    }

    // ---- Shuffle barrier.
    let shuffle_bytes: u64 = shuffle_data
        .values()
        .flat_map(|v| v.iter())
        .map(Tuple::ser_bytes)
        .sum();
    let shuffle_time = cost.net_transfer(ByteSize(shuffle_bytes / cfg.nodes.max(1) as u64));

    // ---- Reduce stage: one task per bucket.
    let mut reduce_outcomes = Vec::new();
    let mut outputs: Vec<R::Out> = Vec::new();
    for (_bucket, tuples) in shuffle_data {
        let frames = chunk(tuples, cfg.split_size);
        let (outcome, out) = run_reduce_attempt_retrying(cfg, frames, &reduce_factory);
        if outcome.result.ok() {
            outputs.extend(out);
        }
        reduce_outcomes.push(outcome);
    }
    let (reduce_span, reduce_fail, reduce_attempts) = schedule_stage(
        &reduce_outcomes,
        cfg.nodes * cfg.max_reducers,
        cfg.nodes,
        cfg.max_attempts,
        &mut accounts,
    );

    let base = map_span + shuffle_time;
    if let Some((t, e)) = reduce_fail {
        let mut report = synthesize_report(cfg, base + t, &accounts, JobOutcome::Failed(e.clone()));
        report.bump_counter("hadoop.map_attempts", map_attempts as f64);
        report.bump_counter("hadoop.reduce_attempts", reduce_attempts as f64);
        report.bump_counter("hadoop.spills", spills as f64);
        return RegularJobResult {
            report,
            result: Err(e),
            map_attempts,
            reduce_attempts,
        };
    }

    let elapsed = base + reduce_span;
    let mut report = synthesize_report(cfg, elapsed, &accounts, JobOutcome::Completed);
    report.bump_counter("hadoop.map_attempts", map_attempts as f64);
    report.bump_counter("hadoop.reduce_attempts", reduce_attempts as f64);
    report.bump_counter("hadoop.spills", spills as f64);
    RegularJobResult {
        report,
        result: Ok(outputs),
        map_attempts,
        reduce_attempts,
    }
}

/// Splits tuples into frames of at most `granularity` *object-form*
/// bytes: a reduce attempt must be able to hold one frame in its task
/// heap, and the deserialized form is what occupies it.
fn chunk<T: Tuple>(tuples: Vec<T>, granularity: ByteSize) -> Vec<Vec<T>> {
    let mut frames = Vec::new();
    let mut frame = Vec::new();
    let mut bytes = 0u64;
    for t in tuples {
        let b = t.heap_bytes();
        if bytes + b > granularity.as_u64() && !frame.is_empty() {
            frames.push(std::mem::take(&mut frame));
            bytes = 0;
        }
        bytes += b;
        frame.push(t);
    }
    if !frame.is_empty() {
        frames.push(frame);
    }
    frames
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_scheduler_packs_slots() {
        let mut s = SlotSchedule::new(2);
        let d = SimDuration::from_secs(10);
        let (_, e1) = s.place(SimDuration::ZERO, d);
        let (_, e2) = s.place(SimDuration::ZERO, d);
        let (_, e3) = s.place(SimDuration::ZERO, d);
        assert_eq!(e1, d);
        assert_eq!(e2, d);
        assert_eq!(e3, d * 2);
        assert_eq!(s.makespan(), d * 2);
    }

    #[test]
    fn retry_chains_are_sequential() {
        let mut s = SlotSchedule::new(4);
        let d = SimDuration::from_secs(5);
        // A single task retried 3 times cannot parallelize with itself.
        let mut earliest = SimDuration::ZERO;
        for _ in 0..3 {
            let (_, end) = s.place(earliest, d);
            earliest = end;
        }
        assert_eq!(earliest, d * 3);
    }
}
