//! Property tests over the generic aggregation machinery: fold order
//! must never matter, byte accounting must balance, and every app
//! spec's explode/finish pair must conserve its invariant quantity.

use proptest::prelude::*;

use apps::agg::{AggSpec, AggState, MergeableTuple};
use apps::hyracks_apps::hj::JoinIn;
use apps::hyracks_apps::{gr::GrSpec, hj::HjSpec, ii::IiSpec, wc::WcSpec};
use apps::{CountMid, JoinMid, ListMid, StripeMid};
use itask_core::Tuple;
use workloads::tpch::{Customer, Order};
use workloads::webmap::AdjRecord;

/// Folds items through AggState, tracking the charge ledger.
fn fold_all<M: MergeableTuple>(items: Vec<M>) -> (Vec<M>, i64) {
    let mut state = AggState::new();
    let mut ledger = 0i64;
    for it in items {
        state
            .add(it, &mut |d| {
                ledger += d;
                Ok(())
            })
            .unwrap();
    }
    (state.drain(), ledger)
}

proptest! {
    /// Counts: any permutation folds to the same result, and the ledger
    /// equals the drained entries' footprint.
    #[test]
    fn count_fold_is_order_insensitive(keys in proptest::collection::vec(0u64..50, 1..300)) {
        let mids: Vec<CountMid> = keys.iter().map(|&k| CountMid::one(k, 136)).collect();
        let mut rev = mids.clone();
        rev.reverse();
        let (a, ledger_a) = fold_all(mids);
        let (b, _) = fold_all(rev);
        prop_assert_eq!(a.clone(), b);
        let held: i64 = a.iter().map(|m| m.heap_bytes() as i64).sum();
        prop_assert_eq!(ledger_a, held);
        // Total count conserved.
        let total: u64 = a.iter().map(|m| m.count).sum();
        prop_assert_eq!(total, keys.len() as u64);
    }

    /// Lists: items conserved across folding, ledger balances.
    #[test]
    fn list_fold_conserves_items(pairs in proptest::collection::vec((0u64..20, 0u64..1000), 1..200)) {
        let mids: Vec<ListMid> =
            pairs.iter().map(|&(k, v)| ListMid::one(k, v, 176, 40)).collect();
        let (folded, ledger) = fold_all(mids);
        let total: usize = folded.iter().map(|m| m.items.len()).sum();
        prop_assert_eq!(total, pairs.len());
        let held: i64 = folded.iter().map(|m| m.heap_bytes() as i64).sum();
        prop_assert_eq!(ledger, held);
    }

    /// Stripes: pair observations conserved; cells unique per neighbour.
    #[test]
    fn stripe_fold_conserves_pairs(
        pairs in proptest::collection::vec((0u64..10, 0u32..30), 1..200)
    ) {
        let mids: Vec<StripeMid> =
            pairs.iter().map(|&(k, n)| StripeMid::pair(k, n, 196, 48)).collect();
        let (folded, ledger) = fold_all(mids);
        let total: u64 = folded
            .iter()
            .flat_map(|s| s.neighbors.values())
            .map(|&c| c as u64)
            .sum();
        prop_assert_eq!(total, pairs.len() as u64);
        let held: i64 = folded.iter().map(|m| m.heap_bytes() as i64).sum();
        prop_assert_eq!(ledger, held);
    }

    /// Joins: regardless of arrival order (build rows interleaved with
    /// probes), every probe joins exactly once once its build row is in.
    #[test]
    fn join_fold_joins_each_probe_once(
        probes in proptest::collection::vec((0u64..8, 1u64..1000), 1..150),
        build_first in any::<bool>(),
    ) {
        let sizes = (200, 64, 450);
        let mut mids: Vec<JoinMid> = Vec::new();
        let builds: Vec<JoinMid> =
            (0u64..8).map(|k| JoinMid::customer(k, k as u32, sizes)).collect();
        if build_first {
            mids.extend(builds.clone());
        }
        mids.extend(probes.iter().map(|&(k, p)| JoinMid::order(k, p, sizes)));
        if !build_first {
            mids.extend(builds);
        }
        let (folded, ledger) = fold_all(mids);
        let joined: u64 = folded.iter().map(|m| m.joined).sum();
        prop_assert_eq!(joined, probes.len() as u64);
        let pending: usize = folded.iter().map(|m| m.pending.len()).sum();
        prop_assert_eq!(pending, 0, "all probes must settle");
        let revenue: u64 = folded.iter().map(|m| m.revenue).sum();
        let expected: u64 = probes.iter().map(|&(_, p)| p).sum();
        prop_assert_eq!(revenue, expected);
        let held: i64 = folded.iter().map(|m| m.heap_bytes() as i64).sum();
        prop_assert_eq!(ledger, held);
    }

    /// WC explode emits one contribution per token, keyed in range.
    #[test]
    fn wc_explode_covers_all_tokens(
        vertex in 0u64..1000,
        neighbors in proptest::collection::vec(0u64..1000, 0..40),
    ) {
        let rec = AdjRecord { vertex, neighbors: neighbors.clone() };
        let mut out = Vec::new();
        WcSpec.explode(&rec, &mut out);
        prop_assert_eq!(out.len(), neighbors.len() + 1);
        let total: u64 = out.iter().map(|m| m.count).sum();
        prop_assert_eq!(total, (neighbors.len() + 1) as u64);
    }

    /// II explode emits exactly one posting per edge.
    #[test]
    fn ii_explode_covers_all_edges(
        vertex in 0u64..1000,
        neighbors in proptest::collection::vec(0u64..1000, 0..40),
    ) {
        let rec = AdjRecord { vertex, neighbors: neighbors.clone() };
        let mut out = Vec::new();
        IiSpec.explode(&rec, &mut out);
        prop_assert_eq!(out.len(), neighbors.len());
        for m in &out {
            prop_assert_eq!(m.items.as_slice(), &[vertex]);
        }
    }

    /// GR's finish sums collected revenues exactly.
    #[test]
    fn gr_finish_sums_revenue(values in proptest::collection::vec(0u64..10_000, 1..100)) {
        let mut mid = ListMid::one(7, values[0], 176, 150);
        for &v in &values[1..] {
            mid.merge(ListMid::one(7, v, 176, 150));
        }
        let out = GrSpec.finish(mid);
        prop_assert_eq!(out.key, 7);
        prop_assert_eq!(out.value, values.iter().sum::<u64>());
    }

    /// HJ spec buckets both sides of a key identically.
    #[test]
    fn hj_buckets_are_side_agnostic(key in 0u64..100_000, buckets in 1u32..512) {
        let c = JoinIn::C(Customer { custkey: key, nationkey: 1, acctbal: 0 });
        let o = JoinIn::O(Order { orderkey: 1, custkey: key, totalprice: 5, orderdate: 9000 });
        let mut out = Vec::new();
        HjSpec.explode(&c, &mut out);
        HjSpec.explode(&o, &mut out);
        let bc = HjSpec.bucket(out[0].key(), buckets);
        let bo = HjSpec.bucket(out[1].key(), buckets);
        prop_assert_eq!(bc, bo);
        prop_assert!(bc < buckets);
    }
}
