//! Correctness of the five Hyracks programs on the smallest datasets:
//! regular and ITask versions must both complete under ample memory and
//! satisfy the per-app invariants; where outputs are directly
//! comparable, the two versions must agree exactly.

use std::collections::BTreeMap;

use apps::hyracks_apps::{gr, hj, hs, ii, wc, HyracksParams};
use apps::OutKv;
use simcore::ByteSize;
use workloads::tpch::TpchScale;
use workloads::webmap::WebmapSize;

fn ample() -> HyracksParams {
    HyracksParams {
        heap_per_node: ByteSize::mib(64),
        ..HyracksParams::default()
    }
}

fn kv_map(outs: &[OutKv]) -> BTreeMap<u64, u64> {
    let mut m = BTreeMap::new();
    for o in outs {
        assert!(
            m.insert(o.key, o.value).is_none(),
            "duplicate key {}",
            o.key
        );
    }
    m
}

#[test]
fn wc_regular_and_itask_agree() {
    let p = ample();
    let reg = wc::run_regular(WebmapSize::G3, &p);
    let it = wc::run_itask(WebmapSize::G3, &p);
    let reg_out = reg.result.expect("regular WC");
    let it_out = it.result.expect("ITask WC");
    assert!(wc::verify(&reg_out, WebmapSize::G3, p.seed));
    assert_eq!(kv_map(&reg_out), kv_map(&it_out));
}

#[test]
fn hs_outputs_are_sorted_and_complete() {
    let p = ample();
    let reg = hs::run_regular(WebmapSize::G3, &p);
    let out = reg.result.expect("regular HS");
    assert!(
        hs::verify(&out, WebmapSize::G3, p.seed, true),
        "regular output must be sorted"
    );

    let it = hs::run_itask(WebmapSize::G3, &p);
    let out = it.result.expect("ITask HS");
    assert!(
        hs::verify(&out, WebmapSize::G3, p.seed, false),
        "ITask output must be a permutation"
    );
}

#[test]
fn ii_postings_cover_every_edge() {
    let p = ample();
    let reg = ii::run_regular(WebmapSize::G3, &p);
    let it = ii::run_itask(WebmapSize::G3, &p);
    let reg_out = reg.result.expect("regular II");
    let it_out = it.result.expect("ITask II");
    assert!(ii::verify(&reg_out, WebmapSize::G3, p.seed));
    assert_eq!(kv_map(&reg_out), kv_map(&it_out));
}

#[test]
fn hj_joins_every_order_exactly_once() {
    let p = ample();
    let reg = hj::run_regular(TpchScale::X10, &p);
    let it = hj::run_itask(TpchScale::X10, &p);
    let reg_out = reg.result.expect("regular HJ");
    let it_out = it.result.expect("ITask HJ");
    assert!(hj::verify(&reg_out, TpchScale::X10, p.seed));
    assert!(hj::verify(&it_out, TpchScale::X10, p.seed));
}

#[test]
fn gr_groups_and_revenue_match() {
    let p = ample();
    let reg = gr::run_regular(TpchScale::X10, &p);
    let it = gr::run_itask(TpchScale::X10, &p);
    let reg_out = reg.result.expect("regular GR");
    let it_out = it.result.expect("ITask GR");
    assert!(gr::verify(&reg_out, TpchScale::X10, p.seed));
    assert_eq!(kv_map(&reg_out), kv_map(&it_out));
}

#[test]
fn runs_are_deterministic() {
    let p = ample();
    let a = wc::run_regular(WebmapSize::G3, &p);
    let b = wc::run_regular(WebmapSize::G3, &p);
    assert_eq!(a.report.elapsed, b.report.elapsed);
    assert_eq!(a.peak_heap(), b.peak_heap());
    assert_eq!(kv_map(&a.result.unwrap()), kv_map(&b.result.unwrap()));
}

#[test]
fn webmap_inputs_conserve_every_record() {
    use workloads::webmap::{WebmapConfig, WebmapSize};
    let p = ample();
    let inputs = apps::hyracks_apps::webmap_inputs(WebmapSize::G3, &p, |r| r);
    assert_eq!(inputs.len(), p.nodes);
    let distributed: usize = inputs.iter().flatten().map(Vec::len).sum();
    let cfg = WebmapConfig::preset(WebmapSize::G3, p.seed);
    assert_eq!(distributed as u64, cfg.vertices);
    // Every node received work (blocks round-robin).
    for node in &inputs {
        assert!(!node.is_empty());
    }
}
