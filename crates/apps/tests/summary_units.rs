//! RunSummary accessor semantics.

use apps::RunSummary;
use simcluster::{JobOutcome, JobReport};
use simcore::{ByteSize, NodeId, SimDuration, SimError, SCALE};

fn report(elapsed_ms: u64) -> JobReport {
    JobReport {
        outcome: JobOutcome::Completed,
        elapsed: SimDuration::from_millis(elapsed_ms),
        nodes: vec![],
        counters: Default::default(),
    }
}

#[test]
fn paper_seconds_applies_the_scale() {
    let s: RunSummary<u32> = RunSummary {
        report: report(100),
        result: Ok(vec![]),
    };
    assert!(s.ok());
    assert!(!s.is_oom());
    assert!((s.paper_seconds() - 0.1 * SCALE as f64).abs() < 1e-9);
    assert_eq!(s.elapsed(), SimDuration::from_millis(100));
}

#[test]
fn oom_classification_follows_the_error() {
    let oom: RunSummary<u32> = RunSummary {
        report: report(5),
        result: Err(SimError::OutOfMemory {
            node: NodeId(0),
            requested: ByteSize(1),
            free: ByteSize(0),
        }),
    };
    assert!(!oom.ok());
    assert!(oom.is_oom());
    let cfg: RunSummary<u32> = RunSummary {
        report: report(5),
        result: Err(SimError::Config("bad".into())),
    };
    assert!(!cfg.is_oom());
}

#[test]
fn gc_fraction_of_empty_report_is_zero() {
    let s: RunSummary<u32> = RunSummary {
        report: report(0),
        result: Ok(vec![]),
    };
    assert_eq!(s.gc_fraction(), 0.0);
    assert_eq!(s.peak_heap(), ByteSize::ZERO);
}
