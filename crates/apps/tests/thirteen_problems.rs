//! The §6.1 survival claim, as tests. The quick representative runs in
//! the default suite; the full eight-problem sweep is `#[ignore]`d for
//! `cargo test --release -- --ignored` (it simulates ~50GB-scale jobs).

use apps::hadoop_apps::more_problems;

#[test]
fn whole_file_records_crash_regular_and_survive_itask() {
    let s = more_problems::tfr(42);
    assert!(!s.crash.ok(), "TFR's reported configuration must crash");
    assert!(s.crash.is_oom());
    assert!(s.attempts > 4, "the retry ladder ran: {}", s.attempts);
    assert!(s.survive.ok(), "ITask survives the same configuration");
    // The outputs account for every file's characters.
    let total: u64 = s.survive.result.unwrap().iter().map(|o| o.value).sum();
    assert!(total > 0);
}

#[test]
fn web_parser_scratch_crashes_regular_and_survives_itask() {
    let s = more_problems::wpp(42);
    assert!(!s.crash.ok());
    assert!(s.survive.ok(), "{:?}", s.survive.result.err());
    // Every post is parsed exactly once.
    let total: u64 = s.survive.result.unwrap().iter().map(|o| o.value).sum();
    let posts = workloads::stackoverflow::StackOverflowConfig::full_dump(42).posts;
    assert_eq!(total, posts);
}

/// The full remaining-eight sweep (slow; release-mode material).
#[test]
#[ignore = "simulates eight ~50GB-scale jobs; run with --release -- --ignored"]
fn all_eight_remaining_problems_crash_and_survive() {
    for s in more_problems::all(42) {
        assert!(
            !s.crash.ok(),
            "{} must crash under its reported config",
            s.name
        );
        assert!(s.survive.ok(), "{} must survive with ITask", s.name);
    }
}
