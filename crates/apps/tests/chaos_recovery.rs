//! Chaos-mode acceptance: an ITask job run under a fault schedule with a
//! node crash, silent spill corruption and transient disk errors must
//! finish with results *identical* to its fault-free run — the IRS
//! recovery paths (bounded retry, lineage re-serialization, crash
//! requeue via the interrupt cursor) preserve exactly-once semantics.

use std::collections::BTreeMap;

use apps::hyracks_apps::{ii, wc, HyracksParams};
use apps::OutKv;
use simcore::{ByteSize, FaultPlan, NodeId, SimDuration, SimTime};
use workloads::webmap::WebmapSize;

fn ample() -> HyracksParams {
    HyracksParams {
        heap_per_node: ByteSize::mib(64),
        ..Default::default()
    }
}

fn kv_map(outs: &[OutKv]) -> BTreeMap<u64, u64> {
    let mut m = BTreeMap::new();
    for o in outs {
        assert!(
            m.insert(o.key, o.value).is_none(),
            "duplicate key {}",
            o.key
        );
    }
    m
}

/// A schedule with every studied fault class: a mid-run node crash,
/// low-rate transient I/O errors and silent spill corruption.
fn chaos_plan(mid_run: SimDuration) -> FaultPlan {
    FaultPlan::new(11)
        .with_disk_transients(20)
        .with_corruption(10)
        .with_crash(NodeId(3), SimTime::ZERO + mid_run)
}

#[test]
fn wc_itask_survives_chaos_bit_identically() {
    let clean_params = ample();
    let clean = wc::run_itask(WebmapSize::G3, &clean_params);
    let clean_out = clean.result.expect("fault-free WC");

    let mid = SimDuration::from_nanos(clean.report.elapsed.as_nanos() / 2);
    let mut params = ample();
    params.fault_plan = Some(chaos_plan(mid));
    let chaotic = wc::run_itask(WebmapSize::G3, &params);
    let r = &chaotic.report;

    // The schedule must actually have bitten...
    assert_eq!(
        r.counter("faults_crashes"),
        1.0,
        "node 3 must crash mid-run"
    );
    assert!(
        r.counter("itask.transient_io_retries") > 0.0,
        "no transient was injected"
    );
    assert!(
        r.counter("itask.crash_requeued_partitions") > 0.0
            || r.counter("itask.crash_salvaged_instances") > 0.0,
        "the crash must have cost the victim node live work"
    );

    // ...and the job must still produce the exact fault-free answer.
    let chaos_out = chaotic.result.expect("chaotic WC must survive");
    assert_eq!(kv_map(&clean_out), kv_map(&chaos_out));

    // Recovery is not free: the chaotic run can only be slower.
    assert!(chaotic.report.elapsed >= clean.report.elapsed);
}

#[test]
fn ii_itask_survives_chaos_bit_identically() {
    let clean_params = ample();
    let clean = ii::run_itask(WebmapSize::G3, &clean_params);
    let clean_out = clean.result.expect("fault-free II");

    let mid = SimDuration::from_nanos(clean.report.elapsed.as_nanos() / 2);
    let mut params = ample();
    params.fault_plan = Some(chaos_plan(mid));
    let chaotic = ii::run_itask(WebmapSize::G3, &params);
    let r = &chaotic.report;

    assert_eq!(
        r.counter("faults_crashes"),
        1.0,
        "node 3 must crash mid-run"
    );
    assert!(
        r.counter("itask.transient_io_retries") > 0.0,
        "no transient was injected"
    );

    let chaos_out = chaotic.result.expect("chaotic II must survive");
    assert_eq!(kv_map(&clean_out), kv_map(&chaos_out));
}

#[test]
fn corruption_recovery_rebuilds_from_lineage() {
    // Corruption only bites a partition that is spilled and later
    // reloaded, so squeeze the heap until the IRS serializes aggressively
    // and corrupt a third of all writes.
    let mut params = ample();
    params.heap_per_node = ByteSize::mib(2);
    params.fault_plan = Some(FaultPlan::new(5).with_corruption(333));
    let run = wc::run_itask(WebmapSize::G3, &params);
    let recovered = run.report.counter("itask.corruption_recoveries");
    assert!(recovered > 0.0, "no corrupted spill was ever re-read");
    let out = run.result.expect("WC must survive corrupted spills");

    let mut clean_params = ample();
    clean_params.heap_per_node = ByteSize::mib(2);
    let clean = wc::run_itask(WebmapSize::G3, &clean_params);
    assert_eq!(kv_map(&clean.result.expect("clean WC")), kv_map(&out));
}

#[test]
fn chaos_runs_are_deterministic() {
    let mut params = ample();
    params.fault_plan = Some(chaos_plan(SimDuration::from_millis(40)));
    let a = wc::run_itask(WebmapSize::G3, &params);
    let b = wc::run_itask(WebmapSize::G3, &params);
    assert_eq!(a.report.elapsed, b.report.elapsed);
    assert_eq!(a.report.counters, b.report.counters);
    match (&a.result, &b.result) {
        (Ok(x), Ok(y)) => assert_eq!(kv_map(x), kv_map(y)),
        (Err(x), Err(y)) => assert_eq!(x.to_string(), y.to_string()),
        _ => panic!("divergent outcomes"),
    }
}
