//! Correctness of the five Hadoop programs on the Wikipedia *sample*
//! (the full-dump runs belong to the release-mode bench harness):
//! under generous heaps the regular and ITask versions complete and
//! agree with direct recomputation.

use std::collections::BTreeMap;

use apps::hadoop_apps::{crp, iib, imc, msa, wcm};
use apps::hadoop_apps::{itask, regular, stackoverflow_splits, wikipedia_splits};
use apps::OutKv;
use hadoop::HadoopConfig;

fn generous() -> HadoopConfig {
    // "8GB" task heaps, 4 slots.
    HadoopConfig::table1(10, 8192, 8192, 4, 4)
}

fn kv_total(outs: &[OutKv]) -> u64 {
    outs.iter().map(|o| o.value).sum()
}

fn kv_map(outs: &[OutKv]) -> BTreeMap<u64, u64> {
    let mut m = BTreeMap::new();
    for o in outs {
        *m.entry(o.key).or_insert(0) += o.value;
    }
    m
}

#[test]
fn imc_counts_words_exactly() {
    let cfg = generous();
    let splits = wikipedia_splits(false, 7);
    let expected: u64 = splits.iter().flatten().map(|a| a.words.len() as u64).sum();
    let (reg, _) = regular(&imc::ImcSpec, &cfg, splits.clone());
    let reg_out = reg.result.expect("regular IMC");
    assert_eq!(kv_total(&reg_out), expected);

    let it = itask(&imc::ImcSpec, &cfg, splits);
    let it_out = it.result.expect("ITask IMC");
    assert_eq!(kv_map(&reg_out), kv_map(&it_out));
}

#[test]
fn iib_builds_the_full_index() {
    let cfg = generous();
    let splits = wikipedia_splits(false, 8);
    let expected: u64 = splits
        .iter()
        .flatten()
        .map(|a| {
            let mut d = a.words.clone();
            d.sort_unstable();
            d.dedup();
            d.len() as u64
        })
        .sum();
    let (reg, _) = regular(&iib::IibSpec, &cfg, splits.clone());
    assert_eq!(kv_total(&reg.result.expect("regular IIB")), expected);
    let it = itask(&iib::IibSpec, &cfg, splits);
    assert_eq!(kv_total(&it.result.expect("ITask IIB")), expected);
}

#[test]
fn wcm_counts_adjacent_pairs() {
    let cfg = generous();
    let splits = wikipedia_splits(false, 9);
    let expected: u64 = splits
        .iter()
        .flatten()
        .map(|a| a.words.len().saturating_sub(1) as u64)
        .sum();
    let (reg, _) = regular(&wcm::WcmSpec, &cfg, splits.clone());
    assert_eq!(kv_total(&reg.result.expect("regular WCM")), expected);
    let it = itask(&wcm::WcmSpec, &cfg, splits);
    assert_eq!(kv_total(&it.result.expect("ITask WCM")), expected);
}

#[test]
fn crp_processes_every_word_and_tuned_caps_sentences() {
    let cfg = generous();
    let splits = wikipedia_splits(false, 10);
    let expected: u64 = splits.iter().flatten().map(|a| a.words.len() as u64).sum();
    let (reg, _) = regular(&crp::CrpSpec::default(), &cfg, splits.clone());
    assert_eq!(kv_total(&reg.result.expect("regular CRP")), expected);
    // The tuned spec (broken sentences) computes the same lemma counts.
    let (tuned, _) = regular(&crp::CrpSpec { sentence_cap: 512 }, &cfg, splits);
    assert_eq!(kv_total(&tuned.result.expect("tuned CRP")), expected);
}

#[test]
fn msa_emits_one_record_per_post() {
    let cfg = generous();
    let splits = stackoverflow_splits(11);
    let posts: u64 = splits.iter().map(|s| s.len() as u64).sum();
    let (reg, attempts) = regular(&msa::MsaSpec, &cfg, splits.clone());
    let out = reg.result.expect("regular MSA");
    assert_eq!(out.len() as u64, posts);
    assert!(attempts >= posts.div_ceil(10_000) as u32);
    let it = itask(&msa::MsaSpec, &cfg, splits);
    assert_eq!(it.result.expect("ITask MSA").len() as u64, posts);
}
