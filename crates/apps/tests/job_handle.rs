//! `hadoop::JobHandle` reuse: one registered handle serves repeated
//! submissions (the service layer's per-kind template) with results
//! identical to the one-shot API and to each other.

use apps::agg::itask_factories;
use apps::hyracks_apps::wc::WcSpec;
use apps::OutKv;
use hadoop::{run_itask_job, HadoopConfig, JobHandle, ITASK_BUCKET_MULTIPLIER};
use workloads::webmap::AdjRecord;

fn splits() -> Vec<Vec<AdjRecord>> {
    (0..8u64)
        .map(|s| {
            (0..40u64)
                .map(|i| AdjRecord {
                    vertex: s * 40 + i,
                    neighbors: vec![(s * 40 + i) % 7, (s + i) % 11],
                })
                .collect()
        })
        .collect()
}

#[test]
fn handle_resubmits_identically() {
    let cfg = HadoopConfig::table1(4, 256, 256, 2, 2);
    let buckets = cfg.reduce_tasks * ITASK_BUCKET_MULTIPLIER;
    let handle = JobHandle::new(cfg.clone(), itask_factories(WcSpec, buckets));

    let (_, first) = handle.submit::<_, apps::CountMid, OutKv>(splits());
    let (_, second) = handle.clone().submit::<_, apps::CountMid, OutKv>(splits());
    let (_, direct) = run_itask_job::<_, apps::CountMid, OutKv>(&cfg, splits(), handle.factories());

    let mut first = first.expect("first submission completes");
    let mut second = second.expect("second submission completes");
    let mut direct = direct.expect("direct run completes");
    first.sort();
    second.sort();
    direct.sort();
    assert_eq!(first, second, "a handle must be reusable");
    assert_eq!(first, direct, "handle and one-shot API must agree");
    // 8 splits x 40 records x 3 tokens each flowed through.
    let total: u64 = first.iter().map(|o| o.value).sum();
    assert_eq!(total, 8 * 40 * 3);
}
