//! GR — group-by over TPC-H `LINEITEM`: group by order key, collecting
//! the line items of each group before aggregating their revenue (the
//! collect-then-aggregate pattern whose intermediate results blow up —
//! §2's second root cause). The paper's regular GR dies at the 100x and
//! 150x datasets (Figure 9e).

use simcore::jbloat;
use workloads::tpch::{LineItem, TpchConfig, TpchScale};

use crate::agg::AggSpec;
use crate::mids::{ListMid, OutKv};
use crate::summary::RunSummary;

use super::{run_itask_spec, run_regular_spec, HyracksParams};

/// Group entry base: boxed key + list header.
const GR_ENTRY: u32 =
    (jbloat::hashmap_entry(jbloat::boxed(8), 0) + jbloat::array_list(0, 0)) as u32;
/// Per collected line item (the row object + list slot).
const GR_ITEM: u32 = (jbloat::object(1, 40) + jbloat::string(28) + 48) as u32;

/// The GR spec.
#[derive(Clone, Debug, Default)]
pub struct GrSpec;

impl AggSpec for GrSpec {
    type In = LineItem;
    type Mid = ListMid;
    type Out = OutKv;

    fn name(&self) -> &'static str {
        "gr"
    }

    fn explode(&self, rec: &LineItem, out: &mut Vec<ListMid>) {
        let revenue = rec.extendedprice as u64 * rec.quantity as u64;
        out.push(ListMid::one(rec.orderkey, revenue, GR_ENTRY, GR_ITEM));
    }

    fn finish(&self, mid: ListMid) -> OutKv {
        OutKv {
            key: mid.key,
            value: mid.items.iter().sum(),
        }
    }
}

/// Loads the lineitem table as per-node frame lists.
pub fn inputs(scale: TpchScale, params: &HyracksParams) -> Vec<Vec<Vec<LineItem>>> {
    let cfg = TpchConfig::preset(scale, params.seed);
    let per_block = 1_200u64;
    let mut blocks: Vec<Vec<LineItem>> = Vec::new();
    let mut k = 0;
    while k < cfg.lineitems {
        blocks.push(cfg.lineitem_block(k, per_block));
        k += per_block;
    }
    hyracks::distribute_blocks(params.nodes, blocks, params.granularity)
}

/// Runs the regular GR.
pub fn run_regular(scale: TpchScale, params: &HyracksParams) -> RunSummary<OutKv> {
    run_regular_spec(&GrSpec, params, inputs(scale, params))
}

/// Runs the ITask GR.
pub fn run_itask(scale: TpchScale, params: &HyracksParams) -> RunSummary<OutKv> {
    run_itask_spec(&GrSpec, params, inputs(scale, params))
}

/// Invariant check: one group per order, total revenue matches a direct
/// recomputation over the generator.
pub fn verify(outs: &[OutKv], scale: TpchScale, seed: u64) -> bool {
    let cfg = TpchConfig::preset(scale, seed);
    if outs.len() as u64 != cfg.orders {
        return false;
    }
    let mut expected = 0u64;
    let mut k = 0;
    while k < cfg.lineitems {
        for li in cfg.lineitem_block(k, 10_000) {
            expected += li.extendedprice as u64 * li.quantity as u64;
        }
        k += 10_000;
    }
    let got: u64 = outs.iter().map(|o| o.value).sum();
    got == expected
}
