//! The five Hyracks evaluation programs (§6.2), each with a regular and
//! an ITask execution entry point over the paper's datasets.

pub mod gr;
pub mod hj;
pub mod hs;
pub mod ii;
pub mod wc;

use hyracks::{ItaskJobSpec, JobSpec};
use itask_core::IrsConfig;
use simcluster::{Cluster, ClusterConfig};
use simcore::{ByteSize, FaultPlan};

use itask_core::Tuple;
use workloads::webmap::{WebmapConfig, WebmapSize};

use crate::agg::{itask_factories, AggMapOp, AggReduceOp, AggSpec};
use crate::summary::RunSummary;

/// Loads a webmap dataset as per-node frame lists (blocks distributed
/// round-robin like HDFS placement).
pub fn webmap_inputs<T: Tuple>(
    size: WebmapSize,
    params: &HyracksParams,
    convert: impl Fn(workloads::webmap::AdjRecord) -> T,
) -> Vec<Vec<Vec<T>>> {
    let cfg = WebmapConfig::preset(size, params.seed);
    let block_size = ByteSize::kib(128);
    let blocks: Vec<Vec<T>> = (0..cfg.num_blocks(block_size))
        .map(|b| cfg.block(b, block_size).into_iter().map(&convert).collect())
        .collect();
    hyracks::distribute_blocks(params.nodes, blocks, params.granularity)
}

/// Knobs common to every Hyracks run.
#[derive(Clone, Debug)]
pub struct HyracksParams {
    /// Worker nodes (the paper's testbed has 10 slaves).
    pub nodes: usize,
    /// Cores per node.
    pub cores: usize,
    /// Heap per node (paper default "12GB" → 12MiB).
    pub heap_per_node: ByteSize,
    /// Threads per node for the regular version (1–8 in Figure 9).
    pub threads: usize,
    /// Task granularity (8–128KB in Table 5).
    pub granularity: ByteSize,
    /// Workload seed.
    pub seed: u64,
    /// Optional chaos schedule, armed on the cluster substrate before
    /// the job starts (both regular and ITask runs).
    pub fault_plan: Option<FaultPlan>,
}

impl Default for HyracksParams {
    fn default() -> Self {
        HyracksParams {
            nodes: 10,
            cores: 8,
            heap_per_node: ByteSize::mib(12),
            threads: 8,
            granularity: ByteSize::kib(32),
            seed: 42,
            fault_plan: None,
        }
    }
}

impl HyracksParams {
    /// Builds the cluster for these parameters, arming the fault plan
    /// (if any) on every node's substrate and on the fabric.
    pub fn cluster(&self) -> Cluster {
        let mut cluster = Cluster::new(ClusterConfig {
            nodes: self.nodes,
            cores: self.cores,
            heap_per_node: self.heap_per_node,
            disk_per_node: ByteSize::gib(4),
            ..ClusterConfig::default()
        });
        if let Some(plan) = &self.fault_plan {
            cluster.install_faults(plan.clone());
        }
        cluster
    }

    /// Shuffle buckets: four per (node, core), so one bucket's
    /// aggregation state stays well under a node heap even on the
    /// largest datasets.
    pub fn buckets(&self) -> u32 {
        (self.nodes * self.cores * 4) as u32
    }
}

/// Runs a spec's regular two-phase Hyracks job.
pub fn run_regular_spec<S: AggSpec>(
    spec: &S,
    params: &HyracksParams,
    inputs: Vec<Vec<Vec<S::In>>>,
) -> RunSummary<S::Out> {
    let mut cluster = params.cluster();
    let job = JobSpec {
        name: spec.name().into(),
        threads: params.threads,
        granularity: params.granularity,
        buckets: params.buckets(),
    };
    let buckets = params.buckets();
    let (report, result) = hyracks::run_regular(
        &mut cluster,
        inputs,
        &job,
        || AggMapOp::new(spec.clone(), buckets),
        || AggReduceOp::new(spec.clone(), buckets),
    );
    RunSummary { report, result }
}

/// Runs a spec's ITask Hyracks job (default IRS configuration).
pub fn run_itask_spec<S: AggSpec>(
    spec: &S,
    params: &HyracksParams,
    inputs: Vec<Vec<Vec<S::In>>>,
) -> RunSummary<S::Out> {
    let mut cluster = params.cluster();
    let job = ItaskJobSpec {
        name: spec.name().into(),
        irs: IrsConfig {
            max_parallelism: params.cores,
            ..IrsConfig::default()
        },
        granularity: params.granularity,
        buckets: params.buckets(),
    };
    let factories = itask_factories(spec.clone(), params.buckets());
    let (report, result) =
        hyracks::run_itask::<S::In, S::Mid, S::Out>(&mut cluster, inputs, &job, &factories);
    RunSummary { report, result }
}
