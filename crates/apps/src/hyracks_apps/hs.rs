//! HS — heap sort of the webmap's adjacency lines by vertex id. The
//! sort must retain every record (as Java strings plus priority-queue
//! nodes), so memory grows linearly with the node's input share; the
//! paper's regular HS dies on the 44GB and 72GB datasets (Figure 9b).

use simcore::jbloat;
use workloads::webmap::{AdjRecord, WebmapConfig, WebmapSize};

use crate::agg::AggSpec;
use crate::mids::SortMid;
use crate::summary::RunSummary;

use super::{run_itask_spec, run_regular_spec, webmap_inputs, HyracksParams};

/// Per-record collection overhead (PQ node + references).
const PQ_NODE: u32 = (jbloat::object(3, 8) + 8) as u32;

/// The HS spec: unique sort keys, range bucketing for global order.
#[derive(Clone, Debug)]
pub struct HsSpec {
    /// Total vertices (for range partitioning).
    pub vertices: u64,
}

impl AggSpec for HsSpec {
    type In = AdjRecord;
    type Mid = SortMid;
    type Out = SortMid;

    fn name(&self) -> &'static str {
        "hs"
    }

    fn explode(&self, rec: &AdjRecord, out: &mut Vec<SortMid>) {
        out.push(SortMid {
            key: rec.vertex,
            chars: rec.chars() as u32,
            node_bytes: PQ_NODE,
        });
    }

    fn finish(&self, mid: SortMid) -> SortMid {
        mid
    }

    fn bucket(&self, key: u64, buckets: u32) -> u32 {
        ((key as u128 * buckets as u128 / self.vertices.max(1) as u128) as u32).min(buckets - 1)
    }

    /// Sorting cannot early-flush: a sorted run must hold its whole
    /// range before emission, so the cap is effectively the run size
    /// (use a generous per-thread run to model the in-memory sort).
    fn map_cache_bytes(&self) -> u64 {
        u64::MAX
    }
}

fn spec(size: WebmapSize, seed: u64) -> HsSpec {
    HsSpec {
        vertices: WebmapConfig::preset(size, seed).vertices,
    }
}

/// Runs the regular HS.
pub fn run_regular(size: WebmapSize, params: &HyracksParams) -> RunSummary<SortMid> {
    let inputs = webmap_inputs(size, params, |r| r);
    run_regular_spec(&spec(size, params.seed), params, inputs)
}

/// Runs the ITask HS.
pub fn run_itask(size: WebmapSize, params: &HyracksParams) -> RunSummary<SortMid> {
    let inputs = webmap_inputs(size, params, |r| r);
    run_itask_spec(&spec(size, params.seed), params, inputs)
}

/// Invariant check: record count matches, and (for the regular version,
/// whose output is globally bucket-ordered) keys are sorted.
pub fn verify(outs: &[SortMid], size: WebmapSize, seed: u64, expect_sorted: bool) -> bool {
    let cfg = WebmapConfig::preset(size, seed);
    if outs.len() as u64 != cfg.vertices {
        return false;
    }
    if expect_sorted {
        outs.windows(2).all(|w| w[0].key <= w[1].key)
    } else {
        // Multiset check: every vertex id appears exactly once.
        let mut keys: Vec<u64> = outs.iter().map(|o| o.key).collect();
        keys.sort_unstable();
        keys.windows(2).all(|w| w[0] < w[1])
    }
}
