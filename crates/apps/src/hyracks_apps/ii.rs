//! II — inverted index over the webmap: each directed edge contributes
//! a posting `neighbor → source vertex`. Postings lists (boxed ids in
//! `ArrayList`s, with positional payload) dominate memory, which is why
//! the paper's regular II only ever scales to the 3GB dataset
//! (Figure 9c) — the worst of the five programs.

use simcore::jbloat;
use workloads::webmap::{AdjRecord, WebmapConfig, WebmapSize};

use crate::agg::AggSpec;
use crate::mids::{ListMid, OutKv};
use crate::summary::RunSummary;

use super::{run_itask_spec, run_regular_spec, webmap_inputs, HyracksParams};

/// Map-entry base: term string + list header.
const II_ENTRY: u32 =
    (jbloat::hashmap_entry(jbloat::string(11), 0) + jbloat::array_list(0, 0)) as u32;
/// Per-posting bytes: boxed doc id + slot + positional payload.
const II_POSTING: u32 = 144;

/// The II spec.
#[derive(Clone, Debug, Default)]
pub struct IiSpec;

impl AggSpec for IiSpec {
    type In = AdjRecord;
    type Mid = ListMid;
    type Out = OutKv;

    fn name(&self) -> &'static str {
        "ii"
    }

    fn explode(&self, rec: &AdjRecord, out: &mut Vec<ListMid>) {
        for &n in &rec.neighbors {
            out.push(ListMid::one(n, rec.vertex, II_ENTRY, II_POSTING));
        }
    }

    fn finish(&self, mid: ListMid) -> OutKv {
        OutKv {
            key: mid.key,
            value: mid.items.len() as u64,
        }
    }
}

/// Runs the regular II.
pub fn run_regular(size: WebmapSize, params: &HyracksParams) -> RunSummary<OutKv> {
    let inputs = webmap_inputs(size, params, |r| r);
    run_regular_spec(&IiSpec, params, inputs)
}

/// Runs the ITask II.
pub fn run_itask(size: WebmapSize, params: &HyracksParams) -> RunSummary<OutKv> {
    let inputs = webmap_inputs(size, params, |r| r);
    run_itask_spec(&IiSpec, params, inputs)
}

/// Invariant check: total postings equals the edge count.
pub fn verify(outs: &[OutKv], size: WebmapSize, seed: u64) -> bool {
    let cfg = WebmapConfig::preset(size, seed);
    let (_, e, _) = cfg.exact_stats(simcore::ByteSize::kib(128));
    let total: u64 = outs.iter().map(|o| o.value).sum();
    total == e
}
