//! WC — word count over the webmap's adjacency text (the tokens are the
//! decimal vertex ids). The paper's regular WC fails on the 27GB, 44GB
//! and 72GB datasets under 12GB heaps (Figure 9a); the reduce-side
//! count table over all distinct tokens is what kills it.

use workloads::webmap::{AdjRecord, WebmapConfig, WebmapSize};

use crate::agg::AggSpec;
use crate::mids::{CountMid, OutKv};

/// Token-count entry: `String(11) → Long` HashMap entry at a realistic
/// load factor (calibrated so the 27GB dataset is the first to exceed
/// 12GB node heaps, as in Figure 9a).
const WC_ENTRY: u32 = 224;
use crate::summary::RunSummary;

use super::{run_itask_spec, run_regular_spec, webmap_inputs, HyracksParams};

/// The WC aggregation spec.
#[derive(Clone, Debug, Default)]
pub struct WcSpec;

impl AggSpec for WcSpec {
    type In = AdjRecord;
    type Mid = CountMid;
    type Out = OutKv;

    fn name(&self) -> &'static str {
        "wc"
    }

    fn explode(&self, rec: &AdjRecord, out: &mut Vec<CountMid>) {
        out.push(CountMid::one(rec.vertex, WC_ENTRY));
        for &n in &rec.neighbors {
            out.push(CountMid::one(n, WC_ENTRY));
        }
    }

    fn finish(&self, mid: CountMid) -> OutKv {
        OutKv {
            key: mid.key,
            value: mid.count,
        }
    }
}

/// Runs the regular WC.
pub fn run_regular(size: WebmapSize, params: &HyracksParams) -> RunSummary<OutKv> {
    let inputs = webmap_inputs(size, params, |r| r);
    run_regular_spec(&WcSpec, params, inputs)
}

/// Runs the ITask WC.
pub fn run_itask(size: WebmapSize, params: &HyracksParams) -> RunSummary<OutKv> {
    let inputs = webmap_inputs(size, params, |r| r);
    run_itask_spec(&WcSpec, params, inputs)
}

/// Invariant check: total counted tokens equals vertices + edges of the
/// generated dataset.
pub fn verify(outs: &[OutKv], size: WebmapSize, seed: u64) -> bool {
    let cfg = WebmapConfig::preset(size, seed);
    let (v, e, _) = cfg.exact_stats(simcore::ByteSize::kib(128));
    let total: u64 = outs.iter().map(|o| o.value).sum();
    total == v + e
}
