//! HJ — hash join `Customer ⋈ Order` on `custkey` (TPC-H). The
//! reduce-side join cell holds the build row, buffers early probes, and
//! retains joined rows until output; the paper's regular HJ is the most
//! scalable of the five but still dies at the 150x dataset (Figure 9d).

use simcore::jbloat;
use workloads::tpch::{Customer, Order, TpchConfig, TpchScale};

use crate::agg::AggSpec;
use crate::mids::{JoinMid, OutKv};
use crate::summary::RunSummary;
use itask_core::Tuple;

use super::{run_itask_spec, run_regular_spec, HyracksParams};

/// `(cell, pending probe, joined row)` byte sizes.
const SIZES: (u32, u32, u32) = (
    (jbloat::hashmap_entry(jbloat::boxed(8), jbloat::object(3, 20) + jbloat::string(46))) as u32,
    (jbloat::object(2, 28) + 16) as u32,
    640,
);

/// One input record of the join: a build row or a probe row.
#[derive(Clone, Copy, Debug)]
pub enum JoinIn {
    /// Build side.
    C(Customer),
    /// Probe side.
    O(Order),
}

impl Tuple for JoinIn {
    fn heap_bytes(&self) -> u64 {
        match self {
            JoinIn::C(c) => c.heap_bytes(),
            JoinIn::O(o) => o.heap_bytes(),
        }
    }

    fn ser_bytes(&self) -> u64 {
        match self {
            JoinIn::C(c) => c.ser_bytes(),
            JoinIn::O(o) => o.ser_bytes(),
        }
    }
}

/// The HJ spec.
#[derive(Clone, Debug, Default)]
pub struct HjSpec;

impl AggSpec for HjSpec {
    type In = JoinIn;
    type Mid = JoinMid;
    type Out = OutKv;

    fn name(&self) -> &'static str {
        "hj"
    }

    fn explode(&self, rec: &JoinIn, out: &mut Vec<JoinMid>) {
        match rec {
            JoinIn::C(c) => out.push(JoinMid::customer(c.custkey, c.nationkey, SIZES)),
            JoinIn::O(o) => out.push(JoinMid::order(o.custkey, o.totalprice as u64, SIZES)),
        }
    }

    fn finish(&self, mid: JoinMid) -> OutKv {
        OutKv {
            key: mid.custkey,
            value: mid.joined,
        }
    }
}

/// Loads customers then orders as per-node frame lists.
pub fn inputs(scale: TpchScale, params: &HyracksParams) -> Vec<Vec<Vec<JoinIn>>> {
    let cfg = TpchConfig::preset(scale, params.seed);
    let per_block = 1_000u64;
    let mut blocks: Vec<Vec<JoinIn>> = Vec::new();
    let mut k = 0;
    while k < cfg.customers {
        blocks.push(
            cfg.customer_block(k, per_block)
                .into_iter()
                .map(JoinIn::C)
                .collect(),
        );
        k += per_block;
    }
    let mut k = 0;
    while k < cfg.orders {
        blocks.push(
            cfg.order_block(k, per_block)
                .into_iter()
                .map(JoinIn::O)
                .collect(),
        );
        k += per_block;
    }
    hyracks::distribute_blocks(params.nodes, blocks, params.granularity)
}

/// Runs the regular HJ.
pub fn run_regular(scale: TpchScale, params: &HyracksParams) -> RunSummary<OutKv> {
    run_regular_spec(&HjSpec, params, inputs(scale, params))
}

/// Runs the ITask HJ.
pub fn run_itask(scale: TpchScale, params: &HyracksParams) -> RunSummary<OutKv> {
    run_itask_spec(&HjSpec, params, inputs(scale, params))
}

/// Invariant check: every order joins exactly once.
pub fn verify(outs: &[OutKv], scale: TpchScale, seed: u64) -> bool {
    let cfg = TpchConfig::preset(scale, seed);
    let joined: u64 = outs.iter().map(|o| o.value).sum();
    joined == cfg.orders
}
