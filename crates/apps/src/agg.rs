//! Generic keyed-aggregation machinery: one spec type per application,
//! four executions for free (Hyracks regular/ITask, Hadoop
//! regular/ITask).
//!
//! The central idea: the `Mid` tuple is simultaneously the unit that
//! travels through the shuffle *and* the mergeable per-key accumulator
//! ([`MergeableTuple`]). Map-side combining, reduce-side aggregation and
//! the ITask merge stage are then all the same fold.

use std::collections::BTreeMap;
use std::rc::Rc;

use hadoop::{HadoopConfig, MapCx, Mapper, ReduceCx, Reducer, RegularJobResult};
use hyracks::{ItaskFactories, OpCx, Operator, ShuffleBatch};
use itask_core::{ITask, Scale, TaskCx, Tuple, TupleTask};
use simcluster::JobReport;
use simcore::{prof, ByteSize, SimError, SimResult, TaskId};

/// A tuple that knows its aggregation key and can absorb another tuple
/// with the same key.
pub trait MergeableTuple: Tuple + Clone {
    /// The aggregation key.
    fn key(&self) -> u64;

    /// Merges `other` (same key) into `self`; returns the simulated heap
    /// byte *delta* now held — positive when the accumulator grows
    /// (postings, collected groups), zero when the merge collapses
    /// (adding counters), negative when it releases memory (a hash join
    /// resolving pending probes).
    fn merge(&mut self, other: Self) -> i64;
}

/// One application's aggregation semantics.
pub trait AggSpec: Clone + Send + 'static {
    /// Input record type.
    type In: Tuple + Clone;
    /// Shuffled/accumulated tuple type.
    type Mid: MergeableTuple;
    /// Final output record type.
    type Out: Tuple + 'static;

    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Decomposes one input record into keyed contributions (map side).
    fn explode(&self, rec: &Self::In, out: &mut Vec<Self::Mid>);

    /// Finalizes one accumulated entry.
    fn finish(&self, mid: Self::Mid) -> Self::Out;

    /// Shuffle bucket of a key (hash by default; sort apps use ranges).
    fn bucket(&self, key: u64, buckets: u32) -> u32 {
        (key % buckets as u64) as u32
    }

    /// Bytes of long-lived structures loaded at task start (MSA's join
    /// table).
    fn init_bytes(&self) -> u64 {
        0
    }

    /// Transient scratch needed to process one record (CRP's lemmatizer
    /// working set): allocated before `explode`, garbage right after.
    fn scratch_bytes(&self, _rec: &Self::In) -> u64 {
        0
    }

    /// Map-side combiner cache cap for the *regular* versions: when the
    /// local aggregate exceeds this, it is flushed downstream (Hyracks
    /// per-frame aggregation / a bounded in-map combiner). The ITask map
    /// has no cap — its state grows until the IRS interrupts it, which
    /// is exactly the paper's design. Specs reproducing unbounded-state
    /// bugs (IMC) override this with `u64::MAX`.
    fn map_cache_bytes(&self) -> u64 {
        64 * 1024
    }
}

/// Cheap deterministic hasher for the u64 aggregation keys: one
/// Fibonacci multiply instead of SipHash on the per-tuple fold path.
/// Order sensitivity is confined to [`AggState::drain`], which sorts.
#[derive(Default)]
struct KeyHasher(u64);

impl std::hash::Hasher for KeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // FNV-1a fallback; the key path below is `write_u64`.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, k: u64) {
        let h = k.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = h ^ (h >> 32);
    }
}

type KeyMap<M> = std::collections::HashMap<u64, M, std::hash::BuildHasherDefault<KeyHasher>>;

/// The shared fold: a key → accumulator map with byte-accurate
/// allocation callbacks.
pub struct AggState<M: MergeableTuple> {
    map: KeyMap<M>,
}

impl<M: MergeableTuple> AggState<M> {
    /// Empty state.
    pub fn new() -> Self {
        AggState {
            map: KeyMap::default(),
        }
    }

    /// Whether nothing has been accumulated.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Folds one tuple in; `charge` receives the byte delta (positive:
    /// allocate, negative: free).
    pub fn add(&mut self, item: M, charge: &mut impl FnMut(i64) -> SimResult<()>) -> SimResult<()> {
        use std::collections::hash_map::Entry;
        match self.map.entry(item.key()) {
            Entry::Vacant(v) => {
                charge(item.heap_bytes() as i64)?;
                v.insert(item);
            }
            Entry::Occupied(mut o) => {
                let delta = o.get_mut().merge(item);
                if delta != 0 {
                    charge(delta)?;
                }
            }
        }
        Ok(())
    }

    /// Drains the accumulated tuples in key order (the sort restores
    /// the order the previous BTreeMap-backed state emitted in — this
    /// is the only place map order is observable).
    pub fn drain(&mut self) -> Vec<M> {
        let _wall = prof::wall_timer(prof::Stage::AggDrain);
        prof::count(prof::Stage::AggDrain, 1, self.map.len() as u64);
        let mut out: Vec<M> = Vec::with_capacity(self.map.len());
        out.extend(self.map.drain().map(|(_, v)| v));
        // Keys are unique, so sorting the tuples by their own key gives
        // the order the previous BTreeMap-backed state emitted in.
        out.sort_unstable_by_key(MergeableTuple::key);
        out
    }
}

impl<M: MergeableTuple> Default for AggState<M> {
    fn default() -> Self {
        Self::new()
    }
}

fn ser_of<T: Tuple>(items: &[T]) -> ByteSize {
    ByteSize(items.iter().map(Tuple::ser_bytes).sum())
}

/// Signed charge against an operator's state space.
fn charge_state<Out>(cx: &mut OpCx<'_, '_, Out>, delta: i64) -> SimResult<()> {
    if delta >= 0 {
        cx.alloc_state(ByteSize(delta as u64))
    } else {
        cx.free_state(ByteSize((-delta) as u64));
        Ok(())
    }
}

/// Signed charge against an ITask instance's output space.
fn charge_out(cx: &mut TaskCx<'_, '_>, delta: i64) -> SimResult<()> {
    if delta >= 0 {
        cx.alloc_out(ByteSize(delta as u64))
    } else {
        cx.free_out(ByteSize((-delta) as u64));
        Ok(())
    }
}

/// Signed charge against a Hadoop attempt's user-state space.
fn charge_reduce_state<Out: Tuple>(cx: &mut ReduceCx<'_, '_, Out>, delta: i64) -> SimResult<()> {
    if delta >= 0 {
        cx.alloc_state(ByteSize(delta as u64))
    } else {
        cx.free_state(ByteSize((-delta) as u64));
        Ok(())
    }
}

/// Signed charge against a Hadoop mapper's user-state space.
fn charge_map_state<Out: Tuple>(cx: &mut MapCx<'_, '_, Out>, delta: i64) -> SimResult<()> {
    if delta >= 0 {
        cx.alloc_state(ByteSize(delta as u64))
    } else {
        cx.free_state(ByteSize((-delta) as u64));
        Ok(())
    }
}

// ====================================================================
// Regular Hyracks operators
// ====================================================================

/// Map-side operator: explode + local combining; emits at close.
pub struct AggMapOp<S: AggSpec> {
    spec: S,
    buckets: u32,
    state: AggState<S::Mid>,
    scratch: Vec<S::Mid>,
    held: i64,
    initialized: bool,
}

impl<S: AggSpec> AggMapOp<S> {
    /// Creates the operator.
    pub fn new(spec: S, buckets: u32) -> Self {
        AggMapOp {
            spec,
            buckets,
            state: AggState::new(),
            scratch: Vec::new(),
            held: 0,
            initialized: false,
        }
    }

    fn flush(&mut self, cx: &mut OpCx<'_, '_, S::Mid>) {
        for item in self.state.drain() {
            let bucket = self.spec.bucket(item.key(), self.buckets);
            cx.emit(bucket, item);
        }
        if self.held > 0 {
            cx.free_state(ByteSize(self.held as u64));
        }
        self.held = 0;
    }
}

impl<S: AggSpec> Operator for AggMapOp<S> {
    type In = S::In;
    type Out = S::Mid;

    fn open(&mut self, cx: &mut OpCx<'_, '_, S::Mid>) -> SimResult<()> {
        let init = self.spec.init_bytes();
        if init > 0 && !self.initialized {
            cx.alloc_state(ByteSize(init))?;
            self.initialized = true;
        }
        Ok(())
    }

    fn next(&mut self, cx: &mut OpCx<'_, '_, S::Mid>, rec: &S::In) -> SimResult<()> {
        let scratch = self.spec.scratch_bytes(rec);
        if scratch > 0 {
            cx.alloc_state(ByteSize(scratch))?;
        }
        self.scratch.clear();
        self.spec.explode(rec, &mut self.scratch);
        let held = &mut self.held;
        for item in self.scratch.drain(..) {
            self.state.add(item, &mut |d| {
                *held += d;
                charge_state(cx, d)
            })?;
        }
        if scratch > 0 {
            cx.free_state(ByteSize(scratch));
        }
        if self.held > 0 && self.held as u64 > self.spec.map_cache_bytes() {
            self.flush(cx);
        }
        Ok(())
    }

    fn close(&mut self, cx: &mut OpCx<'_, '_, S::Mid>) -> SimResult<()> {
        self.flush(cx);
        Ok(())
    }
}

/// Reduce-side operator: fold partials, finalize at close.
pub struct AggReduceOp<S: AggSpec> {
    spec: S,
    buckets: u32,
    state: AggState<S::Mid>,
}

impl<S: AggSpec> AggReduceOp<S> {
    /// Creates the operator.
    pub fn new(spec: S, buckets: u32) -> Self {
        AggReduceOp {
            spec,
            buckets,
            state: AggState::new(),
        }
    }
}

impl<S: AggSpec> Operator for AggReduceOp<S> {
    type In = S::Mid;
    type Out = S::Out;

    fn open(&mut self, _cx: &mut OpCx<'_, '_, S::Out>) -> SimResult<()> {
        Ok(())
    }

    fn next(&mut self, cx: &mut OpCx<'_, '_, S::Out>, item: &S::Mid) -> SimResult<()> {
        self.state.add(item.clone(), &mut |d| charge_state(cx, d))
    }

    fn close(&mut self, cx: &mut OpCx<'_, '_, S::Out>) -> SimResult<()> {
        for item in self.state.drain() {
            let bucket = self.spec.bucket(item.key(), self.buckets);
            let out = self.spec.finish(item);
            cx.emit(bucket, out);
        }
        Ok(())
    }
}

// ====================================================================
// ITask versions
// ====================================================================

/// The phase-2 graph built by the engines is `reduce = task0,
/// merge = task1` (see `hyracks::engine::run_itask`).
const MERGE_TASK: TaskId = TaskId(1);

/// Map ITask: explode + combine; interrupt/cleanup push a final
/// [`ShuffleBatch`] (Figure 6's `MapOperator`).
pub struct AggMapTask<S: AggSpec> {
    spec: S,
    buckets: u32,
    state: AggState<S::Mid>,
    scratch: Vec<S::Mid>,
}

impl<S: AggSpec> AggMapTask<S> {
    /// Creates the task.
    pub fn new(spec: S, buckets: u32) -> Self {
        AggMapTask {
            spec,
            buckets,
            state: AggState::new(),
            scratch: Vec::new(),
        }
    }

    fn flush(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        if self.state.is_empty() {
            return Ok(());
        }
        let mut buckets: BTreeMap<u32, Vec<S::Mid>> = BTreeMap::new();
        for item in self.state.drain() {
            buckets
                .entry(self.spec.bucket(item.key(), self.buckets))
                .or_default()
                .push(item);
        }
        let batch = ShuffleBatch {
            buckets: buckets.into_iter().collect(),
        };
        let ser: ByteSize = batch.buckets.iter().map(|(_, v)| ser_of(v)).sum();
        cx.emit_final(Box::new(batch), ser)
    }
}

impl<S: AggSpec> TupleTask for AggMapTask<S> {
    type In = S::In;

    fn initialize(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        let init = self.spec.init_bytes();
        if init > 0 {
            cx.alloc_local(ByteSize(init))?;
        }
        Ok(())
    }

    fn process(&mut self, cx: &mut TaskCx<'_, '_>, rec: &S::In) -> SimResult<()> {
        let scratch = self.spec.scratch_bytes(rec);
        if scratch > 0 {
            cx.alloc_local(ByteSize(scratch))?;
        }
        self.scratch.clear();
        self.spec.explode(rec, &mut self.scratch);
        for item in self.scratch.drain(..) {
            self.state.add(item, &mut |d| charge_out(cx, d))?;
        }
        if scratch > 0 {
            cx.free_local(ByteSize(scratch));
        }
        Ok(())
    }

    fn interrupt(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        self.flush(cx)
    }

    fn cleanup(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        self.flush(cx)
    }
}

/// Reduce ITask: folds one bucket partition; interrupt/cleanup queue the
/// partial aggregate to the merge MITask tagged with the bucket
/// (Figure 7's `ReduceOperator`).
pub struct AggReduceTask<S: AggSpec> {
    state: AggState<S::Mid>,
}

impl<S: AggSpec> AggReduceTask<S> {
    /// Creates the task.
    pub fn new(_spec: S) -> Self {
        AggReduceTask {
            state: AggState::new(),
        }
    }

    fn flush(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        if self.state.is_empty() {
            return Ok(());
        }
        let items = self.state.drain();
        let tag = cx.input_tag();
        cx.emit_to_task(MERGE_TASK, tag, items)
    }
}

impl<S: AggSpec> TupleTask for AggReduceTask<S> {
    type In = S::Mid;

    fn initialize(&mut self, _cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        Ok(())
    }

    fn process(&mut self, cx: &mut TaskCx<'_, '_>, item: &S::Mid) -> SimResult<()> {
        self.state.add(item.clone(), &mut |d| charge_out(cx, d))
    }

    fn interrupt(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        self.flush(cx)
    }

    fn cleanup(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        self.flush(cx)
    }
}

/// Merge MITask: aggregates a tag group; interrupted partials re-enter
/// its own queue (Figure 7's `MergeTask`), cleanup emits the final
/// records.
pub struct AggMergeTask<S: AggSpec> {
    spec: S,
    state: AggState<S::Mid>,
}

impl<S: AggSpec> AggMergeTask<S> {
    /// Creates the task.
    pub fn new(spec: S) -> Self {
        AggMergeTask {
            spec,
            state: AggState::new(),
        }
    }
}

impl<S: AggSpec> TupleTask for AggMergeTask<S> {
    type In = S::Mid;

    fn initialize(&mut self, _cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        Ok(())
    }

    fn process(&mut self, cx: &mut TaskCx<'_, '_>, item: &S::Mid) -> SimResult<()> {
        self.state.add(item.clone(), &mut |d| charge_out(cx, d))
    }

    fn interrupt(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        if self.state.is_empty() {
            return Ok(());
        }
        let items = self.state.drain();
        let tag = cx.input_tag();
        let me = cx.task();
        cx.emit_to_task(me, tag, items)
    }

    fn cleanup(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        let out: Vec<S::Out> = self
            .state
            .drain()
            .into_iter()
            .map(|m| self.spec.finish(m))
            .collect();
        let ser = ser_of(&out);
        cx.emit_final(Box::new(out), ser)
    }
}

/// Builds the three ITask factories for a spec.
pub fn itask_factories<S: AggSpec>(spec: S, buckets: u32) -> ItaskFactories {
    let s1 = spec.clone();
    let s2 = spec.clone();
    let s3 = spec;
    ItaskFactories {
        map: Rc::new(move || {
            Box::new(Scale(AggMapTask::new(s1.clone(), buckets))) as Box<dyn ITask>
        }),
        reduce: Rc::new(move || Box::new(Scale(AggReduceTask::new(s2.clone()))) as Box<dyn ITask>),
        merge: Rc::new(move || Box::new(Scale(AggMergeTask::new(s3.clone()))) as Box<dyn ITask>),
    }
}

// ====================================================================
// Hadoop versions
// ====================================================================

/// Hadoop mapper: explode + in-task combining; emissions at close go
/// through the spill-managed sort buffer.
pub struct AggMapper<S: AggSpec> {
    spec: S,
    buckets: u32,
    state: AggState<S::Mid>,
    scratch: Vec<S::Mid>,
    held: i64,
    initialized: bool,
}

impl<S: AggSpec> AggMapper<S> {
    /// Creates the mapper.
    pub fn new(spec: S, buckets: u32) -> Self {
        AggMapper {
            spec,
            buckets,
            state: AggState::new(),
            scratch: Vec::new(),
            held: 0,
            initialized: false,
        }
    }

    fn flush(&mut self, cx: &mut MapCx<'_, '_, S::Mid>) -> SimResult<()> {
        for item in self.state.drain() {
            let bucket = self.spec.bucket(item.key(), self.buckets);
            cx.write(bucket, item)?;
        }
        if self.held > 0 {
            cx.free_state(ByteSize(self.held as u64));
        }
        self.held = 0;
        Ok(())
    }
}

impl<S: AggSpec> Mapper for AggMapper<S> {
    type In = S::In;
    type Out = S::Mid;

    fn map(&mut self, cx: &mut MapCx<'_, '_, S::Mid>, rec: &S::In) -> SimResult<()> {
        if !self.initialized {
            let init = self.spec.init_bytes();
            if init > 0 {
                cx.alloc_state(ByteSize(init))?;
            }
            self.initialized = true;
        }
        let scratch = self.spec.scratch_bytes(rec);
        if scratch > 0 {
            cx.alloc_state(ByteSize(scratch))?;
        }
        self.scratch.clear();
        self.spec.explode(rec, &mut self.scratch);
        let held = &mut self.held;
        for item in self.scratch.drain(..) {
            self.state.add(item, &mut |d| {
                *held += d;
                charge_map_state(cx, d)
            })?;
        }
        if scratch > 0 {
            cx.free_state(ByteSize(scratch));
        }
        if self.held > 0 && self.held as u64 > self.spec.map_cache_bytes() {
            self.flush(cx)?;
        }
        Ok(())
    }

    fn close(&mut self, cx: &mut MapCx<'_, '_, S::Mid>) -> SimResult<()> {
        self.flush(cx)
    }
}

/// Hadoop reducer: fold, finalize at close.
pub struct AggReducer<S: AggSpec> {
    spec: S,
    state: AggState<S::Mid>,
}

impl<S: AggSpec> AggReducer<S> {
    /// Creates the reducer.
    pub fn new(spec: S) -> Self {
        AggReducer {
            spec,
            state: AggState::new(),
        }
    }
}

impl<S: AggSpec> Reducer for AggReducer<S> {
    type In = S::Mid;
    type Out = S::Out;

    fn reduce(&mut self, cx: &mut ReduceCx<'_, '_, S::Out>, item: &S::Mid) -> SimResult<()> {
        self.state
            .add(item.clone(), &mut |d| charge_reduce_state(cx, d))
    }

    fn close(&mut self, cx: &mut ReduceCx<'_, '_, S::Out>) -> SimResult<()> {
        for item in self.state.drain() {
            let out = self.spec.finish(item);
            cx.write(out)?;
        }
        Ok(())
    }
}

/// Runs the regular Hadoop job for a spec.
pub fn run_hadoop_regular<S: AggSpec>(
    spec: &S,
    cfg: &HadoopConfig,
    splits: Vec<Vec<S::In>>,
) -> RegularJobResult<S::Out> {
    let buckets = cfg.reduce_tasks;
    hadoop::run_regular_job(
        cfg,
        splits,
        || AggMapper::new(spec.clone(), buckets),
        || AggReducer::new(spec.clone()),
    )
}

/// Runs the ITask Hadoop job for a spec.
pub fn run_hadoop_itask<S: AggSpec>(
    spec: &S,
    cfg: &HadoopConfig,
    splits: Vec<Vec<S::In>>,
) -> (JobReport, Result<Vec<S::Out>, SimError>) {
    // The factories must bucket exactly as finely as the engine tags.
    let buckets = cfg.reduce_tasks * hadoop::ITASK_BUCKET_MULTIPLIER;
    let factories = itask_factories(spec.clone(), buckets);
    hadoop::run_itask_job::<S::In, S::Mid, S::Out>(cfg, splits, &factories)
}
