#![warn(missing_docs)]

//! The paper's benchmark applications, each in a *regular* and an
//! *ITask* version:
//!
//! * Hyracks programs (§6.2): word count (WC), heap sort (HS), inverted
//!   index (II), hash join (HJ), group-by (GR) — [`hyracks_apps`];
//! * Hadoop programs (§6.1, Table 1): map-side aggregation (MSA),
//!   in-map combiner (IMC), inverted-index building (IIB), word
//!   co-occurrence matrix (WCM), customer review processing (CRP) —
//!   [`hadoop_apps`].
//!
//! Most programs are keyed aggregations and instantiate the generic
//! machinery in [`agg`]: a `Mid` tuple type that is both the shuffled
//! unit and the mergeable accumulator, exploded from input records on
//! the map side and folded on both sides. The interrupt semantics of
//! the ITask versions follow the paper's Figures 6–7: map interrupts
//! push partial results straight to the shuffle, reduce interrupts tag
//! partial aggregates for the merge MITask, merge interrupts re-queue
//! to themselves.

pub mod agg;
pub mod hadoop_apps;
pub mod hyracks_apps;
pub mod mids;
pub mod summary;

pub use agg::{AggSpec, MergeableTuple};
pub use mids::{CountMid, JoinMid, ListMid, OutKv, SortMid, StripeMid};
pub use summary::RunSummary;
