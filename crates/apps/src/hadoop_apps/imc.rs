//! IMC — word count with an *unbounded* in-map combiner over the
//! Wikipedia full dump (StackOverflow problem \[16\] of the paper): the combiner map
//! over the whole vocabulary outgrows the 0.5GB map heap.

use hadoop::HadoopConfig;
use workloads::wikipedia::Article;

use crate::agg::AggSpec;
use crate::mids::{CountMid, OutKv};
use crate::summary::RunSummary;

use super::{itask, regular, wikipedia_splits, NODES};

/// The in-map combiner entry: word string key, boxed count, plus the
/// per-word document-frequency bookkeeping the problem report's mapper
/// carries (calibrated so a 0.5GB map heap dies on full-dump splits).
const IMC_ENTRY: u32 = 208;

/// The IMC spec.
#[derive(Clone, Debug, Default)]
pub struct ImcSpec;

impl AggSpec for ImcSpec {
    type In = Article;
    type Mid = CountMid;
    type Out = OutKv;

    fn name(&self) -> &'static str {
        "imc"
    }

    fn explode(&self, rec: &Article, out: &mut Vec<CountMid>) {
        for &w in &rec.words {
            out.push(CountMid::one(w as u64, IMC_ENTRY));
        }
    }

    fn finish(&self, mid: CountMid) -> OutKv {
        OutKv {
            key: mid.key,
            value: mid.count,
        }
    }

    /// The studied bug: the in-map combiner never flushes.
    fn map_cache_bytes(&self) -> u64 {
        u64::MAX
    }
}

/// Table 1 configuration: MH=0.5GB, RH=1GB, MM=13, MR=6.
pub fn table1_config() -> HadoopConfig {
    HadoopConfig::table1(NODES, 512, 1024, 13, 6)
}

/// Recommended fix: flush the combiner (bounded cache) — modelled as a
/// separate spec — plus fewer mappers.
#[derive(Clone, Debug, Default)]
pub struct ImcTunedSpec;

impl AggSpec for ImcTunedSpec {
    type In = Article;
    type Mid = CountMid;
    type Out = OutKv;

    fn name(&self) -> &'static str {
        "imc-tuned"
    }

    fn explode(&self, rec: &Article, out: &mut Vec<CountMid>) {
        ImcSpec.explode(rec, out);
    }

    fn finish(&self, mid: CountMid) -> OutKv {
        ImcSpec.finish(mid)
    }

    fn map_cache_bytes(&self) -> u64 {
        48 * 1024
    }
}

/// The tuned framework parameters (fewer concurrent mappers, finer
/// splits).
pub fn tuned_config() -> HadoopConfig {
    let mut cfg = HadoopConfig::table1(NODES, 512, 1024, 6, 6);
    cfg.split_size = simcore::ByteSize::kib(64);
    cfg
}

/// CTime run.
pub fn run_ctime(seed: u64) -> (RunSummary<OutKv>, u32) {
    regular(&ImcSpec, &table1_config(), wikipedia_splits(true, seed))
}

/// PTime run.
pub fn run_tuned(seed: u64) -> (RunSummary<OutKv>, u32) {
    let cfg = tuned_config();
    let splits = super::wikipedia_splits_sized(true, seed, cfg.split_size);
    regular(&ImcTunedSpec, &cfg, splits)
}

/// ITime run.
pub fn run_itask(seed: u64) -> RunSummary<OutKv> {
    itask(&ImcSpec, &table1_config(), wikipedia_splits(true, seed))
}

/// Invariant: total counted words equals total word occurrences.
pub fn verify(outs: &[OutKv], seed: u64) -> bool {
    let total: u64 = outs.iter().map(|o| o.value).sum();
    let expected: u64 = wikipedia_splits(true, seed)
        .iter()
        .flat_map(|s| s.iter())
        .map(|a| a.words.len() as u64)
        .sum();
    total == expected
}
