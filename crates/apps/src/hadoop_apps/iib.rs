//! IIB — inverted-index building over the Wikipedia full dump
//! (StackOverflow problem \[8\] of the paper): the reduce side accumulates postings
//! lists for its share of the vocabulary; Table 2 shows ITask carrying
//! it by queueing intermediate results and lazily serializing them.

use hadoop::HadoopConfig;
use simcore::jbloat;
use workloads::wikipedia::Article;

use crate::agg::AggSpec;
use crate::mids::{ListMid, OutKv};
use crate::summary::RunSummary;

use super::{itask, regular, wikipedia_splits, NODES};

/// Postings entry base and per-posting bytes.
const IIB_ENTRY: u32 =
    (jbloat::hashmap_entry(jbloat::string(11), 0) + jbloat::array_list(0, 0)) as u32;
const IIB_POSTING: u32 = 48;

/// The IIB spec: `word → [article ids]` (distinct per article).
#[derive(Clone, Debug, Default)]
pub struct IibSpec;

impl AggSpec for IibSpec {
    type In = Article;
    type Mid = ListMid;
    type Out = OutKv;

    fn name(&self) -> &'static str {
        "iib"
    }

    fn explode(&self, rec: &Article, out: &mut Vec<ListMid>) {
        let mut distinct: Vec<u32> = rec.words.clone();
        distinct.sort_unstable();
        distinct.dedup();
        for w in distinct {
            out.push(ListMid::one(w as u64, rec.id, IIB_ENTRY, IIB_POSTING));
        }
    }

    fn finish(&self, mid: ListMid) -> OutKv {
        OutKv {
            key: mid.key,
            value: mid.items.len() as u64,
        }
    }
}

/// Table 1 configuration: MH=0.5GB, RH=1GB, MM=13, MR=6.
pub fn table1_config() -> HadoopConfig {
    HadoopConfig::table1(NODES, 512, 1024, 13, 6)
}

/// Recommended fix: finer splits and many more (smaller) reduce tasks.
pub fn tuned_config() -> HadoopConfig {
    // Bigger map heaps, finer splits, many more reduce tasks.
    let mut cfg = HadoopConfig::table1(NODES, 768, 1024, 6, 6);
    cfg.split_size = simcore::ByteSize::kib(64);
    cfg.reduce_tasks = 600;
    cfg
}

/// CTime run.
pub fn run_ctime(seed: u64) -> (RunSummary<OutKv>, u32) {
    regular(&IibSpec, &table1_config(), wikipedia_splits(true, seed))
}

/// PTime run.
pub fn run_tuned(seed: u64) -> (RunSummary<OutKv>, u32) {
    let cfg = tuned_config();
    let splits = super::wikipedia_splits_sized(true, seed, cfg.split_size);
    regular(&IibSpec, &cfg, splits)
}

/// ITime run.
pub fn run_itask(seed: u64) -> RunSummary<OutKv> {
    itask(&IibSpec, &table1_config(), wikipedia_splits(true, seed))
}

/// Invariant: total postings equals the summed distinct word counts.
pub fn verify(outs: &[OutKv], seed: u64) -> bool {
    let total: u64 = outs.iter().map(|o| o.value).sum();
    let expected: u64 = wikipedia_splits(true, seed)
        .iter()
        .flat_map(|s| s.iter())
        .map(|a| {
            let mut d = a.words.clone();
            d.sort_unstable();
            d.dedup();
            d.len() as u64
        })
        .sum();
    total == expected
}
