//! The five reproduced Hadoop problems of Table 1 (§6.1). Each module
//! exposes the Table 1 configuration (the one the problem was reported
//! under — the CTime run), the StackOverflow-recommended fix (the PTime
//! run) and the ITask version under the *original* configuration (the
//! ITime run).

pub mod crp;
pub mod iib;
pub mod imc;
pub mod more_problems;
pub mod msa;
pub mod wcm;

use hadoop::HadoopConfig;
use simcluster::JobReport;
use simcore::{ByteSize, SimError};
use workloads::stackoverflow::{Post, StackOverflowConfig};
use workloads::wikipedia::{Article, WikipediaConfig};

use crate::agg::{run_hadoop_itask, run_hadoop_regular, AggSpec};
use crate::summary::RunSummary;

/// Worker nodes of the paper's testbed.
pub const NODES: usize = 10;

/// Loads the StackOverflow full dump as splits of the default HDFS
/// block size.
pub fn stackoverflow_splits(seed: u64) -> Vec<Vec<Post>> {
    stackoverflow_splits_sized(seed, ByteSize::kib(128))
}

/// Loads the StackOverflow full dump at an explicit split size (the
/// tuned configurations shrink it).
pub fn stackoverflow_splits_sized(seed: u64, split: ByteSize) -> Vec<Vec<Post>> {
    let cfg = StackOverflowConfig::full_dump(seed);
    (0..cfg.num_blocks(split))
        .map(|b| cfg.block(b, split))
        .collect()
}

/// Loads a Wikipedia dataset (full dump or sample) as splits of the
/// default HDFS block size.
pub fn wikipedia_splits(full: bool, seed: u64) -> Vec<Vec<Article>> {
    wikipedia_splits_sized(full, seed, ByteSize::kib(128))
}

/// Loads a Wikipedia dataset at an explicit split size.
pub fn wikipedia_splits_sized(full: bool, seed: u64, split: ByteSize) -> Vec<Vec<Article>> {
    let cfg = if full {
        WikipediaConfig::full_dump(seed)
    } else {
        WikipediaConfig::sample(seed)
    };
    (0..cfg.num_blocks(split))
        .map(|b| cfg.block(b, split))
        .collect()
}

/// Runs a spec's regular Hadoop job and wraps it uniformly.
pub fn regular<S: AggSpec>(
    spec: &S,
    cfg: &HadoopConfig,
    splits: Vec<Vec<S::In>>,
) -> (RunSummary<S::Out>, u32) {
    let run = run_hadoop_regular(spec, cfg, splits);
    let attempts = run.map_attempts + run.reduce_attempts;
    (
        RunSummary {
            report: run.report,
            result: run.result,
        },
        attempts,
    )
}

/// Runs a spec's ITask Hadoop job and wraps it uniformly.
pub fn itask<S: AggSpec>(
    spec: &S,
    cfg: &HadoopConfig,
    splits: Vec<Vec<S::In>>,
) -> RunSummary<S::Out> {
    let (report, result): (JobReport, Result<Vec<S::Out>, SimError>) =
        run_hadoop_itask(spec, cfg, splits);
    RunSummary { report, result }
}
