//! The other eight of the paper's 13 reproduced StackOverflow problems
//! (§6.1 details five — MSA, IMC, IIB, WCM, CRP — and reports that the
//! ITask versions of *all 13* survived their memory pressure; paper
//! references \[5\]–\[17\]). Each reproduction here pairs the
//! configuration under which the problem crashes with the ITask run
//! that survives it untouched.
//!
//! Root causes follow the paper's §2 taxonomy — hot keys or large
//! intermediate results — expressed through the same levers as the
//! detailed five: preloaded tables, per-record scratch spikes, unbounded
//! buffers, giant records, and reduce-side aggregation state.

use hadoop::HadoopConfig;
use simcore::{jbloat, ByteSize};
use workloads::stackoverflow::Post;
use workloads::tpch::{LineItem, TpchConfig, TpchScale};
use workloads::wikipedia::Article;

use crate::agg::AggSpec;
use crate::mids::{CountMid, ListMid, OutKv, StripeMid};
use crate::summary::RunSummary;

use super::{itask, regular, stackoverflow_splits, wikipedia_splits, NODES};

/// A uniform row for the survival table: the problem's name, the
/// crashing run and the surviving ITask run.
pub struct Survival {
    /// Short name (paper reference number).
    pub name: &'static str,
    /// What the problem is.
    pub story: &'static str,
    /// The regular run under the reported configuration.
    pub crash: RunSummary<OutKv>,
    /// Attempts burned by the crash.
    pub attempts: u32,
    /// The ITask run under the same configuration.
    pub survive: RunSummary<OutKv>,
}

// ----------------------------------------------------------------
// [5] StringBuilder append: concatenating every value of a key into
// one ever-growing string — hot keys build megabyte strings.
// ----------------------------------------------------------------

/// Mean heap cost of one appended value inside the string builder.
const SBA_APPEND_BYTES: u32 = 620;

/// Spec for problem \[5\].
#[derive(Clone, Debug, Default)]
pub struct SbaSpec;

impl AggSpec for SbaSpec {
    type In = Post;
    type Mid = ListMid;
    type Out = OutKv;

    fn name(&self) -> &'static str {
        "sba"
    }

    fn explode(&self, rec: &Post, out: &mut Vec<ListMid>) {
        // Group by a coarse key; every appended value retains ~600B of
        // builder payload (`ListMid` accounts uniform item sizes, so the
        // mean appended-string cost is used).
        out.push(ListMid::one(
            rec.id % 12,
            rec.body_chars,
            520,
            SBA_APPEND_BYTES,
        ));
    }

    fn finish(&self, mid: ListMid) -> OutKv {
        OutKv {
            key: mid.key,
            value: mid.items.iter().sum(),
        }
    }
}

/// Runs problem \[5\]: crash + ITask survival.
pub fn sba(seed: u64) -> Survival {
    let cfg = HadoopConfig::table1(NODES, 1024, 1024, 6, 6);
    let (crash, attempts) = regular(&SbaSpec, &cfg, stackoverflow_splits(seed));
    let survive = itask(&SbaSpec, &cfg, stackoverflow_splits(seed));
    Survival {
        name: "SBA [5]",
        story: "StringBuilder append per key",
        crash,
        attempts,
        survive,
    }
}

// ----------------------------------------------------------------
// [6] Large spill buffer: io.sort.mb misconfigured to nearly the whole
// map heap — the framework buffer leaves no room for anything else.
// ----------------------------------------------------------------

/// Spec for problem \[6\]: an ordinary word count; the bug is pure
/// configuration.
#[derive(Clone, Debug, Default)]
pub struct LsbSpec;

impl AggSpec for LsbSpec {
    type In = Article;
    type Mid = CountMid;
    type Out = OutKv;

    fn name(&self) -> &'static str {
        "lsb"
    }

    fn explode(&self, rec: &Article, out: &mut Vec<CountMid>) {
        for &w in &rec.words {
            out.push(CountMid::one(w as u64, 136));
        }
    }

    fn finish(&self, mid: CountMid) -> OutKv {
        OutKv {
            key: mid.key,
            value: mid.count,
        }
    }
}

/// Runs problem \[6\].
pub fn lsb(seed: u64) -> Survival {
    let mut cfg = HadoopConfig::table1(NODES, 512, 1024, 13, 6);
    // The reported misconfiguration: a spill buffer nearly the size of
    // the map heap.
    cfg.sort_buffer = ByteSize::kib(440);
    let (crash, attempts) = regular(&LsbSpec, &cfg, wikipedia_splits(true, seed));
    // The ITask runtime does not use the per-task sort buffer at all —
    // its partitions are managed by the IRS — so the same setting is
    // harmless.
    let survive = itask(&LsbSpec, &cfg, wikipedia_splits(true, seed));
    Survival {
        name: "LSB [6]",
        story: "oversized spill buffer",
        crash,
        attempts,
        survive,
    }
}

// ----------------------------------------------------------------
// [7] Web parser: a DOM parse whose scratch memory is ~30x the page.
// ----------------------------------------------------------------

/// Spec for problem \[7\].
#[derive(Clone, Debug, Default)]
pub struct WppSpec;

impl AggSpec for WppSpec {
    type In = Post;
    type Mid = CountMid;
    type Out = OutKv;

    fn name(&self) -> &'static str {
        "wpp"
    }

    fn explode(&self, rec: &Post, out: &mut Vec<CountMid>) {
        // Count pages per score bucket once parsed.
        out.push(CountMid::one((rec.score.unsigned_abs() % 64) as u64, 136));
    }

    fn finish(&self, mid: CountMid) -> OutKv {
        OutKv {
            key: mid.key,
            value: mid.count,
        }
    }

    fn scratch_bytes(&self, rec: &Post) -> u64 {
        // The DOM tree of the page being parsed.
        jbloat::string(rec.body_chars) * 30
    }
}

/// Runs problem \[7\].
pub fn wpp(seed: u64) -> Survival {
    let cfg = HadoopConfig::table1(NODES, 1024, 1024, 6, 6);
    let (crash, attempts) = regular(&WppSpec, &cfg, stackoverflow_splits(seed));
    let survive = itask(&WppSpec, &cfg, stackoverflow_splits(seed));
    Survival {
        name: "WPP [7]",
        story: "web parser 30x scratch",
        crash,
        attempts,
        survive,
    }
}

// ----------------------------------------------------------------
// [9] Frequencies of attribute values: counting every distinct
// (attribute, value) pair — the reduce-side table spans the cross
// product.
// ----------------------------------------------------------------

/// Spec for problem \[9\].
#[derive(Clone, Debug, Default)]
pub struct FavSpec;

impl AggSpec for FavSpec {
    type In = LineItem;
    type Mid = CountMid;
    type Out = OutKv;

    fn name(&self) -> &'static str {
        "fav"
    }

    fn explode(&self, rec: &LineItem, out: &mut Vec<CountMid>) {
        // (supplier, quantity) and (supplier, line number) value pairs.
        out.push(CountMid::one(
            rec.suppkey * 64 + rec.quantity as u64 % 64,
            168,
        ));
        out.push(CountMid::one(
            0x8000_0000_0000 + rec.suppkey * 16 + rec.linenumber as u64 % 16,
            168,
        ));
    }

    fn finish(&self, mid: CountMid) -> OutKv {
        OutKv {
            key: mid.key,
            value: mid.count,
        }
    }
}

/// Problem \[9\]'s dataset: TPC-H 100x lineitems as splits.
fn fav_splits(seed: u64) -> Vec<Vec<LineItem>> {
    let cfg = TpchConfig::preset(TpchScale::X100, seed);
    let mut splits = Vec::new();
    let mut k = 0;
    while k < cfg.lineitems {
        splits.push(cfg.lineitem_block(k, 1_100));
        k += 1_100;
    }
    splits
}

/// Runs problem \[9\].
pub fn fav(seed: u64) -> Survival {
    let cfg = HadoopConfig::table1(NODES, 1024, 512, 6, 6);
    let (crash, attempts) = regular(&FavSpec, &cfg, fav_splits(seed));
    let survive = itask(&FavSpec, &cfg, fav_splits(seed));
    Survival {
        name: "FAV [9]",
        story: "attribute-value frequencies",
        crash,
        attempts,
        survive,
    }
}

// ----------------------------------------------------------------
// [11] Sharded positional indexer: IIB with per-posting position
// payloads — the heaviest reduce-side state of the set.
// ----------------------------------------------------------------

/// Spec for problem \[11\].
#[derive(Clone, Debug, Default)]
pub struct SpiSpec;

impl AggSpec for SpiSpec {
    type In = Article;
    type Mid = ListMid;
    type Out = OutKv;

    fn name(&self) -> &'static str {
        "spi"
    }

    fn explode(&self, rec: &Article, out: &mut Vec<ListMid>) {
        let mut distinct: Vec<u32> = rec.words.clone();
        distinct.sort_unstable();
        distinct.dedup();
        for w in distinct {
            // Posting with a positions list: far heavier than IIB's.
            out.push(ListMid::one(w as u64, rec.id, 392, 160));
        }
    }

    fn finish(&self, mid: ListMid) -> OutKv {
        OutKv {
            key: mid.key,
            value: mid.items.len() as u64,
        }
    }
}

/// Runs problem \[11\].
pub fn spi(seed: u64) -> Survival {
    let cfg = HadoopConfig::table1(NODES, 1024, 1024, 6, 6);
    let (crash, attempts) = regular(&SpiSpec, &cfg, wikipedia_splits(true, seed));
    let survive = itask(&SpiSpec, &cfg, wikipedia_splits(true, seed));
    Survival {
        name: "SPI [11]",
        story: "positional index postings",
        crash,
        attempts,
        survive,
    }
}

// ----------------------------------------------------------------
// [12] Hash join using distributed cache: every mapper deserializes
// the cached build table into its own heap.
// ----------------------------------------------------------------

/// Spec for problem \[12\].
#[derive(Clone, Debug, Default)]
pub struct HjdSpec;

impl AggSpec for HjdSpec {
    type In = Post;
    type Mid = CountMid;
    type Out = OutKv;

    fn name(&self) -> &'static str {
        "hjd"
    }

    fn explode(&self, rec: &Post, out: &mut Vec<CountMid>) {
        // Join each post against the cached table; count matches per
        // shard.
        out.push(CountMid::one(rec.id % 256, 136));
    }

    fn finish(&self, mid: CountMid) -> OutKv {
        OutKv {
            key: mid.key,
            value: mid.count,
        }
    }

    fn init_bytes(&self) -> u64 {
        // The distributed-cache table, deserialized per task JVM.
        760 * 1024
    }

    fn scratch_bytes(&self, rec: &Post) -> u64 {
        jbloat::string(rec.body_chars) * 2
    }
}

/// Runs problem \[12\].
pub fn hjd(seed: u64) -> Survival {
    let cfg = HadoopConfig::table1(NODES, 1024, 1024, 6, 6);
    let (crash, attempts) = regular(&HjdSpec, &cfg, stackoverflow_splits(seed));
    let survive = itask(&HjdSpec, &cfg, stackoverflow_splits(seed));
    Survival {
        name: "HJD [12]",
        story: "distributed-cache hash join",
        crash,
        attempts,
        survive,
    }
}

// ----------------------------------------------------------------
// [14] Text file as a record: whole multi-hundred-KB files handed to
// the mapper as single records.
// ----------------------------------------------------------------

/// Spec for problem \[14\]: one record = one file.
#[derive(Clone, Debug, Default)]
pub struct TfrSpec;

/// A whole file as one record.
#[derive(Clone, Debug)]
pub struct WholeFile {
    /// File id.
    pub id: u64,
    /// File size in characters.
    pub chars: u64,
}

impl itask_core::Tuple for WholeFile {
    fn heap_bytes(&self) -> u64 {
        jbloat::string(self.chars)
    }

    fn ser_bytes(&self) -> u64 {
        self.chars
    }
}

impl AggSpec for TfrSpec {
    type In = WholeFile;
    type Mid = CountMid;
    type Out = OutKv;

    fn name(&self) -> &'static str {
        "tfr"
    }

    fn explode(&self, rec: &WholeFile, out: &mut Vec<CountMid>) {
        out.push(CountMid {
            key: rec.id % 32,
            count: rec.chars,
            entry_bytes: 136,
        });
    }

    fn finish(&self, mid: CountMid) -> OutKv {
        OutKv {
            key: mid.key,
            value: mid.count,
        }
    }
}

/// Problem \[14\]'s dataset: the Wikipedia sample regrouped into whole
/// files of ~0.5MB each.
fn tfr_splits(seed: u64) -> Vec<Vec<WholeFile>> {
    let articles = wikipedia_splits(false, seed);
    let mut files = Vec::new();
    let mut acc = 0u64;
    let mut id = 0u64;
    for split in articles {
        for a in split {
            acc += a.chars;
            if acc >= 600 * 1024 {
                files.push(vec![WholeFile { id, chars: acc }]);
                id += 1;
                acc = 0;
            }
        }
    }
    if acc > 0 {
        files.push(vec![WholeFile { id, chars: acc }]);
    }
    files
}

/// Runs problem \[14\].
pub fn tfr(seed: u64) -> Survival {
    let cfg = HadoopConfig::table1(NODES, 1024, 1024, 6, 6);
    let (crash, attempts) = regular(&TfrSpec, &cfg, tfr_splits(seed));
    let survive = itask(&TfrSpec, &cfg, tfr_splits(seed));
    Survival {
        name: "TFR [14]",
        story: "whole file as one record",
        crash,
        attempts,
        survive,
    }
}

// ----------------------------------------------------------------
// [17] Reducer hang at the merge step: co-occurrence stripes with
// outsized merge buffers on the reduce side.
// ----------------------------------------------------------------

/// Spec for problem \[17\].
#[derive(Clone, Debug, Default)]
pub struct RhmSpec;

impl AggSpec for RhmSpec {
    type In = Article;
    type Mid = StripeMid;
    type Out = OutKv;

    fn name(&self) -> &'static str {
        "rhm"
    }

    fn explode(&self, rec: &Article, out: &mut Vec<StripeMid>) {
        for w in rec.words.windows(2) {
            out.push(StripeMid::pair(w[0] as u64, w[1], 196, 96));
        }
    }

    fn finish(&self, mid: StripeMid) -> OutKv {
        let pairs: u64 = mid.neighbors.values().map(|&c| c as u64).sum();
        OutKv {
            key: mid.key,
            value: pairs,
        }
    }
}

/// Runs problem \[17\].
pub fn rhm(seed: u64) -> Survival {
    let cfg = HadoopConfig::table1(NODES, 1024, 1024, 6, 6);
    let (crash, attempts) = regular(&RhmSpec, &cfg, wikipedia_splits(true, seed));
    let survive = itask(&RhmSpec, &cfg, wikipedia_splits(true, seed));
    Survival {
        name: "RHM [17]",
        story: "reducer merge-step blowup",
        crash,
        attempts,
        survive,
    }
}

/// Runs all eight remaining problems.
pub fn all(seed: u64) -> Vec<Survival> {
    vec![
        sba(seed),
        lsb(seed),
        wpp(seed),
        fav(seed),
        spi(seed),
        hjd(seed),
        tfr(seed),
        rhm(seed),
    ]
}
