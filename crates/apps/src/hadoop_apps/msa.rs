//! MSA — map-side aggregation over the StackOverflow dump
//! (StackOverflow problem \[13\] of the paper). The map task (1) loads a large lookup
//! table to hash-join posts against, which is why the recommended fix
//! caps the node at a single mapper, and (2) accumulates an unbounded
//! key-value buffer of processed posts — *final* results that ITask can
//! push out and release at every interrupt (Table 2's MSA row is almost
//! entirely "final results").

use hadoop::HadoopConfig;
use workloads::stackoverflow::Post;

use crate::agg::AggSpec;
use crate::mids::SortMid;
use crate::summary::RunSummary;

use super::{itask, regular, stackoverflow_splits, NODES};

/// The preloaded join table ("0.55GB" scaled).
const TABLE_BYTES: u64 = 560 * 1024;
/// Buffer-entry overhead per processed post (the assembled XML row is
/// retained in the buffer; its string bloat is in `SortMid`).
const POST_NODE: u32 = 72;

/// The MSA spec: one buffered output record per post.
#[derive(Clone, Debug, Default)]
pub struct MsaSpec;

impl AggSpec for MsaSpec {
    type In = Post;
    type Mid = SortMid;
    type Out = SortMid;

    fn name(&self) -> &'static str {
        "msa"
    }

    fn explode(&self, rec: &Post, out: &mut Vec<SortMid>) {
        out.push(SortMid {
            key: rec.id,
            chars: rec.body_chars.min(u32::MAX as u64) as u32,
            node_bytes: POST_NODE,
        });
    }

    fn finish(&self, mid: SortMid) -> SortMid {
        mid
    }

    fn init_bytes(&self) -> u64 {
        TABLE_BYTES
    }

    /// The buffer is the bug: it is never flushed until the split ends.
    fn map_cache_bytes(&self) -> u64 {
        u64::MAX
    }
}

/// The configuration the problem was reported under (Table 1: MH=RH=1GB,
/// MM=MR=6).
pub fn table1_config() -> HadoopConfig {
    HadoopConfig::table1(NODES, 1024, 1024, 6, 6)
}

/// The StackOverflow-recommended fix: a single mapper per node and much
/// finer splits, so the buffer stays small next to the join table.
pub fn tuned_config() -> HadoopConfig {
    let mut cfg = HadoopConfig::table1(NODES, 1024, 1024, 1, 6);
    cfg.split_size = simcore::ByteSize::kib(16);
    cfg.reduce_tasks = 180;
    cfg
}

/// CTime run: regular job under the reported configuration.
pub fn run_ctime(seed: u64) -> (RunSummary<SortMid>, u32) {
    regular(&MsaSpec, &table1_config(), stackoverflow_splits(seed))
}

/// PTime run: regular job under the recommended fix.
pub fn run_tuned(seed: u64) -> (RunSummary<SortMid>, u32) {
    let cfg = tuned_config();
    let splits = super::stackoverflow_splits_sized(seed, cfg.split_size);
    regular(&MsaSpec, &cfg, splits)
}

/// ITime run: ITask job under the reported configuration.
pub fn run_itask(seed: u64) -> RunSummary<SortMid> {
    itask(&MsaSpec, &table1_config(), stackoverflow_splits(seed))
}

/// Invariant: one output record per post.
pub fn verify(outs: &[SortMid], seed: u64) -> bool {
    outs.len() as u64 == workloads::stackoverflow::StackOverflowConfig::full_dump(seed).posts
}
