//! WCM — word co-occurrence matrix with stripes over the Wikipedia
//! full dump (StackOverflow problem \[15\] of the paper): each word's stripe maps its
//! neighbours to counts, and the reduce-side stripe table is the
//! largest intermediate state of the five problems (Table 2's WCM row).

use hadoop::HadoopConfig;
use simcore::jbloat;
use workloads::wikipedia::Article;

use crate::agg::AggSpec;
use crate::mids::{OutKv, StripeMid};
use crate::summary::RunSummary;

use super::{itask, regular, wikipedia_splits, NODES};

/// Stripe entry base (outer map node + inner map header).
const WCM_ENTRY: u32 = (jbloat::hashmap_entry(jbloat::string(11), 0) + jbloat::object(2, 8)) as u32;
/// Per neighbour cell (compact int-keyed counter cell).
const WCM_CELL: u32 = 48;

/// The WCM spec: adjacent-word co-occurrence stripes.
#[derive(Clone, Debug, Default)]
pub struct WcmSpec;

impl AggSpec for WcmSpec {
    type In = Article;
    type Mid = StripeMid;
    type Out = OutKv;

    fn name(&self) -> &'static str {
        "wcm"
    }

    fn explode(&self, rec: &Article, out: &mut Vec<StripeMid>) {
        for w in rec.words.windows(2) {
            out.push(StripeMid::pair(w[0] as u64, w[1], WCM_ENTRY, WCM_CELL));
        }
    }

    fn finish(&self, mid: StripeMid) -> OutKv {
        let pairs: u64 = mid.neighbors.values().map(|&c| c as u64).sum();
        OutKv {
            key: mid.key,
            value: pairs,
        }
    }
}

/// Table 1 configuration: MH=0.5GB, RH=1GB, MM=13, MR=6.
pub fn table1_config() -> HadoopConfig {
    HadoopConfig::table1(NODES, 512, 1024, 13, 6)
}

/// Recommended fix: fewer mappers, finer splits, many more reduce
/// tasks.
pub fn tuned_config() -> HadoopConfig {
    // Bigger map heaps, fewer mappers, finer splits, more reduce tasks.
    let mut cfg = HadoopConfig::table1(NODES, 768, 3072, 4, 6);
    cfg.split_size = simcore::ByteSize::kib(48);
    cfg.reduce_tasks = 900;
    cfg
}

/// CTime run.
pub fn run_ctime(seed: u64) -> (RunSummary<OutKv>, u32) {
    regular(&WcmSpec, &table1_config(), wikipedia_splits(true, seed))
}

/// PTime run.
pub fn run_tuned(seed: u64) -> (RunSummary<OutKv>, u32) {
    let cfg = tuned_config();
    let splits = super::wikipedia_splits_sized(true, seed, cfg.split_size);
    regular(&WcmSpec, &cfg, splits)
}

/// ITime run.
pub fn run_itask(seed: u64) -> RunSummary<OutKv> {
    itask(&WcmSpec, &table1_config(), wikipedia_splits(true, seed))
}

/// Invariant: total co-occurrence observations equal adjacent pairs.
pub fn verify(outs: &[OutKv], seed: u64) -> bool {
    let total: u64 = outs.iter().map(|o| o.value).sum();
    let expected: u64 = wikipedia_splits(true, seed)
        .iter()
        .flat_map(|s| s.iter())
        .map(|a| a.words.len().saturating_sub(1) as u64)
        .sum();
    total == expected
}
