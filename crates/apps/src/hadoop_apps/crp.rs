//! CRP — customer review processing over the Wikipedia sample
//! (StackOverflow problem \[10\] of the paper): a lemmatizer whose per-sentence scratch
//! memory is orders of magnitude larger than the sentence itself. The
//! recommended fix was to *break long sentences in the dataset*; ITask
//! instead frees the rest of the pooled heap so the long sentence can be
//! processed alone.

use hadoop::HadoopConfig;
use workloads::wikipedia::Article;

use crate::agg::AggSpec;
use crate::mids::{CountMid, OutKv};
use crate::summary::RunSummary;

use super::{itask, regular, wikipedia_splits, NODES};

/// Lemmatizer scratch per sentence character (the paper reports three
/// orders of magnitude over the sentence; 250 x the UTF-16 string puts
/// the longest sentences near a whole task heap).
const LEMMA_FACTOR: u64 = 140;

/// The CRP spec: lemma frequencies with a sentence-length scratch model.
#[derive(Clone, Debug)]
pub struct CrpSpec {
    /// Cap applied to sentence lengths (the tuned version breaks long
    /// sentences; `u32::MAX` leaves the dataset as-is).
    pub sentence_cap: u32,
}

impl Default for CrpSpec {
    fn default() -> Self {
        CrpSpec {
            sentence_cap: u32::MAX,
        }
    }
}

impl AggSpec for CrpSpec {
    type In = Article;
    type Mid = CountMid;
    type Out = OutKv;

    fn name(&self) -> &'static str {
        "crp"
    }

    fn explode(&self, rec: &Article, out: &mut Vec<CountMid>) {
        for &w in &rec.words {
            out.push(CountMid::one(w as u64, CountMid::STRING_LONG_ENTRY));
        }
    }

    fn finish(&self, mid: CountMid) -> OutKv {
        OutKv {
            key: mid.key,
            value: mid.count,
        }
    }

    fn scratch_bytes(&self, rec: &Article) -> u64 {
        let longest = rec
            .sentence_chars
            .iter()
            .map(|&c| c.min(self.sentence_cap))
            .max()
            .unwrap_or(0) as u64;
        simcore::jbloat::string(longest) * LEMMA_FACTOR
    }
}

/// Table 1 configuration: MH=RH=1GB, MM=MR=6.
pub fn table1_config() -> HadoopConfig {
    HadoopConfig::table1(NODES, 1024, 1024, 6, 6)
}

/// CTime run (the original dataset, original configuration).
pub fn run_ctime(seed: u64) -> (RunSummary<OutKv>, u32) {
    regular(
        &CrpSpec::default(),
        &table1_config(),
        wikipedia_splits(false, seed),
    )
}

/// PTime run: the recommended "break long sentences" preprocessing,
/// modelled as a sentence-length cap (naïve splitting, as in the paper).
pub fn run_tuned(seed: u64) -> (RunSummary<OutKv>, u32) {
    regular(
        &CrpSpec { sentence_cap: 512 },
        &table1_config(),
        wikipedia_splits(false, seed),
    )
}

/// ITime run: original dataset, original configuration, ITasks.
pub fn run_itask(seed: u64) -> RunSummary<OutKv> {
    itask(
        &CrpSpec::default(),
        &table1_config(),
        wikipedia_splits(false, seed),
    )
}

/// Invariant: total lemma count equals total word occurrences.
pub fn verify(outs: &[OutKv], seed: u64) -> bool {
    let total: u64 = outs.iter().map(|o| o.value).sum();
    let expected: u64 = wikipedia_splits(false, seed)
        .iter()
        .flat_map(|s| s.iter())
        .map(|a| a.words.len() as u64)
        .sum();
    total == expected
}
