//! Uniform run summaries consumed by the benchmark harnesses.

use simcluster::JobReport;
use simcore::{ByteSize, SimDuration, SimError, SCALE};

/// One job execution: report plus outputs (or the fatal error).
pub struct RunSummary<Out> {
    /// Timing / GC / memory report.
    pub report: JobReport,
    /// Outputs, or the error that killed the job.
    pub result: Result<Vec<Out>, SimError>,
}

impl<Out> RunSummary<Out> {
    /// Whether the job completed.
    pub fn ok(&self) -> bool {
        self.result.is_ok()
    }

    /// Whether the job died of memory exhaustion.
    pub fn is_oom(&self) -> bool {
        matches!(&self.result, Err(e) if e.is_oom())
    }

    /// End-to-end virtual time.
    pub fn elapsed(&self) -> SimDuration {
        self.report.elapsed
    }

    /// The ×`SCALE` "paper-equivalent" seconds (see DESIGN.md §1).
    pub fn paper_seconds(&self) -> f64 {
        self.report.elapsed.as_secs_f64() * SCALE as f64
    }

    /// GC share of the critical path.
    pub fn gc_fraction(&self) -> f64 {
        self.report.gc_fraction()
    }

    /// Highest per-node heap peak.
    pub fn peak_heap(&self) -> ByteSize {
        self.report.peak_heap()
    }
}
