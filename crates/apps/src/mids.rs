//! Reusable `Mid` tuple types: the shuffled/accumulated units of the
//! benchmark applications, with Java-calibrated footprints.

use simcore::jbloat;

use crate::agg::MergeableTuple;
use itask_core::Tuple;

/// A counter entry (`word → count`): WC, IMC, MSA, CRP.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CountMid {
    /// Aggregation key.
    pub key: u64,
    /// Occurrences.
    pub count: u64,
    /// Simulated bytes of the entry (HashMap node + boxed key/value).
    pub entry_bytes: u32,
}

impl CountMid {
    /// A conventional `String → Long` hash-map entry (~136B).
    pub const STRING_LONG_ENTRY: u32 =
        (jbloat::hashmap_entry(jbloat::string(11), jbloat::boxed(8))) as u32;

    /// Creates a single-occurrence entry.
    pub fn one(key: u64, entry_bytes: u32) -> Self {
        CountMid {
            key,
            count: 1,
            entry_bytes,
        }
    }
}

impl Tuple for CountMid {
    fn heap_bytes(&self) -> u64 {
        self.entry_bytes as u64
    }

    fn ser_bytes(&self) -> u64 {
        16
    }
}

impl MergeableTuple for CountMid {
    fn key(&self) -> u64 {
        self.key
    }

    fn merge(&mut self, other: Self) -> i64 {
        self.count += other.count;
        0
    }
}

/// A list-accumulating entry (`key → [values]`): II postings, IIB,
/// GR's collected groups.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ListMid {
    /// Aggregation key.
    pub key: u64,
    /// Collected values (postings, revenues, ...).
    pub items: Vec<u64>,
    /// Entry base bytes (map node + key + list header).
    pub entry_bytes: u32,
    /// Bytes per collected item.
    pub item_bytes: u32,
}

impl ListMid {
    /// Creates a single-item entry.
    pub fn one(key: u64, item: u64, entry_bytes: u32, item_bytes: u32) -> Self {
        ListMid {
            key,
            items: vec![item],
            entry_bytes,
            item_bytes,
        }
    }
}

impl Tuple for ListMid {
    fn heap_bytes(&self) -> u64 {
        self.entry_bytes as u64 + self.items.len() as u64 * self.item_bytes as u64
    }

    fn ser_bytes(&self) -> u64 {
        12 + 8 * self.items.len() as u64
    }
}

impl MergeableTuple for ListMid {
    fn key(&self) -> u64 {
        self.key
    }

    fn merge(&mut self, other: Self) -> i64 {
        let added = other.items.len() as i64;
        self.items.extend(other.items);
        added * self.item_bytes as i64
    }
}

/// A co-occurrence stripe (`word → {neighbor → count}`): WCM.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StripeMid {
    /// The center word.
    pub key: u64,
    /// Neighbor counts.
    pub neighbors: std::collections::BTreeMap<u32, u32>,
    /// Entry base bytes (outer map node + inner map header).
    pub entry_bytes: u32,
    /// Bytes per neighbor cell.
    pub cell_bytes: u32,
}

impl StripeMid {
    /// A stripe with one neighbor observation.
    pub fn pair(key: u64, neighbor: u32, entry_bytes: u32, cell_bytes: u32) -> Self {
        let mut neighbors = std::collections::BTreeMap::new();
        neighbors.insert(neighbor, 1);
        StripeMid {
            key,
            neighbors,
            entry_bytes,
            cell_bytes,
        }
    }
}

impl Tuple for StripeMid {
    fn heap_bytes(&self) -> u64 {
        self.entry_bytes as u64 + self.neighbors.len() as u64 * self.cell_bytes as u64
    }

    fn ser_bytes(&self) -> u64 {
        12 + 8 * self.neighbors.len() as u64
    }
}

impl MergeableTuple for StripeMid {
    fn key(&self) -> u64 {
        self.key
    }

    fn merge(&mut self, other: Self) -> i64 {
        let mut added = 0i64;
        for (n, c) in other.neighbors {
            use std::collections::btree_map::Entry;
            match self.neighbors.entry(n) {
                Entry::Vacant(v) => {
                    v.insert(c);
                    added += self.cell_bytes as i64;
                }
                Entry::Occupied(mut o) => *o.get_mut() += c,
            }
        }
        added
    }
}

/// A sort-record (unique key): HS. The key embeds the record identity,
/// so two `SortMid`s never collide and `merge` is unreachable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SortMid {
    /// The (unique) sort key.
    pub key: u64,
    /// Characters of the carried line.
    pub chars: u32,
    /// Collection overhead per record (priority-queue node).
    pub node_bytes: u32,
}

impl Tuple for SortMid {
    fn heap_bytes(&self) -> u64 {
        jbloat::string(self.chars as u64) + self.node_bytes as u64
    }

    fn ser_bytes(&self) -> u64 {
        self.chars as u64
    }
}

impl MergeableTuple for SortMid {
    fn key(&self) -> u64 {
        self.key
    }

    fn merge(&mut self, _other: Self) -> i64 {
        unreachable!("sort keys are unique by construction")
    }
}

/// A hash-join cell (`custkey → build row + pending probes + joined
/// rows`): HJ. Pending probe rows buffer until the build row arrives,
/// then collapse into retained joined rows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JoinMid {
    /// The join key.
    pub custkey: u64,
    /// Build-side row (nation key), once seen.
    pub nation: Option<u32>,
    /// Pending probe rows (order total prices).
    pub pending: Vec<u64>,
    /// Joined row count.
    pub joined: u64,
    /// Joined revenue.
    pub revenue: u64,
    /// Bytes of the build row + cell.
    pub cell_bytes: u32,
    /// Bytes per pending probe row.
    pub pending_bytes: u32,
    /// Bytes per retained joined row.
    pub joined_bytes: u32,
}

impl JoinMid {
    /// A build-side contribution.
    pub fn customer(custkey: u64, nation: u32, sizes: (u32, u32, u32)) -> Self {
        JoinMid {
            custkey,
            nation: Some(nation),
            pending: Vec::new(),
            joined: 0,
            revenue: 0,
            cell_bytes: sizes.0,
            pending_bytes: sizes.1,
            joined_bytes: sizes.2,
        }
    }

    /// A probe-side contribution.
    pub fn order(custkey: u64, totalprice: u64, sizes: (u32, u32, u32)) -> Self {
        JoinMid {
            custkey,
            nation: None,
            pending: vec![totalprice],
            joined: 0,
            revenue: 0,
            cell_bytes: sizes.0,
            pending_bytes: sizes.1,
            joined_bytes: sizes.2,
        }
    }

    /// Resolves pending probes against a present build row.
    fn settle(&mut self) {
        if self.nation.is_some() && !self.pending.is_empty() {
            for p in self.pending.drain(..) {
                self.joined += 1;
                self.revenue += p;
            }
        }
    }
}

impl Tuple for JoinMid {
    fn heap_bytes(&self) -> u64 {
        self.cell_bytes as u64
            + self.pending.len() as u64 * self.pending_bytes as u64
            + self.joined * self.joined_bytes as u64
    }

    fn ser_bytes(&self) -> u64 {
        24 + 8 * self.pending.len() as u64 + 16 * self.joined
    }
}

impl MergeableTuple for JoinMid {
    fn key(&self) -> u64 {
        self.custkey
    }

    fn merge(&mut self, other: Self) -> i64 {
        let before = self.heap_bytes() as i64;
        self.nation = self.nation.or(other.nation);
        self.pending.extend(other.pending);
        self.joined += other.joined;
        self.revenue += other.revenue;
        self.settle();
        self.heap_bytes() as i64 - before
    }
}

/// A simple final output record (`key → value`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct OutKv {
    /// Result key.
    pub key: u64,
    /// Result value.
    pub value: u64,
}

impl Tuple for OutKv {
    fn heap_bytes(&self) -> u64 {
        32
    }

    fn ser_bytes(&self) -> u64 {
        16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_merge_collapses() {
        let mut a = CountMid::one(3, 136);
        let delta = a.merge(CountMid::one(3, 136));
        assert_eq!(delta, 0);
        assert_eq!(a.count, 2);
        assert_eq!(a.heap_bytes(), 136);
    }

    #[test]
    fn list_merge_grows() {
        let mut a = ListMid::one(1, 10, 176, 40);
        let d = a.merge(ListMid::one(1, 11, 176, 40));
        assert_eq!(d, 40);
        assert_eq!(a.items, vec![10, 11]);
        assert_eq!(a.heap_bytes(), 176 + 2 * 40);
    }

    #[test]
    fn stripe_merge_counts_new_cells_only() {
        let mut a = StripeMid::pair(1, 7, 200, 28);
        assert_eq!(a.merge(StripeMid::pair(1, 7, 200, 28)), 0);
        assert_eq!(a.merge(StripeMid::pair(1, 8, 200, 28)), 28);
        assert_eq!(a.neighbors[&7], 2);
        assert_eq!(a.neighbors[&8], 1);
    }

    #[test]
    fn join_settles_when_build_row_arrives() {
        let sizes = (200, 64, 450);
        let mut cell = JoinMid::order(5, 100, sizes);
        let d = cell.merge(JoinMid::order(5, 200, sizes));
        assert_eq!(d, 64); // one more pending probe
        let before = cell.heap_bytes() as i64;
        let d = cell.merge(JoinMid::customer(5, 3, sizes));
        // Pending released, joined rows retained.
        assert_eq!(cell.joined, 2);
        assert_eq!(cell.revenue, 300);
        assert!(cell.pending.is_empty());
        assert_eq!(d, cell.heap_bytes() as i64 - before);
        // Further probes join immediately.
        let d2 = cell.merge(JoinMid::order(5, 50, sizes));
        assert_eq!(cell.joined, 3);
        assert_eq!(d2, 450); // net: one joined row added, nothing pends
    }

    #[test]
    fn sort_mid_carries_string_bloat() {
        let s = SortMid {
            key: 9,
            chars: 100,
            node_bytes: 64,
        };
        assert!(s.heap_bytes() > 200);
        assert_eq!(s.ser_bytes(), 100);
    }
}
