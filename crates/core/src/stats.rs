//! Runtime statistics: the memory-savings breakdown of Table 2 and the
//! IRS activity counters.

use simcore::ByteSize;

/// Where reclaimed memory came from, by the staged handling of Figure 1.
/// These are the columns of the paper's Table 2.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReclaimBreakdown {
    /// Component 1: task-local structures released at interrupts.
    pub local_structs: ByteSize,
    /// Component 2: processed input prefixes released at interrupts.
    pub processed_input: ByteSize,
    /// Component 4(a): final results pushed out of the node.
    pub final_results: ByteSize,
    /// Component 4(b): intermediate results queued for aggregation.
    pub intermediate_results: ByteSize,
    /// Component 3/4(b): bytes lazily serialized to disk by the
    /// partition manager.
    pub lazy_serialized: ByteSize,
}

impl ReclaimBreakdown {
    /// Total bytes across all categories.
    pub fn total(&self) -> ByteSize {
        self.local_structs
            + self.processed_input
            + self.final_results
            + self.intermediate_results
            + self.lazy_serialized
    }
}

/// IRS activity counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct IrsStats {
    /// Cooperative interrupts executed (scheduler-selected victims).
    pub interrupts: u64,
    /// Self-interrupts taken when an allocation failed mid-batch (the
    /// monitor normally prevents these).
    pub emergency_interrupts: u64,
    /// Instances launched by GROW handling.
    pub grows: u64,
    /// Partitions serialized by the partition manager.
    pub serializations: u64,
    /// Partitions deserialized on activation.
    pub deserializations: u64,
    /// Activations that failed because the partition would not fit.
    pub failed_activations: u64,
    /// Peak concurrently running instances.
    pub peak_instances: u64,
    /// Transient disk faults absorbed by bounded retry during
    /// (de)serialization (fault-injection runs).
    pub transient_io_retries: u64,
    /// Corrupt spill files rebuilt from the retained object form
    /// (lineage) and re-read successfully.
    pub corruption_recoveries: u64,
    /// Instances salvaged off a crashed node through the interrupt path.
    pub crash_salvaged_instances: u64,
    /// Partitions re-homed onto this node after a peer crash.
    pub crash_requeued_partitions: u64,
    /// Reclaimed-memory breakdown.
    pub reclaim: ReclaimBreakdown,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_total_sums_categories() {
        let b = ReclaimBreakdown {
            local_structs: ByteSize(1),
            processed_input: ByteSize(2),
            final_results: ByteSize(3),
            intermediate_results: ByteSize(4),
            lazy_serialized: ByteSize(5),
        };
        assert_eq!(b.total(), ByteSize(15));
    }
}
