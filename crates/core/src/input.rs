//! Feeding input partitions into the ITask runtime.
//!
//! Frameworks offer input either *in memory* (a frame that just arrived,
//! as in Hyracks' `nextFrame`) or *serialized* (a block already sitting
//! on local disk/HDFS, as in Hadoop splits). Serialized offers cost no
//! heap at all — the IRS deserializes them on activation, which is what
//! lets an ITask job hold a dataset far larger than the heap.

use simcluster::NodeState;
use simcore::{PartitionId, SimResult};

use crate::partition::{Tag, Tuple, VecPartition};
use crate::runtime::IrsHandle;

/// Offers an in-memory input partition: the tuples' heap bytes are
/// allocated (possibly triggering GC) and the partition is queued.
pub fn offer_in_memory<T: Tuple>(
    handle: &IrsHandle,
    node: &mut NodeState,
    task: simcore::TaskId,
    tag: Tag,
    items: Vec<T>,
) -> SimResult<PartitionId> {
    let id = handle.next_partition_id();
    let bytes: u64 = items.iter().map(Tuple::heap_bytes).sum();
    let space = node.heap.create_space(format!("{id}.input"));
    if let Err(e) = node.alloc(space, simcore::ByteSize(bytes)) {
        node.heap.release_space(space);
        return Err(e);
    }
    handle.push_partition(Box::new(VecPartition::new(id, task, tag, items, space)));
    Ok(id)
}

/// Offers a serialized input partition: the bytes are registered on the
/// node's disk (they are already there — an input block), costing no
/// heap until activation.
pub fn offer_serialized<T: Tuple>(
    handle: &IrsHandle,
    node: &mut NodeState,
    task: simcore::TaskId,
    tag: Tag,
    items: Vec<T>,
) -> SimResult<PartitionId> {
    let id = handle.next_partition_id();
    let ser: u64 = items.iter().map(Tuple::ser_bytes).sum();
    let file = node
        .disk
        .register(format!("{id}.input"), simcore::ByteSize(ser))?;
    handle.push_partition(Box::new(VecPartition::new_serialized(
        id, task, tag, items, file,
    )));
    Ok(id)
}
