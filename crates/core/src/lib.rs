#![warn(missing_docs)]

//! **ITask**: interruptible data-parallel tasks — the core contribution
//! of *"Interruptible Tasks: Treating Memory Pressure As Interrupts for
//! Highly Scalable Data-Parallel Programs"* (SOSP '15), reproduced on a
//! simulated managed runtime.
//!
//! An ITask is a data-parallel task that can be **interrupted when
//! memory pressure appears** — with part or all of its consumed memory
//! reclaimed — and **resumed when the pressure goes away**. The paper's
//! two components are both here:
//!
//! * **Programming model** ([`task`], [`partition`]): tasks implement
//!   `initialize` / `process` / `interrupt` / `cleanup` over
//!   cursor-tracked [`partition::VecPartition`]s; the [`task::Scale`]
//!   adapter supplies the scale loop of Figure 4 with its per-tuple safe
//!   points. Multi-input aggregation tasks (`MITask`) are expressed as
//!   [`task::TaskKind::Multi`] vertices whose inputs are grouped by
//!   [`partition::Tag`].
//! * **Runtime system (IRS)** ([`runtime`], [`monitor`], [`manager`],
//!   [`scheduler`], [`queue`]): a per-node controller that watches for
//!   long-and-useless GCs, lazily serializes queued partitions
//!   (temporal-locality + finish-line retention rules), cooperatively
//!   interrupts victim instances (MITask-first / finish-line / speed
//!   rules) and re-grows parallelism when memory frees up.
//!
//! # Examples
//!
//! A minimal interruptible word-count task wired into a single-node IRS
//! lives in the crate's integration tests
//! (`crates/core/tests/irs_end_to_end.rs`) and, at full scale, in the
//! `apps` crate (`apps::hyracks_apps::wc`).

pub mod deflate;
pub mod graph;
pub mod input;
pub mod manager;
pub mod monitor;
pub mod paper;
pub mod partition;
pub mod queue;
pub mod runtime;
pub mod scheduler;
pub mod stats;
pub mod task;
pub mod trace;
pub mod worker;

pub use deflate::{
    live_budget_for_pause, predicted_full_pause, Deflatable, DeflateStats, StateGuard,
};
pub use graph::TaskGraph;
pub use input::{offer_in_memory, offer_serialized};
pub use manager::{DeserRecovery, ManagerConfig, SerializeMode};
pub use monitor::{MemSignal, Monitor, MonitorConfig};
pub use partition::{
    Partition, PartitionBox, PartitionMeta, PartitionState, Tag, Tuple, VecPartition,
};
pub use runtime::{FinalOutput, InterruptMode, Irs, IrsConfig, IrsHandle};
pub use scheduler::VictimPolicy;
pub use stats::{IrsStats, ReclaimBreakdown};
pub use task::{ITask, InstanceSpaces, Scale, TaskCx, TaskKind, TupleTask};
pub use trace::{IrsEvent, IrsTrace, TracedEvent};
pub use worker::ItaskWorker;
