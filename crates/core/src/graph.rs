//! The static task graph.
//!
//! Built from the program's input/output registrations (the paper's
//! `setInputType`/`setOutputType` glue code, §4.1); the IRS uses it for
//! the finish-line and temporal-locality rules (§5.3–5.4) and to decide
//! when an `MITask`'s tag groups are complete.

use std::rc::Rc;

use simcore::TaskId;

use crate::task::{ITask, TaskKind};

/// Factory producing fresh task instances.
pub type TaskFactory = Rc<dyn Fn() -> Box<dyn ITask>>;

/// One logical task (a vertex of the graph).
pub struct TaskDesc {
    /// The task's id.
    pub id: TaskId,
    /// Debug name (`"map"`, `"reduce"`, `"merge"`).
    pub name: String,
    /// Single-partition or multi-partition (MITask).
    pub kind: TaskKind,
    factory: TaskFactory,
}

impl TaskDesc {
    /// Creates a fresh instance of this task.
    pub fn instantiate(&self) -> Box<dyn ITask> {
        (self.factory)()
    }
}

impl std::fmt::Debug for TaskDesc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskDesc")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("kind", &self.kind)
            .finish()
    }
}

/// The dataflow graph of logical tasks.
#[derive(Debug, Default)]
pub struct TaskGraph {
    tasks: Vec<TaskDesc>,
    /// Directed producer → consumer edges (self-loops allowed: an
    /// interrupted Merge feeds itself).
    edges: Vec<(TaskId, TaskId)>,
}

impl TaskGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a single-input task.
    pub fn add_task(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn() -> Box<dyn ITask> + 'static,
    ) -> TaskId {
        self.add(name, TaskKind::Single, Rc::new(factory))
    }

    /// Adds a multi-partition aggregation task (MITask).
    pub fn add_mitask(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn() -> Box<dyn ITask> + 'static,
    ) -> TaskId {
        self.add(name, TaskKind::Multi, Rc::new(factory))
    }

    fn add(&mut self, name: impl Into<String>, kind: TaskKind, factory: TaskFactory) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        self.tasks.push(TaskDesc {
            id,
            name: name.into(),
            kind,
            factory,
        });
        id
    }

    /// Declares that `producer`'s queued outputs feed `consumer` (the
    /// paper's output-type = input-type registration).
    pub fn connect(&mut self, producer: TaskId, consumer: TaskId) {
        if !self.edges.contains(&(producer, consumer)) {
            self.edges.push((producer, consumer));
        }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Looks up a task.
    pub fn desc(&self, id: TaskId) -> &TaskDesc {
        &self.tasks[id.as_usize()]
    }

    /// All task ids in creation order.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.tasks.iter().map(|t| t.id)
    }

    /// Tasks feeding `id` (excluding itself).
    pub fn producers(&self, id: TaskId) -> Vec<TaskId> {
        self.edges
            .iter()
            .filter(|(p, c)| *c == id && *p != id)
            .map(|(p, _)| *p)
            .collect()
    }

    /// Tasks fed by `id` (excluding itself).
    pub fn successors(&self, id: TaskId) -> Vec<TaskId> {
        self.edges
            .iter()
            .filter(|(p, c)| *p == id && *c != id)
            .map(|(_, c)| *c)
            .collect()
    }

    /// Hops from `id` to the nearest sink (a task with no successors):
    /// the finish-line metric. Sinks score 0; unreachable tasks score
    /// `usize::MAX / 2`.
    pub fn distance_to_finish(&self, id: TaskId) -> usize {
        // BFS over successor edges until a sink is found.
        let far = usize::MAX / 2;
        let mut dist = vec![far; self.tasks.len()];
        let mut frontier = vec![id.as_usize()];
        dist[id.as_usize()] = 0;
        while let Some(u) = frontier.pop() {
            let succ = self.successors(TaskId(u as u32));
            if succ.is_empty() {
                return dist[u];
            }
            for s in succ {
                let v = s.as_usize();
                if dist[v] > dist[u] + 1 {
                    dist[v] = dist[u] + 1;
                    frontier.insert(0, v);
                }
            }
        }
        // No sink reachable (cyclic tail): fall back to sink distances.
        self.tasks
            .iter()
            .filter(|t| self.successors(t.id).is_empty())
            .map(|t| dist[t.id.as_usize()])
            .min()
            .unwrap_or(far)
    }

    /// Undirected hop distance between two tasks (temporal locality
    /// metric: how far a partition's consumer is from what's running).
    pub fn distance_between(&self, a: TaskId, b: TaskId) -> usize {
        if a == b {
            return 0;
        }
        let far = usize::MAX / 2;
        let mut dist = vec![far; self.tasks.len()];
        dist[a.as_usize()] = 0;
        let mut frontier = std::collections::VecDeque::from([a]);
        while let Some(u) = frontier.pop_front() {
            let du = dist[u.as_usize()];
            let mut neighbours = self.successors(u);
            neighbours.extend(self.producers(u));
            for v in neighbours {
                if dist[v.as_usize()] > du + 1 {
                    dist[v.as_usize()] = du + 1;
                    if v == b {
                        return du + 1;
                    }
                    frontier.push_back(v);
                }
            }
        }
        dist[b.as_usize()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskCx;
    use simcore::SimResult;

    struct Nop;

    impl ITask for Nop {
        fn initialize(&mut self, _: &mut TaskCx<'_, '_>) -> SimResult<()> {
            Ok(())
        }
        fn process_batch(
            &mut self,
            _: &mut TaskCx<'_, '_>,
            _: &mut dyn crate::partition::Partition,
        ) -> SimResult<u64> {
            Ok(0)
        }
        fn interrupt(&mut self, _: &mut TaskCx<'_, '_>) -> SimResult<()> {
            Ok(())
        }
        fn cleanup(&mut self, _: &mut TaskCx<'_, '_>) -> SimResult<()> {
            Ok(())
        }
    }

    /// map -> reduce -> merge (with merge self-loop), like Hyracks WC.
    fn wc_graph() -> (TaskGraph, TaskId, TaskId, TaskId) {
        let mut g = TaskGraph::new();
        let map = g.add_task("map", || Box::new(Nop));
        let reduce = g.add_task("reduce", || Box::new(Nop));
        let merge = g.add_mitask("merge", || Box::new(Nop));
        g.connect(map, reduce);
        g.connect(reduce, merge);
        g.connect(merge, merge);
        (g, map, reduce, merge)
    }

    #[test]
    fn structure_queries() {
        let (g, map, reduce, merge) = wc_graph();
        assert_eq!(g.len(), 3);
        assert_eq!(g.successors(map), vec![reduce]);
        assert_eq!(g.producers(merge), vec![reduce]);
        // Self-loop is invisible to producers/successors.
        assert!(g.successors(merge).is_empty());
        assert_eq!(g.desc(merge).kind, TaskKind::Multi);
        assert_eq!(g.desc(map).name, "map");
    }

    #[test]
    fn finish_line_distances() {
        let (g, map, reduce, merge) = wc_graph();
        assert_eq!(g.distance_to_finish(merge), 0);
        assert_eq!(g.distance_to_finish(reduce), 1);
        assert_eq!(g.distance_to_finish(map), 2);
    }

    #[test]
    fn pairwise_distances_are_undirected() {
        let (g, map, _reduce, merge) = wc_graph();
        assert_eq!(g.distance_between(map, merge), 2);
        assert_eq!(g.distance_between(merge, map), 2);
        assert_eq!(g.distance_between(map, map), 0);
    }

    #[test]
    fn duplicate_edges_are_ignored() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", || Box::new(Nop));
        let b = g.add_task("b", || Box::new(Nop));
        g.connect(a, b);
        g.connect(a, b);
        assert_eq!(g.successors(a).len(), 1);
    }

    #[test]
    fn factories_produce_instances() {
        let (g, map, ..) = wc_graph();
        let _task = g.desc(map).instantiate();
    }
}
