//! The IRS scheduler (paper §5.4): which instances to interrupt on
//! `REDUCE` and which task/partition to activate on `GROW`.

use std::collections::BTreeMap;

use simcore::{PartitionId, TaskId, ThreadId};

use crate::graph::TaskGraph;
use crate::partition::Tag;
use crate::queue::PartitionQueue;
use crate::task::TaskKind;

/// Victim-selection policy. `Rules` is the paper's design; `Random` is
/// the naïve baseline of §6.1 used by the ablation bench.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum VictimPolicy {
    /// MITask-first / finish-line / speed rules.
    #[default]
    Rules,
    /// Deterministically pseudo-random victim (ablation baseline).
    Random,
}

/// A running task instance, as the scheduler sees it.
#[derive(Clone, Debug)]
pub struct RunningInstance {
    /// The simulated thread executing the instance.
    pub thread: ThreadId,
    /// The logical task.
    pub task: TaskId,
    /// Single or multi (MITask).
    pub kind: TaskKind,
    /// The tag group (MITask instances only process one tag).
    pub tag: Tag,
    /// Scale-loop iterations since the last monitor observation — the
    /// speed rule's measure (paper §5.4).
    pub recent_progress: u64,
}

/// Picks the instance to interrupt under a `REDUCE`, or `None` if no
/// instance is interruptible.
///
/// Priority *to keep running* (paper §5.4): MITasks first (terminating a
/// merge scatters fragments), then instances closest to the finish line,
/// then the fastest threads. The victim is therefore a non-MITask far
/// from the finish line making the least progress.
pub fn pick_victim(
    running: &BTreeMap<ThreadId, RunningInstance>,
    graph: &TaskGraph,
    policy: VictimPolicy,
) -> Option<ThreadId> {
    if running.is_empty() {
        return None;
    }
    match policy {
        VictimPolicy::Rules => running
            .values()
            .max_by(|a, b| {
                let a_single = a.kind == TaskKind::Single;
                let b_single = b.kind == TaskKind::Single;
                a_single
                    .cmp(&b_single)
                    .then(
                        graph
                            .distance_to_finish(a.task)
                            .cmp(&graph.distance_to_finish(b.task)),
                    )
                    .then(b.recent_progress.cmp(&a.recent_progress))
                    .then(b.thread.cmp(&a.thread))
            })
            .map(|v| v.thread),
        VictimPolicy::Random => {
            // Deterministic pseudo-random pick keyed on the pool state.
            let keys: Vec<ThreadId> = running.keys().copied().collect();
            let seed = keys.iter().map(|k| k.as_u32() as u64 + 1).sum::<u64>();
            let idx = (simcore::rng::stable_hash64(seed) % keys.len() as u64) as usize;
            Some(keys[idx])
        }
    }
}

/// An activation choice for a `GROW`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Activation {
    /// Run a single-input task instance on this partition.
    Single(TaskId, PartitionId),
    /// Run an MITask instance over this tag group.
    Group(TaskId, Tag),
}

/// Picks what to activate under a `GROW`, or `None` if nothing is ready.
///
/// Rules (paper §5.4): **spatial locality** — prefer a task with an
/// in-memory input partition (avoids a deserialization stall); then
/// **finish line** — prefer the task closest to the output.
///
/// An MITask's tag group is ready only when its upstream producers are
/// quiescent (no queued inputs, no running instances) and no instance is
/// already aggregating that tag — intermediate results "wait to be
/// aggregated until all intermediate results for the same input are
/// produced" (paper §3).
pub fn pick_activation(
    queue: &PartitionQueue,
    graph: &TaskGraph,
    running: &BTreeMap<ThreadId, RunningInstance>,
) -> Option<Activation> {
    #[derive(PartialEq, Eq, PartialOrd, Ord)]
    struct Score {
        /// 0 if an in-memory partition is available (preferred).
        needs_io: bool,
        /// Distance to the finish line (smaller preferred).
        finish: usize,
        /// Partition/tag id tiebreak.
        key: u64,
    }

    let mut best: Option<(Score, Activation)> = None;
    let mut consider = |score: Score, act: Activation| match &best {
        Some((s, _)) if *s <= score => {}
        _ => best = Some((score, act)),
    };

    for task in graph.task_ids() {
        let desc = graph.desc(task);
        match desc.kind {
            TaskKind::Single => {
                // Choose this task's best partition: in-memory first,
                // then lowest id. (The key is a total order, so the
                // indexed iteration order cannot change the winner.)
                let cand = queue.metas_for(task).min_by_key(|m| (!m.in_memory(), m.id));
                if let Some(m) = cand {
                    consider(
                        Score {
                            needs_io: !m.in_memory(),
                            finish: graph.distance_to_finish(task),
                            key: m.id.as_u32() as u64,
                        },
                        Activation::Single(task, m.id),
                    );
                }
            }
            TaskKind::Multi => {
                let producers_quiescent = graph
                    .producers(task)
                    .iter()
                    .all(|&p| queue.pending_for(p) == 0 && running.values().all(|r| r.task != p));
                if !producers_quiescent {
                    continue;
                }
                for (tag, _count) in queue.tags_for(task) {
                    let busy = running.values().any(|r| r.task == task && r.tag == tag);
                    if busy {
                        continue;
                    }
                    let any_in_memory = queue.metas_for_group(task, tag).any(|m| m.in_memory());
                    consider(
                        Score {
                            needs_io: !any_in_memory,
                            finish: graph.distance_to_finish(task),
                            key: tag.0,
                        },
                        Activation::Group(task, tag),
                    );
                }
            }
        }
    }
    best.map(|(_, act)| act)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{Tuple, VecPartition};
    use crate::task::{ITask, TaskCx};
    use simcore::{SimResult, SpaceId};

    struct B;

    impl Tuple for B {
        fn heap_bytes(&self) -> u64 {
            10
        }
    }

    struct Nop;

    impl ITask for Nop {
        fn initialize(&mut self, _: &mut TaskCx<'_, '_>) -> SimResult<()> {
            Ok(())
        }
        fn process_batch(
            &mut self,
            _: &mut TaskCx<'_, '_>,
            _: &mut dyn crate::partition::Partition,
        ) -> SimResult<u64> {
            Ok(0)
        }
        fn interrupt(&mut self, _: &mut TaskCx<'_, '_>) -> SimResult<()> {
            Ok(())
        }
        fn cleanup(&mut self, _: &mut TaskCx<'_, '_>) -> SimResult<()> {
            Ok(())
        }
    }

    fn wc_graph() -> (TaskGraph, TaskId, TaskId, TaskId) {
        let mut g = TaskGraph::new();
        let map = g.add_task("map", || Box::new(Nop));
        let reduce = g.add_task("reduce", || Box::new(Nop));
        let merge = g.add_mitask("merge", || Box::new(Nop));
        g.connect(map, reduce);
        g.connect(reduce, merge);
        g.connect(merge, merge);
        (g, map, reduce, merge)
    }

    fn instance(thread: u32, task: TaskId, kind: TaskKind, progress: u64) -> RunningInstance {
        RunningInstance {
            thread: ThreadId(thread),
            task,
            kind,
            tag: Tag(0),
            recent_progress: progress,
        }
    }

    fn part(id: u32, task: TaskId, tag: u64, n: usize) -> Box<VecPartition<B>> {
        Box::new(VecPartition::new(
            PartitionId(id),
            task,
            Tag(tag),
            (0..n).map(|_| B).collect(),
            SpaceId(id),
        ))
    }

    #[test]
    fn victim_prefers_single_far_from_finish_and_slow() {
        let (g, map, reduce, merge) = wc_graph();
        let mut running = BTreeMap::new();
        running.insert(ThreadId(0), instance(0, merge, TaskKind::Multi, 1));
        running.insert(ThreadId(1), instance(1, reduce, TaskKind::Single, 5));
        running.insert(ThreadId(2), instance(2, map, TaskKind::Single, 100));
        running.insert(ThreadId(3), instance(3, map, TaskKind::Single, 2));
        // Victim: a map instance (farthest from finish), the slow one.
        let v = pick_victim(&running, &g, VictimPolicy::Rules).unwrap();
        assert_eq!(v, ThreadId(3));
    }

    #[test]
    fn mitask_is_interrupted_only_as_last_resort() {
        let (g, _map, _reduce, merge) = wc_graph();
        let mut running = BTreeMap::new();
        running.insert(ThreadId(0), instance(0, merge, TaskKind::Multi, 1));
        let v = pick_victim(&running, &g, VictimPolicy::Rules).unwrap();
        assert_eq!(
            v,
            ThreadId(0),
            "the only instance must still be interruptible"
        );
    }

    #[test]
    fn no_victim_from_empty_pool() {
        let (g, ..) = wc_graph();
        assert_eq!(pick_victim(&BTreeMap::new(), &g, VictimPolicy::Rules), None);
        assert_eq!(
            pick_victim(&BTreeMap::new(), &g, VictimPolicy::Random),
            None
        );
    }

    #[test]
    fn random_policy_is_deterministic() {
        let (g, map, ..) = wc_graph();
        let mut running = BTreeMap::new();
        for i in 0..4 {
            running.insert(ThreadId(i), instance(i, map, TaskKind::Single, i as u64));
        }
        let a = pick_victim(&running, &g, VictimPolicy::Random);
        let b = pick_victim(&running, &g, VictimPolicy::Random);
        assert_eq!(a, b);
        assert!(a.is_some());
    }

    #[test]
    fn activation_prefers_finish_line_and_memory() {
        let (g, map, reduce, _merge) = wc_graph();
        let mut q = PartitionQueue::new();
        q.push(part(0, map, 0, 4));
        q.push(part(1, reduce, 0, 4));
        let running = BTreeMap::new();
        // Reduce is closer to the finish line than map.
        let act = pick_activation(&q, &g, &running).unwrap();
        assert_eq!(act, Activation::Single(reduce, PartitionId(1)));
    }

    #[test]
    fn mitask_waits_for_quiescent_producers() {
        let (g, _map, reduce, merge) = wc_graph();
        let mut q = PartitionQueue::new();
        q.push(part(0, merge, 7, 2));
        q.push(part(1, reduce, 0, 2)); // reduce still has pending input
        let running = BTreeMap::new();
        // Merge's tag group is not ready: reduce must run first.
        let act = pick_activation(&q, &g, &running).unwrap();
        assert_eq!(act, Activation::Single(reduce, PartitionId(1)));

        // Drain reduce's input: now the merge group becomes eligible.
        q.take(PartitionId(1)).unwrap();
        let act = pick_activation(&q, &g, &running).unwrap();
        assert_eq!(act, Activation::Group(merge, Tag(7)));
    }

    #[test]
    fn mitask_tag_group_not_double_activated() {
        let (g, _map, _reduce, merge) = wc_graph();
        let mut q = PartitionQueue::new();
        q.push(part(0, merge, 7, 2));
        let mut running = BTreeMap::new();
        running.insert(
            ThreadId(0),
            RunningInstance {
                thread: ThreadId(0),
                task: merge,
                kind: TaskKind::Multi,
                tag: Tag(7),
                recent_progress: 0,
            },
        );
        assert_eq!(pick_activation(&q, &g, &running), None);
    }

    #[test]
    fn empty_queue_activates_nothing() {
        let (g, ..) = wc_graph();
        assert_eq!(
            pick_activation(&PartitionQueue::new(), &g, &BTreeMap::new()),
            None
        );
    }
}
