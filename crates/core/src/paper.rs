//! Where each construct of the paper lives in this crate — a reading
//! guide from the SOSP '15 text to the code.
//!
//! # Programming model (paper §4, Figures 4–7)
//!
//! | paper construct | here |
//! |---|---|
//! | `DataPartition` abstract class (tag, cursor, `hasNext`/`next`, `serialize`/`deserialize`) | [`crate::partition::Partition`] + [`crate::partition::PartitionMeta`]; `(de)serialize` are [`crate::manager::serialize_partition_mode`] / [`crate::manager::deserialize_partition`] |
//! | `ITask` abstract class (`initialize`/`process`/`interrupt`/`cleanup`) | [`crate::task::TupleTask`] |
//! | `scaleLoop` (Figure 4, lines 20–35: per-tuple loop with memory safe points) | [`crate::task::Scale`]'s `process_batch` |
//! | `MITask` (multi-partition aggregation over a tag group, lazy `PartitionIterator`) | [`crate::task::TaskKind::Multi`] vertices; the worker feeds the tag group partition-by-partition, deserializing lazily |
//! | `setInputType`/`setOutputType` glue | [`crate::graph::TaskGraph::connect`] |
//! | `Monitor.hasMemoryPressure()` safe-point check | [`crate::task::TaskCx::low_memory`] |
//! | `ITaskScheduler.pushToQueue` | [`crate::task::TaskCx::emit_to_task`] (intermediate results) and [`crate::input::offer_serialized`] / [`crate::input::offer_in_memory`] (inputs) |
//! | pushing a Map interrupt's buffer to the shuffle (Figure 6 line 11) | [`crate::task::TaskCx::emit_final`] |
//! | tagging a Reduce interrupt's output with the channel id (Figure 7 line 11) | [`crate::task::TaskCx::input_tag`] + `emit_to_task` |
//!
//! # Runtime system (paper §5, Figure 8)
//!
//! | paper construct | here |
//! |---|---|
//! | Monitor (LUGC → `REDUCE`, free ≥ N% → `GROW`) | [`crate::monitor::Monitor`] |
//! | Partition manager (`SCANANDDUMP`, retention rules, anti-thrashing timestamps) | [`crate::manager`] + [`crate::queue::PartitionQueue`] |
//! | Scheduler (`INTERRUPTTASKINSTANCE`, `INCREASETASKINSTANCE`, the five priority rules) | [`crate::scheduler`] |
//! | the controller loop tying them together | [`crate::runtime::Irs::tick`] |
//! | slow-start warm-up (§5.1) | the GROW ramp in [`crate::runtime::Irs`] (one instance per tick under pressure, burst when >50% free) |
//! | Figure 1's staged reclamation (components 1–4) | the worker's interrupt path ([`crate::worker::ItaskWorker`]): local space released, processed prefix dropped, finals pushed, intermediates tagged and queued, remainder left for lazy serialization |
//! | LUGC definition (§5.2: GC that cannot raise free memory above M%) | `simmem`'s `GcRecord::useless`, thresholds in the heap config |
//!
//! # Where this reproduction deliberately differs
//!
//! * The per-tuple `process(Tuple)` call sits behind a batch boundary
//!   ([`crate::task::ITask::process_batch`]) so the typed layer stays
//!   fast; safe points are still per-tuple inside the batch.
//! * All IRS arithmetic uses *effective free* memory (capacity − live)
//!   instead of instantaneous free bytes, and serialization hovers at a
//!   higher watermark than the paper's literal `M%` — see DESIGN.md §7
//!   for the measurements behind both choices.
//! * Interrupt victims are marked one per controller tick rather than in
//!   a synchronous loop; convergence takes a few 100µs rounds instead of
//!   one pass.
