//! The global partition queue (paper §5.3): every unprocessed or
//! partially-processed partition waiting for a task instance.
//!
//! Internally the queue is a tombstone slot vector plus BTreeMap
//! indexes: by partition id (point lookups) and by `(task, tag)` group
//! (the scheduler's per-task scans and MITask group activation). The
//! slot vector preserves insertion order — everything observable
//! ("queue order") is defined by it — while the indexes turn the
//! previously linear `take`/`get_mut`/`pending_for` and the scheduler's
//! whole-queue sweeps into ordered-map lookups.

use std::collections::BTreeMap;

use simcore::{PartitionId, TaskId};

use crate::partition::{PartitionBox, PartitionMeta, Tag};

/// The partition queue. Entries keep insertion order; selection policies
/// (spatial locality, finish line) are applied by the scheduler over the
/// exposed metadata.
#[derive(Default)]
pub struct PartitionQueue {
    /// Insertion-ordered slots; `None` marks a removed entry.
    slots: Vec<Option<PartitionBox>>,
    /// Number of live (Some) slots.
    live: usize,
    /// Partition id → slot indexes in queue order. Ids are unique per
    /// node, but crash recovery re-homes partitions across nodes, so a
    /// queue can briefly hold two entries with the same id — lookups
    /// resolve to the earliest, matching the old linear scan.
    by_id: BTreeMap<PartitionId, Vec<usize>>,
    /// `(task, tag)` → slot indexes in insertion order.
    by_group: BTreeMap<(TaskId, Tag), Vec<usize>>,
    /// Task → queued partition count.
    by_task: BTreeMap<TaskId, usize>,
}

impl PartitionQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of queued partitions.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of slots (live + tombstones) in the backing vector.
    /// Compaction keeps this within a constant factor of `len()`, so a
    /// long multi-job run cannot grow the queue without bound; exposed
    /// for the regression test asserting exactly that.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Enqueues a partition. Fully-processed partitions are dropped (an
    /// interrupt can race with exhaustion).
    pub fn push(&mut self, part: PartitionBox) {
        if part.meta().exhausted() {
            return;
        }
        let m = part.meta();
        let (id, task, tag) = (m.id, m.input_of, m.tag);
        let idx = self.slots.len();
        self.slots.push(Some(part));
        self.live += 1;
        self.by_id.entry(id).or_default().push(idx);
        self.by_group.entry((task, tag)).or_default().push(idx);
        *self.by_task.entry(task).or_insert(0) += 1;
    }

    /// Metadata of every queued partition, in queue order.
    pub fn metas(&self) -> impl Iterator<Item = &PartitionMeta> {
        self.slots.iter().flatten().map(|p| p.meta())
    }

    /// Metadata of every partition addressed to `task`, grouped by tag
    /// (ascending), insertion order within a group.
    pub fn metas_for(&self, task: TaskId) -> impl Iterator<Item = &PartitionMeta> {
        self.group_range(task)
            .flat_map(|(_, idxs)| idxs.iter())
            .map(|&i| self.slots[i].as_ref().expect("indexed slot live").meta())
    }

    /// Metadata of the partitions addressed to `task` carrying `tag`,
    /// in insertion order.
    pub fn metas_for_group(&self, task: TaskId, tag: Tag) -> impl Iterator<Item = &PartitionMeta> {
        self.by_group
            .get(&(task, tag))
            .into_iter()
            .flat_map(|idxs| idxs.iter())
            .map(|&i| self.slots[i].as_ref().expect("indexed slot live").meta())
    }

    /// Mutable access to one partition (the partition manager flips
    /// serialization states in place).
    pub fn get_mut(&mut self, id: PartitionId) -> Option<&mut PartitionBox> {
        let idx = *self.by_id.get(&id)?.first()?;
        self.slots[idx].as_mut()
    }

    /// Removes and returns every queued partition, in queue order
    /// (crash recovery: the engine re-homes them onto survivors).
    pub fn drain_all(&mut self) -> Vec<PartitionBox> {
        let out: Vec<PartitionBox> = std::mem::take(&mut self.slots)
            .into_iter()
            .flatten()
            .collect();
        self.live = 0;
        self.by_id.clear();
        self.by_group.clear();
        self.by_task.clear();
        out
    }

    /// Removes and returns a partition by id (the earliest queued when
    /// re-homing duplicated an id).
    pub fn take(&mut self, id: PartitionId) -> Option<PartitionBox> {
        let idxs = self.by_id.get_mut(&id)?;
        let idx = idxs.remove(0);
        if idxs.is_empty() {
            self.by_id.remove(&id);
        }
        let part = self.slots[idx].take().expect("indexed slot live");
        let m = part.meta();
        self.unindex_group(m.input_of, m.tag, idx);
        self.note_removed(m.input_of);
        self.maybe_compact();
        Some(part)
    }

    /// Removes and returns every partition addressed to `task` carrying
    /// `tag` (an MITask activation group), in queue order.
    pub fn take_group(&mut self, task: TaskId, tag: Tag) -> Vec<PartitionBox> {
        let Some(idxs) = self.by_group.remove(&(task, tag)) else {
            return Vec::new();
        };
        let mut group = Vec::with_capacity(idxs.len());
        // Compaction must wait until after the loop: it renumbers slots
        // and would invalidate the remaining `idxs`.
        for idx in idxs {
            let part = self.slots[idx].take().expect("indexed slot live");
            self.unindex_id(part.meta().id, idx);
            self.note_removed(task);
            group.push(part);
        }
        self.maybe_compact();
        group
    }

    /// Number of queued partitions addressed to `task`.
    pub fn pending_for(&self, task: TaskId) -> usize {
        self.by_task.get(&task).copied().unwrap_or(0)
    }

    /// Tags queued for `task`, with partition counts (deterministic
    /// order).
    pub fn tags_for(&self, task: TaskId) -> BTreeMap<Tag, usize> {
        self.group_range(task)
            .map(|(&(_, tag), idxs)| (tag, idxs.len()))
            .collect()
    }

    /// Total simulated heap bytes of queued *in-memory* partitions.
    pub fn in_memory_bytes(&self) -> simcore::ByteSize {
        self.metas()
            .filter(|m| m.in_memory())
            .map(|m| m.mem_bytes)
            .sum()
    }

    fn group_range(
        &self,
        task: TaskId,
    ) -> std::collections::btree_map::Range<'_, (TaskId, Tag), Vec<usize>> {
        self.by_group
            .range((task, Tag(u64::MIN))..=(task, Tag(u64::MAX)))
    }

    fn unindex_id(&mut self, id: PartitionId, idx: usize) {
        if let Some(idxs) = self.by_id.get_mut(&id) {
            if let Some(pos) = idxs.iter().position(|&i| i == idx) {
                idxs.remove(pos);
            }
            if idxs.is_empty() {
                self.by_id.remove(&id);
            }
        }
    }

    fn unindex_group(&mut self, task: TaskId, tag: Tag, idx: usize) {
        if let Some(idxs) = self.by_group.get_mut(&(task, tag)) {
            if let Some(pos) = idxs.iter().position(|&i| i == idx) {
                idxs.remove(pos);
            }
            if idxs.is_empty() {
                self.by_group.remove(&(task, tag));
            }
        }
    }

    fn note_removed(&mut self, task: TaskId) {
        self.live -= 1;
        if let Some(n) = self.by_task.get_mut(&task) {
            *n -= 1;
            if *n == 0 {
                self.by_task.remove(&task);
            }
        }
    }

    /// Reclaims tombstones once they outnumber live entries (keeps
    /// long-running jobs from growing the slot vector without bound).
    fn maybe_compact(&mut self) {
        if self.slots.len() < 64 || self.live * 2 >= self.slots.len() {
            return;
        }
        let slots = std::mem::take(&mut self.slots);
        self.slots = slots.into_iter().flatten().map(Some).collect();
        // An in-place collect can keep the pre-compaction capacity; give
        // the excess back once it dwarfs the live set.
        if self.slots.capacity() > self.slots.len().saturating_mul(4) {
            self.slots.shrink_to(self.slots.len() * 2);
        }
        self.by_id.clear();
        self.by_group.clear();
        for (idx, part) in self.slots.iter().enumerate() {
            let m = part.as_ref().expect("compacted slot live").meta();
            self.by_id.entry(m.id).or_default().push(idx);
            self.by_group
                .entry((m.input_of, m.tag))
                .or_default()
                .push(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{Tuple, VecPartition};
    use simcore::{ByteSize, SpaceId};

    struct B(u64);

    impl Tuple for B {
        fn heap_bytes(&self) -> u64 {
            self.0
        }
    }

    fn part(id: u32, task: u32, tag: u64, n: usize) -> PartitionBox {
        let items: Vec<B> = (0..n).map(|_| B(100)).collect();
        Box::new(VecPartition::new(
            PartitionId(id),
            TaskId(task),
            Tag(tag),
            items,
            SpaceId(id),
        ))
    }

    #[test]
    fn push_take_roundtrip() {
        let mut q = PartitionQueue::new();
        q.push(part(0, 1, 0, 3));
        q.push(part(1, 1, 0, 3));
        assert_eq!(q.len(), 2);
        let got = q.take(PartitionId(0)).unwrap();
        assert_eq!(got.meta().id, PartitionId(0));
        assert_eq!(q.len(), 1);
        assert!(q.take(PartitionId(0)).is_none());
    }

    #[test]
    fn exhausted_partitions_are_dropped_on_push() {
        let mut q = PartitionQueue::new();
        q.push(part(0, 1, 0, 0)); // zero tuples: nothing to do
        assert!(q.is_empty());
    }

    #[test]
    fn tag_groups() {
        let mut q = PartitionQueue::new();
        q.push(part(0, 2, 7, 1));
        q.push(part(1, 2, 7, 1));
        q.push(part(2, 2, 8, 1));
        q.push(part(3, 3, 7, 1)); // different task
        let tags = q.tags_for(TaskId(2));
        assert_eq!(tags[&Tag(7)], 2);
        assert_eq!(tags[&Tag(8)], 1);
        let group = q.take_group(TaskId(2), Tag(7));
        assert_eq!(group.len(), 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pending_for(TaskId(2)), 1);
        assert_eq!(q.pending_for(TaskId(3)), 1);
    }

    #[test]
    fn in_memory_bytes_sums_deserialized_partitions() {
        let mut q = PartitionQueue::new();
        q.push(part(0, 1, 0, 2)); // 200 bytes
        q.push(part(1, 1, 0, 3)); // 300 bytes
        assert_eq!(q.in_memory_bytes(), ByteSize(500));
    }

    #[test]
    fn metas_for_covers_every_tag_of_a_task() {
        let mut q = PartitionQueue::new();
        q.push(part(0, 2, 8, 1));
        q.push(part(1, 2, 7, 1));
        q.push(part(2, 3, 7, 1));
        let ids: Vec<PartitionId> = q.metas_for(TaskId(2)).map(|m| m.id).collect();
        // Tag order (7 before 8), insertion order within a tag.
        assert_eq!(ids, vec![PartitionId(1), PartitionId(0)]);
        let ids: Vec<PartitionId> = q.metas_for_group(TaskId(2), Tag(7)).map(|m| m.id).collect();
        assert_eq!(ids, vec![PartitionId(1)]);
        assert_eq!(q.metas_for(TaskId(9)).count(), 0);
    }

    #[test]
    fn duplicate_ids_resolve_in_queue_order() {
        // Crash re-homing can land a foreign partition whose id collides
        // with a local one; lookups must hit the earliest entry.
        let mut q = PartitionQueue::new();
        q.push(part(5, 1, 0, 1));
        q.push(part(5, 2, 3, 1)); // re-homed duplicate, different task
        assert_eq!(q.len(), 2);
        let first = q.take(PartitionId(5)).unwrap();
        assert_eq!(first.meta().input_of, TaskId(1));
        let second = q.take(PartitionId(5)).unwrap();
        assert_eq!(second.meta().input_of, TaskId(2));
        assert!(q.take(PartitionId(5)).is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn queue_order_survives_interleaved_removals_and_compaction() {
        let mut q = PartitionQueue::new();
        for i in 0..200 {
            q.push(part(i, 1, (i % 3) as u64, 1));
        }
        // Remove enough to trigger compaction.
        for i in (0..200).step_by(2) {
            assert!(q.take(PartitionId(i)).is_some());
        }
        assert_eq!(q.len(), 100);
        let ids: Vec<u32> = q.metas().map(|m| m.id.as_u32()).collect();
        let want: Vec<u32> = (0..200).filter(|i| i % 2 == 1).collect();
        assert_eq!(ids, want, "queue order must survive compaction");
        // Indexes still agree after compaction.
        assert!(q.get_mut(PartitionId(1)).is_some());
        assert_eq!(q.pending_for(TaskId(1)), 100);
        let group = q.take_group(TaskId(1), Tag(0));
        let got: Vec<u32> = group.iter().map(|p| p.meta().id.as_u32()).collect();
        let want: Vec<u32> = (0..200).filter(|i| i % 2 == 1 && i % 3 == 0).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn sustained_churn_keeps_slot_vector_bounded() {
        // A long-lived service queue sees endless push/take churn; the
        // tombstone count must never exceed the live count by more than
        // the compaction hysteresis, whatever the interleaving.
        let mut q = PartitionQueue::new();
        let mut next_id = 0u32;
        for round in 0..50 {
            for _ in 0..40 {
                q.push(part(next_id, 1 + (next_id % 4), (next_id % 5) as u64, 1));
                next_id += 1;
            }
            // Drain all but a small residue, oldest first.
            let keep = 10 + (round % 3) as usize;
            let ids: Vec<PartitionId> = q.metas().map(|m| m.id).collect();
            for id in &ids[..ids.len() - keep] {
                assert!(q.take(*id).is_some());
            }
            let bound = (2 * q.len()).max(63);
            assert!(
                q.slot_count() <= bound,
                "round {round}: {} slots for {} live",
                q.slot_count(),
                q.len()
            );
        }
        // 2000 partitions flowed through; the vector stayed small.
        assert!(q.slot_count() < 128, "final slots: {}", q.slot_count());
    }
}
