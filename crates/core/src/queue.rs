//! The global partition queue (paper §5.3): every unprocessed or
//! partially-processed partition waiting for a task instance.

use std::collections::BTreeMap;

use simcore::{PartitionId, TaskId};

use crate::partition::{PartitionBox, PartitionMeta, Tag};

/// The partition queue. Entries keep insertion order; selection policies
/// (spatial locality, finish line) are applied by the scheduler over the
/// exposed metadata.
#[derive(Default)]
pub struct PartitionQueue {
    entries: Vec<PartitionBox>,
}

impl PartitionQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of queued partitions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Enqueues a partition. Fully-processed partitions are dropped (an
    /// interrupt can race with exhaustion).
    pub fn push(&mut self, part: PartitionBox) {
        if !part.meta().exhausted() {
            self.entries.push(part);
        }
    }

    /// Metadata of every queued partition, in queue order.
    pub fn metas(&self) -> impl Iterator<Item = &PartitionMeta> {
        self.entries.iter().map(|p| p.meta())
    }

    /// Mutable access to one partition (the partition manager flips
    /// serialization states in place).
    pub fn get_mut(&mut self, id: PartitionId) -> Option<&mut PartitionBox> {
        self.entries.iter_mut().find(|p| p.meta().id == id)
    }

    /// Removes and returns every queued partition, in queue order
    /// (crash recovery: the engine re-homes them onto survivors).
    pub fn drain_all(&mut self) -> Vec<PartitionBox> {
        std::mem::take(&mut self.entries)
    }

    /// Removes and returns a partition by id.
    pub fn take(&mut self, id: PartitionId) -> Option<PartitionBox> {
        let idx = self.entries.iter().position(|p| p.meta().id == id)?;
        Some(self.entries.remove(idx))
    }

    /// Removes and returns every partition addressed to `task` carrying
    /// `tag` (an MITask activation group), in queue order.
    pub fn take_group(&mut self, task: TaskId, tag: Tag) -> Vec<PartitionBox> {
        let mut group = Vec::new();
        let mut i = 0;
        while i < self.entries.len() {
            let m = self.entries[i].meta();
            if m.input_of == task && m.tag == tag {
                group.push(self.entries.remove(i));
            } else {
                i += 1;
            }
        }
        group
    }

    /// Number of queued partitions addressed to `task`.
    pub fn pending_for(&self, task: TaskId) -> usize {
        self.metas().filter(|m| m.input_of == task).count()
    }

    /// Tags queued for `task`, with partition counts (deterministic
    /// order).
    pub fn tags_for(&self, task: TaskId) -> BTreeMap<Tag, usize> {
        let mut map = BTreeMap::new();
        for m in self.metas().filter(|m| m.input_of == task) {
            *map.entry(m.tag).or_insert(0) += 1;
        }
        map
    }

    /// Total simulated heap bytes of queued *in-memory* partitions.
    pub fn in_memory_bytes(&self) -> simcore::ByteSize {
        self.metas()
            .filter(|m| m.in_memory())
            .map(|m| m.mem_bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{Tuple, VecPartition};
    use simcore::{ByteSize, SpaceId};

    struct B(u64);

    impl Tuple for B {
        fn heap_bytes(&self) -> u64 {
            self.0
        }
    }

    fn part(id: u32, task: u32, tag: u64, n: usize) -> PartitionBox {
        let items: Vec<B> = (0..n).map(|_| B(100)).collect();
        Box::new(VecPartition::new(
            PartitionId(id),
            TaskId(task),
            Tag(tag),
            items,
            SpaceId(id),
        ))
    }

    #[test]
    fn push_take_roundtrip() {
        let mut q = PartitionQueue::new();
        q.push(part(0, 1, 0, 3));
        q.push(part(1, 1, 0, 3));
        assert_eq!(q.len(), 2);
        let got = q.take(PartitionId(0)).unwrap();
        assert_eq!(got.meta().id, PartitionId(0));
        assert_eq!(q.len(), 1);
        assert!(q.take(PartitionId(0)).is_none());
    }

    #[test]
    fn exhausted_partitions_are_dropped_on_push() {
        let mut q = PartitionQueue::new();
        q.push(part(0, 1, 0, 0)); // zero tuples: nothing to do
        assert!(q.is_empty());
    }

    #[test]
    fn tag_groups() {
        let mut q = PartitionQueue::new();
        q.push(part(0, 2, 7, 1));
        q.push(part(1, 2, 7, 1));
        q.push(part(2, 2, 8, 1));
        q.push(part(3, 3, 7, 1)); // different task
        let tags = q.tags_for(TaskId(2));
        assert_eq!(tags[&Tag(7)], 2);
        assert_eq!(tags[&Tag(8)], 1);
        let group = q.take_group(TaskId(2), Tag(7));
        assert_eq!(group.len(), 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pending_for(TaskId(2)), 1);
        assert_eq!(q.pending_for(TaskId(3)), 1);
    }

    #[test]
    fn in_memory_bytes_sums_deserialized_partitions() {
        let mut q = PartitionQueue::new();
        q.push(part(0, 1, 0, 2)); // 200 bytes
        q.push(part(1, 1, 0, 3)); // 300 bytes
        assert_eq!(q.in_memory_bytes(), ByteSize(500));
    }
}
