//! A structured trace of IRS decisions: what the runtime did and when.
//!
//! Every scheduling action — activations, serializations, interrupts,
//! signals — is appended with its virtual timestamp, giving runs an
//! auditable decision history (the basis of Figure 3's annotated
//! interrupt/re-activation points, and the first thing to read when a
//! policy behaves unexpectedly).

use simcore::{ByteSize, PartitionId, SimTime, TaskId};

/// One IRS decision.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IrsEvent {
    /// The monitor emitted a REDUCE signal (LUGC or pressure hint).
    ReduceSignal,
    /// The monitor emitted a GROW signal.
    GrowSignal,
    /// A task instance was activated on a partition (or tag group).
    Activated {
        /// The logical task.
        task: TaskId,
        /// Number of partitions handed to the instance.
        partitions: usize,
    },
    /// A queued partition was serialized (lazy or write-behind).
    Serialized {
        /// The partition.
        partition: PartitionId,
        /// Heap bytes released.
        freed: ByteSize,
    },
    /// A running instance was marked for cooperative interrupt.
    VictimMarked {
        /// The victim's logical task.
        task: TaskId,
    },
    /// An instance completed an interrupt (cooperative or emergency).
    Interrupted {
        /// The instance's logical task.
        task: TaskId,
        /// Whether this was an emergency self-interrupt.
        emergency: bool,
    },
    /// A corrupt spill file was rebuilt from the retained object form
    /// and re-read (fault-injection runs).
    CorruptionRecovered {
        /// The partition whose byte form was rebuilt.
        partition: PartitionId,
    },
    /// An instance was salvaged off a crashed node through the
    /// interrupt path (fault-injection runs).
    CrashSalvaged {
        /// The salvaged instance's logical task.
        task: TaskId,
    },
}

/// A timestamped decision.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TracedEvent {
    /// Virtual time of the decision.
    pub at: SimTime,
    /// The decision.
    pub event: IrsEvent,
}

/// The append-only decision trace.
#[derive(Clone, Debug, Default)]
pub struct IrsTrace {
    events: Vec<TracedEvent>,
    enabled: bool,
}

impl IrsTrace {
    /// Creates a disabled trace (zero overhead until enabled).
    pub fn new() -> Self {
        Self::default()
    }

    /// Turns recording on.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends an event (no-op while disabled).
    pub fn record(&mut self, at: SimTime, event: IrsEvent) {
        if self.enabled {
            self.events.push(TracedEvent { at, event });
        }
    }

    /// All recorded events, oldest first.
    pub fn events(&self) -> &[TracedEvent] {
        &self.events
    }

    /// Events of one kind, by discriminant match.
    pub fn count_where(&self, pred: impl Fn(&IrsEvent) -> bool) -> usize {
        self.events.iter().filter(|e| pred(&e.event)).count()
    }

    /// Renders the trace as one line per event (debug output).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for e in &self.events {
            let _ = writeln!(s, "{:>12}  {:?}", e.at.to_string(), e.event);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = IrsTrace::new();
        t.record(SimTime::ZERO, IrsEvent::GrowSignal);
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_keeps_order_and_counts() {
        let mut t = IrsTrace::new();
        t.enable();
        t.record(SimTime::from_nanos(1), IrsEvent::GrowSignal);
        t.record(
            SimTime::from_nanos(2),
            IrsEvent::Activated {
                task: TaskId(0),
                partitions: 1,
            },
        );
        t.record(SimTime::from_nanos(3), IrsEvent::ReduceSignal);
        t.record(
            SimTime::from_nanos(4),
            IrsEvent::Serialized {
                partition: PartitionId(7),
                freed: ByteSize(100),
            },
        );
        t.record(
            SimTime::from_nanos(5),
            IrsEvent::Interrupted {
                task: TaskId(0),
                emergency: false,
            },
        );
        assert_eq!(t.events().len(), 5);
        assert!(t.events().windows(2).all(|w| w[0].at <= w[1].at));
        assert_eq!(
            t.count_where(|e| matches!(e, IrsEvent::Serialized { .. })),
            1
        );
        assert_eq!(t.count_where(|e| matches!(e, IrsEvent::GrowSignal)), 1);
        let rendered = t.render();
        assert!(rendered.contains("Serialized"));
        assert_eq!(rendered.lines().count(), 5);
    }
}
