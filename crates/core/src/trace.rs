//! A structured trace of IRS decisions: what the runtime did and when.
//!
//! Every scheduling action — activations, serializations, interrupts,
//! signals — is appended with its virtual timestamp, giving runs an
//! auditable decision history (the basis of Figure 3's annotated
//! interrupt/re-activation points, and the first thing to read when a
//! policy behaves unexpectedly).
//!
//! Since the unified tracer landed, this type is a thin *view*: every
//! decision funnels through [`IrsTrace::record_linked`], which forwards
//! to [`simcore::tracer`] (the single source of truth, with node/scope
//! attribution and causal links) and keeps the legacy per-run event
//! list only when locally enabled via [`IrsTrace::enable`].

use simcore::tracer::{self, EventId, TraceData};
use simcore::{metrics, ByteSize, NodeId, PartitionId, SimDuration, SimTime, TaskId};

/// One IRS decision.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IrsEvent {
    /// The monitor emitted a REDUCE signal (LUGC or pressure hint).
    ReduceSignal,
    /// The monitor emitted a GROW signal.
    GrowSignal,
    /// A task instance was activated on a partition (or tag group).
    Activated {
        /// The logical task.
        task: TaskId,
        /// Number of partitions handed to the instance.
        partitions: usize,
    },
    /// A queued partition was serialized (lazy or write-behind).
    Serialized {
        /// The partition.
        partition: PartitionId,
        /// Heap bytes released.
        freed: ByteSize,
    },
    /// A running instance was marked for cooperative interrupt.
    VictimMarked {
        /// The victim's logical task.
        task: TaskId,
    },
    /// An instance completed an interrupt (cooperative or emergency).
    Interrupted {
        /// The instance's logical task.
        task: TaskId,
        /// Whether this was an emergency self-interrupt.
        emergency: bool,
    },
    /// A corrupt spill file was rebuilt from the retained object form
    /// and re-read (fault-injection runs).
    CorruptionRecovered {
        /// The partition whose byte form was rebuilt.
        partition: PartitionId,
    },
    /// An instance was salvaged off a crashed node through the
    /// interrupt path (fault-injection runs).
    CrashSalvaged {
        /// The salvaged instance's logical task.
        task: TaskId,
    },
}

/// A timestamped decision.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TracedEvent {
    /// Virtual time of the decision.
    pub at: SimTime,
    /// The decision.
    pub event: IrsEvent,
}

/// The append-only decision trace.
#[derive(Clone, Debug, Default)]
pub struct IrsTrace {
    events: Vec<TracedEvent>,
    enabled: bool,
    /// Node forwarded events are attributed to (set per tick by the IRS).
    node: Option<NodeId>,
    /// Allocation scope (service job id) forwarded events carry.
    scope: Option<u64>,
}

impl IrsTrace {
    /// Creates a disabled trace (zero overhead until enabled).
    pub fn new() -> Self {
        Self::default()
    }

    /// Turns recording on.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Sets the `(node, scope)` origin stamped onto events forwarded to
    /// the global tracer. The IRS refreshes this every tick, so traces
    /// attribute decisions to the node the runtime is driving.
    pub fn set_origin(&mut self, node: Option<NodeId>, scope: Option<u64>) {
        self.node = node;
        self.scope = scope;
    }

    /// Appends an event (no-op while disabled; still forwards to the
    /// global tracer when a sweep armed it).
    pub fn record(&mut self, at: SimTime, event: IrsEvent) {
        self.record_linked(at, event, EventId::NONE);
    }

    /// Appends an event carrying a causal link (the id of the event
    /// that triggered it), returning the forwarded event's id for use
    /// as a cause downstream. Returns [`EventId::NONE`] when the global
    /// tracer is off.
    pub fn record_linked(&mut self, at: SimTime, event: IrsEvent, cause: EventId) -> EventId {
        let id = if tracer::is_enabled() {
            tracer::emit(
                self.node,
                self.scope,
                at,
                SimDuration::ZERO,
                irs_to_trace(&event, cause),
            )
        } else {
            EventId::NONE
        };
        // The metrics plane watches the same funnel: signal level as a
        // gauge, interrupts/serializations as counters.
        if metrics::is_enabled() {
            use metrics::Metric;
            match &event {
                IrsEvent::ReduceSignal => {
                    metrics::gauge_add(self.node, Metric::IrsSignal, at, -1);
                }
                IrsEvent::GrowSignal => {
                    metrics::gauge_add(self.node, Metric::IrsSignal, at, 1);
                }
                IrsEvent::Interrupted { .. } => {
                    metrics::counter_add(self.node, Metric::IrsInterrupts, at, 1);
                }
                IrsEvent::Serialized { freed, .. } => {
                    metrics::counter_add(self.node, Metric::IrsSerialized, at, 1);
                    metrics::counter_add(self.node, Metric::IrsSerializedBytes, at, freed.as_u64());
                }
                _ => {}
            }
        }
        if self.enabled {
            self.events.push(TracedEvent { at, event });
        }
        id
    }

    /// All recorded events, oldest first.
    pub fn events(&self) -> &[TracedEvent] {
        &self.events
    }

    /// Events of one kind, by discriminant match.
    pub fn count_where(&self, pred: impl Fn(&IrsEvent) -> bool) -> usize {
        self.events.iter().filter(|e| pred(&e.event)).count()
    }

    /// Renders the trace as one line per event (debug output).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for e in &self.events {
            let _ = writeln!(s, "{:>12}  {:?}", e.at.to_string(), e.event);
        }
        s
    }
}

/// Maps a legacy IRS decision onto the unified tracer's payload.
fn irs_to_trace(event: &IrsEvent, cause: EventId) -> TraceData {
    match event {
        IrsEvent::ReduceSignal => TraceData::Signal { reduce: true },
        IrsEvent::GrowSignal => TraceData::Signal { reduce: false },
        IrsEvent::Activated { task, partitions } => TraceData::Activated {
            task: task.as_u32(),
            partitions: *partitions as u32,
            cause,
        },
        IrsEvent::Serialized { partition, freed } => TraceData::Serialized {
            partition: partition.as_u32(),
            freed: freed.as_u64(),
            cause,
        },
        IrsEvent::VictimMarked { task } => TraceData::VictimMarked {
            task: task.as_u32(),
            cause,
        },
        IrsEvent::Interrupted { task, emergency } => TraceData::Interrupted {
            task: task.as_u32(),
            emergency: *emergency,
            cause,
        },
        IrsEvent::CorruptionRecovered { partition } => TraceData::CorruptionRecovered {
            partition: partition.as_u32(),
        },
        IrsEvent::CrashSalvaged { task } => TraceData::CrashSalvaged {
            task: task.as_u32(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = IrsTrace::new();
        t.record(SimTime::ZERO, IrsEvent::GrowSignal);
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_keeps_order_and_counts() {
        let mut t = IrsTrace::new();
        t.enable();
        t.record(SimTime::from_nanos(1), IrsEvent::GrowSignal);
        t.record(
            SimTime::from_nanos(2),
            IrsEvent::Activated {
                task: TaskId(0),
                partitions: 1,
            },
        );
        t.record(SimTime::from_nanos(3), IrsEvent::ReduceSignal);
        t.record(
            SimTime::from_nanos(4),
            IrsEvent::Serialized {
                partition: PartitionId(7),
                freed: ByteSize(100),
            },
        );
        t.record(
            SimTime::from_nanos(5),
            IrsEvent::Interrupted {
                task: TaskId(0),
                emergency: false,
            },
        );
        assert_eq!(t.events().len(), 5);
        assert!(t.events().windows(2).all(|w| w[0].at <= w[1].at));
        assert_eq!(
            t.count_where(|e| matches!(e, IrsEvent::Serialized { .. })),
            1
        );
        assert_eq!(t.count_where(|e| matches!(e, IrsEvent::GrowSignal)), 1);
        let rendered = t.render();
        assert!(rendered.contains("Serialized"));
        assert_eq!(rendered.lines().count(), 5);
    }

    #[test]
    fn record_forwards_to_global_tracer_with_origin_and_cause() {
        // The global tracer is process-wide; hold a lock so parallel
        // tests in this binary never observe our enabled window.
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        tracer::enable();
        tracer::begin_run();
        // Forwarding is independent of the legacy local `enabled` flag.
        let mut t = IrsTrace::new();
        t.set_origin(Some(NodeId(2)), Some(9));
        let sig = t.record_linked(
            SimTime::from_nanos(1),
            IrsEvent::ReduceSignal,
            EventId::NONE,
        );
        assert!(sig.is_some());
        let vic = t.record_linked(
            SimTime::from_nanos(2),
            IrsEvent::VictimMarked { task: TaskId(3) },
            sig,
        );
        assert!(vic > sig);
        let run = tracer::take_run().unwrap();
        tracer::disable();
        assert!(t.events().is_empty(), "legacy log stays off until enable()");
        assert_eq!(run.len(), 2);
        assert_eq!(run[0].node, Some(NodeId(2)));
        assert_eq!(run[0].scope, Some(9));
        assert_eq!(run[1].data.cause(), sig);
    }
}
