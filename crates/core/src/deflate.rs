//! IRS hooks for long-lived *applied* state (paper §5.2 carried over to
//! replicated state machines).
//!
//! A batch job's intermediate partitions can be interrupted and retired
//! wholesale — the REDUCE path serializes them and the task re-reads the
//! bytes later. An SMR node's aggregation state is different: it lives
//! for the whole run and every future command may touch it, so the
//! runtime cannot retire it. Instead it **deflates** it — spills a slice
//! of the live set into serialized form and frees the heap bytes —
//! before the old generation fills and the next full collection turns
//! into a tail-latency cliff.
//!
//! Two policies are expressed here:
//!
//! * reactive: [`StateGuard::poll`] feeds GC records through the IRS
//!   [`Monitor`] and converts REDUCE signals (and hover-target deficits)
//!   into deflation byte counts;
//! * predictive: [`predicted_full_pause`] prices the *next* full
//!   collection from current occupancy, so an election-aware runtime can
//!   keep the leader's worst pause under its heartbeat timeout.

use simcore::{ByteSize, CostModel, SimDuration};
use simmem::{GcRecord, Heap};

use crate::monitor::{MemSignal, Monitor, MonitorConfig};

/// Long-lived state a runtime can deflate under memory pressure.
///
/// `deflate` frees up to `target` live bytes from `heap` (turning them
/// into collectible garbage / serialized form) and returns the bytes
/// actually released. Implementations track their own live total so
/// [`Deflatable::live_bytes`] stays consistent with the heap space.
pub trait Deflatable {
    /// Live heap bytes currently held by the state.
    fn live_bytes(&self) -> ByteSize;
    /// Releases up to `target` live bytes; returns the bytes freed.
    fn deflate(&mut self, heap: &mut Heap, target: ByteSize) -> ByteSize;
}

/// Cumulative deflation statistics for one guarded state.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeflateStats {
    /// Deflation rounds performed.
    pub deflations: u64,
    /// Total live bytes released.
    pub freed: ByteSize,
}

/// Per-node deflation guard: wraps the IRS [`Monitor`] and turns its
/// signals into deflation targets for applied state.
#[derive(Clone, Debug)]
pub struct StateGuard {
    monitor: Monitor,
    stats: DeflateStats,
}

impl StateGuard {
    /// Creates a guard with the given monitor thresholds.
    ///
    /// For latency-SLO state machines, `serialize_free_pct` doubles as
    /// the *hover* target: the guard asks for deflation whenever
    /// effective free memory sinks below it, which bounds the live set
    /// — and with it the worst full-collection pause — long before the
    /// LUGC detector would fire.
    pub fn new(cfg: MonitorConfig) -> Self {
        StateGuard {
            monitor: Monitor::new(cfg),
            stats: DeflateStats::default(),
        }
    }

    /// The wrapped monitor.
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// Deflation statistics so far.
    pub fn stats(&self) -> DeflateStats {
        self.stats
    }

    /// Observes a window's GC records and the current heap state;
    /// returns the bytes of applied state to deflate, if any.
    ///
    /// A REDUCE signal (LUGC or reported thrashing) asks for enough to
    /// lift effective free memory to the hover target; otherwise a
    /// hover-target deficit alone asks for the shortfall. `None` means
    /// the heap has slack and the state should be left inflated.
    pub fn poll(&mut self, records: &[GcRecord], heap: &Heap) -> Option<ByteSize> {
        let signal = self.monitor.observe(records, heap);
        let deficit = self.hover_deficit(heap);
        match signal {
            MemSignal::Reduce => Some(deficit.max(self.monitor.reduce_target(heap))),
            _ if !deficit.is_zero() => Some(deficit),
            _ => None,
        }
    }

    /// Bytes of deflation needed to lift effective free memory to the
    /// hover (background-serialization) target; zero when already there.
    pub fn hover_deficit(&self, heap: &Heap) -> ByteSize {
        self.monitor
            .serialize_target(heap)
            .saturating_sub(heap.effective_free())
    }

    /// Records a completed deflation round of `freed` bytes.
    pub fn note_deflated(&mut self, freed: ByteSize) {
        if !freed.is_zero() {
            self.stats.deflations += 1;
            self.stats.freed += freed;
        }
    }
}

/// The pause the *next* full collection would cost at the heap's current
/// occupancy. Election-aware runtimes compare this against their
/// heartbeat timeout and deflate the leader pre-emptively when a
/// collection could outlast it.
pub fn predicted_full_pause(heap: &Heap, cost: &CostModel) -> SimDuration {
    cost.full_gc_pause(heap.live(), heap.used())
}

/// Live bytes the heap may hold if the next full collection must stay
/// under `budget`. Zero when even an empty heap would blow the budget.
pub fn live_budget_for_pause(heap: &Heap, cost: &CostModel, budget: SimDuration) -> ByteSize {
    let fixed = cost.full_gc_pause(ByteSize::ZERO, heap.used());
    let headroom = budget.saturating_sub(fixed).as_nanos();
    let per_live = cost.gc_full_ns_per_live_byte;
    if per_live <= 0.0 {
        return heap.capacity();
    }
    ByteSize((headroom as f64 / per_live) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimTime;
    use simmem::HeapConfig;

    struct Blob {
        space: simcore::SpaceId,
        live: ByteSize,
    }

    impl Deflatable for Blob {
        fn live_bytes(&self) -> ByteSize {
            self.live
        }
        fn deflate(&mut self, heap: &mut Heap, target: ByteSize) -> ByteSize {
            let freed = heap.free(self.space, target);
            self.live = self.live.saturating_sub(freed);
            freed
        }
    }

    fn heap_with_blob(cap_kib: u64, live_kib: u64) -> (Heap, Blob) {
        let mut h = Heap::new(HeapConfig::with_capacity(ByteSize::kib(cap_kib)));
        let space = h.create_space("blob");
        h.alloc(space, ByteSize::kib(live_kib), SimTime::ZERO)
            .unwrap();
        (
            h,
            Blob {
                space,
                live: ByteSize::kib(live_kib),
            },
        )
    }

    #[test]
    fn slack_heap_asks_for_nothing() {
        let (heap, _) = heap_with_blob(1000, 100);
        let mut g = StateGuard::new(MonitorConfig::default());
        assert_eq!(g.poll(&[], &heap), None);
    }

    #[test]
    fn hover_deficit_requests_the_shortfall() {
        let (heap, _) = heap_with_blob(1000, 700); // 30% free < 40% hover
        let mut g = StateGuard::new(MonitorConfig::default());
        let ask = g.poll(&[], &heap).expect("hover deficit");
        assert_eq!(ask, ByteSize::kib(100));
    }

    #[test]
    fn deflating_restores_the_hover_target() {
        let (mut heap, mut blob) = heap_with_blob(1000, 700);
        let mut g = StateGuard::new(MonitorConfig::default());
        let ask = g.poll(&[], &heap).unwrap();
        let freed = blob.deflate(&mut heap, ask);
        g.note_deflated(freed);
        assert_eq!(freed, ask);
        assert!(heap.effective_free() >= g.monitor().serialize_target(&heap));
        assert_eq!(g.stats().deflations, 1);
        assert_eq!(g.poll(&[], &heap), None);
    }

    #[test]
    fn pause_prediction_shrinks_with_deflation() {
        let (mut heap, mut blob) = heap_with_blob(1000, 900);
        let cost = CostModel::default();
        let before = predicted_full_pause(&heap, &cost);
        blob.deflate(&mut heap, ByteSize::kib(600));
        assert!(predicted_full_pause(&heap, &cost) < before);
    }

    #[test]
    fn live_budget_inverts_the_pause_model() {
        let (heap, _) = heap_with_blob(1000, 900);
        let cost = CostModel::default();
        let budget = SimDuration::from_millis(2);
        let allowed = live_budget_for_pause(&heap, &cost, budget);
        let pause = cost.full_gc_pause(allowed, heap.used());
        assert!(pause <= budget + SimDuration::from_nanos(2));
    }
}
