//! The partition manager (paper §5.3): lazy serialization of queued
//! partitions under pressure, deserialization on activation, and the
//! retention-priority rules.
//!
//! Serialization is the *cheapest* stage of a REDUCE: it frees memory
//! held by partitions whose tasks are not even running. Only if that is
//! not enough does the scheduler start interrupting live instances.

use simcluster::{NodeState, DEFAULT_IO_RETRIES};
use simcore::{ByteSize, PartitionId, SimDuration, SimError, SimTime, TaskId};

use crate::graph::TaskGraph;
use crate::partition::{Partition, PartitionState};
use crate::queue::PartitionQueue;

/// Where serialized partitions go (paper §5.3 offers both).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SerializeMode {
    /// Write the byte form to the local disk (default prototype).
    #[default]
    Disk,
    /// Keep the byte form as a heap byte array: no disk I/O, but only a
    /// ~3x reduction (object bloat vs compact encoding). Falls back to
    /// disk when even the byte array does not fit.
    MemoryBytes,
}

/// Partition-manager policy parameters.
#[derive(Clone, Copy, Debug)]
pub struct ManagerConfig {
    /// A partition deserialized within this window is protected from
    /// re-serialization while alternatives exist (anti-thrashing).
    pub thrash_window: SimDuration,
    /// Disk or in-memory byte arrays.
    pub mode: SerializeMode,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            thrash_window: SimDuration::from_millis(5),
            mode: SerializeMode::Disk,
        }
    }
}

/// Serializes one partition: the object form becomes garbage and the
/// byte form goes to the node disk via a background write (default
/// mode). Returns the *net* heap bytes released (they become
/// reclaimable at the next collection).
pub fn serialize_partition(
    part: &mut dyn Partition,
    node: &mut NodeState,
) -> simcore::SimResult<ByteSize> {
    serialize_partition_mode(part, node, SerializeMode::Disk)
}

/// [`serialize_partition`] with an explicit target (paper §5.3: disk,
/// or large in-memory byte arrays for I/O-averse applications).
pub fn serialize_partition_mode(
    part: &mut dyn Partition,
    node: &mut NodeState,
    mode: SerializeMode,
) -> simcore::SimResult<ByteSize> {
    let meta = part.meta();
    let space = match meta.state {
        PartitionState::InMemory(space) => space,
        PartitionState::Serialized(_) | PartitionState::SerializedInMemory(_) => {
            return Ok(ByteSize::ZERO)
        }
    };
    let ser_bytes = meta.ser_bytes;
    let id = meta.id;
    if mode == SerializeMode::MemoryBytes {
        // Compact in place: drop the object form, keep a byte array.
        let freed = node.heap.release_space(space);
        let bytes_space = node.heap.create_space(format!("{id}.serbytes"));
        if node.alloc(bytes_space, ser_bytes).is_ok() {
            let meta = part.meta_mut();
            meta.state = PartitionState::SerializedInMemory(bytes_space);
            meta.last_serialized = Some(node.now);
            return Ok(freed - ser_bytes);
        }
        // Even the byte array does not fit: fall through to disk.
        node.heap.release_space(bytes_space);
        let (file, _retries) =
            node.disk_write_retried(&format!("{id}.ser"), ser_bytes, DEFAULT_IO_RETRIES)?;
        let meta = part.meta_mut();
        meta.state = PartitionState::Serialized(file);
        meta.last_serialized = Some(node.now);
        return Ok(freed);
    }
    // CPU cost of encoding is charged to the node clock (the paper uses
    // background threads; encoding overlaps compute, so we charge only
    // the cheap async-write bookkeeping). Transient disk faults are
    // absorbed by bounded retry with the device backing off in between.
    let (file, _retries) =
        node.disk_write_retried(&format!("{id}.ser"), ser_bytes, DEFAULT_IO_RETRIES)?;
    let freed = node.heap.release_space(space);
    let meta = part.meta_mut();
    meta.state = PartitionState::Serialized(file);
    meta.last_serialized = Some(node.now);
    Ok(freed)
}

/// What a deserialization had to survive (fault-injection runs): zero
/// everywhere on a healthy substrate.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeserRecovery {
    /// Transient read/write faults absorbed by bounded retry.
    pub transient_retries: u32,
    /// Corrupt spill files rebuilt from the retained object form.
    pub corruption_rebuilds: u32,
}

/// Deserializes one partition for activation: disk read, decode CPU,
/// heap allocation. Returns the heap bytes charged and the duration the
/// activating thread must charge for the I/O and decoding.
///
/// On an allocation failure the partition is left serialized and the
/// error is returned (the caller counts a failed activation).
pub fn deserialize_partition(
    part: &mut dyn Partition,
    node: &mut NodeState,
) -> simcore::SimResult<(ByteSize, SimDuration)> {
    deserialize_partition_recovering(part, node).map(|(bytes, cost, _rec)| (bytes, cost))
}

/// [`deserialize_partition`] that also reports what it had to recover
/// from. Reads are checksum-verified; a corrupt spill file is deleted
/// and rebuilt from the partition's retained object form (its lineage —
/// [`crate::partition::VecPartition`] keeps the tuples across
/// serialization), paying the encode CPU and a fresh write, then the
/// read is retried. Both the rebuild loop and the per-I/O transient
/// retries are bounded, so a hostile injector cannot live-lock the
/// activation: when the budget runs out the underlying error surfaces.
pub fn deserialize_partition_recovering(
    part: &mut dyn Partition,
    node: &mut NodeState,
) -> simcore::SimResult<(ByteSize, SimDuration, DeserRecovery)> {
    let meta = part.meta();
    let mem_bytes = meta.mem_bytes;
    let ser_bytes = meta.ser_bytes;
    let id = meta.id;
    let mut rec = DeserRecovery::default();
    match meta.state {
        PartitionState::InMemory(_) => Ok((ByteSize::ZERO, SimDuration::ZERO, rec)),
        PartitionState::Serialized(file) => {
            let space = node.heap.create_space(format!("{id}.deser"));
            if let Err(e) = node.alloc(space, mem_bytes) {
                node.heap.release_space(space);
                return Err(e);
            }
            let mut file = file;
            let mut cost = SimDuration::ZERO;
            loop {
                match node.disk_read_retried(file, DEFAULT_IO_RETRIES) {
                    Ok((_bytes, stall, retries)) => {
                        rec.transient_retries += retries;
                        cost += stall;
                        break;
                    }
                    Err(SimError::CorruptPartition { .. })
                        if rec.corruption_rebuilds < DEFAULT_IO_RETRIES =>
                    {
                        // The stored bytes are damaged; the object form
                        // is still held by the partition, so re-encode,
                        // write a fresh spill file and read that instead.
                        node.disk.delete(file);
                        cost += node.cost.serialize_cpu(ser_bytes);
                        let (fresh, retries) = node
                            .disk_write_retried(&format!("{id}.ser"), ser_bytes, DEFAULT_IO_RETRIES)
                            .inspect_err(|_| {
                                node.heap.release_space(space);
                            })?;
                        rec.transient_retries += retries;
                        rec.corruption_rebuilds += 1;
                        part.meta_mut().state = PartitionState::Serialized(fresh);
                        file = fresh;
                    }
                    Err(e) => {
                        node.heap.release_space(space);
                        return Err(e);
                    }
                }
            }
            cost += node.cost.deserialize_cpu(ser_bytes);
            node.disk.delete(file);
            let meta = part.meta_mut();
            meta.state = PartitionState::InMemory(space);
            meta.last_deserialized = Some(node.now + cost);
            Ok((mem_bytes, cost, rec))
        }
        PartitionState::SerializedInMemory(bytes_space) => {
            // Decode straight from the byte array: no disk stall.
            let space = node.heap.create_space(format!("{id}.deser"));
            if let Err(e) = node.alloc(space, mem_bytes) {
                node.heap.release_space(space);
                return Err(e);
            }
            node.heap.release_space(bytes_space);
            let cost = node.cost.deserialize_cpu(ser_bytes);
            let meta = part.meta_mut();
            meta.state = PartitionState::InMemory(space);
            meta.last_deserialized = Some(node.now + cost);
            Ok((mem_bytes, cost, rec))
        }
    }
}

/// Picks queued partitions to serialize, lowest retention priority
/// first, honouring the paper's rules:
///
/// * **Temporal locality** — partitions feeding tasks *near* the
///   currently running tasks stay in memory;
/// * **Finish line** — partitions feeding tasks *near* the output of the
///   task graph stay in memory;
/// * **Anti-thrashing** — recently deserialized partitions are only
///   chosen if nothing else qualifies, oldest deserialization first.
///
/// Returns partition ids in serialization order.
pub fn serialization_order(
    queue: &PartitionQueue,
    graph: &TaskGraph,
    running_tasks: &[TaskId],
    now: SimTime,
    cfg: ManagerConfig,
) -> Vec<PartitionId> {
    let dist_to_running = |t: TaskId| {
        running_tasks
            .iter()
            .map(|&r| graph.distance_between(t, r))
            .min()
            .unwrap_or(usize::MAX / 2)
    };
    let mut candidates: Vec<(usize, usize, u64, PartitionId, bool)> = queue
        .metas()
        .filter(|m| m.in_memory())
        .map(|m| {
            let protected = m
                .last_deserialized
                .map(|t| now.since(t) < cfg.thrash_window)
                .unwrap_or(false);
            let deser_age = m.last_deserialized.map(|t| t.as_nanos()).unwrap_or(0);
            (
                dist_to_running(m.input_of),
                graph.distance_to_finish(m.input_of),
                deser_age,
                m.id,
                protected,
            )
        })
        .collect();
    // Farther from running tasks first, then farther from the finish
    // line, then oldest deserialization, then id for determinism.
    candidates.sort_by(|a, b| {
        b.0.cmp(&a.0)
            .then(b.1.cmp(&a.1))
            .then(a.2.cmp(&b.2))
            .then(a.3.cmp(&b.3))
    });
    let (unprotected, protected): (Vec<_>, Vec<_>) = candidates.into_iter().partition(|c| !c.4);
    unprotected
        .into_iter()
        .chain(protected)
        .map(|c| c.3)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{Tag, Tuple, VecPartition};
    use crate::task::{ITask, TaskCx};
    use simcore::{NodeId, SimResult};

    struct B(u64);

    impl Tuple for B {
        fn heap_bytes(&self) -> u64 {
            self.0
        }
    }

    struct Nop;

    impl ITask for Nop {
        fn initialize(&mut self, _: &mut TaskCx<'_, '_>) -> SimResult<()> {
            Ok(())
        }
        fn process_batch(
            &mut self,
            _: &mut TaskCx<'_, '_>,
            _: &mut dyn Partition,
        ) -> SimResult<u64> {
            Ok(0)
        }
        fn interrupt(&mut self, _: &mut TaskCx<'_, '_>) -> SimResult<()> {
            Ok(())
        }
        fn cleanup(&mut self, _: &mut TaskCx<'_, '_>) -> SimResult<()> {
            Ok(())
        }
    }

    fn node() -> NodeState {
        NodeState::new(NodeId(0), 8, ByteSize::mib(4), ByteSize::mib(64))
    }

    fn in_memory_partition(
        node: &mut NodeState,
        id: u32,
        task: u32,
        bytes_per_tuple: u64,
        n: usize,
    ) -> Box<VecPartition<B>> {
        let space = node.heap.create_space(format!("p{id}"));
        node.alloc(space, ByteSize(bytes_per_tuple * n as u64))
            .unwrap();
        let items = (0..n).map(|_| B(bytes_per_tuple)).collect();
        Box::new(VecPartition::new(
            PartitionId(id),
            TaskId(task),
            Tag(0),
            items,
            space,
        ))
    }

    #[test]
    fn serialize_then_deserialize_roundtrip() {
        let mut n = node();
        let mut p = in_memory_partition(&mut n, 0, 0, 1000, 10);
        let heap_before = n.heap.live();
        let freed = serialize_partition(p.as_mut(), &mut n).unwrap();
        assert_eq!(freed, ByteSize(10_000));
        assert_eq!(n.heap.live(), heap_before - ByteSize(10_000));
        assert!(!p.meta().in_memory());
        assert!(p.meta().last_serialized.is_some());
        assert_eq!(n.disk.file_count(), 1);
        // Serializing again is a no-op.
        assert_eq!(
            serialize_partition(p.as_mut(), &mut n).unwrap(),
            ByteSize::ZERO
        );

        let (charged, cost) = deserialize_partition(p.as_mut(), &mut n).unwrap();
        assert_eq!(charged, ByteSize(10_000));
        assert!(cost > SimDuration::ZERO);
        assert!(p.meta().in_memory());
        assert!(p.meta().last_deserialized.is_some());
        assert_eq!(n.heap.live(), heap_before);
        // The spill file was consumed.
        assert_eq!(n.disk.file_count(), 0);
        // Deserializing again is a no-op.
        let (again, _) = deserialize_partition(p.as_mut(), &mut n).unwrap();
        assert_eq!(again, ByteSize::ZERO);
    }

    #[test]
    fn deserialize_failure_leaves_partition_serialized() {
        let mut n = NodeState::new(NodeId(0), 8, ByteSize::kib(64), ByteSize::mib(64));
        let mut p = in_memory_partition(&mut n, 0, 0, 1000, 10);
        serialize_partition(p.as_mut(), &mut n).unwrap();
        // Fill the heap so rematerialization cannot fit.
        let hog = n.heap.create_space("hog");
        while n.alloc(hog, ByteSize::kib(4)).is_ok() {}
        let err = deserialize_partition(p.as_mut(), &mut n).unwrap_err();
        assert!(err.is_oom());
        assert!(!p.meta().in_memory());
    }

    #[test]
    fn serialization_order_applies_rules() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", || Box::new(Nop));
        let b = g.add_task("b", || Box::new(Nop));
        let c = g.add_task("c", || Box::new(Nop));
        g.connect(a, b);
        g.connect(b, c);

        let mut n = node();
        let mut q = PartitionQueue::new();
        // Partition for a (far from finish, far from running c).
        q.push(in_memory_partition(&mut n, 0, a.as_u32(), 10, 1));
        // Partition for c (at the finish line, running).
        q.push(in_memory_partition(&mut n, 1, c.as_u32(), 10, 1));
        // Partition for b.
        q.push(in_memory_partition(&mut n, 2, b.as_u32(), 10, 1));

        let order = serialization_order(&q, &g, &[c], SimTime::ZERO, ManagerConfig::default());
        // a's partition is serialized first, c's last.
        assert_eq!(order, vec![PartitionId(0), PartitionId(2), PartitionId(1)]);
    }

    #[test]
    fn recently_deserialized_partitions_go_last() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", || Box::new(Nop));
        let mut n = node();
        let mut q = PartitionQueue::new();
        let mut hot = in_memory_partition(&mut n, 0, a.as_u32(), 10, 1);
        hot.meta_mut().last_deserialized = Some(SimTime::ZERO);
        q.push(hot);
        q.push(in_memory_partition(&mut n, 1, a.as_u32(), 10, 1));

        let order = serialization_order(
            &q,
            &g,
            &[a],
            SimTime::ZERO + SimDuration::from_millis(1),
            ManagerConfig::default(),
        );
        // The cold partition is preferred even though ids tie-break the
        // other way.
        assert_eq!(order, vec![PartitionId(1), PartitionId(0)]);
    }

    #[test]
    fn serialized_partitions_are_not_candidates() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", || Box::new(Nop));
        let mut n = node();
        let mut p = in_memory_partition(&mut n, 0, a.as_u32(), 10, 1);
        serialize_partition(p.as_mut(), &mut n).unwrap();
        let mut q = PartitionQueue::new();
        q.push(p);
        let order = serialization_order(&q, &g, &[a], SimTime::ZERO, ManagerConfig::default());
        assert!(order.is_empty());
    }
}

#[cfg(test)]
mod memory_bytes_tests {
    use super::*;
    use crate::partition::{Tag, Tuple, VecPartition};
    use simcluster::NodeState;
    use simcore::{ByteSize, NodeId, PartitionId, TaskId};

    struct B(u64);

    impl Tuple for B {
        fn heap_bytes(&self) -> u64 {
            self.0
        }
        fn ser_bytes(&self) -> u64 {
            self.0 / 3
        }
    }

    fn node(heap_kib: u64) -> NodeState {
        NodeState::new(NodeId(0), 8, ByteSize::kib(heap_kib), ByteSize::mib(64))
    }

    fn partition(n: &mut NodeState, bytes_per: u64, count: usize) -> Box<VecPartition<B>> {
        let space = n.heap.create_space("p");
        n.alloc(space, ByteSize(bytes_per * count as u64)).unwrap();
        let items = (0..count).map(|_| B(bytes_per)).collect();
        Box::new(VecPartition::new(
            PartitionId(0),
            TaskId(0),
            Tag(0),
            items,
            space,
        ))
    }

    #[test]
    fn memory_bytes_mode_compacts_without_disk() {
        let mut n = node(4096);
        let mut p = partition(&mut n, 900, 10); // 9000B object form, 3000B bytes
        let net = serialize_partition_mode(p.as_mut(), &mut n, SerializeMode::MemoryBytes).unwrap();
        assert_eq!(net, ByteSize(9000 - 3000), "net release = bloat - bytes");
        assert!(!p.meta().in_memory());
        assert!(matches!(
            p.meta().state,
            PartitionState::SerializedInMemory(_)
        ));
        assert_eq!(n.disk.file_count(), 0, "no disk I/O in this mode");
        // The byte array is live on the heap.
        assert_eq!(n.heap.live(), ByteSize(3000));

        // Deserialization restores the object form with no disk stall.
        let (charged, cost) = deserialize_partition(p.as_mut(), &mut n).unwrap();
        assert_eq!(charged, ByteSize(9000));
        assert!(cost > SimDuration::ZERO); // decode CPU only
        assert!(p.meta().in_memory());
        assert_eq!(n.heap.live(), ByteSize(9000));
        assert_eq!(n.io_stall_time, SimDuration::ZERO);
    }

    #[test]
    fn serialized_in_memory_partitions_are_not_reserialization_candidates() {
        let mut n = node(4096);
        let mut p = partition(&mut n, 900, 10);
        serialize_partition_mode(p.as_mut(), &mut n, SerializeMode::MemoryBytes).unwrap();
        // A second serialization is a no-op.
        let again =
            serialize_partition_mode(p.as_mut(), &mut n, SerializeMode::MemoryBytes).unwrap();
        assert_eq!(again, ByteSize::ZERO);
    }
}
