//! Data partitions: the unit of input/output the ITask runtime manages
//! (the paper's `DataPartition` abstract class, Figure 4).
//!
//! A partition wraps an interval of tuples. Its *cursor* marks the
//! boundary between processed and unprocessed tuples so an interrupted
//! task can be resumed "without missing a beat"; its *tag* groups
//! intermediate results that must be aggregated together by an `MITask`.
//!
//! Partitions exist in two states: *deserialized* (an object graph
//! charged to a heap [`SpaceId`]) or *serialized* (a simulated on-disk
//! file; the heap charge is released). The partition manager flips
//! between the states lazily in response to memory pressure.

use std::any::Any;

use simcore::{ByteSize, PartitionId, SimTime, SpaceId, TaskId};
use simmem::Heap;
use simstore::FileId;

/// Groups intermediate results for aggregation (e.g. a hash-bucket id).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tag(pub u64);

/// Where a partition's payload currently lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionState {
    /// Object form on the heap, charged to this space.
    InMemory(SpaceId),
    /// Byte form on the local disk.
    Serialized(FileId),
    /// Byte form in a heap byte array (paper §5.3: "for applications
    /// that cannot tolerate disk I/O, the partition can be serialized
    /// to large byte arrays" — the compact form costs `ser_bytes`
    /// instead of `mem_bytes`, typically a ~3x reduction).
    SerializedInMemory(SpaceId),
}

/// Runtime-visible metadata of a partition (the `tag`/`cursor` state of
/// the paper's `DataPartition`, plus what the IRS needs for its rules).
#[derive(Clone, Debug)]
pub struct PartitionMeta {
    /// Unique id.
    pub id: PartitionId,
    /// The logical task that consumes this partition.
    pub input_of: TaskId,
    /// Aggregation tag (meaningful for `MITask` inputs).
    pub tag: Tag,
    /// Tuples already processed (resume point).
    pub cursor: usize,
    /// Total tuples currently held.
    pub len: usize,
    /// Simulated heap footprint of the deserialized form.
    pub mem_bytes: ByteSize,
    /// Simulated size of the serialized form.
    pub ser_bytes: ByteSize,
    /// Object or byte form.
    pub state: PartitionState,
    /// When the partition was last serialized (anti-thrashing).
    pub last_serialized: Option<SimTime>,
    /// When the partition was last deserialized (anti-thrashing).
    pub last_deserialized: Option<SimTime>,
}

impl PartitionMeta {
    /// Tuples not yet processed.
    pub fn remaining(&self) -> usize {
        self.len - self.cursor
    }

    /// Whether every tuple has been processed.
    pub fn exhausted(&self) -> bool {
        self.cursor >= self.len
    }

    /// Whether the payload is currently in *object* form on the heap
    /// (directly processable).
    pub fn in_memory(&self) -> bool {
        matches!(self.state, PartitionState::InMemory(_))
    }

    /// The heap space holding the payload (object or byte form), if any.
    pub fn space(&self) -> Option<SpaceId> {
        match self.state {
            PartitionState::InMemory(s) | PartitionState::SerializedInMemory(s) => Some(s),
            PartitionState::Serialized(_) => None,
        }
    }
}

/// Object-safe partition interface the runtime schedules over.
///
/// Concrete payload access happens in the typed task layer via
/// [`Partition::as_any_mut`] downcasts; the runtime itself only reads and
/// updates [`PartitionMeta`].
pub trait Partition: Any + Send {
    /// Shared metadata.
    fn meta(&self) -> &PartitionMeta;
    /// Mutable metadata (the runtime advances cursors, flips states).
    fn meta_mut(&mut self) -> &mut PartitionMeta;
    /// Downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
    /// Downcast support.
    fn as_any(&self) -> &dyn Any;
    /// Drops the processed prefix (tuples before the cursor), returning
    /// the heap bytes it releases from the partition's space. Called at
    /// interrupts — component (2) of the paper's Figure 1.
    fn release_processed(&mut self, heap: &mut Heap) -> ByteSize;
}

/// A boxed partition in the runtime's queue.
pub type PartitionBox = Box<dyn Partition>;

/// Tuples carried by [`VecPartition`]: they know their simulated managed
/// -heap footprint and serialized size.
///
/// Blanket-implemented for every [`simcore::HeapSized`] type (workload
/// records); implement it directly only for ad-hoc tuple types.
pub trait Tuple: Send + 'static {
    /// Bytes this tuple occupies as a Java-style object graph.
    fn heap_bytes(&self) -> u64;

    /// Bytes this tuple occupies when serialized (Kryo-style compact
    /// encoding; object graphs typically shrink ~3×).
    fn ser_bytes(&self) -> u64 {
        (self.heap_bytes() / 3).max(1)
    }
}

impl<T: simcore::HeapSized + Send + 'static> Tuple for T {
    fn heap_bytes(&self) -> u64 {
        simcore::HeapSized::heap_bytes(self)
    }

    fn ser_bytes(&self) -> u64 {
        simcore::HeapSized::ser_bytes(self)
    }
}

/// The standard partition implementation: a vector of tuples plus a
/// cursor.
pub struct VecPartition<T: Tuple> {
    meta: PartitionMeta,
    items: Vec<T>,
}

impl<T: Tuple> VecPartition<T> {
    /// Wraps `items` into a partition charged to `space` (the caller has
    /// already allocated the bytes into that space, or will).
    pub fn new(id: PartitionId, input_of: TaskId, tag: Tag, items: Vec<T>, space: SpaceId) -> Self {
        let mem: u64 = items.iter().map(Tuple::heap_bytes).sum();
        let ser: u64 = items.iter().map(Tuple::ser_bytes).sum();
        VecPartition {
            meta: PartitionMeta {
                id,
                input_of,
                tag,
                cursor: 0,
                len: items.len(),
                mem_bytes: ByteSize(mem),
                ser_bytes: ByteSize(ser),
                state: PartitionState::InMemory(space),
                last_serialized: None,
                last_deserialized: None,
            },
            items,
        }
    }

    /// Wraps `items` into a partition whose payload starts out on disk
    /// (an input block); no heap is charged until activation
    /// deserializes it.
    pub fn new_serialized(
        id: PartitionId,
        input_of: TaskId,
        tag: Tag,
        items: Vec<T>,
        file: FileId,
    ) -> Self {
        let mem: u64 = items.iter().map(Tuple::heap_bytes).sum();
        let ser: u64 = items.iter().map(Tuple::ser_bytes).sum();
        VecPartition {
            meta: PartitionMeta {
                id,
                input_of,
                tag,
                cursor: 0,
                len: items.len(),
                mem_bytes: ByteSize(mem),
                ser_bytes: ByteSize(ser),
                state: PartitionState::Serialized(file),
                last_serialized: None,
                last_deserialized: None,
            },
            items,
        }
    }

    /// The tuple at `index` (callers use `meta().cursor`).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn get(&self, index: usize) -> &T {
        &self.items[index]
    }

    /// All items (tests and sinks).
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Advances the cursor by one processed tuple.
    ///
    /// # Panics
    ///
    /// Panics if the partition is already exhausted.
    pub fn advance(&mut self) {
        assert!(self.meta.cursor < self.meta.len, "advance past end");
        self.meta.cursor += 1;
    }

    /// Sum of the simulated heap bytes of the processed prefix.
    pub fn processed_bytes(&self) -> ByteSize {
        ByteSize(
            self.items[..self.meta.cursor]
                .iter()
                .map(Tuple::heap_bytes)
                .sum(),
        )
    }
}

impl<T: Tuple> Partition for VecPartition<T> {
    fn meta(&self) -> &PartitionMeta {
        &self.meta
    }

    fn meta_mut(&mut self) -> &mut PartitionMeta {
        &mut self.meta
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn release_processed(&mut self, heap: &mut Heap) -> ByteSize {
        let cursor = self.meta.cursor;
        if cursor == 0 || !self.meta.in_memory() {
            return ByteSize::ZERO;
        }
        // One pass over the prefix for both byte sums.
        let (mem, ser) = self.items[..cursor].iter().fold((0u64, 0u64), |(m, s), t| {
            (m + t.heap_bytes(), s + t.ser_bytes())
        });
        let (freed_mem, freed_ser) = (ByteSize(mem), ser);
        self.items.drain(..cursor);
        self.meta.cursor = 0;
        self.meta.len = self.items.len();
        self.meta.mem_bytes -= freed_mem;
        self.meta.ser_bytes -= ByteSize(freed_ser);
        if let Some(space) = self.meta.space() {
            heap.free(space, freed_mem);
        }
        freed_mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimTime;
    use simmem::HeapConfig;

    #[derive(Clone)]
    struct Fixed(u64);

    impl Tuple for Fixed {
        fn heap_bytes(&self) -> u64 {
            self.0
        }
    }

    fn heap() -> Heap {
        Heap::new(HeapConfig::with_capacity(ByteSize::mib(4)))
    }

    fn part(heap: &mut Heap, sizes: &[u64]) -> VecPartition<Fixed> {
        let space = heap.create_space("part");
        let items: Vec<Fixed> = sizes.iter().map(|&s| Fixed(s)).collect();
        let total: u64 = sizes.iter().sum();
        heap.alloc(space, ByteSize(total), SimTime::ZERO).unwrap();
        VecPartition::new(PartitionId(0), TaskId(0), Tag(7), items, space)
    }

    #[test]
    fn meta_tracks_sizes_and_cursor() {
        let mut h = heap();
        let p = part(&mut h, &[100, 200, 300]);
        assert_eq!(p.meta().len, 3);
        assert_eq!(p.meta().mem_bytes, ByteSize(600));
        // Integer division per tuple: 33 + 66 + 100.
        assert_eq!(p.meta().ser_bytes, ByteSize(199));
        assert_eq!(p.meta().tag, Tag(7));
        assert!(p.meta().in_memory());
        assert_eq!(p.meta().remaining(), 3);
        assert!(!p.meta().exhausted());
    }

    #[test]
    fn advance_and_exhaust() {
        let mut h = heap();
        let mut p = part(&mut h, &[10, 20]);
        p.advance();
        assert_eq!(p.meta().cursor, 1);
        assert_eq!(p.meta().remaining(), 1);
        p.advance();
        assert!(p.meta().exhausted());
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut h = heap();
        let mut p = part(&mut h, &[10]);
        p.advance();
        p.advance();
    }

    #[test]
    fn release_processed_frees_prefix_only() {
        let mut h = heap();
        let mut p = part(&mut h, &[100, 200, 300]);
        p.advance();
        p.advance();
        let space = p.meta().space().unwrap();
        let live_before = h.space_live(space);
        let freed = p.release_processed(&mut h);
        assert_eq!(freed, ByteSize(300));
        assert_eq!(h.space_live(space), live_before - ByteSize(300));
        // The partition now holds only the unprocessed suffix.
        assert_eq!(p.meta().len, 1);
        assert_eq!(p.meta().cursor, 0);
        assert_eq!(p.meta().mem_bytes, ByteSize(300));
        assert_eq!(p.get(0).0, 300);
        // Releasing again with cursor 0 is a no-op.
        assert_eq!(p.release_processed(&mut h), ByteSize::ZERO);
    }

    #[test]
    fn downcast_roundtrip() {
        let mut h = heap();
        let mut p = part(&mut h, &[1]);
        let dynamic: &mut dyn Partition = &mut p;
        assert!(dynamic
            .as_any_mut()
            .downcast_mut::<VecPartition<Fixed>>()
            .is_some());
        assert!(dynamic
            .as_any()
            .downcast_ref::<VecPartition<Fixed>>()
            .is_some());
    }

    #[test]
    fn default_ser_bytes_is_a_third() {
        assert_eq!(Fixed(9).ser_bytes(), 3);
        assert_eq!(Fixed(1).ser_bytes(), 1); // never zero
    }
}
