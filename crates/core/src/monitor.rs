//! The IRS monitor (paper §5.2): watches GC behaviour and tells the
//! scheduler when to shrink (`REDUCE`) or grow (`GROW`) the set of
//! running task instances.

use simcore::ByteSize;
use simmem::{GcRecord, Heap};

/// A signal from the monitor to the scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemSignal {
    /// A long-and-useless GC was observed: serialize and interrupt until
    /// free memory rises above `M%` of the heap.
    Reduce,
    /// Free memory is at or above `N%` of the heap: more instances fit.
    Grow,
    /// Neither threshold crossed.
    Steady,
}

/// Monitor configuration (paper defaults: `N = 20`, `M = 10`).
#[derive(Clone, Copy, Debug)]
pub struct MonitorConfig {
    /// Grow when free heap ≥ `grow_free_pct`% of capacity.
    pub grow_free_pct: u8,
    /// Target free fraction a REDUCE tries to restore (`M`). The LUGC
    /// *detection* threshold itself lives in the heap config.
    pub reduce_target_pct: u8,
    /// Background-serialization hover target: parked intermediate
    /// partitions are written behind until effective free memory reaches
    /// this fraction, keeping the old generation slack so full
    /// collections stay rare (the "safe zone" of the paper's Figure 3).
    pub serialize_free_pct: u8,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            grow_free_pct: 20,
            reduce_target_pct: 10,
            serialize_free_pct: 40,
        }
    }
}

/// Monitor statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct MonitorStats {
    /// REDUCE signals sent.
    pub reduce_signals: u64,
    /// GROW signals sent.
    pub grow_signals: u64,
    /// LUGCs observed.
    pub lugcs_seen: u64,
}

/// The monitor itself.
#[derive(Clone, Debug, Default)]
pub struct Monitor {
    cfg: MonitorConfig,
    stats: MonitorStats,
    /// Set when the partition manager reports (de)serialization
    /// thrashing; forces a REDUCE at the next observation (§5.3).
    thrashing_reported: bool,
    /// The most recent signal emitted by [`Monitor::observe`]. External
    /// policies (e.g. a service admission controller) read this without
    /// perturbing the stats.
    last_signal: Option<MemSignal>,
}

impl Monitor {
    /// Creates a monitor with the given thresholds.
    pub fn new(cfg: MonitorConfig) -> Self {
        Monitor {
            cfg,
            stats: MonitorStats::default(),
            thrashing_reported: false,
            last_signal: None,
        }
    }

    /// The most recent signal emitted, if any observation has happened.
    pub fn last_signal(&self) -> Option<MemSignal> {
        self.last_signal
    }

    /// The configuration.
    pub fn config(&self) -> MonitorConfig {
        self.cfg
    }

    /// Statistics so far.
    pub fn stats(&self) -> MonitorStats {
        self.stats
    }

    /// The partition manager reports thrashing; the next observation
    /// yields `Reduce` regardless of GC activity.
    pub fn report_thrashing(&mut self) {
        self.thrashing_reported = true;
    }

    /// The absolute free-byte target a REDUCE aims for (`M%`).
    pub fn reduce_target(&self, heap: &Heap) -> ByteSize {
        heap.capacity()
            .mul_ratio(self.cfg.reduce_target_pct as u64, 100)
    }

    /// The absolute free-byte threshold for growth (`N%`).
    pub fn grow_threshold(&self, heap: &Heap) -> ByteSize {
        heap.capacity()
            .mul_ratio(self.cfg.grow_free_pct as u64, 100)
    }

    /// The background-serialization hover target.
    pub fn serialize_target(&self, heap: &Heap) -> ByteSize {
        heap.capacity()
            .mul_ratio(self.cfg.serialize_free_pct as u64, 100)
    }

    /// Digests the GC records observed since the last call plus the
    /// current heap state, and emits a signal.
    pub fn observe(&mut self, records: &[GcRecord], heap: &Heap) -> MemSignal {
        let lugcs = records.iter().filter(|r| r.useless).count() as u64;
        self.stats.lugcs_seen += lugcs;
        let thrashing = std::mem::take(&mut self.thrashing_reported);
        let signal = if lugcs > 0 || thrashing {
            self.stats.reduce_signals += 1;
            MemSignal::Reduce
        } else if heap.effective_free() >= self.grow_threshold(heap) {
            self.stats.grow_signals += 1;
            MemSignal::Grow
        } else {
            MemSignal::Steady
        };
        self.last_signal = Some(signal);
        signal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{SimDuration, SimTime};
    use simmem::{GcKind, HeapConfig};

    fn heap_with_live(capacity_kib: u64, live_kib: u64) -> Heap {
        let mut h = Heap::new(HeapConfig::with_capacity(ByteSize::kib(capacity_kib)));
        let s = h.create_space("x");
        if live_kib > 0 {
            h.alloc(s, ByteSize::kib(live_kib), SimTime::ZERO).unwrap();
        }
        h
    }

    fn lugc() -> GcRecord {
        GcRecord {
            at: SimTime::ZERO,
            kind: GcKind::Full,
            used_before: ByteSize::kib(95),
            used_after: ByteSize::kib(95),
            free_after: ByteSize::kib(5),
            pause: SimDuration::from_millis(1),
            useless: true,
        }
    }

    #[test]
    fn lugc_triggers_reduce() {
        let mut m = Monitor::new(MonitorConfig::default());
        let heap = heap_with_live(100, 95);
        assert_eq!(m.observe(&[lugc()], &heap), MemSignal::Reduce);
        assert_eq!(m.stats().reduce_signals, 1);
        assert_eq!(m.stats().lugcs_seen, 1);
    }

    #[test]
    fn ample_free_memory_triggers_grow() {
        let mut m = Monitor::new(MonitorConfig::default());
        let heap = heap_with_live(100, 10); // 90% free >= 20%
        assert_eq!(m.observe(&[], &heap), MemSignal::Grow);
        assert_eq!(m.stats().grow_signals, 1);
    }

    #[test]
    fn middling_occupancy_is_steady() {
        let mut m = Monitor::new(MonitorConfig::default());
        let heap = heap_with_live(100, 85); // 15% free: between M and N
        assert_eq!(m.observe(&[], &heap), MemSignal::Steady);
    }

    #[test]
    fn last_signal_mirrors_the_latest_observation() {
        let mut m = Monitor::new(MonitorConfig::default());
        assert_eq!(m.last_signal(), None);
        let tight = heap_with_live(100, 95);
        m.observe(&[lugc()], &tight);
        assert_eq!(m.last_signal(), Some(MemSignal::Reduce));
        let roomy = heap_with_live(100, 10);
        m.observe(&[], &roomy);
        assert_eq!(m.last_signal(), Some(MemSignal::Grow));
    }

    #[test]
    fn thrashing_report_forces_one_reduce() {
        let mut m = Monitor::new(MonitorConfig::default());
        let heap = heap_with_live(100, 10);
        m.report_thrashing();
        assert_eq!(m.observe(&[], &heap), MemSignal::Reduce);
        // Consumed: next observation reverts to the heap state.
        assert_eq!(m.observe(&[], &heap), MemSignal::Grow);
    }

    #[test]
    fn thresholds_scale_with_capacity() {
        let m = Monitor::new(MonitorConfig::default());
        let heap = heap_with_live(1000, 0);
        assert_eq!(m.reduce_target(&heap), ByteSize::kib(100));
        assert_eq!(m.grow_threshold(&heap), ByteSize::kib(200));
    }
}

#[cfg(test)]
mod target_tests {
    use super::*;
    use simmem::HeapConfig;

    #[test]
    fn serialize_target_sits_between_m_and_capacity() {
        let m = Monitor::new(MonitorConfig::default());
        let heap = Heap::new(HeapConfig::with_capacity(ByteSize::kib(1000)));
        let reduce = m.reduce_target(&heap);
        let grow = m.grow_threshold(&heap);
        let ser = m.serialize_target(&heap);
        assert!(reduce < grow, "M% < N%");
        assert!(grow < ser, "the hover target overshoots the grow gate");
        assert_eq!(ser, ByteSize::kib(400));
    }

    #[test]
    fn custom_thresholds_are_respected() {
        let m = Monitor::new(MonitorConfig {
            grow_free_pct: 30,
            reduce_target_pct: 15,
            serialize_free_pct: 55,
        });
        let heap = Heap::new(HeapConfig::with_capacity(ByteSize::kib(200)));
        assert_eq!(m.grow_threshold(&heap), ByteSize::kib(60));
        assert_eq!(m.reduce_target(&heap), ByteSize::kib(30));
        assert_eq!(m.serialize_target(&heap), ByteSize::kib(110));
    }
}
