//! The simulated thread running one ITask instance: the state machine of
//! the paper's Figure 5 (initialize → scale loop → interrupt | cleanup).

use std::collections::VecDeque;

use simcluster::{StepOutcome, Work, WorkCx};
use simcore::{SimError, TaskId};

use crate::manager::deserialize_partition_recovering;
use crate::partition::{PartitionBox, Tag};
use crate::runtime::{InterruptMode, IrsHandle};
use crate::task::{ITask, InstanceSpaces, TaskCx, TaskKind};

/// One running instance: a task object plus its input partition(s).
///
/// A `Single` instance holds exactly one partition; a `Multi` (MITask)
/// instance holds a tag group and iterates it lazily — serialized
/// partitions are only deserialized when they reach the front (the
/// paper's out-of-core `PartitionIterator`).
pub struct ItaskWorker {
    instance: u64,
    handle: IrsHandle,
    task_id: TaskId,
    kind: TaskKind,
    tag: Tag,
    task: Box<dyn ITask>,
    inputs: VecDeque<PartitionBox>,
    spaces: Option<InstanceSpaces>,
    initialized: bool,
    max_activation_failures: u32,
    interrupt_mode: InterruptMode,
}

impl ItaskWorker {
    /// Builds a worker; the IRS spawns it as a simulated thread.
    #[allow(clippy::too_many_arguments)] // mirrors the instance fields
    pub(crate) fn new(
        handle: IrsHandle,
        task_id: TaskId,
        kind: TaskKind,
        tag: Tag,
        task: Box<dyn ITask>,
        inputs: VecDeque<PartitionBox>,
        max_activation_failures: u32,
        interrupt_mode: InterruptMode,
    ) -> Self {
        let instance = handle.next_instance_id();
        ItaskWorker {
            instance,
            handle,
            task_id,
            kind,
            tag,
            task,
            inputs,
            spaces: None,
            initialized: false,
            max_activation_failures,
            interrupt_mode,
        }
    }

    /// The instance id (the IRS keys its bookkeeping on this).
    pub(crate) fn instance_id(&self) -> u64 {
        self.instance
    }

    fn ensure_spaces(&mut self, cx: &mut WorkCx<'_>) -> &mut InstanceSpaces {
        let (task_id, instance) = (self.task_id, self.instance);
        self.spaces.get_or_insert_with(|| InstanceSpaces {
            local: cx
                .node()
                .heap
                .create_space(format!("{task_id}.i{instance}.local")),
            out: cx
                .node()
                .heap
                .create_space(format!("{task_id}.i{instance}.out")),
        })
    }

    fn current_tag(&self) -> Tag {
        self.inputs
            .front()
            .map(|p| p.meta().tag)
            .unwrap_or(self.tag)
    }

    /// Releases instance spaces; returns bytes from the local space.
    fn release_spaces(&mut self, cx: &mut WorkCx<'_>) -> simcore::ByteSize {
        match self.spaces.take() {
            Some(s) => {
                let local = cx.node().heap.release_space(s.local);
                cx.node().heap.release_space(s.out);
                local
            }
            None => simcore::ByteSize::ZERO,
        }
    }

    /// The cooperative interrupt path (Figure 5, memory-pressure edge):
    /// run the task's interrupt logic, release the processed input
    /// prefix and local structures, push unprocessed inputs back to the
    /// queue, and retire.
    fn do_interrupt(&mut self, cx: &mut WorkCx<'_>, emergency: bool) -> StepOutcome {
        if self.interrupt_mode == InterruptMode::KillRestart {
            return self.do_kill_restart(cx, emergency);
        }
        if self.initialized {
            let tag = self.current_tag();
            let spaces = self.spaces.as_mut().expect("initialized implies spaces");
            let mut tcx = TaskCx::new(cx, &self.handle, self.task_id, tag, spaces, true);
            if let Err(e) = self.task.interrupt(&mut tcx) {
                self.handle.retire(self.instance);
                return StepOutcome::Failed(e);
            }
        }
        // Component 2 of Figure 1: drop the processed prefix.
        for part in &mut self.inputs {
            let freed = part.release_processed(&mut cx.node().heap);
            self.handle.note_processed_input(freed);
        }
        // Component 1: local structures die with the instance.
        let local = self.release_spaces(cx);
        self.handle.note_local(local);
        // Trace the interrupt *before* requeueing so each pushed-back
        // partition can be tagged with this event as its origin (the
        // eventual re-activation links back through it). A scheduled
        // interrupt links to its victim-mark; emergencies are self-
        // inflicted and have none.
        let mark = self.handle.take_victim_mark(self.instance);
        let interrupt = self.handle.trace_linked(
            cx.now(),
            crate::trace::IrsEvent::Interrupted {
                task: self.task_id,
                emergency,
            },
            mark,
        );
        // Unprocessed inputs go back to the queue for resumption.
        while let Some(part) = self.inputs.pop_front() {
            self.handle.note_interrupt_origin(part.meta().id, interrupt);
            self.handle.push_partition(part);
        }
        self.handle.stats_mut(|st| {
            if emergency {
                st.emergency_interrupts += 1;
            } else {
                st.interrupts += 1;
            }
        });
        self.handle.retire(self.instance);
        StepOutcome::Finished
    }

    /// The naïve baseline (§6.1): the thread dies without interrupt
    /// logic — partial output is discarded, the cursor resets, and the
    /// whole partition is reprocessed from scratch later.
    fn do_kill_restart(&mut self, cx: &mut WorkCx<'_>, emergency: bool) -> StepOutcome {
        self.release_spaces(cx);
        while let Some(mut part) = self.inputs.pop_front() {
            part.meta_mut().cursor = 0;
            self.handle.push_partition(part);
        }
        self.handle.stats_mut(|st| {
            if emergency {
                st.emergency_interrupts += 1;
            } else {
                st.interrupts += 1;
            }
        });
        self.handle.retire(self.instance);
        StepOutcome::Finished
    }

    /// Post-mortem salvage after a node crash (fault-injection runs).
    ///
    /// The paper's interrupt path works just as well after the node
    /// died, because everything it relies on is *already* off-node or
    /// deterministic: the processed prefix's results have left the node
    /// (component 4(a) streams finals out as they are produced; the
    /// in-object accumulation until interrupt/cleanup is a simulation
    /// artifact), and the cursor marks exactly where processing stopped.
    /// Flushing accumulated state through `interrupt` and requeueing the
    /// unprocessed remainder therefore reproduces the instant-of-crash
    /// state with exactly-once semantics: emitted outputs are never
    /// re-emitted, unprocessed tuples are processed exactly once more,
    /// on whichever surviving node the engine re-homes them to.
    pub fn crash_salvage(&mut self, cx: &mut WorkCx<'_>) -> simcore::SimResult<()> {
        if self.initialized {
            let tag = self.current_tag();
            let spaces = self.spaces.as_mut().expect("initialized implies spaces");
            let mut tcx = TaskCx::new(cx, &self.handle, self.task_id, tag, spaces, true);
            self.task.interrupt(&mut tcx)?;
        }
        for part in &mut self.inputs {
            let freed = part.release_processed(&mut cx.node().heap);
            self.handle.note_processed_input(freed);
        }
        let local = self.release_spaces(cx);
        self.handle.note_local(local);
        while let Some(part) = self.inputs.pop_front() {
            self.handle.push_partition(part);
        }
        self.handle.stats_mut(|st| st.crash_salvaged_instances += 1);
        self.handle.trace(
            cx.now(),
            crate::trace::IrsEvent::CrashSalvaged { task: self.task_id },
        );
        self.handle.retire(self.instance);
        Ok(())
    }

    /// Activation failed (input would not fit): requeue everything and
    /// tell the IRS to reduce memory pressure before retrying.
    fn abort_activation(&mut self, cx: &mut WorkCx<'_>, err: SimError) -> StepOutcome {
        let needed = self
            .inputs
            .front()
            .map(|p| p.meta().mem_bytes)
            .unwrap_or(simcore::ByteSize::ZERO);
        self.handle.hint_pressure(needed);
        let give_up = self
            .inputs
            .front()
            .map(|p| {
                self.handle.bump_activation_failure(p.meta().id) > self.max_activation_failures
            })
            .unwrap_or(false);
        self.release_spaces(cx);
        if give_up {
            self.handle.retire(self.instance);
            return StepOutcome::Failed(err);
        }
        while let Some(part) = self.inputs.pop_front() {
            self.handle.push_partition(part);
        }
        self.handle.retire(self.instance);
        StepOutcome::Finished
    }
}

impl Work for ItaskWorker {
    fn step(&mut self, cx: &mut WorkCx<'_>) -> StepOutcome {
        // Safe point: scheduler-requested interrupt.
        if self.handle.should_terminate(self.instance) {
            return self.do_interrupt(cx, false);
        }

        // Lazily materialize the front partition before touching it.
        if let Some(front) = self.inputs.front_mut() {
            if !front.meta().in_memory() {
                let pid = front.meta().id;
                match deserialize_partition_recovering(front.as_mut(), cx.node()) {
                    Ok((bytes, io_cost, rec)) => {
                        cx.charge(io_cost);
                        if !bytes.is_zero() {
                            self.handle.stats_mut(|st| {
                                st.deserializations += 1;
                                st.transient_io_retries += rec.transient_retries as u64;
                                st.corruption_recoveries += rec.corruption_rebuilds as u64;
                            });
                        }
                        if rec.corruption_rebuilds > 0 {
                            self.handle.trace(
                                cx.now(),
                                crate::trace::IrsEvent::CorruptionRecovered { partition: pid },
                            );
                        }
                    }
                    Err(e) if e.is_oom() => {
                        let needed = front.meta().mem_bytes;
                        self.handle.hint_pressure(needed);
                        return if self.initialized {
                            // Mid-group (MITask): accumulated state must
                            // be flushed, not dropped — interrupt.
                            self.do_interrupt(cx, true)
                        } else {
                            self.abort_activation(cx, e)
                        };
                    }
                    Err(e) => {
                        self.handle.retire(self.instance);
                        return StepOutcome::Failed(e);
                    }
                }
            }
        }

        self.ensure_spaces(cx);
        if !self.initialized {
            let tag = self.current_tag();
            let spaces = self.spaces.as_mut().expect("just ensured");
            let mut tcx = TaskCx::new(cx, &self.handle, self.task_id, tag, spaces, false);
            if let Err(e) = self.task.initialize(&mut tcx) {
                self.handle.retire(self.instance);
                return StepOutcome::Failed(e);
            }
            self.initialized = true;
        }

        // Process a batch from the front partition.
        if let Some(front) = self.inputs.front_mut() {
            let tag = front.meta().tag;
            let spaces = self.spaces.as_mut().expect("initialized implies spaces");
            let mut tcx = TaskCx::new(cx, &self.handle, self.task_id, tag, spaces, false);
            match self.task.process_batch(&mut tcx, front.as_mut()) {
                Ok(n) => self.handle.note_progress(self.instance, n),
                Err(e) if e.is_oom() => {
                    // The allocation raced ahead of the monitor: take an
                    // emergency self-interrupt instead of dying — unless
                    // this partition keeps failing even with the rest of
                    // the heap cleared, which means it can never fit.
                    let give_up = self
                        .inputs
                        .front()
                        .map(|p| {
                            self.handle.bump_activation_failure(p.meta().id)
                                > self.max_activation_failures
                        })
                        .unwrap_or(false);
                    if give_up {
                        self.handle.retire(self.instance);
                        return StepOutcome::Failed(e);
                    }
                    self.handle.hint_pressure(simcore::ByteSize::ZERO);
                    return self.do_interrupt(cx, true);
                }
                Err(e) => {
                    self.handle.retire(self.instance);
                    return StepOutcome::Failed(e);
                }
            }
            if front.meta().exhausted() {
                // Fully consumed: its heap space dies here.
                if let Some(space) = front.meta().space() {
                    cx.node().heap.release_space(space);
                }
                self.inputs.pop_front();
            }
        }

        if self.inputs.is_empty() {
            let spaces = self.spaces.as_mut().expect("initialized implies spaces");
            let mut tcx = TaskCx::new(cx, &self.handle, self.task_id, self.tag, spaces, false);
            if let Err(e) = self.task.cleanup(&mut tcx) {
                self.handle.retire(self.instance);
                return StepOutcome::Failed(e);
            }
            self.release_spaces(cx);
            self.handle.retire(self.instance);
            StepOutcome::Finished
        } else {
            StepOutcome::Ran
        }
    }

    fn label(&self) -> String {
        format!(
            "{}[i{} {:?} tag{}]",
            self.task_id, self.instance, self.kind, self.tag.0
        )
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        // ITask workers carry salvageable state (cursor-tracked inputs,
        // accumulated task state): expose it for crash recovery.
        Some(self)
    }
}
