//! The ITask programming model (the paper's `ITask` abstract class,
//! Figure 4) and the execution context handed to task code.
//!
//! Two layers:
//!
//! * [`ITask`] — the object-safe interface the runtime schedules:
//!   `initialize` / `process_batch` / `interrupt` / `cleanup`. The batch
//!   granularity replaces the paper's per-tuple `process(Tuple)` call at
//!   the runtime boundary (one batch ≈ one scheduling quantum); safe
//!   points sit between tuples exactly as in the paper because the batch
//!   loop checks [`TaskCx::low_memory`] per tuple.
//! * [`TupleTask`] + [`Scale`] — the typed, paper-shaped layer. A
//!   `TupleTask` implements per-tuple `process(&In)` and the [`Scale`]
//!   adapter supplies the scale loop (cursor advancement, cost charging,
//!   early yield under pressure), mirroring `scaleLoop` in Figure 4.

use std::any::Any;

use simcluster::WorkCx;
use simcore::{ByteSize, CostModel, SimDuration, SimResult, SimTime, SpaceId, TaskId};

use crate::partition::{Partition, Tag, Tuple, VecPartition};
use crate::runtime::{FinalOutput, IrsHandle};

/// Single-input task or multi-partition aggregation task.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskKind {
    /// One partition per instance (the paper's `ITask`).
    Single,
    /// A tag-group of partitions per instance (the paper's `MITask`).
    Multi,
}

/// The heap spaces owned by one running task instance: local auxiliary
/// structures and the output partition being built (components 1 and 4 of
/// the paper's Figure 1).
#[derive(Debug)]
pub struct InstanceSpaces {
    /// Space for task-local data structures.
    pub local: SpaceId,
    /// Space for the output being accumulated.
    pub out: SpaceId,
}

/// Execution context for task code.
///
/// Wraps the node-level [`WorkCx`] (clock, heap, quantum) and the ITask
/// runtime handle (partition queue, final-output channel, statistics).
pub struct TaskCx<'a, 'b> {
    pub(crate) work: &'a mut WorkCx<'b>,
    pub(crate) shared: &'a IrsHandle,
    pub(crate) task: TaskId,
    pub(crate) input_tag: Tag,
    pub(crate) spaces: &'a mut InstanceSpaces,
    /// Whether this context serves interrupt handling (drives the
    /// Table 2 reclaimed-memory attribution: only pressure-driven
    /// emissions count as savings).
    pub(crate) interrupting: bool,
}

impl<'a, 'b> TaskCx<'a, 'b> {
    pub(crate) fn new(
        work: &'a mut WorkCx<'b>,
        shared: &'a IrsHandle,
        task: TaskId,
        input_tag: Tag,
        spaces: &'a mut InstanceSpaces,
        interrupting: bool,
    ) -> Self {
        TaskCx {
            work,
            shared,
            task,
            input_tag,
            spaces,
            interrupting,
        }
    }

    /// The tag of the partition currently being processed (for a reduce
    /// task, the hash-bucket id its outputs must carry — Figure 7's
    /// `Hyracks.getChannelID()`).
    pub fn input_tag(&self) -> Tag {
        self.input_tag
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.work.now()
    }

    /// The cost model in effect.
    pub fn cost(&self) -> CostModel {
        self.work.cost()
    }

    /// The logical task this instance executes.
    pub fn task(&self) -> TaskId {
        self.task
    }

    /// Consumes CPU time.
    pub fn charge(&mut self, t: SimDuration) {
        self.work.charge(t);
    }

    /// Whether the scheduling quantum is exhausted (yield point).
    pub fn out_of_quantum(&self) -> bool {
        self.work.out_of_quantum()
    }

    /// Whether free heap has sunk below the monitor's pressure line — the
    /// per-tuple safe-point check of the scale loop. Task code yields
    /// when this turns true so the IRS can act before an OME.
    pub fn low_memory(&mut self) -> bool {
        let heap = &self.work.node().heap;
        let m = heap.config().lugc_free_pct as u64;
        heap.effective_free() < heap.capacity().mul_ratio(m, 100)
    }

    /// Allocates into the instance's local-structures space.
    pub fn alloc_local(&mut self, bytes: ByteSize) -> SimResult<()> {
        let s = self.spaces.local;
        self.work.alloc(s, bytes)
    }

    /// Frees bytes from the local-structures space.
    pub fn free_local(&mut self, bytes: ByteSize) -> ByteSize {
        let s = self.spaces.local;
        self.work.free(s, bytes)
    }

    /// Allocates into the output space. Keep this equal to the summed
    /// [`Tuple::heap_bytes`] of the tuples eventually emitted so that
    /// partition accounting balances; scratch data belongs in
    /// [`Self::alloc_local`].
    pub fn alloc_out(&mut self, bytes: ByteSize) -> SimResult<()> {
        let s = self.spaces.out;
        self.work.alloc(s, bytes)
    }

    /// Frees bytes from the output space (e.g. map-side combining that
    /// collapses entries).
    pub fn free_out(&mut self, bytes: ByteSize) -> ByteSize {
        let s = self.spaces.out;
        self.work.free(s, bytes)
    }

    /// Live bytes currently accumulated in the output space.
    pub fn out_bytes(&mut self) -> ByteSize {
        let s = self.spaces.out;
        self.work.node().heap.space_live(s)
    }

    /// Emits the accumulated output as an *intermediate result*: a tagged
    /// partition pushed to the partition queue, addressed to `dest`
    /// (component 4(b) of Figure 1 — e.g. a Reduce interrupt tagging its
    /// partial map with the hash-bucket id for the Merge task).
    ///
    /// The output space is handed to the new partition; a fresh output
    /// space replaces it.
    pub fn emit_to_task<T: Tuple>(
        &mut self,
        dest: TaskId,
        tag: Tag,
        items: Vec<T>,
    ) -> SimResult<()> {
        let old_out = self.rotate_out_space();
        let bytes = self.work.node().heap.space_live(old_out);
        let mut part =
            VecPartition::new(self.shared.next_partition_id(), dest, tag, items, old_out);
        if self.interrupting {
            self.shared.note_intermediate(bytes);
        }
        // Write-behind: when memory is tight, the partition manager's
        // lazy serialization happens at birth — the queue must not pin
        // the live set (paper §5.3's background serialization).
        let heap = &self.work.node().heap;
        let tight = heap.effective_free()
            < heap
                .capacity()
                .mul_ratio(self.shared.serialize_free_pct() as u64, 100);
        if tight {
            let mode = self.shared.serialize_mode();
            let freed =
                crate::manager::serialize_partition_mode(&mut part, self.work.node(), mode)?;
            if !freed.is_zero() {
                self.shared.note_serialized_at_birth(freed);
            }
        }
        self.shared.push_partition(Box::new(part));
        Ok(())
    }

    /// Emits the accumulated output as a *final result*: it leaves the
    /// ITask runtime immediately (component 4(a) of Figure 1 — e.g. a Map
    /// interrupt pushing its buffer straight to the shuffle). The heap
    /// bytes are released locally; the framework decides where the data
    /// goes next.
    pub fn emit_final(&mut self, data: Box<dyn Any + Send>, ser_bytes: ByteSize) -> SimResult<()> {
        let old_out = self.rotate_out_space();
        let mem_bytes = self.work.node().heap.space_live(old_out);
        self.work.node().heap.release_space(old_out);
        if self.interrupting {
            self.shared.note_final(mem_bytes);
        }
        self.shared.push_final(FinalOutput {
            from: self.task,
            data,
            mem_bytes,
            ser_bytes,
        });
        Ok(())
    }

    fn rotate_out_space(&mut self) -> SpaceId {
        let new = self
            .work
            .node()
            .heap
            .create_space(format!("{}.out", self.task));
        std::mem::replace(&mut self.spaces.out, new)
    }
}

/// The object-safe task interface the runtime drives.
///
/// `Send` because instances live inside node simulators that the shard
/// executor ships across worker threads between rounds.
pub trait ITask: Send {
    /// Loads inputs / creates local structures (paper: `initialize`).
    fn initialize(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()>;

    /// Processes tuples from `input` until the quantum is exhausted, the
    /// input runs dry, or memory pressure demands a yield. Returns the
    /// number of tuples processed (the speed rule's progress units).
    fn process_batch(
        &mut self,
        cx: &mut TaskCx<'_, '_>,
        input: &mut dyn Partition,
    ) -> SimResult<u64>;

    /// Interrupt handling (paper: `interrupt`): push or tag outputs.
    /// Called by the runtime when this instance is selected for
    /// termination; the runtime itself releases the processed input
    /// prefix and local structures afterwards.
    fn interrupt(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()>;

    /// Finalization when the whole input has been processed.
    fn cleanup(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()>;
}

/// The typed, paper-shaped task layer: per-tuple `process`.
pub trait TupleTask: Send {
    /// Input tuple type.
    type In: Tuple;

    /// Initialization logic.
    fn initialize(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()>;

    /// Processes one tuple. Must be side-effect-free outside the output
    /// space and task-local state (the paper's requirement that makes
    /// resumption sound).
    fn process(&mut self, cx: &mut TaskCx<'_, '_>, tuple: &Self::In) -> SimResult<()>;

    /// Interrupt logic.
    fn interrupt(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()>;

    /// Finalization logic.
    fn cleanup(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()>;
}

/// Adapter implementing the scale loop of Figure 4 over a [`TupleTask`]:
/// iterate tuples, charge their cost, advance the cursor, and yield at
/// safe points (quantum exhausted or memory pressure).
pub struct Scale<T>(pub T);

/// How often the scale loop re-checks the memory safe-point predicate.
const PRESSURE_CHECK_EVERY: u64 = 32;

impl<TT: TupleTask> ITask for Scale<TT> {
    fn initialize(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        self.0.initialize(cx)
    }

    fn process_batch(
        &mut self,
        cx: &mut TaskCx<'_, '_>,
        input: &mut dyn Partition,
    ) -> SimResult<u64> {
        let part = input
            .as_any_mut()
            .downcast_mut::<VecPartition<TT::In>>()
            .ok_or_else(|| {
                simcore::SimError::Internal(format!(
                    "task {} fed a partition of the wrong tuple type",
                    cx.task()
                ))
            })?;
        let mut processed = 0u64;
        while !cx.out_of_quantum() {
            if processed > 0 && processed.is_multiple_of(PRESSURE_CHECK_EVERY) && cx.low_memory() {
                break;
            }
            let cursor = part.meta().cursor;
            if cursor >= part.meta().len {
                break;
            }
            let cost = {
                // CPU scales with the tuple's payload, not its
                // managed-heap bloat.
                let t = part.get(cursor);
                cx.cost().tuple_cost(ByteSize(t.ser_bytes()))
            };
            cx.charge(cost);
            {
                let t = part.get(cursor);
                self.0.process(cx, t)?;
            }
            part.advance();
            processed += 1;
        }
        Ok(processed)
    }

    fn interrupt(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        self.0.interrupt(cx)
    }

    fn cleanup(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        self.0.cleanup(cx)
    }
}
