//! The ITask Runtime System (IRS, paper §5): the per-node controller
//! tying together monitor, partition manager and scheduler, and the
//! shared state task instances interact with.
//!
//! An [`Irs`] controls one node. Between scheduling rounds the engine
//! calls [`Irs::tick`], which drains the node's GC records into the
//! monitor and handles the resulting signal:
//!
//! * `REDUCE` — ask the partition manager to serialize queued partitions
//!   (cheapest first by the retention rules), force a collection to
//!   materialize the released spaces, and if free memory is still below
//!   the `M%` target, mark a victim instance for cooperative interrupt;
//! * `GROW` — activate one more task instance (slow-start: one per tick)
//!   chosen by the spatial-locality and finish-line rules, up to the
//!   node's core count.

use std::any::Any;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::rc::Rc;
use std::sync::{Arc, Mutex};

use simcluster::NodeSim;
use simcore::tracer::EventId;
use simcore::{ByteSize, PartitionId, SimResult, TaskId, ThreadId};

use crate::graph::TaskGraph;
use crate::manager::{serialization_order, serialize_partition_mode, ManagerConfig, SerializeMode};
use crate::monitor::{MemSignal, Monitor, MonitorConfig};
use crate::partition::PartitionBox;
use crate::queue::PartitionQueue;
use crate::scheduler::{pick_activation, pick_victim, Activation, RunningInstance, VictimPolicy};
use crate::stats::IrsStats;
use crate::trace::{IrsEvent, IrsTrace};
use crate::worker::ItaskWorker;

/// A result that has left the ITask runtime (component 4(a) of Figure 1).
/// The framework (shuffle, HDFS writer, ...) decides where it goes.
pub struct FinalOutput {
    /// The task that produced it.
    pub from: TaskId,
    /// The payload (framework-interpreted).
    pub data: Box<dyn Any + Send>,
    /// Heap bytes it occupied on the producing node (already released).
    pub mem_bytes: ByteSize,
    /// Serialized size (what shuffling it costs).
    pub ser_bytes: ByteSize,
}

/// How a victim instance is taken down (§6.1's naïve comparison).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum InterruptMode {
    /// The paper's design: run the task's interrupt logic, keep the
    /// cursor, release the processed prefix, requeue the remainder.
    #[default]
    Cooperative,
    /// The naïve baseline: kill the instance, drop its partial output,
    /// and reprocess the partition from scratch later.
    KillRestart,
}

/// IRS configuration.
#[derive(Clone, Copy, Debug)]
pub struct IrsConfig {
    /// Monitor thresholds (`N`, `M`).
    pub monitor: MonitorConfig,
    /// Partition-manager policy.
    pub manager: ManagerConfig,
    /// Maximum concurrently running instances (defaults to the node's
    /// core count — the paper's optimal point under an ample heap).
    pub max_parallelism: usize,
    /// Victim-selection policy (rules, or the naïve random baseline).
    pub victim_policy: VictimPolicy,
    /// Interrupt mechanism (cooperative, or the naïve kill-restart).
    pub interrupt_mode: InterruptMode,
    /// Instances activated per GROW tick (slow start, §5.1).
    pub grow_per_tick: usize,
    /// Give up on a partition after this many failed activations.
    pub max_activation_failures: u32,
    /// Allocation scope (owning service-layer job id) the IRS spawns its
    /// workers under, so multi-job heaps attribute every space to a job.
    pub scope: Option<u64>,
}

impl Default for IrsConfig {
    fn default() -> Self {
        IrsConfig {
            monitor: MonitorConfig::default(),
            manager: ManagerConfig::default(),
            max_parallelism: 8,
            victim_policy: VictimPolicy::Rules,
            interrupt_mode: InterruptMode::Cooperative,
            grow_per_tick: 1,
            max_activation_failures: 32,
            scope: None,
        }
    }
}

/// State shared between the controller and its running task instances.
pub(crate) struct IrsShared {
    pub(crate) queue: PartitionQueue,
    pub(crate) running: BTreeMap<ThreadId, RunningInstance>,
    /// instance id → thread id (filled at spawn).
    pub(crate) instance_threads: BTreeMap<u64, ThreadId>,
    /// Threads marked for cooperative interrupt.
    pub(crate) terminate: BTreeSet<ThreadId>,
    pub(crate) final_outputs: Vec<FinalOutput>,
    pub(crate) stats: IrsStats,
    pub(crate) activation_failures: BTreeMap<PartitionId, u32>,
    /// Set by workers when an allocation failed (emergency interrupt or
    /// failed activation): forces a REDUCE at the next tick even if no
    /// LUGC record is pending. Carries the bytes the failed allocation
    /// needed, so the REDUCE can aim above the default `M%` target.
    pub(crate) pressure_hint: Option<ByteSize>,
    /// Copy of the monitor's hover threshold, used by `emit_to_task` to
    /// serialize intermediate partitions at birth when memory is tight
    /// (write-behind flavour of the partition manager's lazy
    /// serialization).
    pub(crate) serialize_free_pct: u8,
    /// Copy of the partition manager's serialization target.
    pub(crate) serialize_mode: SerializeMode,
    /// Structured decision trace (disabled unless requested).
    pub(crate) trace: IrsTrace,
    /// Tracer id of the most recent REDUCE/GROW signal — the causal
    /// root victim-marks and pressure serializations link back to.
    pub(crate) last_signal: EventId,
    /// Victim-mark event per marked thread, consumed when the victim's
    /// interrupt completes (links interrupt → mark → signal).
    pub(crate) victim_marks: BTreeMap<ThreadId, EventId>,
    /// Interrupt event that requeued each partition, consumed when the
    /// partition re-activates (links re-activation → interrupt).
    pub(crate) interrupt_origin: BTreeMap<PartitionId, EventId>,
    next_partition: u32,
    next_instance: u64,
}

impl IrsShared {
    fn new(first_partition_id: u32) -> Self {
        IrsShared {
            queue: PartitionQueue::new(),
            running: BTreeMap::new(),
            instance_threads: BTreeMap::new(),
            terminate: BTreeSet::new(),
            final_outputs: Vec::new(),
            stats: IrsStats::default(),
            activation_failures: BTreeMap::new(),
            pressure_hint: None,
            serialize_free_pct: 40,
            serialize_mode: SerializeMode::Disk,
            trace: IrsTrace::new(),
            last_signal: EventId::NONE,
            victim_marks: BTreeMap::new(),
            interrupt_origin: BTreeMap::new(),
            next_partition: first_partition_id,
            next_instance: 0,
        }
    }
}

/// Cloneable handle to the shared IRS state. The controller (driver
/// thread, between rounds) and the node's worker threads (possibly on a
/// shard thread, during rounds) alias it at disjoint times, so an
/// uncontended `Arc<Mutex>` replaces the old `Rc<RefCell>` — same
/// discipline, `Send`able.
#[derive(Clone)]
pub struct IrsHandle(pub(crate) Arc<Mutex<IrsShared>>);

impl IrsHandle {
    /// Allocates a fresh partition id.
    pub fn next_partition_id(&self) -> PartitionId {
        let mut s = self.0.lock().unwrap();
        let id = PartitionId(s.next_partition);
        s.next_partition += 1;
        id
    }

    /// Enqueues a partition into the global partition queue.
    pub fn push_partition(&self, part: PartitionBox) {
        self.0.lock().unwrap().queue.push(part);
    }

    /// Publishes a final output.
    pub fn push_final(&self, out: FinalOutput) {
        self.0.lock().unwrap().final_outputs.push(out);
    }

    /// Records intermediate-result bytes for the Table 2 breakdown.
    pub fn note_intermediate(&self, bytes: ByteSize) {
        self.0.lock().unwrap().stats.reclaim.intermediate_results += bytes;
    }

    /// The monitor's hover threshold (for write-behind decisions).
    pub(crate) fn serialize_free_pct(&self) -> u8 {
        self.0.lock().unwrap().serialize_free_pct
    }

    /// The partition manager's serialization target.
    pub(crate) fn serialize_mode(&self) -> SerializeMode {
        self.0.lock().unwrap().serialize_mode
    }

    /// Records a write-behind serialization.
    pub(crate) fn note_serialized_at_birth(&self, bytes: ByteSize) {
        let mut s = self.0.lock().unwrap();
        s.stats.serializations += 1;
        s.stats.reclaim.lazy_serialized += bytes;
    }

    /// Appends to the decision trace (no-op unless tracing is enabled).
    pub(crate) fn trace(&self, at: simcore::SimTime, event: IrsEvent) {
        self.0.lock().unwrap().trace.record(at, event);
    }

    /// Appends to the decision trace with a causal link, returning the
    /// unified-tracer event id (NONE when global tracing is off).
    pub(crate) fn trace_linked(
        &self,
        at: simcore::SimTime,
        event: IrsEvent,
        cause: EventId,
    ) -> EventId {
        self.0.lock().unwrap().trace.record_linked(at, event, cause)
    }

    /// Consumes the victim-mark event recorded for `instance`'s thread,
    /// if any (an interrupt links back to the mark that requested it).
    pub(crate) fn take_victim_mark(&self, instance: u64) -> EventId {
        let mut s = self.0.lock().unwrap();
        let Some(thread) = s.instance_threads.get(&instance).copied() else {
            return EventId::NONE;
        };
        s.victim_marks.remove(&thread).unwrap_or(EventId::NONE)
    }

    /// Records that `interrupt` requeued `partition`, so the eventual
    /// re-activation can link back to it.
    pub(crate) fn note_interrupt_origin(&self, partition: PartitionId, interrupt: EventId) {
        if interrupt.is_some() {
            self.0
                .lock()
                .unwrap()
                .interrupt_origin
                .insert(partition, interrupt);
        }
    }

    /// Records final-result bytes for the Table 2 breakdown.
    pub fn note_final(&self, bytes: ByteSize) {
        self.0.lock().unwrap().stats.reclaim.final_results += bytes;
    }

    pub(crate) fn note_local(&self, bytes: ByteSize) {
        self.0.lock().unwrap().stats.reclaim.local_structs += bytes;
    }

    pub(crate) fn note_processed_input(&self, bytes: ByteSize) {
        self.0.lock().unwrap().stats.reclaim.processed_input += bytes;
    }

    pub(crate) fn next_instance_id(&self) -> u64 {
        let mut s = self.0.lock().unwrap();
        let id = s.next_instance;
        s.next_instance += 1;
        id
    }

    /// Whether the scheduler asked this instance to interrupt itself.
    pub(crate) fn should_terminate(&self, instance: u64) -> bool {
        let s = self.0.lock().unwrap();
        s.instance_threads
            .get(&instance)
            .map(|t| s.terminate.contains(t))
            .unwrap_or(false)
    }

    /// Adds scale-loop progress to an instance (speed rule input).
    pub(crate) fn note_progress(&self, instance: u64, units: u64) {
        let mut s = self.0.lock().unwrap();
        if let Some(&thread) = s.instance_threads.get(&instance) {
            if let Some(r) = s.running.get_mut(&thread) {
                r.recent_progress += units;
            }
        }
    }

    /// Retires an instance (finished, interrupted or failed).
    pub(crate) fn retire(&self, instance: u64) {
        let mut s = self.0.lock().unwrap();
        if let Some(thread) = s.instance_threads.remove(&instance) {
            s.running.remove(&thread);
            s.terminate.remove(&thread);
        }
    }

    /// Bumps and returns the failed-activation count of a partition.
    pub(crate) fn bump_activation_failure(&self, id: PartitionId) -> u32 {
        let mut s = self.0.lock().unwrap();
        s.stats.failed_activations += 1;
        let c = s.activation_failures.entry(id).or_insert(0);
        *c += 1;
        *c
    }

    pub(crate) fn stats_mut<R>(&self, f: impl FnOnce(&mut IrsStats) -> R) -> R {
        f(&mut self.0.lock().unwrap().stats)
    }

    /// A worker hit an allocation failure: force a REDUCE next tick,
    /// aiming to free at least `needed` bytes (zero = default target).
    pub(crate) fn hint_pressure(&self, needed: ByteSize) {
        let mut s = self.0.lock().unwrap();
        let cur = s.pressure_hint.unwrap_or(ByteSize::ZERO);
        s.pressure_hint = Some(cur.max(needed));
    }

    /// Records partitions re-homed onto this node after a peer crash
    /// (fault-injection runs; called by the engine's recovery path).
    pub fn note_crash_requeued(&self, n: u64) {
        self.0.lock().unwrap().stats.crash_requeued_partitions += n;
    }
}

/// The per-node IRS controller.
pub struct Irs {
    handle: IrsHandle,
    graph: Rc<TaskGraph>,
    monitor: Monitor,
    cfg: IrsConfig,
    /// Pre-built per-task series names for the instance-count timeline
    /// (Figure 11(c)'s Map/Reduce/Merge breakdown).
    task_series: Vec<(TaskId, String)>,
}

impl Irs {
    /// Creates an IRS over a task graph.
    pub fn new(graph: TaskGraph, cfg: IrsConfig) -> Self {
        let mut shared = IrsShared::new(0);
        shared.serialize_free_pct = cfg.monitor.serialize_free_pct;
        shared.serialize_mode = cfg.manager.mode;
        let task_series = graph
            .task_ids()
            .map(|t| (t, format!("active_{}", graph.desc(t).name)))
            .collect();
        Irs {
            handle: IrsHandle(Arc::new(Mutex::new(shared))),
            graph: Rc::new(graph),
            monitor: Monitor::new(cfg.monitor),
            cfg,
            task_series,
        }
    }

    /// The shared handle (what tasks and engines use to enqueue work).
    pub fn handle(&self) -> IrsHandle {
        self.handle.clone()
    }

    /// The task graph.
    pub fn graph(&self) -> &TaskGraph {
        &self.graph
    }

    /// Runtime statistics so far.
    pub fn stats(&self) -> IrsStats {
        self.handle.0.lock().unwrap().stats
    }

    /// Monitor statistics so far.
    pub fn monitor_stats(&self) -> crate::monitor::MonitorStats {
        self.monitor.stats()
    }

    /// The monitor's most recent memory signal (`Steady` before the
    /// first observation). Admission controllers consult this before
    /// co-locating another job on the same heap.
    pub fn memory_signal(&self) -> MemSignal {
        self.monitor.last_signal().unwrap_or(MemSignal::Steady)
    }

    /// Queued partition count.
    pub fn queued(&self) -> usize {
        self.handle.0.lock().unwrap().queue.len()
    }

    /// Running instance count.
    pub fn running(&self) -> usize {
        self.handle.0.lock().unwrap().running.len()
    }

    /// Whether the runtime has no queued partitions and no running
    /// instances (the engine decides if more input is coming).
    pub fn is_idle(&self) -> bool {
        let s = self.handle.0.lock().unwrap();
        s.queue.is_empty() && s.running.is_empty()
    }

    /// Takes the final outputs published since the last call.
    pub fn take_final_outputs(&mut self) -> Vec<FinalOutput> {
        std::mem::take(&mut self.handle.0.lock().unwrap().final_outputs)
    }

    /// Requests an early REDUCE on the next tick, aiming to free at
    /// least `needed` bytes (`ByteSize::ZERO` = the default target).
    ///
    /// This is the operator-facing deflation hook: a service under
    /// sustained cluster-wide pressure (brownout mode) forces queued
    /// partitions out to disk *before* the heap walks into the full-GC
    /// cliff, instead of waiting for the monitor to cross its own
    /// thresholds. Internally it shares the pressure-hint path that
    /// workers use after allocation failures, so the forced REDUCE is
    /// indistinguishable from an organic one downstream.
    pub fn request_reduce(&self, needed: ByteSize) {
        self.handle.hint_pressure(needed);
    }

    /// Drains every queued partition (crash recovery: after the node
    /// died and its live instances were salvaged, the engine re-homes
    /// the whole queue onto surviving nodes).
    pub fn drain_queue(&mut self) -> Vec<PartitionBox> {
        self.handle.0.lock().unwrap().queue.drain_all()
    }

    /// Enables the structured decision trace.
    pub fn enable_trace(&mut self) {
        self.handle.0.lock().unwrap().trace.enable();
    }

    /// A snapshot of the decision trace recorded so far.
    pub fn trace(&self) -> IrsTrace {
        self.handle.0.lock().unwrap().trace.clone()
    }

    /// The controller step: call between scheduling rounds.
    pub fn tick(&mut self, sim: &mut NodeSim) -> SimResult<()> {
        // Stamp the (node, scope) origin onto everything this tick
        // forwards into the unified tracer.
        self.handle
            .0
            .lock()
            .unwrap()
            .trace
            .set_origin(Some(sim.node().id), self.cfg.scope);
        let records = sim.node_mut().drain_gc_records();
        let mut signal = self.monitor.observe(&records, &sim.node().heap);
        let hint = std::mem::take(&mut self.handle.0.lock().unwrap().pressure_hint);
        if hint.is_some() {
            signal = MemSignal::Reduce;
        }
        match signal {
            MemSignal::Reduce => {
                let id =
                    self.handle
                        .trace_linked(sim.node().now, IrsEvent::ReduceSignal, EventId::NONE);
                self.handle.0.lock().unwrap().last_signal = id;
                self.handle_reduce(sim, hint.unwrap_or(ByteSize::ZERO))?;
            }
            MemSignal::Grow => {
                let id =
                    self.handle
                        .trace_linked(sim.node().now, IrsEvent::GrowSignal, EventId::NONE);
                self.handle.0.lock().unwrap().last_signal = id;
                self.handle_grow(sim)?;
            }
            MemSignal::Steady => self.assist_growth(sim)?,
        }
        // Starvation guard: at least one instance must always run while
        // work remains (the warm-up phase of §5.1 starts with one thread
        // regardless of thresholds). A full collection first gives the
        // activation the best chance to fit.
        if signal != MemSignal::Grow {
            let starved = {
                let s = self.handle.0.lock().unwrap();
                s.running.is_empty() && !s.queue.is_empty()
            };
            if starved {
                let choice = {
                    let s = self.handle.0.lock().unwrap();
                    pick_activation(&s.queue, &self.graph, &s.running)
                };
                if let Some(act) = choice {
                    self.activate(sim, act);
                    self.handle.stats_mut(|st| st.grows += 1);
                }
            }
        }
        // The speed rule measures progress between monitor checks: reset.
        {
            let mut s = self.handle.0.lock().unwrap();
            for r in s.running.values_mut() {
                r.recent_progress = 0;
            }
            let live = s.running.len() as u64;
            s.stats.peak_instances = s.stats.peak_instances.max(live);
            // Per-task instance timeline (Figure 11(c)).
            let now = sim.node().now;
            for (task, name) in &self.task_series {
                let n = s.running.values().filter(|r| r.task == *task).count();
                sim.node_mut().log.record(name, now, n as f64);
            }
        }
        Ok(())
    }

    fn handle_reduce(&mut self, sim: &mut NodeSim, needed: ByteSize) -> SimResult<()> {
        // Serialization is cheap, so it aims for the GROW threshold
        // (`N%`): after a REDUCE the system should be able to re-grow
        // rather than idle in the `M%..N%` dead zone. Interrupting live
        // instances stays reserved for the `M%` emergency line below.
        // A failed allocation raises the target so the blocked
        // activation can fit with headroom.
        let target = self
            .monitor
            .serialize_target(&sim.node().heap)
            .max(needed.mul_ratio(5, 2));
        // Stage 1: lazy serialization of queued partitions.
        let order = {
            let s = self.handle.0.lock().unwrap();
            let running_tasks: Vec<TaskId> = s.running.values().map(|r| r.task).collect();
            serialization_order(
                &s.queue,
                &self.graph,
                &running_tasks,
                sim.node().now,
                self.cfg.manager,
            )
        };
        // All policy arithmetic uses *effective* free (capacity − live):
        // serialization and interrupts turn live bytes into garbage, and
        // the next allocation-triggered collection reclaims it — forcing
        // collections here would only add pauses.
        for pid in order {
            if sim.node().heap.effective_free() >= target {
                break;
            }
            let freed = {
                let mut s = self.handle.0.lock().unwrap();
                let Some(part) = s.queue.get_mut(pid) else {
                    continue;
                };
                serialize_partition_mode(part.as_mut(), sim.node_mut(), self.cfg.manager.mode)?
            };
            if !freed.is_zero() {
                self.handle.stats_mut(|st| {
                    st.serializations += 1;
                    st.reclaim.lazy_serialized += freed;
                });
                let sig = self.handle.0.lock().unwrap().last_signal;
                self.handle.trace_linked(
                    sim.node().now,
                    IrsEvent::Serialized {
                        partition: pid,
                        freed,
                    },
                    sig,
                );
            }
        }
        // Stage 2: if still under the emergency line (`M%`, or the
        // blocked allocation), mark one victim for interrupt.
        let victim_line = self
            .monitor
            .reduce_target(&sim.node().heap)
            .max(needed.mul_ratio(5, 2));
        if sim.node().heap.effective_free() < victim_line {
            let mut s = self.handle.0.lock().unwrap();
            let candidates: BTreeMap<ThreadId, RunningInstance> = s
                .running
                .iter()
                .filter(|(t, _)| !s.terminate.contains(t))
                .map(|(t, r)| (*t, r.clone()))
                .collect();
            if let Some(victim) = pick_victim(&candidates, &self.graph, self.cfg.victim_policy) {
                let task = candidates[&victim].task;
                s.terminate.insert(victim);
                let sig = s.last_signal;
                let mark =
                    s.trace
                        .record_linked(sim.node().now, IrsEvent::VictimMarked { task }, sig);
                if mark.is_some() {
                    s.victim_marks.insert(victim, mark);
                }
            }
        }
        Ok(())
    }

    /// Steady-state unjamming: when growth is blocked only because
    /// queued partitions pin the live set, serialize the coldest ones
    /// (temporal-locality / finish-line order) until growth is possible
    /// again. Running instances outrank parked intermediates — the
    /// retention rules of §5.3 applied proactively.
    fn assist_growth(&mut self, sim: &mut NodeSim) -> SimResult<()> {
        let threshold = self.monitor.serialize_target(&sim.node().heap);
        let grow_gate = self.monitor.grow_threshold(&sim.node().heap);
        {
            let s = self.handle.0.lock().unwrap();
            if s.queue.is_empty() {
                return Ok(());
            }
            let parked = s.queue.in_memory_bytes();
            let free = sim.node().heap.effective_free();
            if free >= threshold || free + parked < grow_gate {
                return Ok(());
            }
        }
        let order = {
            let s = self.handle.0.lock().unwrap();
            let running_tasks: Vec<TaskId> = s.running.values().map(|r| r.task).collect();
            serialization_order(
                &s.queue,
                &self.graph,
                &running_tasks,
                sim.node().now,
                self.cfg.manager,
            )
        };
        for pid in order {
            if sim.node().heap.effective_free() >= threshold {
                break;
            }
            let freed = {
                let mut s = self.handle.0.lock().unwrap();
                let Some(part) = s.queue.get_mut(pid) else {
                    continue;
                };
                serialize_partition_mode(part.as_mut(), sim.node_mut(), self.cfg.manager.mode)?
            };
            if !freed.is_zero() {
                self.handle.stats_mut(|st| {
                    st.serializations += 1;
                    st.reclaim.lazy_serialized += freed;
                });
                self.handle.trace(
                    sim.node().now,
                    IrsEvent::Serialized {
                        partition: pid,
                        freed,
                    },
                );
            }
        }
        if sim.node().heap.effective_free() >= grow_gate {
            self.handle_grow(sim)?;
        }
        Ok(())
    }

    fn handle_grow(&mut self, sim: &mut NodeSim) -> SimResult<()> {
        // Slow start under pressure, but fill idle cores immediately
        // when more than half the heap is effectively free — a ramp of
        // one instance per 100us tick would dominate short jobs.
        let heap = &sim.node().heap;
        let roomy = heap.effective_free() >= heap.capacity().mul_ratio(1, 2);
        let burst = if roomy {
            self.cfg.max_parallelism
        } else {
            self.cfg.grow_per_tick
        };
        for _ in 0..burst {
            {
                let s = self.handle.0.lock().unwrap();
                if s.running.len() >= self.cfg.max_parallelism {
                    return Ok(());
                }
            }
            let choice = {
                let s = self.handle.0.lock().unwrap();
                pick_activation(&s.queue, &self.graph, &s.running)
            };
            let Some(act) = choice else { return Ok(()) };
            self.activate(sim, act);
            self.handle.stats_mut(|st| st.grows += 1);
        }
        Ok(())
    }

    fn activate(&mut self, sim: &mut NodeSim, act: Activation) {
        let (task_id, parts, tag, cause) = {
            let mut s = self.handle.0.lock().unwrap();
            match act {
                Activation::Single(task, pid) => {
                    let part = s.queue.take(pid).expect("activation raced with queue");
                    let tag = part.meta().tag;
                    // Re-activations link back to the interrupt that
                    // requeued this partition (Figure 3's arrows).
                    let cause = s.interrupt_origin.remove(&pid).unwrap_or(EventId::NONE);
                    (task, VecDeque::from([part]), tag, cause)
                }
                Activation::Group(task, tag) => {
                    let group = s.queue.take_group(task, tag);
                    assert!(!group.is_empty(), "empty tag group activation");
                    let mut cause = EventId::NONE;
                    for part in &group {
                        if let Some(id) = s.interrupt_origin.remove(&part.meta().id) {
                            if !cause.is_some() {
                                cause = id;
                            }
                        }
                    }
                    (task, VecDeque::from(group), tag, cause)
                }
            }
        };
        let desc = self.graph.desc(task_id);
        let n_parts = parts.len();
        let now = sim.node().now;
        let worker = ItaskWorker::new(
            self.handle.clone(),
            task_id,
            desc.kind,
            tag,
            desc.instantiate(),
            parts,
            self.cfg.max_activation_failures,
            self.cfg.interrupt_mode,
        );
        let instance = worker.instance_id();
        let kind = desc.kind;
        let thread = sim.spawn_scoped(Box::new(worker), self.cfg.scope);
        let mut s = self.handle.0.lock().unwrap();
        s.trace.record_linked(
            now,
            IrsEvent::Activated {
                task: task_id,
                partitions: n_parts,
            },
            cause,
        );
        s.instance_threads.insert(instance, thread);
        s.running.insert(
            thread,
            RunningInstance {
                thread,
                task: task_id,
                kind,
                tag,
                recent_progress: 0,
            },
        );
    }

    /// Drives the node until the runtime is idle or a thread fails.
    ///
    /// Convenience for single-node programs and tests; multi-node engines
    /// interleave `tick`/`run_round` across nodes themselves.
    pub fn run_to_idle(&mut self, sim: &mut NodeSim) -> SimResult<()> {
        let mut stream_seq = 0u64;
        // Generous bound: a stuck runtime is a simulator bug.
        for _ in 0..10_000_000u64 {
            self.tick(sim)?;
            if self.is_idle() {
                return Ok(());
            }
            let round = simcluster::ShardExecutor::run_solo_round(sim, &mut stream_seq);
            if let Some((thread, err)) = round.failed.into_iter().next() {
                // Identify and retire the failed instance.
                let mut s = self.handle.0.lock().unwrap();
                if let Some(r) = s.running.remove(&thread) {
                    let _ = r;
                }
                s.instance_threads.retain(|_, t| *t != thread);
                s.terminate.remove(&thread);
                return Err(err);
            }
        }
        Err(simcore::SimError::Internal(
            "IRS failed to reach idle".into(),
        ))
    }
}
