//! End-to-end tests of the ITask runtime on a single simulated node:
//! an interruptible word-count pipeline (count task + MITask merge, the
//! shape of the paper's Figures 6–7) must produce exact results under
//! ample memory, under severe pressure, and with inputs far larger than
//! the heap — and the run must be deterministic.

use std::collections::BTreeMap;

use itask_core::{
    offer_serialized, Irs, IrsConfig, Scale, Tag, TaskCx, TaskGraph, Tuple, TupleTask,
};
use simcluster::{NodeSim, NodeState};
use simcore::{ByteSize, DetRng, NodeId, SimResult, TaskId};

/// A word occurrence (~48 bytes as a Java string + tuple wrapper).
#[derive(Clone, Copy)]
struct WordT(u32);

impl Tuple for WordT {
    fn heap_bytes(&self) -> u64 {
        48
    }
}

/// A (word, count) pair as a hash-map entry (~64 bytes in Java).
#[derive(Clone, Copy)]
struct CountT(u32, u64);

impl Tuple for CountT {
    fn heap_bytes(&self) -> u64 {
        64
    }
}

const ENTRY_BYTES: u64 = 64;

/// Where a count task sends its (partial) results.
enum Dest {
    /// Straight out of the runtime (a Map in Figure 6).
    Final,
    /// Tagged intermediate partitions for an MITask (Figure 7).
    Task(TaskId, fn(u32) -> Tag),
}

/// Counts word tuples into an in-memory map; on interrupt the partial
/// counts are pushed out (final) or tagged and queued (intermediate).
struct CountWords {
    counts: BTreeMap<u32, u64>,
    dest: Dest,
}

impl CountWords {
    fn new(dest: Dest) -> Self {
        CountWords {
            counts: BTreeMap::new(),
            dest,
        }
    }

    fn flush(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        if self.counts.is_empty() {
            return Ok(());
        }
        let drained = std::mem::take(&mut self.counts);
        match self.dest {
            Dest::Final => {
                let ser = ByteSize(drained.len() as u64 * 12);
                cx.emit_final(Box::new(drained), ser)?;
            }
            Dest::Task(dest, tag_of) => {
                // Group entries by destination tag (hash bucket).
                let mut buckets: BTreeMap<Tag, Vec<CountT>> = BTreeMap::new();
                for (w, c) in drained {
                    buckets.entry(tag_of(w)).or_default().push(CountT(w, c));
                }
                for (tag, items) in buckets {
                    cx.emit_to_task(dest, tag, items)?;
                }
            }
        }
        Ok(())
    }
}

impl TupleTask for CountWords {
    type In = WordT;

    fn initialize(&mut self, _cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        Ok(())
    }

    fn process(&mut self, cx: &mut TaskCx<'_, '_>, t: &WordT) -> SimResult<()> {
        use std::collections::btree_map::Entry;
        match self.counts.entry(t.0) {
            Entry::Vacant(v) => {
                cx.alloc_out(ByteSize(ENTRY_BYTES))?;
                v.insert(1);
            }
            Entry::Occupied(mut o) => *o.get_mut() += 1,
        }
        Ok(())
    }

    fn interrupt(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        self.flush(cx)
    }

    fn cleanup(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        self.flush(cx)
    }
}

/// MITask: merges partial (word, count) partitions of one tag group.
struct MergeCounts {
    counts: BTreeMap<u32, u64>,
    tag: Option<Tag>,
}

impl MergeCounts {
    fn new() -> Self {
        MergeCounts {
            counts: BTreeMap::new(),
            tag: None,
        }
    }
}

impl TupleTask for MergeCounts {
    type In = CountT;

    fn initialize(&mut self, _cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        Ok(())
    }

    fn process(&mut self, cx: &mut TaskCx<'_, '_>, t: &CountT) -> SimResult<()> {
        use std::collections::btree_map::Entry;
        if self.tag.is_none() {
            self.tag = Some(Tag(t.0 as u64 % 4));
        }
        match self.counts.entry(t.0) {
            Entry::Vacant(v) => {
                cx.alloc_out(ByteSize(ENTRY_BYTES))?;
                v.insert(t.1);
            }
            Entry::Occupied(mut o) => *o.get_mut() += t.1,
        }
        Ok(())
    }

    fn interrupt(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        // Partial merges re-enter the queue under their own tag and
        // become this task's input again (paper §4.2, MergeTask).
        if self.counts.is_empty() {
            return Ok(());
        }
        let drained = std::mem::take(&mut self.counts);
        let tag = self.tag.unwrap_or(Tag(0));
        let items: Vec<CountT> = drained.into_iter().map(|(w, c)| CountT(w, c)).collect();
        let me = cx.task();
        cx.emit_to_task(me, tag, items)
    }

    fn cleanup(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        if self.counts.is_empty() {
            return Ok(());
        }
        let drained = std::mem::take(&mut self.counts);
        let ser = ByteSize(drained.len() as u64 * 12);
        cx.emit_final(Box::new(drained), ser)
    }
}

/// Deterministic input: `n` words over `vocab` distinct ids.
fn words(n: usize, vocab: u64, seed: u64) -> Vec<u32> {
    let mut rng = DetRng::new(seed);
    (0..n).map(|_| rng.below(vocab) as u32).collect()
}

fn ground_truth(input: &[u32]) -> BTreeMap<u32, u64> {
    let mut m = BTreeMap::new();
    for &w in input {
        *m.entry(w).or_insert(0u64) += 1;
    }
    m
}

fn node(heap_kib: u64) -> NodeSim {
    NodeSim::new(NodeState::new(
        NodeId(0),
        8,
        ByteSize::kib(heap_kib),
        ByteSize::mib(64),
    ))
}

/// Builds a single-task graph (count → final) and offers input in
/// serialized chunks of `chunk` words.
fn run_count_only(
    heap_kib: u64,
    input: &[u32],
    chunk: usize,
) -> (BTreeMap<u32, u64>, Irs, NodeSim) {
    let mut graph = TaskGraph::new();
    let count = graph.add_task("count", || Box::new(Scale(CountWords::new(Dest::Final))));
    let mut irs = Irs::new(graph, IrsConfig::default());
    let mut sim = node(heap_kib);
    let handle = irs.handle();
    for ch in input.chunks(chunk) {
        let items: Vec<WordT> = ch.iter().map(|&w| WordT(w)).collect();
        offer_serialized(&handle, sim.node_mut(), count, Tag(0), items).unwrap();
    }
    irs.run_to_idle(&mut sim).expect("ITask run must survive");
    let mut merged = BTreeMap::new();
    for out in irs.take_final_outputs() {
        let m = out
            .data
            .downcast::<BTreeMap<u32, u64>>()
            .expect("count output");
        for (w, c) in m.into_iter() {
            *merged.entry(w).or_insert(0) += c;
        }
    }
    (merged, irs, sim)
}

#[test]
fn correct_counts_under_ample_memory() {
    let input = words(20_000, 500, 1);
    let (got, irs, _sim) = run_count_only(8192, &input, 2_000);
    assert_eq!(got, ground_truth(&input));
    // With an 8MiB heap and ~1MiB of data there is no pressure.
    assert_eq!(irs.stats().interrupts, 0);
    assert_eq!(irs.stats().emergency_interrupts, 0);
}

#[test]
fn correct_counts_under_severe_pressure() {
    // ~2.3MiB of tuple data + a ~300KiB counts map vs a 640KiB heap.
    let input = words(50_000, 5_000, 2);
    let (got, irs, sim) = run_count_only(448, &input, 2_000);
    assert_eq!(got, ground_truth(&input));
    let st = irs.stats();
    assert!(
        st.interrupts + st.emergency_interrupts > 0,
        "pressure must have caused interrupts: {st:?}"
    );
    // Final results were pushed out at interrupts.
    assert!(st.reclaim.final_results > ByteSize::ZERO);
    // The heap never grew beyond its capacity.
    assert!(sim.node().heap.peak_used() <= ByteSize::kib(448));
    // Pressure was observed and handled (LUGC-driven REDUCEs, or
    // allocation failures caught as emergency self-interrupts).
    let m = irs.monitor_stats();
    assert!(m.reduce_signals > 0 || st.emergency_interrupts > 0);
}

#[test]
fn input_far_larger_than_heap_completes() {
    // ~9.2MiB of input data against a 512KiB heap (18x): serialized
    // offers + interrupts must carry it through.
    let input = words(200_000, 2_000, 3);
    let (got, irs, _sim) = run_count_only(512, &input, 4_000);
    assert_eq!(got, ground_truth(&input));
    assert!(irs.stats().deserializations > 0);
}

#[test]
fn two_stage_pipeline_with_mitask_merge() {
    let input = words(60_000, 2_000, 4);
    let mut graph = TaskGraph::new();
    let merge_id_holder: std::rc::Rc<std::cell::Cell<u32>> =
        std::rc::Rc::new(std::cell::Cell::new(0));
    fn tag_of(w: u32) -> Tag {
        Tag(w as u64 % 4)
    }
    // Declared in two steps because the count factory must know merge's id.
    let count = graph.add_task("count", {
        let holder = merge_id_holder.clone();
        move || {
            Box::new(Scale(CountWords::new(Dest::Task(
                TaskId(holder.get()),
                tag_of,
            ))))
        }
    });
    let merge = graph.add_mitask("merge", || Box::new(Scale(MergeCounts::new())));
    merge_id_holder.set(merge.as_u32());
    graph.connect(count, merge);
    graph.connect(merge, merge);

    let mut irs = Irs::new(graph, IrsConfig::default());
    let mut sim = node(1024);
    let handle = irs.handle();
    for ch in input.chunks(2_000) {
        let items: Vec<WordT> = ch.iter().map(|&w| WordT(w)).collect();
        offer_serialized(&handle, sim.node_mut(), count, Tag(0), items).unwrap();
    }
    irs.run_to_idle(&mut sim).expect("pipeline must survive");

    let mut merged: BTreeMap<u32, u64> = BTreeMap::new();
    let outs = irs.take_final_outputs();
    assert!(!outs.is_empty());
    for out in outs {
        assert_eq!(out.from, merge);
        let m = out.data.downcast::<BTreeMap<u32, u64>>().unwrap();
        for (w, c) in m.into_iter() {
            assert!(merged.insert(w, c).is_none(), "tag groups must not overlap");
        }
    }
    assert_eq!(merged, ground_truth(&input));
    // Intermediate results flowed through the queue.
    assert!(irs.stats().reclaim.intermediate_results > ByteSize::ZERO);
}

#[test]
fn runs_are_deterministic() {
    let input = words(30_000, 3_000, 5);
    let (a_counts, a_irs, a_sim) = run_count_only(640, &input, 2_000);
    let (b_counts, b_irs, b_sim) = run_count_only(640, &input, 2_000);
    assert_eq!(a_counts, b_counts);
    assert_eq!(a_sim.node().now, b_sim.node().now);
    assert_eq!(a_sim.node().gc_time, b_sim.node().gc_time);
    assert_eq!(a_irs.stats().interrupts, b_irs.stats().interrupts);
    assert_eq!(a_irs.stats().serializations, b_irs.stats().serializations);
    assert_eq!(
        a_sim.node().heap.peak_used().as_u64(),
        b_sim.node().heap.peak_used().as_u64()
    );
}

#[test]
fn serialized_offers_cost_no_heap() {
    let mut graph = TaskGraph::new();
    let count = graph.add_task("count", || Box::new(Scale(CountWords::new(Dest::Final))));
    let irs = Irs::new(graph, IrsConfig::default());
    let mut sim = node(64); // tiny heap
    let handle = irs.handle();
    // 10MiB of input offered against a 64KiB heap: must not touch it.
    for _ in 0..50 {
        let items: Vec<WordT> = (0..4_000).map(WordT).collect();
        offer_serialized(&handle, sim.node_mut(), count, Tag(0), items).unwrap();
    }
    assert_eq!(sim.node().heap.used(), ByteSize::ZERO);
    assert!(sim.node().disk.used() > ByteSize::ZERO);
}

#[test]
fn decision_trace_records_the_pressure_story() {
    let input = words(50_000, 5_000, 2);
    let mut graph = TaskGraph::new();
    let count = graph.add_task("count", || Box::new(Scale(CountWords::new(Dest::Final))));
    let mut irs = Irs::new(graph, IrsConfig::default());
    irs.enable_trace();
    let mut sim = node(448);
    let handle = irs.handle();
    for ch in input.chunks(2_000) {
        let items: Vec<WordT> = ch.iter().map(|&w| WordT(w)).collect();
        offer_serialized(&handle, sim.node_mut(), count, Tag(0), items).unwrap();
    }
    irs.run_to_idle(&mut sim).expect("must survive");
    let trace = irs.trace();
    use itask_core::IrsEvent;
    // Activations cover every partition at least once.
    let activations = trace.count_where(|e| matches!(e, IrsEvent::Activated { .. }));
    assert!(activations >= 25, "activations: {activations}");
    // The pressure story is visible: interrupts were traced with their
    // kind, and timestamps never go backwards.
    let interrupts = trace.count_where(|e| matches!(e, IrsEvent::Interrupted { .. }));
    assert!(interrupts > 0);
    assert!(trace.events().windows(2).all(|w| w[0].at <= w[1].at));
    // Tracing is opt-in: an untraced run records nothing.
    let (_, irs2, _) = run_count_only(448, &input, 2_000);
    assert!(irs2.trace().events().is_empty());
}
