//! Failure injection: when the substrate itself fails (disk full during
//! serialization), the runtime must surface a clean error — never hang,
//! never corrupt accounting.

use std::collections::BTreeMap;

use itask_core::{
    offer_serialized, Irs, IrsConfig, Scale, Tag, TaskCx, TaskGraph, Tuple, TupleTask,
};
use simcluster::{NodeSim, NodeState};
use simcore::{ByteSize, DetRng, NodeId, SimError, SimResult};

#[derive(Clone, Copy)]
struct W(u32);

impl Tuple for W {
    fn heap_bytes(&self) -> u64 {
        48
    }
}

#[derive(Default)]
struct Count {
    counts: BTreeMap<u32, u64>,
}

impl TupleTask for Count {
    type In = W;

    fn initialize(&mut self, _cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        Ok(())
    }

    fn process(&mut self, cx: &mut TaskCx<'_, '_>, t: &W) -> SimResult<()> {
        if let std::collections::btree_map::Entry::Vacant(v) = self.counts.entry(t.0) {
            cx.alloc_out(ByteSize(64))?;
            v.insert(0);
        }
        *self.counts.get_mut(&t.0).expect("present") += 1;
        Ok(())
    }

    fn interrupt(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        let d = std::mem::take(&mut self.counts);
        if d.is_empty() {
            return Ok(());
        }
        let ser = ByteSize(d.len() as u64 * 12);
        cx.emit_final(Box::new(d), ser)
    }

    fn cleanup(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        let d = std::mem::take(&mut self.counts);
        if d.is_empty() {
            return Ok(());
        }
        let ser = ByteSize(d.len() as u64 * 12);
        cx.emit_final(Box::new(d), ser)
    }
}

/// Offering more input than the disk can stage fails loudly and leaves
/// the node consistent.
#[test]
fn disk_full_on_offer_is_a_clean_error() {
    let mut sim = NodeSim::new(NodeState::new(
        NodeId(0),
        4,
        ByteSize::kib(512),
        ByteSize::kib(32), // tiny disk
    ));
    let mut graph = TaskGraph::new();
    let count = graph.add_task("count", || Box::new(Scale(Count::default())));
    let irs = Irs::new(graph, IrsConfig::default());
    let handle = irs.handle();

    let mut failed = 0;
    let mut offered = 0;
    for _ in 0..40 {
        let items: Vec<W> = (0..1_000).map(W).collect();
        match offer_serialized(&handle, sim.node_mut(), count, Tag(0), items) {
            Ok(_) => offered += 1,
            Err(SimError::DiskFull { node, .. }) => {
                assert_eq!(node, NodeId(0));
                failed += 1;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(offered > 0, "some offers fit");
    assert!(failed > 0, "the rest fail with DiskFull");
    // Nothing leaked onto the heap.
    assert_eq!(sim.node().heap.used(), ByteSize::ZERO);
}

/// A run whose staged inputs fit, but whose *write-behind* serialization
/// hits a full disk mid-run, must fail with the disk error (propagated
/// through the worker), not hang or panic.
#[test]
fn disk_full_mid_run_propagates() {
    let mut sim = NodeSim::new(NodeState::new(
        NodeId(0),
        4,
        ByteSize::kib(256), // pressured heap: forces write-behind
        ByteSize::kib(96),  // disk with just enough room for the input
    ));
    let mut graph = TaskGraph::new();
    // Count feeds an MITask so intermediates hit the queue + disk.
    let merge_holder = std::rc::Rc::new(std::cell::Cell::new(0u32));
    struct ToMerge {
        counts: BTreeMap<u32, u64>,
        merge: std::rc::Rc<std::cell::Cell<u32>>,
    }
    impl TupleTask for ToMerge {
        type In = W;
        fn initialize(&mut self, _cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
            Ok(())
        }
        fn process(&mut self, cx: &mut TaskCx<'_, '_>, t: &W) -> SimResult<()> {
            if let std::collections::btree_map::Entry::Vacant(v) = self.counts.entry(t.0) {
                cx.alloc_out(ByteSize(64))?;
                v.insert(0);
            }
            *self.counts.get_mut(&t.0).expect("present") += 1;
            Ok(())
        }
        fn interrupt(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
            self.flush(cx)
        }
        fn cleanup(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
            self.flush(cx)
        }
    }
    impl ToMerge {
        fn flush(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
            let d = std::mem::take(&mut self.counts);
            if d.is_empty() {
                return Ok(());
            }
            let items: Vec<W> = d.keys().map(|&k| W(k)).collect();
            cx.emit_to_task(simcore::TaskId(self.merge.get()), Tag(0), items)
        }
    }
    let h = merge_holder.clone();
    let count = graph.add_task("count", move || {
        Box::new(Scale(ToMerge { counts: BTreeMap::new(), merge: h.clone() }))
    });
    let merge = graph.add_mitask("merge", || Box::new(Scale(Count::default())));
    merge_holder.set(merge.as_u32());
    graph.connect(count, merge);
    graph.connect(merge, merge);

    let mut irs = Irs::new(graph, IrsConfig::default());
    let handle = irs.handle();
    let mut rng = DetRng::new(3);
    // Offer as much as the disk will stage.
    loop {
        let items: Vec<W> = (0..1_500).map(|_| W(rng.below(4_000) as u32)).collect();
        if offer_serialized(&handle, sim.node_mut(), count, Tag(0), items).is_err() {
            break;
        }
    }
    // The run either completes (if pressure stayed manageable) or fails
    // with a *disk* error — never hangs, never panics.
    match irs.run_to_idle(&mut sim) {
        Ok(()) => {}
        Err(SimError::DiskFull { .. }) => {}
        Err(SimError::OutOfMemory { .. }) => {}
        Err(other) => panic!("unexpected failure kind: {other}"),
    }
}
