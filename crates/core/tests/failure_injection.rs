//! Failure injection: when the substrate itself fails (disk full during
//! serialization), the runtime must surface a clean error — never hang,
//! never corrupt accounting.

use std::collections::BTreeMap;

use itask_core::{
    offer_serialized, Irs, IrsConfig, Scale, Tag, TaskCx, TaskGraph, Tuple, TupleTask,
};
use simcluster::{NodeSim, NodeState};
use simcore::{ByteSize, DetRng, NodeId, SimError, SimResult};

#[derive(Clone, Copy)]
struct W(u32);

impl Tuple for W {
    fn heap_bytes(&self) -> u64 {
        48
    }
}

#[derive(Default)]
struct Count {
    counts: BTreeMap<u32, u64>,
}

impl TupleTask for Count {
    type In = W;

    fn initialize(&mut self, _cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        Ok(())
    }

    fn process(&mut self, cx: &mut TaskCx<'_, '_>, t: &W) -> SimResult<()> {
        if let std::collections::btree_map::Entry::Vacant(v) = self.counts.entry(t.0) {
            cx.alloc_out(ByteSize(64))?;
            v.insert(0);
        }
        *self.counts.get_mut(&t.0).expect("present") += 1;
        Ok(())
    }

    fn interrupt(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        let d = std::mem::take(&mut self.counts);
        if d.is_empty() {
            return Ok(());
        }
        let ser = ByteSize(d.len() as u64 * 12);
        cx.emit_final(Box::new(d), ser)
    }

    fn cleanup(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        let d = std::mem::take(&mut self.counts);
        if d.is_empty() {
            return Ok(());
        }
        let ser = ByteSize(d.len() as u64 * 12);
        cx.emit_final(Box::new(d), ser)
    }
}

/// Offering more input than the disk can stage fails loudly and leaves
/// the node consistent.
#[test]
fn disk_full_on_offer_is_a_clean_error() {
    let mut sim = NodeSim::new(NodeState::new(
        NodeId(0),
        4,
        ByteSize::kib(512),
        ByteSize::kib(32), // tiny disk
    ));
    let mut graph = TaskGraph::new();
    let count = graph.add_task("count", || Box::new(Scale(Count::default())));
    let irs = Irs::new(graph, IrsConfig::default());
    let handle = irs.handle();

    let mut failed = 0;
    let mut offered = 0;
    for _ in 0..40 {
        let items: Vec<W> = (0..1_000).map(W).collect();
        match offer_serialized(&handle, sim.node_mut(), count, Tag(0), items) {
            Ok(_) => offered += 1,
            Err(SimError::DiskFull { node, .. }) => {
                assert_eq!(node, NodeId(0));
                failed += 1;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(offered > 0, "some offers fit");
    assert!(failed > 0, "the rest fail with DiskFull");
    // Nothing leaked onto the heap.
    assert_eq!(sim.node().heap.used(), ByteSize::ZERO);
}

/// A run whose staged inputs fit, but whose *write-behind* serialization
/// hits a full disk mid-run, must fail with the disk error (propagated
/// through the worker), not hang or panic.
#[test]
fn disk_full_mid_run_propagates() {
    let mut sim = NodeSim::new(NodeState::new(
        NodeId(0),
        4,
        ByteSize::kib(256), // pressured heap: forces write-behind
        ByteSize::kib(96),  // disk with just enough room for the input
    ));
    let mut graph = TaskGraph::new();
    // Count feeds an MITask so intermediates hit the queue + disk.
    let merge_holder = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
    struct ToMerge {
        counts: BTreeMap<u32, u64>,
        merge: std::sync::Arc<std::sync::atomic::AtomicU32>,
    }
    impl TupleTask for ToMerge {
        type In = W;
        fn initialize(&mut self, _cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
            Ok(())
        }
        fn process(&mut self, cx: &mut TaskCx<'_, '_>, t: &W) -> SimResult<()> {
            if let std::collections::btree_map::Entry::Vacant(v) = self.counts.entry(t.0) {
                cx.alloc_out(ByteSize(64))?;
                v.insert(0);
            }
            *self.counts.get_mut(&t.0).expect("present") += 1;
            Ok(())
        }
        fn interrupt(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
            self.flush(cx)
        }
        fn cleanup(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
            self.flush(cx)
        }
    }
    impl ToMerge {
        fn flush(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
            let d = std::mem::take(&mut self.counts);
            if d.is_empty() {
                return Ok(());
            }
            let items: Vec<W> = d.keys().map(|&k| W(k)).collect();
            cx.emit_to_task(
                simcore::TaskId(self.merge.load(std::sync::atomic::Ordering::Relaxed)),
                Tag(0),
                items,
            )
        }
    }
    let h = merge_holder.clone();
    let count = graph.add_task("count", move || {
        Box::new(Scale(ToMerge {
            counts: BTreeMap::new(),
            merge: h.clone(),
        }))
    });
    let merge = graph.add_mitask("merge", || Box::new(Scale(Count::default())));
    merge_holder.store(merge.as_u32(), std::sync::atomic::Ordering::Relaxed);
    graph.connect(count, merge);
    graph.connect(merge, merge);

    let mut irs = Irs::new(graph, IrsConfig::default());
    let handle = irs.handle();
    let mut rng = DetRng::new(3);
    // Offer as much as the disk will stage.
    loop {
        let items: Vec<W> = (0..1_500).map(|_| W(rng.below(4_000) as u32)).collect();
        if offer_serialized(&handle, sim.node_mut(), count, Tag(0), items).is_err() {
            break;
        }
    }
    // The run either completes (if pressure stayed manageable) or fails
    // with a *disk* error — never hangs, never panics.
    match irs.run_to_idle(&mut sim) {
        Ok(()) => {}
        Err(SimError::DiskFull { .. }) => {}
        Err(SimError::OutOfMemory { .. }) => {}
        Err(other) => panic!("unexpected failure kind: {other}"),
    }
}

/// A partition whose deserialized form cannot fit the heap surfaces a
/// clean OutOfMemory from activation, releases the transient heap space
/// and leaves the partition serialized on disk (retryable later).
#[test]
fn ome_during_deserialization_is_clean_and_retryable() {
    use itask_core::{Partition, PartitionState, VecPartition};
    use simcore::{PartitionId, TaskId};

    let mut state = NodeState::new(
        NodeId(0),
        1,
        ByteSize::kib(4), // 4KiB heap vs a ~47KiB object form
        ByteSize::mib(1),
    );
    let items: Vec<W> = (0..1_000).map(W).collect();
    let ser = ByteSize(items.iter().map(Tuple::ser_bytes).sum());
    let file = state.disk.register("p0.ser", ser).expect("fits");
    let mut part = VecPartition::new_serialized(PartitionId(0), TaskId(0), Tag(0), items, file);

    let err =
        itask_core::manager::deserialize_partition(&mut part, &mut state).expect_err("cannot fit");
    assert!(err.is_oom(), "expected OME, got {err}");
    assert_eq!(
        state.heap.used(),
        ByteSize::ZERO,
        "transient space must be released"
    );
    assert!(
        matches!(part.meta().state, PartitionState::Serialized(_)),
        "the partition must stay on disk, retryable once memory frees up"
    );
}

/// Shuffle-style intermediates (emitted to a downstream MITask) that the
/// manager must spill onto an almost-full disk: the run fails with
/// DiskFull — never a hang, never corrupted heap accounting.
#[test]
fn disk_full_during_shuffle_spill_propagates() {
    let mut sim = NodeSim::new(NodeState::new(
        NodeId(0),
        2,
        ByteSize::kib(128), // pressured: queued intermediates must spill
        ByteSize::kib(256),
    ));
    let mut graph = TaskGraph::new();
    let merge_holder = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
    struct Exploder {
        merge: std::sync::Arc<std::sync::atomic::AtomicU32>,
    }
    impl TupleTask for Exploder {
        type In = W;
        fn initialize(&mut self, _cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
            Ok(())
        }
        fn process(&mut self, cx: &mut TaskCx<'_, '_>, t: &W) -> SimResult<()> {
            // Shuffle fan-out: every record emits a batch downstream.
            let items: Vec<W> = (0..8).map(|i| W(t.0.wrapping_mul(8) + i)).collect();
            cx.emit_to_task(
                simcore::TaskId(self.merge.load(std::sync::atomic::Ordering::Relaxed)),
                Tag((t.0 % 4) as u64),
                items,
            )
        }
        fn interrupt(&mut self, _cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
            Ok(())
        }
        fn cleanup(&mut self, _cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
            Ok(())
        }
    }
    let h = merge_holder.clone();
    let map = graph.add_task("explode", move || {
        Box::new(Scale(Exploder { merge: h.clone() }))
    });
    let merge = graph.add_mitask("merge", || Box::new(Scale(Count::default())));
    merge_holder.store(merge.as_u32(), std::sync::atomic::Ordering::Relaxed);
    graph.connect(map, merge);

    let mut irs = Irs::new(graph, IrsConfig::default());
    let handle = irs.handle();
    let mut rng = DetRng::new(9);
    let mut offers = 0;
    while offers < 24 {
        let items: Vec<W> = (0..1_000).map(|_| W(rng.below(1 << 20) as u32)).collect();
        if offer_serialized(&handle, sim.node_mut(), map, Tag(0), items).is_err() {
            break;
        }
        offers += 1;
    }
    // Almost fill what's left of the disk so the first shuffle spill
    // cannot be staged.
    let free = sim.node().disk.free();
    if free > ByteSize(512) {
        sim.node_mut()
            .disk
            .register("hog", ByteSize(free.as_u64() - 512))
            .expect("hog fits");
    }
    match irs.run_to_idle(&mut sim) {
        Err(SimError::DiskFull { node, .. }) => assert_eq!(node, NodeId(0)),
        Err(SimError::OutOfMemory { .. }) => {} // acceptable: heap died first
        Ok(()) => panic!("run cannot complete: intermediates exceed disk + heap"),
        Err(other) => panic!("unexpected failure kind: {other}"),
    }
    // Accounting stayed sane through the failure.
    assert!(sim.node().heap.used() <= sim.node().heap.capacity());
}
