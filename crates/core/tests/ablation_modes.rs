//! The §6.1 ablation mechanisms must preserve correctness while being
//! measurably worse: kill-restart reprocesses partitions from scratch,
//! random victim selection ignores the priority rules — both still
//! produce exact results, just slower.

use std::collections::BTreeMap;

use itask_core::{
    offer_serialized, InterruptMode, Irs, IrsConfig, Scale, Tag, TaskCx, TaskGraph, Tuple,
    TupleTask, VictimPolicy,
};
use simcluster::{NodeSim, NodeState};
use simcore::{ByteSize, DetRng, NodeId, SimResult};

#[derive(Clone, Copy)]
struct W(u32);

impl Tuple for W {
    fn heap_bytes(&self) -> u64 {
        48
    }
}

#[derive(Default)]
struct Count {
    counts: BTreeMap<u32, u64>,
}

impl Count {
    fn flush(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        if self.counts.is_empty() {
            return Ok(());
        }
        let d = std::mem::take(&mut self.counts);
        let ser = ByteSize(d.len() as u64 * 12);
        cx.emit_final(Box::new(d), ser)
    }
}

impl TupleTask for Count {
    type In = W;

    fn initialize(&mut self, _cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        Ok(())
    }

    fn process(&mut self, cx: &mut TaskCx<'_, '_>, t: &W) -> SimResult<()> {
        if let std::collections::btree_map::Entry::Vacant(v) = self.counts.entry(t.0) {
            cx.alloc_out(ByteSize(64))?;
            v.insert(0);
        }
        *self.counts.get_mut(&t.0).expect("present") += 1;
        Ok(())
    }

    fn interrupt(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        self.flush(cx)
    }

    fn cleanup(&mut self, cx: &mut TaskCx<'_, '_>) -> SimResult<()> {
        self.flush(cx)
    }
}

struct RunOut {
    counts: BTreeMap<u32, u64>,
    elapsed: simcore::SimDuration,
    interrupts: u64,
}

fn run(mode: InterruptMode, policy: VictimPolicy, heap_kib: u64) -> RunOut {
    let mut sim = NodeSim::new(NodeState::new(
        NodeId(0),
        4,
        ByteSize::kib(heap_kib),
        ByteSize::mib(64),
    ));
    let mut graph = TaskGraph::new();
    let count = graph.add_task("count", || Box::new(Scale(Count::default())));
    let mut irs = Irs::new(
        graph,
        IrsConfig {
            interrupt_mode: mode,
            victim_policy: policy,
            ..IrsConfig::default()
        },
    );
    let handle = irs.handle();
    let mut rng = DetRng::new(11);
    let words: Vec<u32> = (0..40_000).map(|_| rng.below(4_000) as u32).collect();
    for ch in words.chunks(1_500) {
        let items: Vec<W> = ch.iter().map(|&w| W(w)).collect();
        offer_serialized(&handle, sim.node_mut(), count, Tag(0), items).unwrap();
    }
    irs.run_to_idle(&mut sim).expect("all modes must complete");
    let mut counts = BTreeMap::new();
    for out in irs.take_final_outputs() {
        let m = out.data.downcast::<BTreeMap<u32, u64>>().unwrap();
        for (w, c) in m.into_iter() {
            *counts.entry(w).or_insert(0) += c;
        }
    }
    let st = irs.stats();
    RunOut {
        counts,
        elapsed: sim.node().now.since(simcore::SimTime::ZERO),
        interrupts: st.interrupts + st.emergency_interrupts,
    }
}

#[test]
fn kill_restart_is_correct_but_slower() {
    let full = run(InterruptMode::Cooperative, VictimPolicy::Rules, 448);
    let kill = run(InterruptMode::KillRestart, VictimPolicy::Rules, 448);
    assert_eq!(full.counts, kill.counts, "both modes count exactly");
    assert!(
        full.interrupts > 0,
        "the heap must be tight enough to interrupt"
    );
    assert!(
        kill.elapsed > full.elapsed,
        "reprocessing from scratch must cost time: {} vs {}",
        kill.elapsed,
        full.elapsed
    );
}

#[test]
fn random_victims_are_correct() {
    let full = run(InterruptMode::Cooperative, VictimPolicy::Rules, 448);
    let random = run(InterruptMode::Cooperative, VictimPolicy::Random, 448);
    assert_eq!(full.counts, random.counts);
}

#[test]
fn modes_agree_under_no_pressure() {
    let a = run(InterruptMode::Cooperative, VictimPolicy::Rules, 8192);
    let b = run(InterruptMode::KillRestart, VictimPolicy::Random, 8192);
    assert_eq!(a.counts, b.counts);
    assert_eq!(a.interrupts, 0);
    // Without interrupts the mechanisms are never exercised: identical
    // schedules, identical clocks.
    assert_eq!(a.elapsed, b.elapsed);
}
