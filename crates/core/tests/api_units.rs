//! Focused API-contract tests for the core runtime types.

use itask_core::{
    offer_in_memory, offer_serialized, Irs, IrsConfig, Partition, PartitionState, Scale, Tag,
    TaskCx, TaskGraph, Tuple, TupleTask, VecPartition,
};
use simcluster::{NodeSim, NodeState};
use simcore::{ByteSize, NodeId, PartitionId, SimResult, SpaceId, TaskId};

#[derive(Clone, Copy)]
struct T(u64);

impl Tuple for T {
    fn heap_bytes(&self) -> u64 {
        self.0
    }
}

struct Nop;

impl TupleTask for Nop {
    type In = T;
    fn initialize(&mut self, _: &mut TaskCx<'_, '_>) -> SimResult<()> {
        Ok(())
    }
    fn process(&mut self, _: &mut TaskCx<'_, '_>, _: &T) -> SimResult<()> {
        Ok(())
    }
    fn interrupt(&mut self, _: &mut TaskCx<'_, '_>) -> SimResult<()> {
        Ok(())
    }
    fn cleanup(&mut self, _: &mut TaskCx<'_, '_>) -> SimResult<()> {
        Ok(())
    }
}

fn sim() -> NodeSim {
    NodeSim::new(NodeState::new(
        NodeId(0),
        4,
        ByteSize::mib(4),
        ByteSize::mib(16),
    ))
}

#[test]
fn fresh_irs_is_idle_with_empty_stats() {
    let mut graph = TaskGraph::new();
    graph.add_task("t", || Box::new(Scale(Nop)));
    let irs = Irs::new(graph, IrsConfig::default());
    assert!(irs.is_idle());
    assert_eq!(irs.running(), 0);
    assert_eq!(irs.queued(), 0);
    let st = irs.stats();
    assert_eq!(st.interrupts, 0);
    assert_eq!(st.grows, 0);
    assert_eq!(st.reclaim.total(), ByteSize::ZERO);
    assert_eq!(irs.monitor_stats().lugcs_seen, 0);
}

#[test]
fn offers_update_queue_and_heap_accounting() {
    let mut graph = TaskGraph::new();
    let t = graph.add_task("t", || Box::new(Scale(Nop)));
    let irs = Irs::new(graph, IrsConfig::default());
    let handle = irs.handle();
    let mut sim = sim();

    let in_mem = offer_in_memory(&handle, sim.node_mut(), t, Tag(1), vec![T(100); 5]).unwrap();
    assert_eq!(irs.queued(), 1);
    assert_eq!(sim.node().heap.live(), ByteSize(500));

    let on_disk = offer_serialized(&handle, sim.node_mut(), t, Tag(2), vec![T(99); 4]).unwrap();
    assert_eq!(irs.queued(), 2);
    assert_ne!(in_mem, on_disk, "fresh partition ids");
    // The serialized offer cost no additional heap.
    assert_eq!(sim.node().heap.live(), ByteSize(500));
    assert!(sim.node().disk.used() > ByteSize::ZERO);
}

#[test]
fn offer_into_full_heap_fails_cleanly() {
    let mut graph = TaskGraph::new();
    let t = graph.add_task("t", || Box::new(Scale(Nop)));
    let irs = Irs::new(graph, IrsConfig::default());
    let handle = irs.handle();
    let mut sim = NodeSim::new(NodeState::new(
        NodeId(0),
        4,
        ByteSize::kib(32),
        ByteSize::mib(16),
    ));
    let err = offer_in_memory(&handle, sim.node_mut(), t, Tag(0), vec![T(8_000); 10]).unwrap_err();
    assert!(err.is_oom());
    // The failed offer leaked nothing into the queue.
    assert_eq!(irs.queued(), 0);
    assert_eq!(sim.node().heap.live(), ByteSize::ZERO);
}

#[test]
fn serialized_partition_constructor_sets_state() {
    let mut node = NodeState::new(NodeId(0), 1, ByteSize::mib(1), ByteSize::mib(8));
    let file = node.disk.register("input", ByteSize(100)).unwrap();
    let p = VecPartition::new(
        PartitionId(3),
        TaskId(1),
        Tag(9),
        vec![T(10), T(20)],
        SpaceId(0),
    );
    assert!(matches!(p.meta().state, PartitionState::InMemory(_)));
    let q =
        VecPartition::new_serialized(PartitionId(4), TaskId(1), Tag(9), vec![T(10), T(20)], file);
    assert!(matches!(q.meta().state, PartitionState::Serialized(_)));
    assert!(!q.meta().in_memory());
    assert_eq!(q.meta().space(), None);
    assert_eq!(q.meta().mem_bytes, ByteSize(30));
    assert_eq!(p.meta().mem_bytes, q.meta().mem_bytes);
}

#[test]
fn tags_order_and_equality() {
    assert!(Tag(1) < Tag(2));
    assert_eq!(Tag(7), Tag(7));
    assert_eq!(Tag::default(), Tag(0));
}

#[test]
fn scale_rejects_wrong_partition_type() {
    // A task typed for `T` fed a partition of a different tuple type
    // must fail with a descriptive internal error, not panic.
    #[derive(Clone, Copy)]
    struct Other(u16);
    impl Tuple for Other {
        fn heap_bytes(&self) -> u64 {
            self.0 as u64 + 8
        }
    }
    let mut graph = TaskGraph::new();
    let t = graph.add_task("t", || Box::new(Scale(Nop)));
    let mut irs = Irs::new(graph, IrsConfig::default());
    let handle = irs.handle();
    let mut sim = sim();
    offer_serialized(&handle, sim.node_mut(), t, Tag(0), vec![Other(1); 4]).unwrap();
    let err = irs.run_to_idle(&mut sim).unwrap_err();
    assert!(
        err.to_string().contains("wrong tuple type"),
        "descriptive error expected, got: {err}"
    );
}

#[test]
fn diamond_graph_distances() {
    use itask_core::ITask;
    fn nop() -> Box<dyn ITask> {
        Box::new(Scale(Nop))
    }
    // a -> b -> d, a -> c -> d: both branches meet at the sink.
    let mut g = TaskGraph::new();
    let a = g.add_task("a", nop);
    let b = g.add_task("b", nop);
    let c = g.add_task("c", nop);
    let d = g.add_task("d", nop);
    g.connect(a, b);
    g.connect(a, c);
    g.connect(b, d);
    g.connect(c, d);
    assert_eq!(g.distance_to_finish(d), 0);
    assert_eq!(g.distance_to_finish(b), 1);
    assert_eq!(g.distance_to_finish(c), 1);
    assert_eq!(g.distance_to_finish(a), 2);
    assert_eq!(g.distance_between(b, c), 2, "via a or d");
    let mut producers = g.producers(d);
    producers.sort();
    assert_eq!(producers, vec![b, c]);
}
