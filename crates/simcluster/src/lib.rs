#![warn(missing_docs)]

//! Deterministic discrete-time cluster simulator.
//!
//! Stands in for the paper's 11-node EC2 testbed (DESIGN.md §1). Each
//! [`node::NodeState`] owns a simulated managed heap (`simmem`), a disk
//! (`simstore`) and a virtual clock; *simulated threads* ([`work::Work`]
//! implementations) run in quantum-sized steps under a processor-sharing
//! scheduler ([`sched::NodeSim`]). Garbage collections are stop-the-world:
//! their pauses advance the node clock for everyone, and their records are
//! drained by whoever controls the node (the ITask monitor, or nobody for
//! regular executions).
//!
//! Simulation time is virtual and every run is bit-for-bit
//! reproducible — a property the paper's wall-clock measurements cannot
//! have, and one we rely on to regenerate tables. Host-parallel
//! execution does not break this: the [`shard`] executor partitions
//! node simulators across worker threads in deterministic lockstep
//! rounds, merging trace/profiler output back in one canonical order,
//! so stdout and trace bytes are identical at any `--shards` count.

pub mod cluster;
pub mod node;
pub mod report;
pub mod sched;
pub mod shard;
pub mod work;

pub use cluster::{Cluster, ClusterConfig};
pub use node::{NodeCheckpoint, NodeState, WorkCx, DEFAULT_IO_RETRIES};
pub use report::{JobOutcome, JobReport, NodeReport};
pub use sched::{NodeSim, NodeSimCheckpoint, RoundReport, ThreadState};
pub use shard::{run_parts, run_parts_with, set_shards, shards, RoundRun, ShardExecutor};
pub use work::{StepOutcome, Work};
