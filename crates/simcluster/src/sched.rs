//! The per-node quantum scheduler.
//!
//! Each scheduling *round* steps every runnable thread once with a CPU
//! quantum, then advances the node clock by the processor-sharing wall
//! time of the round: `max(longest step, ceil(total CPU / cores))`.
//! GC pauses are stop-the-world and advance the clock directly as they
//! happen (inside [`crate::node::NodeState::alloc`]).

use std::collections::BTreeMap;

use simcore::{metrics, tracer, ByteSize, SimDuration, SimError, ThreadId};

use crate::node::{NodeCheckpoint, NodeState, WorkCx};
use crate::work::{StepOutcome, Work};

/// Snapshot of the round-mutated scheduler state of a [`NodeSim`], taken
/// before a speculative round under the shard executor and restored when
/// that round is discarded (a lower-numbered node failed first, so under
/// serial fail-fast semantics this node would never have run).
///
/// `Work` bodies are deliberately *not* snapshotted: rewind is only used
/// on fail-fast paths, where the first failure permanently aborts the
/// run, so a rewound thread body is never stepped again. Everything that
/// is *observable afterwards* — clocks, counters, heap statistics, log
/// samples, fault-injector cursors, slot states — is restored exactly.
#[derive(Debug)]
pub struct NodeSimCheckpoint {
    node: NodeCheckpoint,
    /// `(state, progress)` per existing slot; `run_round` never adds or
    /// removes slots, so positions line up on rewind.
    slots: Vec<(ThreadState, u64)>,
    scope_cpu: BTreeMap<u64, SimDuration>,
    last_traced_threads: usize,
    last_metered_threads: usize,
    pending_quanta: u64,
    last_metric_cell: Option<u64>,
}

/// Scheduling state of a thread slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThreadState {
    /// Will be stepped next round.
    Runnable,
    /// Polled each round but last reported `Waiting`.
    Waiting,
    /// Completed; slot retired.
    Finished,
    /// Died with an error; slot retired.
    Failed,
}

struct ThreadSlot {
    id: ThreadId,
    work: Box<dyn Work>,
    state: ThreadState,
    /// Scale-loop iterations (or any progress unit) the work reported
    /// since the last observation — the IRS speed rule reads this.
    progress: u64,
    /// Owning allocation scope (job id), if spawned via
    /// [`NodeSim::spawn_scoped`]. Heap spaces created while this thread
    /// steps are attributed to it.
    scope: Option<u64>,
}

/// Placeholder body left in a slot whose real `Work` was salvaged by
/// [`NodeSim::crash`]. Never stepped (the slot is `Failed`).
struct CrashTombstone;

impl Work for CrashTombstone {
    fn step(&mut self, _cx: &mut WorkCx<'_>) -> StepOutcome {
        StepOutcome::Failed(SimError::Internal("stepped a crash tombstone".into()))
    }

    fn label(&self) -> String {
        "crashed".into()
    }
}

/// What happened in one scheduling round.
#[derive(Debug, Default)]
pub struct RoundReport {
    /// Threads stepped this round.
    pub stepped: usize,
    /// Wall-clock advancement of the round (excluding GC pauses).
    pub wall: SimDuration,
    /// Threads that finished this round.
    pub finished: Vec<ThreadId>,
    /// Threads that failed this round, with their errors.
    pub failed: Vec<(ThreadId, SimError)>,
}

impl RoundReport {
    /// Whether any thread made progress or changed state.
    pub fn idle(&self) -> bool {
        self.stepped == 0
    }
}

/// A node plus its simulated threads.
pub struct NodeSim {
    node: NodeState,
    threads: Vec<ThreadSlot>,
    next_thread: u32,
    quantum: SimDuration,
    crashed: bool,
    /// CPU time consumed per allocation scope, harvested (and reset)
    /// via [`Self::take_scope_cpu`]. A job's own consumption, as
    /// opposed to its wall-clock residency on the node.
    scope_cpu: BTreeMap<u64, SimDuration>,
    /// Runnable-thread count last emitted into the tracer; quantum
    /// events fire only when the count changes.
    last_traced_threads: usize,
    /// Runnable-thread count last emitted as a metrics gauge (separate
    /// cursor: the two planes arm independently).
    last_metered_threads: usize,
    /// Quanta stepped since the last metrics flush; emitted as one
    /// counter add per cadence cell instead of one per round.
    pending_quanta: u64,
    /// The cadence cell heap/quanta metrics last flushed in.
    last_metric_cell: Option<u64>,
}

impl NodeSim {
    /// Default scheduling quantum. Fine enough that a typical 128KiB
    /// partition spans several steps — interrupt latency and monitor
    /// reaction time are bounded by one quantum.
    pub const DEFAULT_QUANTUM: SimDuration = SimDuration::from_micros(100);

    /// Wraps a node with an empty thread table.
    pub fn new(node: NodeState) -> Self {
        NodeSim {
            node,
            threads: Vec::new(),
            next_thread: 0,
            quantum: Self::DEFAULT_QUANTUM,
            crashed: false,
            scope_cpu: BTreeMap::new(),
            last_traced_threads: usize::MAX,
            last_metered_threads: usize::MAX,
            pending_quanta: 0,
            last_metric_cell: None,
        }
    }

    /// Whether this node has crashed (see [`NodeSim::crash`]).
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Crashes the node: every live thread dies mid-step and the disk
    /// loses all files. Returns the `Work` bodies of the threads that
    /// were live, so the engine can salvage recoverable state (via
    /// [`crate::work::Work::as_any_mut`]) before re-scheduling their
    /// partitions elsewhere. A crashed node never runs another round.
    pub fn crash(&mut self) -> Vec<Box<dyn Work>> {
        self.crashed = true;
        if tracer::is_enabled() {
            tracer::emit(
                Some(self.node.id),
                None,
                self.node.now,
                SimDuration::ZERO,
                tracer::TraceData::NodeCrash,
            );
        }
        self.node.disk.purge();
        let mut salvaged = Vec::new();
        for slot in &mut self.threads {
            if matches!(slot.state, ThreadState::Runnable | ThreadState::Waiting) {
                slot.state = ThreadState::Failed;
                // Swap the body out; the retired slot keeps a tombstone.
                let body = std::mem::replace(&mut slot.work, Box::new(CrashTombstone));
                salvaged.push(body);
            }
        }
        salvaged
    }

    /// Read access to the node.
    pub fn node(&self) -> &NodeState {
        &self.node
    }

    /// Mutable access to the node (controllers use this between rounds).
    pub fn node_mut(&mut self) -> &mut NodeState {
        &mut self.node
    }

    /// Consumes the simulator, returning the node.
    pub fn into_node(self) -> NodeState {
        self.node
    }

    /// Overrides the scheduling quantum (tests and engines).
    pub fn set_quantum(&mut self, quantum: SimDuration) {
        self.quantum = quantum;
    }

    /// Spawns a simulated thread; it will be stepped from the next round.
    pub fn spawn(&mut self, work: Box<dyn Work>) -> ThreadId {
        self.spawn_scoped(work, None)
    }

    /// Spawns a thread owned by an allocation scope (a service-layer job
    /// id). While the thread steps, the heap's alloc scope is set to it,
    /// so spaces created anywhere down the call chain are attributed to
    /// the owning job; [`NodeSim::thread_scope`] maps failures back.
    pub fn spawn_scoped(&mut self, work: Box<dyn Work>, scope: Option<u64>) -> ThreadId {
        let id = ThreadId(self.next_thread);
        self.next_thread += 1;
        self.threads.push(ThreadSlot {
            id,
            work,
            state: ThreadState::Runnable,
            progress: 0,
            scope,
        });
        id
    }

    /// The allocation scope a thread was spawned under, if any.
    pub fn thread_scope(&self, id: ThreadId) -> Option<u64> {
        self.threads
            .iter()
            .find(|t| t.id == id)
            .and_then(|t| t.scope)
    }

    /// Kills every live thread spawned under `scope` (job teardown).
    /// Returns how many were killed.
    pub fn kill_scope(&mut self, scope: u64) -> usize {
        let mut killed = 0;
        for t in &mut self.threads {
            if t.scope == Some(scope)
                && matches!(t.state, ThreadState::Runnable | ThreadState::Waiting)
            {
                t.state = ThreadState::Failed;
                killed += 1;
            }
        }
        killed
    }

    /// CPU time threads of `scope` have consumed on this node since the
    /// scope's last harvest. Removes the counter: scopes identify jobs
    /// and are never reused, so a settled scope's slot would otherwise
    /// linger for the rest of a long service run.
    pub fn take_scope_cpu(&mut self, scope: u64) -> SimDuration {
        self.scope_cpu.remove(&scope).unwrap_or(SimDuration::ZERO)
    }

    /// Number of live threads spawned under `scope`.
    pub fn live_count_in_scope(&self, scope: u64) -> usize {
        self.threads
            .iter()
            .filter(|t| {
                t.scope == Some(scope)
                    && matches!(t.state, ThreadState::Runnable | ThreadState::Waiting)
            })
            .count()
    }

    /// Kills a thread outright (the naïve baseline of §6.1; ITask proper
    /// interrupts cooperatively instead). Returns whether it existed.
    pub fn kill(&mut self, id: ThreadId) -> bool {
        match self.threads.iter_mut().find(|t| t.id == id) {
            Some(t) if matches!(t.state, ThreadState::Runnable | ThreadState::Waiting) => {
                t.state = ThreadState::Failed;
                true
            }
            _ => false,
        }
    }

    /// The state of a thread, if it exists.
    pub fn thread_state(&self, id: ThreadId) -> Option<ThreadState> {
        self.threads.iter().find(|t| t.id == id).map(|t| t.state)
    }

    /// Ids of live (runnable or waiting) threads.
    pub fn live_threads(&self) -> Vec<ThreadId> {
        self.threads
            .iter()
            .filter(|t| matches!(t.state, ThreadState::Runnable | ThreadState::Waiting))
            .map(|t| t.id)
            .collect()
    }

    /// Number of live threads.
    pub fn live_count(&self) -> usize {
        self.live_threads().len()
    }

    /// Progress units accumulated by `id` since the last
    /// [`Self::take_progress`] call (the IRS speed rule's input).
    pub fn take_progress(&mut self, id: ThreadId) -> u64 {
        self.threads
            .iter_mut()
            .find(|t| t.id == id)
            .map(|t| std::mem::take(&mut t.progress))
            .unwrap_or(0)
    }

    /// Adds progress units to a thread (called by work via label...);
    /// engines call this after a step using the step's tuple count.
    pub fn add_progress(&mut self, id: ThreadId, units: u64) {
        if let Some(t) = self.threads.iter_mut().find(|t| t.id == id) {
            t.progress += units;
        }
    }

    /// Runs one scheduling round: steps every live thread once, then
    /// advances the node clock by the round's processor-sharing wall time.
    ///
    /// If every live thread is `Waiting`, the clock advances by one
    /// quantum (an idle tick) so pollers eventually make progress.
    pub fn run_round(&mut self) -> RoundReport {
        let mut report = RoundReport::default();
        if self.crashed {
            return report;
        }
        let mut max_used = SimDuration::ZERO;
        let mut sum_used = SimDuration::ZERO;
        let mut any_ran = false;

        for i in 0..self.threads.len() {
            if !matches!(
                self.threads[i].state,
                ThreadState::Runnable | ThreadState::Waiting
            ) {
                continue;
            }
            let outcome = {
                // Attribute heap spaces created during this step to the
                // thread's owning job (multi-tenant accounting).
                self.node.heap.set_alloc_scope(self.threads[i].scope);
                let mut cx = WorkCx::new(&mut self.node, self.quantum);
                let outcome = self.threads[i].work.step(&mut cx);
                let used = cx.used();
                max_used = max_used.max(used);
                sum_used += used;
                if let Some(scope) = self.threads[i].scope {
                    *self.scope_cpu.entry(scope).or_insert(SimDuration::ZERO) += used;
                }
                outcome
            };
            report.stepped += 1;
            let slot = &mut self.threads[i];
            match outcome {
                StepOutcome::Ran => {
                    slot.state = ThreadState::Runnable;
                    any_ran = true;
                }
                StepOutcome::Waiting => slot.state = ThreadState::Waiting,
                StepOutcome::Finished => {
                    slot.state = ThreadState::Finished;
                    report.finished.push(slot.id);
                    any_ran = true;
                }
                StepOutcome::Failed(err) => {
                    slot.state = ThreadState::Failed;
                    report.failed.push((slot.id, err));
                    any_ran = true;
                }
            }
        }

        self.node.heap.set_alloc_scope(None);

        // Processor sharing: the round's wall time is bounded below by the
        // longest single step and by total CPU spread over the cores.
        let cores = self.node.cores.max(1) as u64;
        let shared = SimDuration::from_nanos(sum_used.as_nanos().div_ceil(cores));
        let mut wall = max_used.max(shared);
        if report.stepped > 0 && !any_ran && wall.is_zero() {
            // All waiting: idle tick.
            wall = self.quantum;
        }
        self.node.now += wall;
        self.node.compute_time += max_used.max(shared);
        report.wall = wall;
        let running = self
            .threads
            .iter()
            .filter(|t| t.state == ThreadState::Runnable)
            .count();
        self.node
            .log
            .record("active_threads", self.node.now, running as f64);
        // Trace the thread-count curve on *change* only, so quiescent
        // rounds contribute no events (Figure-11-style traces stay
        // readable and the dump stays small).
        if tracer::is_enabled() && running != self.last_traced_threads {
            self.last_traced_threads = running;
            tracer::emit(
                Some(self.node.id),
                None,
                self.node.now,
                SimDuration::ZERO,
                tracer::TraceData::ThreadQuantum {
                    running: running as u32,
                },
            );
        }
        if metrics::is_enabled() {
            use metrics::Metric;
            let node = Some(self.node.id);
            // Runnable-thread gauge: change-driven, like the trace twin.
            if running != self.last_metered_threads {
                self.last_metered_threads = running;
                metrics::gauge_set(node, Metric::SchedRunnable, self.node.now, running as i64);
            }
            // Quanta and heap occupancy batch per cadence cell —
            // per-round emission would swamp the buffers on long runs.
            // A run's final partial cell is deliberately unflushed.
            self.pending_quanta += report.stepped as u64;
            let cell = metrics::cell_of(self.node.now);
            if Some(cell) != self.last_metric_cell {
                self.last_metric_cell = Some(cell);
                if self.pending_quanta > 0 {
                    metrics::counter_add(
                        node,
                        Metric::SchedQuanta,
                        self.node.now,
                        std::mem::take(&mut self.pending_quanta),
                    );
                }
                let cap = self.node.heap.capacity().as_u64();
                let used = self.node.heap.used().as_u64();
                metrics::gauge_set(node, Metric::MemHeapBytes, self.node.now, cap as i64);
                metrics::gauge_set(
                    node,
                    Metric::MemFreeBytes,
                    self.node.now,
                    (cap - used) as i64,
                );
                metrics::gauge_set(node, Metric::MemLiveBytes, self.node.now, used as i64);
            }
        }
        self.node.sample_heap();
        report
    }

    /// Live bytes the heap currently holds (convenience for tests).
    pub fn heap_used(&self) -> ByteSize {
        self.node.heap.used()
    }

    /// Snapshots everything a speculative round can mutate that remains
    /// observable after a fail-fast abort. See [`NodeSimCheckpoint`].
    pub fn checkpoint(&self) -> NodeSimCheckpoint {
        NodeSimCheckpoint {
            node: self.node.checkpoint(),
            slots: self.threads.iter().map(|t| (t.state, t.progress)).collect(),
            scope_cpu: self.scope_cpu.clone(),
            last_traced_threads: self.last_traced_threads,
            last_metered_threads: self.last_metered_threads,
            pending_quanta: self.pending_quanta,
            last_metric_cell: self.last_metric_cell,
        }
    }

    /// Restores a [`Self::checkpoint`], discarding one speculative round.
    pub fn rewind(&mut self, cp: &NodeSimCheckpoint) {
        self.node.rewind(&cp.node);
        debug_assert_eq!(self.threads.len(), cp.slots.len());
        for (slot, &(state, progress)) in self.threads.iter_mut().zip(&cp.slots) {
            slot.state = state;
            slot.progress = progress;
        }
        self.scope_cpu = cp.scope_cpu.clone();
        self.last_traced_threads = cp.last_traced_threads;
        self.last_metered_threads = cp.last_metered_threads;
        self.pending_quanta = cp.pending_quanta;
        self.last_metric_cell = cp.last_metric_cell;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{ByteSize, NodeId, SpaceId};

    /// A thread that burns CPU to process `tuples` synthetic tuples,
    /// allocating `bytes_per_tuple` each.
    struct Crunch {
        space: Option<SpaceId>,
        tuples: u64,
        bytes_per_tuple: u64,
    }

    impl Work for Crunch {
        fn step(&mut self, cx: &mut WorkCx<'_>) -> StepOutcome {
            let space = match self.space {
                Some(s) => s,
                None => {
                    let s = cx.create_space("crunch");
                    self.space = Some(s);
                    s
                }
            };
            let per_tuple = cx.cost().tuple_cost(ByteSize(64));
            while self.tuples > 0 && !cx.out_of_quantum() {
                cx.charge(per_tuple);
                if let Err(e) = cx.alloc(space, ByteSize(self.bytes_per_tuple)) {
                    return StepOutcome::Failed(e);
                }
                self.tuples -= 1;
            }
            if self.tuples == 0 {
                StepOutcome::Finished
            } else {
                StepOutcome::Ran
            }
        }

        fn label(&self) -> String {
            "crunch".into()
        }
    }

    fn crunch(tuples: u64, bytes_per_tuple: u64) -> Box<dyn Work> {
        Box::new(Crunch {
            space: None,
            tuples,
            bytes_per_tuple,
        })
    }

    fn sim(cores: usize, heap_mib: u64) -> NodeSim {
        NodeSim::new(NodeState::new(
            NodeId(0),
            cores,
            ByteSize::mib(heap_mib),
            ByteSize::mib(256),
        ))
    }

    fn run_to_completion(sim: &mut NodeSim) -> (Vec<ThreadId>, Vec<(ThreadId, SimError)>) {
        let mut finished = Vec::new();
        let mut failed = Vec::new();
        for _ in 0..1_000_000 {
            if sim.live_count() == 0 {
                break;
            }
            let r = sim.run_round();
            finished.extend(r.finished);
            failed.extend(r.failed);
        }
        (finished, failed)
    }

    #[test]
    fn single_thread_finishes_and_advances_clock() {
        let mut s = sim(8, 64);
        let id = s.spawn(crunch(10_000, 16));
        let (fin, fail) = run_to_completion(&mut s);
        assert_eq!(fin, vec![id]);
        assert!(fail.is_empty());
        assert!(s.node().now.as_nanos() > 0);
        assert_eq!(s.thread_state(id), Some(ThreadState::Finished));
    }

    #[test]
    fn parallel_threads_share_cores() {
        // 1 core: two identical threads take ~2x the wall time of one.
        let mut one = sim(1, 64);
        one.spawn(crunch(20_000, 8));
        run_to_completion(&mut one);
        let t_one = one.node().now;

        let mut two = sim(1, 64);
        two.spawn(crunch(20_000, 8));
        two.spawn(crunch(20_000, 8));
        run_to_completion(&mut two);
        let t_two = two.node().now;

        let ratio = t_two.as_nanos() as f64 / t_one.as_nanos() as f64;
        assert!((1.7..=2.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn more_cores_speed_up_parallel_work() {
        let mut narrow = sim(1, 64);
        for _ in 0..8 {
            narrow.spawn(crunch(10_000, 8));
        }
        run_to_completion(&mut narrow);

        let mut wide = sim(8, 64);
        for _ in 0..8 {
            wide.spawn(crunch(10_000, 8));
        }
        run_to_completion(&mut wide);

        let speedup = narrow.node().now.as_nanos() as f64 / wide.node().now.as_nanos() as f64;
        assert!(speedup > 4.0, "speedup {speedup}");
    }

    #[test]
    fn heap_exhaustion_fails_the_thread_not_the_simulator() {
        // 2MiB heap, thread wants ~12MiB live.
        let mut s = sim(8, 2);
        let id = s.spawn(crunch(200_000, 64));
        let (fin, fail) = run_to_completion(&mut s);
        assert!(fin.is_empty());
        assert_eq!(fail.len(), 1);
        assert_eq!(fail[0].0, id);
        assert!(fail[0].1.is_oom());
        // GC was attempted before dying.
        assert!(s.node().heap.stats().full_count > 0);
        assert!(s.node().gc_time > SimDuration::ZERO);
    }

    #[test]
    fn kill_retires_a_thread() {
        let mut s = sim(8, 64);
        let id = s.spawn(crunch(1_000_000, 8));
        s.run_round();
        assert!(s.kill(id));
        assert!(!s.kill(id));
        assert_eq!(s.thread_state(id), Some(ThreadState::Failed));
        assert_eq!(s.live_count(), 0);
    }

    #[test]
    fn crash_retires_threads_and_purges_disk() {
        let mut s = sim(8, 64);
        let a = s.spawn(crunch(1_000_000, 8));
        let b = s.spawn(crunch(1_000_000, 8));
        s.run_round();
        s.node_mut()
            .disk_write_async("spill", ByteSize::mib(1))
            .unwrap();

        let salvaged = s.crash();
        assert_eq!(salvaged.len(), 2);
        assert!(s.is_crashed());
        assert_eq!(s.node().disk.file_count(), 0);
        assert_eq!(s.thread_state(a), Some(ThreadState::Failed));
        assert_eq!(s.thread_state(b), Some(ThreadState::Failed));
        assert_eq!(s.live_count(), 0);

        // A crashed node never runs another round.
        let before = s.node().now;
        let r = s.run_round();
        assert!(r.idle());
        assert_eq!(s.node().now, before);
    }

    #[test]
    fn scoped_threads_attribute_spaces_and_tear_down_together() {
        let mut s = sim(8, 64);
        let a = s.spawn_scoped(crunch(30_000, 16), Some(1));
        let b = s.spawn_scoped(crunch(30_000, 16), Some(2));
        let c = s.spawn(crunch(30_000, 16));
        for _ in 0..3 {
            s.run_round();
        }
        assert_eq!(s.thread_scope(a), Some(1));
        assert_eq!(s.thread_scope(b), Some(2));
        assert_eq!(s.thread_scope(c), None);
        assert_eq!(s.live_count_in_scope(1), 1);
        // Spaces created inside the step were tagged with the scope.
        let live1 = s.node().heap.scope_live(1);
        let live2 = s.node().heap.scope_live(2);
        assert!(live1 > ByteSize::ZERO && live2 > ByteSize::ZERO);
        // Tearing down job 1 kills its thread and releases its spaces.
        assert_eq!(s.kill_scope(1), 1);
        assert_eq!(s.live_count_in_scope(1), 0);
        let freed = s.node_mut().heap.release_scope(1);
        assert_eq!(freed, live1);
        assert_eq!(s.node().heap.scope_live(1), ByteSize::ZERO);
        assert_eq!(s.node().heap.scope_live(2), live2);
        // Other jobs keep running.
        let (fin, fail) = run_to_completion(&mut s);
        assert_eq!(fin.len(), 2);
        assert!(fail.is_empty());
    }

    #[test]
    fn scope_cpu_tracks_own_consumption_not_residency() {
        let mut s = sim(1, 64);
        // Scope 1 does 4x the work of scope 2 on one shared core; both
        // are co-resident for the whole run.
        s.spawn_scoped(crunch(40_000, 8), Some(1));
        s.spawn_scoped(crunch(10_000, 8), Some(2));
        run_to_completion(&mut s);
        let c1 = s.take_scope_cpu(1);
        let c2 = s.take_scope_cpu(2);
        assert!(c2 > SimDuration::ZERO);
        let ratio = c1.as_nanos() as f64 / c2.as_nanos() as f64;
        assert!(ratio > 3.0, "scope CPU ratio {ratio} reflects residency");
        // Harvest is take-once.
        assert_eq!(s.take_scope_cpu(1), SimDuration::ZERO);
        // Unscoped threads are not accounted anywhere.
        assert_eq!(s.take_scope_cpu(999), SimDuration::ZERO);
    }

    #[test]
    fn progress_counter_is_take_once() {
        let mut s = sim(8, 64);
        let id = s.spawn(crunch(100_000, 8));
        s.run_round();
        s.add_progress(id, 42);
        assert_eq!(s.take_progress(id), 42);
        assert_eq!(s.take_progress(id), 0);
    }

    #[test]
    fn thread_timeline_is_recorded() {
        let mut s = sim(8, 64);
        s.spawn(crunch(50_000, 8));
        s.spawn(crunch(50_000, 8));
        run_to_completion(&mut s);
        let series = s.node().log.series("active_threads").unwrap();
        assert!(series.max_value() >= 2.0);
        assert_eq!(series.samples.last().unwrap().value, 0.0);
    }
}
